"""HTML renderers for the five lab views plus the instructor roster.

These correspond to the paper's Figures 3 (Code view), 4 (History
view), and 5 (Roster view), and the Description / Questions / Attempts
views described in Section IV-B.
"""

from __future__ import annotations

import html
from typing import Sequence

from repro.core.history import Revision
from repro.core.instructor import RosterRow
from repro.core.submission import Attempt
from repro.labs.base import LabDefinition
from repro.web.markdown import render_markdown


def _page(title: str, body: str) -> str:
    return (f"<!doctype html><html><head><title>{html.escape(title)}"
            f"</title></head><body>{body}</body></html>")


def _nav(lab: LabDefinition, active: str) -> str:
    tabs = ["description", "code", "questions", "attempts", "history"]
    items = []
    for tab in tabs:
        label = tab.capitalize()
        if tab == active:
            items.append(f"<strong>{label}</strong>")
        else:
            items.append(f'<a href="/lab/{lab.slug}/{tab}">{label}</a>')
    return '<nav class="lab-tabs">' + " | ".join(items) + "</nav>"


def render_description_view(lab: LabDefinition) -> str:
    """The lab manual, generated from the markdown description, plus
    the grading rubric ("The grading rubric is also shown")."""
    rubric = lab.rubric
    rubric_html = (
        "<table class='rubric'>"
        "<tr><th>Component</th><th>Points</th></tr>"
        f"<tr><td>Datasets</td><td>{rubric.dataset_points}</td></tr>"
        f"<tr><td>Compilation</td><td>{rubric.compile_points}</td></tr>"
        f"<tr><td>Questions</td><td>{rubric.question_points}</td></tr>"
        f"<tr><td><strong>Total</strong></td>"
        f"<td><strong>{rubric.total}</strong></td></tr></table>")
    body = (_nav(lab, "description") + render_markdown(lab.description)
            + "<h2>Grading</h2>" + rubric_html)
    return _page(f"{lab.title} — Description", body)


def render_code_view(lab: LabDefinition, source: str,
                     dataset_count: int | None = None) -> str:
    """The editor view (Figure 3): code area plus compile/run controls
    with the per-dataset drop-down."""
    count = dataset_count if dataset_count is not None \
        else len(lab.dataset_sizes)
    options = "".join(f'<option value="{i}">Dataset {i}</option>'
                      for i in range(count))
    controls = (
        '<div class="controls">'
        '<button name="compile">Compile</button> '
        f'<select name="dataset">{options}</select> '
        '<button name="run">Compile &amp; Run</button> '
        '<button name="submit">Submit for Grading</button>'
        "</div>")
    editor = (f'<textarea name="source" class="editor" data-autosave="on" '
              f'rows="30">{html.escape(source)}</textarea>')
    body = _nav(lab, "code") + controls + editor
    return _page(f"{lab.title} — Code", body)


def render_questions_view(lab: LabDefinition,
                          answers: dict[int, str]) -> str:
    """Short-answer questions with the student's saved answers."""
    parts = [_nav(lab, "questions")]
    if not lab.questions:
        parts.append("<p>This lab has no questions.</p>")
    for i, question in enumerate(lab.questions):
        saved = html.escape(answers.get(i, ""))
        parts.append(
            f"<div class='question'><p>Q{i + 1}. {html.escape(question)}"
            f"</p><textarea name='answer{i}' rows='4'>{saved}"
            "</textarea></div>")
    return _page(f"{lab.title} — Questions", "".join(parts))


def render_attempts_view(lab: LabDefinition,
                         attempts: Sequence[Attempt],
                         deadline_passed: bool = False) -> str:
    """Every run of the code against a dataset, with its result."""
    rows = []
    for attempt in attempts:
        verdict = "correct" if attempt.correct else (
            "compiled" if attempt.compile_ok else "failed")
        share = ("<a href='/shared/attempt/"
                 f"{attempt.attempt_id}'>share</a>" if deadline_passed
                 else "<em>shareable after deadline</em>")
        report = html.escape(attempt.report[:500])
        rows.append(
            f"<tr><td>{attempt.attempt_id}</td>"
            f"<td>{attempt.kind.value}</td>"
            f"<td>{attempt.dataset_index}</td>"
            f"<td>{attempt.submitted_at:.0f}</td>"
            f"<td class='verdict-{verdict}'>{verdict}</td>"
            f"<td><pre>{report}</pre></td><td>{share}</td></tr>")
    table = ("<table class='attempts'><tr><th>#</th><th>kind</th>"
             "<th>dataset</th><th>time</th><th>result</th><th>details</th>"
             "<th></th></tr>" + "".join(rows) + "</table>")
    if not attempts:
        table = "<p>No attempts yet.</p>"
    return _page(f"{lab.title} — Attempts",
                 _nav(lab, "attempts") + table)


def render_history_view(lab: LabDefinition,
                        revisions: Sequence[Revision]) -> str:
    """The revision history (Figure 4): snippet left, timestamp right."""
    rows = []
    for rev in revisions:
        snippet = html.escape("\n".join(rev.source.splitlines()[:8]))
        rows.append(
            f"<tr><td><pre class='snippet'>{snippet}</pre></td>"
            f"<td>rev {rev.revision_id}<br>saved at {rev.saved_at:.0f}"
            f"<br>{rev.reason}</td></tr>")
    table = ("<table class='history'>" + "".join(rows) + "</table>"
             if rows else "<p>No revisions yet.</p>")
    return _page(f"{lab.title} — History", _nav(lab, "history") + table)


def render_roster_view(lab: LabDefinition,
                       roster: Sequence[RosterRow]) -> str:
    """The instructor roster (Figure 5)."""
    rows = []
    for row in roster:
        def fmt(v: float | None) -> str:
            return f"{v:.1f}" if v is not None else "—"

        last = (f"{row.last_submission_at:.0f}"
                if row.last_submission_at is not None else "—")
        rows.append(
            f"<tr><td>{html.escape(row.name)}</td>"
            f"<td>{html.escape(row.email)}</td>"
            f"<td><a href='/instructor/{lab.slug}/student/{row.user_id}'>"
            f"{row.attempts} attempt(s)</a></td>"
            f"<td>{fmt(row.program_grade)}</td>"
            f"<td>{fmt(row.question_grade)}</td>"
            f"<td>{fmt(row.total_grade)}</td>"
            f"<td>{last}</td></tr>")
    table = ("<table class='roster'><tr><th>Name</th><th>Email</th>"
             "<th>Attempts</th><th>Program</th><th>Questions</th>"
             "<th>Total</th><th>Submitted</th></tr>"
             + "".join(rows) + "</table>")
    return _page(f"{lab.title} — Roster", table)
