"""HTML renderers for the five lab views plus the instructor roster.

These correspond to the paper's Figures 3 (Code view), 4 (History
view), and 5 (Roster view), and the Description / Questions / Attempts
views described in Section IV-B.
"""

from __future__ import annotations

import html
from typing import Sequence

from repro.core.history import Revision
from repro.core.instructor import RosterRow
from repro.core.submission import Attempt
from repro.labs.base import LabDefinition
from repro.web.markdown import render_markdown


def _page(title: str, body: str) -> str:
    return (f"<!doctype html><html><head><title>{html.escape(title)}"
            f"</title></head><body>{body}</body></html>")


def _nav(lab: LabDefinition, active: str) -> str:
    tabs = ["description", "code", "questions", "attempts", "history",
            "profile"]
    items = []
    for tab in tabs:
        label = tab.capitalize()
        if tab == active:
            items.append(f"<strong>{label}</strong>")
        else:
            items.append(f'<a href="/lab/{lab.slug}/{tab}">{label}</a>')
    return '<nav class="lab-tabs">' + " | ".join(items) + "</nav>"


def render_description_view(lab: LabDefinition) -> str:
    """The lab manual, generated from the markdown description, plus
    the grading rubric ("The grading rubric is also shown")."""
    rubric = lab.rubric
    rubric_html = (
        "<table class='rubric'>"
        "<tr><th>Component</th><th>Points</th></tr>"
        f"<tr><td>Datasets</td><td>{rubric.dataset_points}</td></tr>"
        f"<tr><td>Compilation</td><td>{rubric.compile_points}</td></tr>"
        f"<tr><td>Questions</td><td>{rubric.question_points}</td></tr>"
        f"<tr><td><strong>Total</strong></td>"
        f"<td><strong>{rubric.total}</strong></td></tr></table>")
    body = (_nav(lab, "description") + render_markdown(lab.description)
            + "<h2>Grading</h2>" + rubric_html)
    return _page(f"{lab.title} — Description", body)


def render_code_view(lab: LabDefinition, source: str,
                     dataset_count: int | None = None) -> str:
    """The editor view (Figure 3): code area plus compile/run controls
    with the per-dataset drop-down."""
    count = dataset_count if dataset_count is not None \
        else len(lab.dataset_sizes)
    options = "".join(f'<option value="{i}">Dataset {i}</option>'
                      for i in range(count))
    controls = (
        '<div class="controls">'
        '<button name="compile">Compile</button> '
        f'<select name="dataset">{options}</select> '
        '<button name="run">Compile &amp; Run</button> '
        '<button name="submit">Submit for Grading</button>'
        "</div>")
    editor = (f'<textarea name="source" class="editor" data-autosave="on" '
              f'rows="30">{html.escape(source)}</textarea>')
    body = _nav(lab, "code") + controls + editor
    return _page(f"{lab.title} — Code", body)


def render_questions_view(lab: LabDefinition,
                          answers: dict[int, str]) -> str:
    """Short-answer questions with the student's saved answers."""
    parts = [_nav(lab, "questions")]
    if not lab.questions:
        parts.append("<p>This lab has no questions.</p>")
    for i, question in enumerate(lab.questions):
        saved = html.escape(answers.get(i, ""))
        parts.append(
            f"<div class='question'><p>Q{i + 1}. {html.escape(question)}"
            f"</p><textarea name='answer{i}' rows='4'>{saved}"
            "</textarea></div>")
    return _page(f"{lab.title} — Questions", "".join(parts))


def render_attempts_view(lab: LabDefinition,
                         attempts: Sequence[Attempt],
                         deadline_passed: bool = False) -> str:
    """Every run of the code against a dataset, with its result."""
    rows = []
    for attempt in attempts:
        verdict = "correct" if attempt.correct else (
            "compiled" if attempt.compile_ok else "failed")
        share = ("<a href='/shared/attempt/"
                 f"{attempt.attempt_id}'>share</a>" if deadline_passed
                 else "<em>shareable after deadline</em>")
        report = html.escape(attempt.report[:500])
        rows.append(
            f"<tr><td>{attempt.attempt_id}</td>"
            f"<td>{attempt.kind.value}</td>"
            f"<td>{attempt.dataset_index}</td>"
            f"<td>{attempt.submitted_at:.0f}</td>"
            f"<td class='verdict-{verdict}'>{verdict}</td>"
            f"<td><pre>{report}</pre></td><td>{share}</td></tr>")
    table = ("<table class='attempts'><tr><th>#</th><th>kind</th>"
             "<th>dataset</th><th>time</th><th>result</th><th>details</th>"
             "<th></th></tr>" + "".join(rows) + "</table>")
    if not attempts:
        table = "<p>No attempts yet.</p>"
    return _page(f"{lab.title} — Attempts",
                 _nav(lab, "attempts") + table)


def render_history_view(lab: LabDefinition,
                        revisions: Sequence[Revision]) -> str:
    """The revision history (Figure 4): snippet left, timestamp right."""
    rows = []
    for rev in revisions:
        snippet = html.escape("\n".join(rev.source.splitlines()[:8]))
        rows.append(
            f"<tr><td><pre class='snippet'>{snippet}</pre></td>"
            f"<td>rev {rev.revision_id}<br>saved at {rev.saved_at:.0f}"
            f"<br>{rev.reason}</td></tr>")
    table = ("<table class='history'>" + "".join(rows) + "</table>"
             if rows else "<p>No revisions yet.</p>")
    return _page(f"{lab.title} — History", _nav(lab, "history") + table)


#: Column order of the per-line counter table (short dashboard labels).
_PROFILE_COLUMNS = (
    ("instructions", "instr"),
    ("global_load_transactions", "gld"),
    ("global_store_transactions", "gst"),
    ("shared_accesses", "shm"),
    ("bank_conflicts", "bank"),
    ("atomic_ops", "atomic"),
    ("divergent_branches", "div"),
)


def render_profile_view(lab: LabDefinition, source: str, profile,
                        violations: Sequence = (), top: int = 5) -> str:
    """The annotated-source heat view: every source line with its
    per-line kernel counters and a heat-shaded gutter, the top-N hot
    lines, and any line-budget violations. ``profile`` is a
    :class:`repro.profiler.LineProfile` (None → empty-state page)."""
    parts = [_nav(lab, "profile")]
    if profile is None or not profile.lines:
        parts.append("<p>No profiled kernel launches yet — run or "
                     "submit code that launches a kernel first.</p>")
        return _page(f"{lab.title} — Profile", "".join(parts))

    heats = {line: c.heat() for line, c in profile.lines.items()}
    max_heat = max(heats.values(), default=0)

    hot_rows = []
    for line, counters in profile.top_lines(top):
        text = source.splitlines()[line - 1] if \
            line <= len(source.splitlines()) else ""
        hot_rows.append(
            f"<tr><td>{line}</td><td>{counters.heat()}</td>"
            f"<td><code>{html.escape(text.strip())}</code></td></tr>")
    parts.append("<h2>Hottest lines</h2>"
                 "<table class='hot-lines'><tr><th>line</th>"
                 "<th>heat</th><th>source</th></tr>"
                 + "".join(hot_rows) + "</table>")

    if violations:
        items = "".join(f"<li>{html.escape(v.describe())}</li>"
                        for v in violations)
        parts.append("<h2>Line-budget violations</h2>"
                     f"<ul class='budget-violations'>{items}</ul>")

    header = ("<tr><th>line</th>"
              + "".join(f"<th>{label}</th>"
                        for _, label in _PROFILE_COLUMNS)
              + "<th>heat</th><th>source</th></tr>")
    rows = []
    for number, text in enumerate(source.splitlines(), start=1):
        counters = profile.lines.get(number)
        heat = heats.get(number, 0)
        # shade the row by its share of the hottest line's heat
        alpha = heat / max_heat if max_heat else 0.0
        style = (f" style='background: rgba(255,80,0,{alpha:.2f})'"
                 if alpha > 0 else "")
        cells = "".join(
            f"<td>{getattr(counters, name) or ''}</td>" if counters
            else "<td></td>"
            for name, _ in _PROFILE_COLUMNS)
        rows.append(
            f"<tr{style}><td>{number}</td>{cells}<td>{heat or ''}</td>"
            f"<td><pre class='src'>{html.escape(text)}</pre></td></tr>")
    parts.append("<h2>Annotated source</h2>"
                 "<table class='line-profile'>" + header
                 + "".join(rows) + "</table>")
    return _page(f"{lab.title} — Profile", "".join(parts))


def render_roster_view(lab: LabDefinition,
                       roster: Sequence[RosterRow]) -> str:
    """The instructor roster (Figure 5)."""
    rows = []
    for row in roster:
        def fmt(v: float | None) -> str:
            return f"{v:.1f}" if v is not None else "—"

        last = (f"{row.last_submission_at:.0f}"
                if row.last_submission_at is not None else "—")
        rows.append(
            f"<tr><td>{html.escape(row.name)}</td>"
            f"<td>{html.escape(row.email)}</td>"
            f"<td><a href='/instructor/{lab.slug}/student/{row.user_id}'>"
            f"{row.attempts} attempt(s)</a></td>"
            f"<td>{fmt(row.program_grade)}</td>"
            f"<td>{fmt(row.question_grade)}</td>"
            f"<td>{fmt(row.total_grade)}</td>"
            f"<td>{last}</td></tr>")
    table = ("<table class='roster'><tr><th>Name</th><th>Email</th>"
             "<th>Attempts</th><th>Program</th><th>Questions</th>"
             "<th>Total</th><th>Submitted</th></tr>"
             + "".join(rows) + "</table>")
    return _page(f"{lab.title} — Roster", table)
