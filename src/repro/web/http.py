"""Framework-free request/response objects and a pattern router."""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Callable


class HttpError(Exception):
    """An error with an HTTP status code."""

    def __init__(self, status: int, message: str):
        self.status = status
        super().__init__(message)


@dataclass
class Request:
    """One browser request."""

    method: str
    path: str
    form: dict[str, Any] = field(default_factory=dict)
    session_token: str = ""
    #: filled by the router from path placeholders
    params: dict[str, str] = field(default_factory=dict)


@dataclass
class Response:
    """What goes back to the browser."""

    status: int = 200
    body: str = ""
    content_type: str = "text/html"
    headers: dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


Handler = Callable[[Request], Response]

_PLACEHOLDER = re.compile(r"<([a-zA-Z_][a-zA-Z0-9_]*)>")


def _compile_pattern(pattern: str) -> re.Pattern[str]:
    regex = _PLACEHOLDER.sub(lambda m: f"(?P<{m.group(1)}>[^/]+)",
                             re.escape(pattern).replace(r"\<", "<")
                             .replace(r"\>", ">"))
    return re.compile(f"^{regex}$")


class Router:
    """Maps ``METHOD path-pattern`` to handlers.

    Patterns use ``<name>`` placeholders: ``/lab/<slug>/code``.
    """

    def __init__(self):
        self._routes: list[tuple[str, re.Pattern[str], Handler]] = []

    def route(self, method: str, pattern: str) -> Callable[[Handler], Handler]:
        compiled = _compile_pattern(pattern)

        def decorator(handler: Handler) -> Handler:
            self._routes.append((method.upper(), compiled, handler))
            return handler

        return decorator

    def add(self, method: str, pattern: str, handler: Handler) -> None:
        self._routes.append((method.upper(), _compile_pattern(pattern),
                             handler))

    def dispatch(self, request: Request) -> Response:
        for method, pattern, handler in self._routes:
            if method != request.method.upper():
                continue
            match = pattern.match(request.path)
            if match:
                request.params = dict(match.groupdict())
                try:
                    return handler(request)
                except HttpError as exc:
                    return Response(status=exc.status, body=str(exc))
        return Response(status=404, body=f"no route for {request.method} "
                                         f"{request.path}")
