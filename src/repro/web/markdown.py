"""A small markdown renderer for lab descriptions (paper Section IV-E).

Lab descriptions are authored in markdown [Gruber]; this renderer
covers what lab manuals use: ATX headers, fenced code blocks, inline
code, bold/italic, links, unordered/ordered lists, and paragraphs.
Output is HTML with all source text escaped.
"""

from __future__ import annotations

import html
import re

_INLINE_CODE = re.compile(r"`([^`]+)`")
_BOLD = re.compile(r"\*\*([^*]+)\*\*")
_ITALIC = re.compile(r"(?<!\*)\*([^*]+)\*(?!\*)")
_LINK = re.compile(r"\[([^\]]+)\]\(([^)\s]+)\)")
_HEADER = re.compile(r"^(#{1,6})\s+(.*)$")
_ULIST = re.compile(r"^[-*]\s+(.*)$")
_OLIST = re.compile(r"^\d+[.)]\s+(.*)$")


def _inline(text: str) -> str:
    """Escape then apply inline markup.

    Code spans are lifted out into placeholders first so that emphasis
    markers *inside* backticks stay literal (standard markdown
    behaviour: `*x*` renders as code containing asterisks).
    """
    out = html.escape(text, quote=False)
    spans: list[str] = []

    def stash(match: re.Match[str]) -> str:
        spans.append(match.group(1))
        return f"\x00{len(spans) - 1}\x00"

    out = _INLINE_CODE.sub(stash, out)
    out = _BOLD.sub(lambda m: f"<strong>{m.group(1)}</strong>", out)
    out = _ITALIC.sub(lambda m: f"<em>{m.group(1)}</em>", out)
    out = _LINK.sub(lambda m: f'<a href="{m.group(2)}">{m.group(1)}</a>', out)
    for index, span in enumerate(spans):
        out = out.replace(f"\x00{index}\x00", f"<code>{span}</code>")
    return out


def render_markdown(source: str) -> str:
    """Render markdown to HTML (block-level state machine)."""
    lines = source.splitlines()
    out: list[str] = []
    paragraph: list[str] = []
    list_kind: str | None = None
    in_code = False
    code_lines: list[str] = []

    def flush_paragraph() -> None:
        if paragraph:
            out.append(f"<p>{_inline(' '.join(paragraph))}</p>")
            paragraph.clear()

    def flush_list() -> None:
        nonlocal list_kind
        if list_kind is not None:
            out.append(f"</{list_kind}>")
            list_kind = None

    for line in lines:
        if line.strip().startswith("```"):
            if in_code:
                out.append("<pre><code>"
                           + html.escape("\n".join(code_lines))
                           + "</code></pre>")
                code_lines.clear()
                in_code = False
            else:
                flush_paragraph()
                flush_list()
                in_code = True
            continue
        if in_code:
            code_lines.append(line)
            continue

        header = _HEADER.match(line)
        if header:
            flush_paragraph()
            flush_list()
            level = len(header.group(1))
            out.append(f"<h{level}>{_inline(header.group(2))}</h{level}>")
            continue

        ulist = _ULIST.match(line.strip())
        olist = _OLIST.match(line.strip())
        if ulist or olist:
            flush_paragraph()
            kind = "ul" if ulist else "ol"
            if list_kind != kind:
                flush_list()
                out.append(f"<{kind}>")
                list_kind = kind
            item = (ulist or olist).group(1)
            out.append(f"<li>{_inline(item)}</li>")
            continue

        if not line.strip():
            flush_paragraph()
            flush_list()
            continue

        paragraph.append(line.strip())

    if in_code:  # unterminated fence: render what we have
        out.append("<pre><code>" + html.escape("\n".join(code_lines))
                   + "</code></pre>")
    flush_paragraph()
    flush_list()
    return "\n".join(out)
