"""The WebGPU web application: routes wired to the platform facade."""

from __future__ import annotations

from typing import Any

from repro.core.platform import PlatformError, RateLimited, WebGPU
from repro.core.users import User
from repro.web.auth import AuthError, SessionManager
from repro.web.http import HttpError, Request, Response, Router
from repro.web.views import (
    render_attempts_view,
    render_code_view,
    render_description_view,
    render_history_view,
    render_profile_view,
    render_questions_view,
    render_roster_view,
)


class WebGpuApp:
    """HTTP-ish front door over a :class:`WebGPU` (or v2) platform.

    One app instance serves one course offering, mirroring how each
    Coursera offering ran its own site.
    """

    def __init__(self, platform: WebGPU, course_key: str):
        self.platform = platform
        self.course_key = course_key
        self.sessions = SessionManager(platform.users)
        self.router = Router()
        self._install_routes()

    # -- request entry point ------------------------------------------------

    def handle(self, request: Request) -> Response:
        return self.router.dispatch(request)

    def _user(self, request: Request) -> User:
        try:
            return self.sessions.authenticate(request.session_token,
                                              self.platform.clock.now())
        except AuthError as exc:
            raise HttpError(401, str(exc)) from None

    def _lab(self, request: Request):
        try:
            return self.platform.course(self.course_key).lab(
                request.params["slug"])
        except (KeyError, PlatformError) as exc:
            raise HttpError(404, str(exc)) from None

    # -- routes -------------------------------------------------------------------

    def _install_routes(self) -> None:
        router = self.router

        @router.route("POST", "/login")
        def login(request: Request) -> Response:
            try:
                session = self.sessions.login(
                    request.form["email"], request.form["password"],
                    self.platform.clock.now(),
                    device_class=request.form.get("device", "desktop"))
            except AuthError as exc:
                return Response(status=401, body=str(exc))
            return Response(body=session.token, content_type="text/plain")

        @router.route("GET", "/lab/<slug>/description")
        def description(request: Request) -> Response:
            self._user(request)
            return Response(body=render_description_view(self._lab(request)))

        @router.route("GET", "/lab/<slug>/code")
        def code(request: Request) -> Response:
            user = self._user(request)
            lab = self._lab(request)
            revision = self.platform.revisions.latest(user.user_id, lab.slug)
            source = revision.source if revision else lab.skeleton
            return Response(body=render_code_view(lab, source))

        @router.route("POST", "/lab/<slug>/code")
        def save(request: Request) -> Response:
            user = self._user(request)
            lab = self._lab(request)
            self.platform.save_code(self.course_key, user, lab.slug,
                                    request.form.get("source", ""),
                                    reason=request.form.get("reason",
                                                            "autosave"))
            return Response(body="saved", content_type="text/plain")

        @router.route("POST", "/lab/<slug>/compile")
        def compile_(request: Request) -> Response:
            user = self._user(request)
            lab = self._lab(request)
            attempt = self._action(
                lambda: self.platform.compile_code(self.course_key, user,
                                                   lab.slug))
            status = "ok" if attempt.compile_ok else "error"
            return Response(body=f"{status}\n{attempt.report}",
                            content_type="text/plain")

        @router.route("POST", "/lab/<slug>/run")
        def run(request: Request) -> Response:
            user = self._user(request)
            lab = self._lab(request)
            dataset = int(request.form.get("dataset", 0))
            attempt = self._action(
                lambda: self.platform.run_attempt(self.course_key, user,
                                                  lab.slug, dataset))
            verdict = "correct" if attempt.correct else "incorrect"
            return Response(body=f"{verdict}\n{attempt.report}",
                            content_type="text/plain")

        @router.route("POST", "/lab/<slug>/submit")
        def submit(request: Request) -> Response:
            user = self._user(request)
            lab = self._lab(request)
            attempt, grade = self._action(
                lambda: self.platform.submit_for_grading(
                    self.course_key, user, lab.slug))
            return Response(
                body=f"grade: {grade.total_points:.1f}\n{attempt.report}",
                content_type="text/plain")

        @router.route("POST", "/lab/<slug>/questions/<index>")
        def answer(request: Request) -> Response:
            user = self._user(request)
            lab = self._lab(request)
            try:
                self.platform.answer_question(
                    self.course_key, user, lab.slug,
                    int(request.params["index"]),
                    request.form.get("answer", ""))
            except PlatformError as exc:
                raise HttpError(400, str(exc)) from None
            return Response(body="saved", content_type="text/plain")

        @router.route("GET", "/lab/<slug>/questions")
        def questions(request: Request) -> Response:
            user = self._user(request)
            lab = self._lab(request)
            answers = self.platform.attempts.answers(user.user_id, lab.slug)
            return Response(body=render_questions_view(lab, answers))

        @router.route("GET", "/lab/<slug>/attempts")
        def attempts(request: Request) -> Response:
            user = self._user(request)
            lab = self._lab(request)
            items = self.platform.attempts.for_user_lab(user.user_id,
                                                        lab.slug)
            deadline = self.platform.course(
                self.course_key).offering.deadline_for(lab.slug)
            passed = (deadline is not None
                      and self.platform.clock.now() > deadline)
            return Response(body=render_attempts_view(lab, items,
                                                      deadline_passed=passed))

        @router.route("GET", "/lab/<slug>/history")
        def history(request: Request) -> Response:
            user = self._user(request)
            lab = self._lab(request)
            revisions = self.platform.revisions.history(user.user_id,
                                                        lab.slug)
            return Response(body=render_history_view(lab, revisions))

        @router.route("GET", "/lab/<slug>/profile")
        def profile(request: Request) -> Response:
            user = self._user(request)
            lab = self._lab(request)
            dataset = int(request.form.get("dataset", 0))
            source, ledger, violations = self.platform.get_line_profile(
                self.course_key, user, lab.slug, dataset_index=dataset)
            return Response(body=render_profile_view(lab, source, ledger,
                                                     violations))

        @router.route("GET", "/lab/<slug>/feedback")
        def feedback(request: Request) -> Response:
            user = self._user(request)
            lab = self._lab(request)
            items = self.platform.get_feedback(self.course_key, user,
                                               lab.slug)
            return Response(body="\n".join(str(f) for f in items),
                            content_type="text/plain")

        @router.route("POST", "/lab/<slug>/hint")
        def hint(request: Request) -> Response:
            user = self._user(request)
            lab = self._lab(request)
            text = self.platform.request_hint(self.course_key, user,
                                              lab.slug)
            if text is None:
                return Response(status=204, body="(no more hints)",
                                content_type="text/plain")
            return Response(body=text, content_type="text/plain")

        @router.route("GET", "/shared/attempt/<attempt_id>")
        def shared_attempt(request: Request) -> Response:
            """Public link to an attempt — no session required, but the
            attempt must have been shared after the deadline (paper
            Section IV-B)."""
            import html as _html
            try:
                attempt = self.platform.attempts.get(
                    int(request.params["attempt_id"]))
            except Exception:
                raise HttpError(404, "no such attempt") from None
            if not attempt.shared_publicly:
                raise HttpError(403, "this attempt has not been shared")
            revision = self.platform.revisions.get(attempt.revision_id)
            body = (f"<h1>Shared attempt #{attempt.attempt_id}</h1>"
                    f"<p>lab: {attempt.lab}, dataset "
                    f"{attempt.dataset_index}, "
                    f"{'correct' if attempt.correct else 'incorrect'}</p>"
                    f"<pre>{_html.escape(revision.source)}</pre>"
                    f"<pre>{_html.escape(attempt.report)}</pre>")
            return Response(body=body)

        @router.route("GET", "/instructor/<slug>/roster")
        def roster(request: Request) -> Response:
            user = self._user(request)
            lab = self._lab(request)
            try:
                rows = self.platform.instructor_tools.roster(user, lab.slug)
            except PermissionError as exc:
                raise HttpError(403, str(exc)) from None
            return Response(body=render_roster_view(lab, rows))

    def _action(self, fn: Any) -> Any:
        try:
            return fn()
        except RateLimited as exc:
            raise HttpError(429, str(exc)) from None
        except PlatformError as exc:
            raise HttpError(400, str(exc)) from None
