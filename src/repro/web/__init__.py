"""The browser-facing layer.

"In place of a command-line prompt, WebGPU requires a web browser" —
students do everything through five lab views (Description, Code,
Questions, Attempts, History) and instructors through the Roster view.
This package provides a framework-free request/response router, session
authentication, a markdown renderer for lab descriptions (labs are
authored in markdown, Section IV-E), and HTML renderers for each view.
"""

from repro.web.http import HttpError, Request, Response, Router
from repro.web.markdown import render_markdown
from repro.web.auth import AuthError, SessionManager
from repro.web.views import (
    render_attempts_view,
    render_code_view,
    render_description_view,
    render_history_view,
    render_questions_view,
    render_roster_view,
)
from repro.web.app import WebGpuApp

__all__ = [
    "AuthError",
    "HttpError",
    "Request",
    "Response",
    "Router",
    "SessionManager",
    "WebGpuApp",
    "render_attempts_view",
    "render_code_view",
    "render_description_view",
    "render_history_view",
    "render_markdown",
    "render_questions_view",
    "render_roster_view",
]
