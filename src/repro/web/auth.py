"""Session authentication for the browser interface."""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass

from repro.core.users import User, UserStore


class AuthError(Exception):
    """Login failure or invalid/expired session."""


@dataclass(frozen=True)
class Session:
    token: str
    user_id: int
    created_at: float
    device_class: str = "desktop"


class SessionManager:
    """Token sessions with idle expiry and device-class accounting.

    Device classes let the platform report facts like the paper's
    "around 2% of student logins to WebGPU are from tablets and
    smartphones".
    """

    def __init__(self, users: UserStore, ttl_s: float = 8 * 3600.0):
        self.users = users
        self.ttl_s = ttl_s
        self._sessions: dict[str, Session] = {}
        self._counter = itertools.count(1)
        self.login_count = 0
        self.logins_by_device: dict[str, int] = {}

    def login(self, email: str, password: str, now: float,
              device_class: str = "desktop") -> Session:
        user = self.users.authenticate(email, password)
        if user is None:
            raise AuthError("invalid email or password")
        token = hashlib.sha256(
            f"{email}:{now}:{next(self._counter)}".encode()).hexdigest()[:32]
        session = Session(token=token, user_id=user.user_id, created_at=now,
                          device_class=device_class)
        self._sessions[token] = session
        self.login_count += 1
        self.logins_by_device[device_class] = (
            self.logins_by_device.get(device_class, 0) + 1)
        return session

    def authenticate(self, token: str, now: float) -> User:
        session = self._sessions.get(token)
        if session is None:
            raise AuthError("not logged in")
        if now - session.created_at > self.ttl_s:
            del self._sessions[token]
            raise AuthError("session expired; log in again")
        return self.users.get(session.user_id)

    def logout(self, token: str) -> None:
        self._sessions.pop(token, None)

    def device_share(self, device_class: str) -> float:
        """Fraction of logins from a device class."""
        if self.login_count == 0:
            return 0.0
        return self.logins_by_device.get(device_class, 0) / self.login_count
