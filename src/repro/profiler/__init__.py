"""Per-source-line kernel profiler artifacts.

The gpusim scheduler can attribute every dynamic instruction, global
memory transaction, shared-memory access, bank-conflict replay, atomic
operation, and branch-divergence event to the source line of the
student's ``.cu`` file that caused it. This package holds the pure
data layer of that feature: the :class:`LineProfile` ledger, its
stable serialization, ASCII rendering for the CLI, ranking helpers for
the dashboard, and the per-line budget rules labs can declare.

Attribution contract (the engine-parity invariant)
--------------------------------------------------

Each charge is attributed to the line of the **innermost enclosing
statement at the static site of the charging construct**:

* expression charges belong to the statement the expression appears
  in, regardless of how an engine batches or reorders them;
* loop condition/step charges belong to the loop statement's line;
* a device-function *call* (argument evaluation + the call
  instruction) belongs to the call-site statement; charges inside the
  callee body belong to the callee's own statement lines;
* a warp's coalesced global transaction is attributed to the minimum
  line among the accesses it merged; bank-conflict replays to the
  minimum line of the conflicting warp request;
* divergence is recorded at ``if`` statements only (never at loops,
  ternaries, or short-circuit operators): a warp's threads that
  executed the same dynamic ``if`` (same per-thread branch sequence
  number) and disagreed on the taken arm count one divergent branch
  against the statement's line.

Per-line counters are additive bags, so batching engines may flush
charges in any order — only the (line, count) multiset must match.
All four kernel engines (``ast``, ``closure``, ``codegen``, ``simd``)
produce bit-identical ledgers under this contract; the differential
fuzzer and ``tests/test_profiler_parity.py`` enforce it.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from typing import Any, Iterable

#: The counters tracked per line, in stable serialization order.
LINE_COUNTER_FIELDS = (
    "instructions",
    "global_load_transactions",
    "global_store_transactions",
    "shared_accesses",
    "bank_conflicts",
    "atomic_ops",
    "divergent_branches",
)

#: Heat weights for ranking "hot" lines: memory transactions, replays,
#: atomics, and divergence cost far more than one ALU instruction
#: (mirrors the relative magnitudes in the gpusim timing model).
_HEAT_WEIGHTS = {
    "instructions": 1,
    "global_load_transactions": 8,
    "global_store_transactions": 8,
    "shared_accesses": 1,
    "bank_conflicts": 8,
    "atomic_ops": 30,
    "divergent_branches": 16,
}


@dataclass
class LineCounters:
    """Event counters charged against one source line."""

    instructions: int = 0
    global_load_transactions: int = 0
    global_store_transactions: int = 0
    shared_accesses: int = 0
    bank_conflicts: int = 0
    atomic_ops: int = 0
    divergent_branches: int = 0

    def add(self, other: "LineCounters") -> None:
        for name in LINE_COUNTER_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))

    def heat(self) -> int:
        """Weighted cost score used to rank hot lines."""
        return sum(getattr(self, name) * w
                   for name, w in _HEAT_WEIGHTS.items())

    def to_dict(self) -> dict[str, int]:
        """Only non-zero counters, in the stable field order."""
        return {name: v for name in LINE_COUNTER_FIELDS
                if (v := getattr(self, name))}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "LineCounters":
        return cls(**{name: int(data.get(name, 0))
                      for name in LINE_COUNTER_FIELDS})


class LineProfile:
    """The per-line ledger for one kernel launch (or merged launches).

    Keys are 1-based source line numbers of the preprocessed student
    source; only lines that were charged at least one event appear.
    """

    __slots__ = ("lines",)

    def __init__(self, lines: dict[int, LineCounters] | None = None):
        self.lines: dict[int, LineCounters] = lines if lines is not None else {}

    # -- accumulation (scheduler-facing) ---------------------------------

    def counters(self, line: int) -> LineCounters:
        entry = self.lines.get(line)
        if entry is None:
            entry = self.lines[line] = LineCounters()
        return entry

    def bump(self, field: str, per_line: dict[int, int]) -> None:
        """Add ``{line: count}`` increments to one counter field."""
        for line, n in per_line.items():
            entry = self.counters(int(line))
            setattr(entry, field, getattr(entry, field) + int(n))

    def merge(self, other: "LineProfile") -> None:
        for line, counters in other.lines.items():
            self.counters(line).add(counters)

    def copy(self) -> "LineProfile":
        out = LineProfile()
        out.merge(self)
        return out

    # -- queries ----------------------------------------------------------

    @property
    def total_instructions(self) -> int:
        return sum(c.instructions for c in self.lines.values())

    def top_lines(self, n: int = 5) -> list[tuple[int, LineCounters]]:
        """The ``n`` hottest lines, by weighted heat then line order."""
        ranked = sorted(self.lines.items(),
                        key=lambda item: (-item[1].heat(), item[0]))
        return [(line, counters) for line, counters in ranked[:n]
                if counters.heat() > 0]

    # -- serialization ----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {"lines": {str(line): self.lines[line].to_dict()
                          for line in sorted(self.lines)
                          if self.lines[line].to_dict()}}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "LineProfile":
        out = cls()
        for line, counters in (data.get("lines") or {}).items():
            out.lines[int(line)] = LineCounters.from_dict(counters)
        return out

    def to_json(self) -> str:
        """Canonical JSON (sorted keys) — the CAS payload format."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "LineProfile":
        return cls.from_dict(json.loads(text))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LineProfile):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __repr__(self) -> str:
        return f"LineProfile({len(self.lines)} lines)"


def merge_stats_profiles(stats_list: Iterable[Any]) -> LineProfile | None:
    """Merge the ``line_profile`` of every KernelStats that has one;
    None when no launch was profiled."""
    merged: LineProfile | None = None
    for stats in stats_list:
        profile = getattr(stats, "line_profile", None)
        if profile is None:
            continue
        if merged is None:
            merged = profile.copy()
        else:
            merged.merge(profile)
    return merged


# -- ASCII rendering (profile-attempt CLI / offline reports) -------------

_COLUMNS = (
    ("instructions", "instr"),
    ("global_load_transactions", "gld"),
    ("global_store_transactions", "gst"),
    ("shared_accesses", "shm"),
    ("bank_conflicts", "bank"),
    ("atomic_ops", "atom"),
    ("divergent_branches", "div"),
)

_HEAT_RAMP = " .:*#@"


def render_annotated(source: str, profile: LineProfile,
                     top: int = 5) -> str:
    """Annotated source listing: per-line counters, a heat bar, and a
    top-N hot-line summary (the ``profile-attempt`` CLI output)."""
    src_lines = source.splitlines()
    heats = {line: c.heat() for line, c in profile.lines.items()}
    max_heat = max(heats.values(), default=0)
    header = ("line " + " ".join(f"{label:>8}" for _, label in _COLUMNS)
              + "  heat source")
    out = [header, "-" * len(header)]
    for number, text in enumerate(src_lines, start=1):
        counters = profile.lines.get(number)
        if counters is None or counters.heat() == 0:
            cells = " ".join(f"{'':>8}" for _ in _COLUMNS)
            bar = "    "
        else:
            cells = " ".join(
                f"{getattr(counters, name) or '':>8}" for name, _ in _COLUMNS)
            level = 0
            if max_heat:
                level = min(len(_HEAT_RAMP) - 1, max(
                    1, round(counters.heat() * (len(_HEAT_RAMP) - 1)
                             / max_heat)))
            bar = f"{_HEAT_RAMP[level] * 4}"
        out.append(f"{number:4d} {cells}  {bar} {text}")
    hot = profile.top_lines(top)
    if hot:
        out.append("")
        out.append(f"top {len(hot)} hot lines:")
        for rank, (line, counters) in enumerate(hot, start=1):
            text = (src_lines[line - 1].strip()
                    if 1 <= line <= len(src_lines) else "")
            detail = ", ".join(f"{label}={getattr(counters, name)}"
                               for name, label in _COLUMNS
                               if getattr(counters, name))
            out.append(f"  #{rank} line {line}: {detail}")
            if text:
                out.append(f"       {text}")
    return "\n".join(out)


# -- per-line budgets (lab requirement hooks) ----------------------------


@dataclass(frozen=True)
class LineBudget:
    """A per-line budget a lab can assert against the ledger.

    ``pattern`` is a regex matched against each source line's text;
    every matching line's ``counter`` value must be ``<= max_value``.
    Example: ``LineBudget(r"for\\s*\\(.*k", "global_load_transactions",
    0)`` — "no global loads on the inner-loop line".
    """

    pattern: str
    counter: str
    max_value: int
    message: str = ""

    def __post_init__(self) -> None:
        if self.counter not in LINE_COUNTER_FIELDS:
            raise ValueError(
                f"unknown line counter {self.counter!r} "
                f"(expected one of {LINE_COUNTER_FIELDS})")


@dataclass(frozen=True)
class BudgetViolation:
    """One line that exceeded a :class:`LineBudget`."""

    line: int
    counter: str
    value: int
    max_value: int
    source_text: str = ""
    message: str = ""

    def describe(self) -> str:
        base = (f"line {self.line}: {self.counter}={self.value} exceeds "
                f"the budget of {self.max_value}")
        if self.message:
            base += f" — {self.message}"
        return base


def check_line_budgets(budgets: Iterable[LineBudget],
                       profile: LineProfile,
                       source: str) -> list[BudgetViolation]:
    """Evaluate every budget against the profiled source; returns one
    violation per (line, budget) that exceeded its ceiling."""
    src_lines = source.splitlines()
    violations: list[BudgetViolation] = []
    for budget in budgets:
        matcher = re.compile(budget.pattern)
        for number, text in enumerate(src_lines, start=1):
            if not matcher.search(text):
                continue
            counters = profile.lines.get(number)
            value = getattr(counters, budget.counter, 0) if counters else 0
            if value > budget.max_value:
                violations.append(BudgetViolation(
                    line=number, counter=budget.counter, value=value,
                    max_value=budget.max_value, source_text=text.strip(),
                    message=budget.message))
    return violations


__all__ = [
    "LINE_COUNTER_FIELDS",
    "BudgetViolation",
    "LineBudget",
    "LineCounters",
    "LineProfile",
    "check_line_budgets",
    "merge_stats_profiles",
    "render_annotated",
]
