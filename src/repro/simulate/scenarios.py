"""Calibrated course-offering scenarios.

The three Coursera offerings use the paper's published Table-I numbers
(registered users, completion rates, certificates); population knobs
are derived so the funnel model's expected completion matches the
published rate: ``completion = engaged_fraction * retention^weeks``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simulate.students import PopulationParams


@dataclass(frozen=True)
class OfferingScenario:
    """One course offering with its published ground truth."""

    name: str
    registered: int
    weeks: int
    target_completion_rate: float
    certificates_issued: int | None    # None = not offered that year
    engaged_fraction: float
    seed: int
    #: hours from offering start to the first observation window start
    figure1_weeks: int = 0

    @property
    def weekly_retention(self) -> float:
        """Retention such that engaged x retention^weeks = completion."""
        ratio = self.target_completion_rate / self.engaged_fraction
        if not (0 < ratio <= 1):
            raise ValueError(
                f"{self.name}: completion target {self.target_completion_rate}"
                f" unreachable with engagement {self.engaged_fraction}")
        return ratio ** (1.0 / self.weeks)

    @property
    def certificate_rate(self) -> float:
        """P(certificate | completed) — certification required attending
        a proctored quiz, which only some completers did."""
        if self.certificates_issued is None:
            return 0.0
        expected_completions = self.registered * self.target_completion_rate
        return min(1.0, self.certificates_issued / expected_completions)

    def population_params(self) -> PopulationParams:
        return PopulationParams(
            registered=self.registered,
            weeks=self.weeks,
            engaged_fraction=self.engaged_fraction,
            weekly_retention=self.weekly_retention,
            seed=self.seed,
        )

    def figure1_population_params(self) -> PopulationParams:
        """The *WebGPU-active* population behind Figure 1.

        Hourly WebGPU activity involves fewer students than course
        engagement at large (most registrants only watch videos), so
        Figure 1 uses its own calibration: these knobs reproduce the
        published extremes — 112 active students at the Wednesday peak,
        8 near the end of the offering.
        """
        return PopulationParams(
            registered=self.registered,
            weeks=self.weeks,
            engaged_fraction=0.037,
            weekly_retention=0.85,
            sessions_per_week=1.5,
            session_hours_mean=2.0,
            seed=self.seed,
        )


#: Table I row 1: 36896 registered, 2729 completions (7.40%), no certs.
HPP_2013 = OfferingScenario(
    name="HPP 2013", registered=36896, weeks=9,
    target_completion_rate=0.0740, certificates_issued=None,
    engaged_fraction=0.16, seed=2013)

#: Table I row 2: 33818 registered, 1061 completions (3.14%), 286 certs.
HPP_2014 = OfferingScenario(
    name="HPP 2014", registered=33818, weeks=9,
    target_completion_rate=0.0314, certificates_issued=286,
    engaged_fraction=0.12, seed=2014)

#: Table I row 3: 35940 registered, 1141 completions (3.15%), 442 certs.
#: Figure 1 observes this offering from Feb 8 to Apr 15 2015 (~9.5
#: weeks); peak 112 active students (Feb 18), trough 8 (Apr 9).
HPP_2015 = OfferingScenario(
    name="HPP 2015", registered=35940, weeks=10,
    target_completion_rate=0.0315, certificates_issued=442,
    engaged_fraction=0.12, seed=2015, figure1_weeks=10)

#: A traditional on-campus offering: WebGPU "scales down in the number
#: of worker nodes and serves as a development environment".
ECE408_2015 = OfferingScenario(
    name="ECE 408 (2015)", registered=220, weeks=15,
    target_completion_rate=0.85, certificates_issued=None,
    engaged_fraction=0.97, seed=408)

#: The PUMPS summer school: one intensive week.
PUMPS_2015 = OfferingScenario(
    name="PUMPS 2015", registered=90, weeks=1,
    target_completion_rate=0.90, certificates_issued=None,
    engaged_fraction=0.95, seed=21)

COURSERA_OFFERINGS = (HPP_2013, HPP_2014, HPP_2015)
