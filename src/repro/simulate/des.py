"""A small discrete-event simulation core."""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(order=True)
class Event:
    """One scheduled callback. Ordering: time, then insertion order."""

    time: float
    seq: int
    action: Callable[[], Any] = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        self.cancelled = True


class Simulator:
    """Event loop with a float time line (seconds by convention)."""

    def __init__(self, start: float = 0.0):
        self._now = start
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self.events_processed = 0

    def now(self) -> float:
        return self._now

    def schedule(self, delay: float, action: Callable[[], Any],
                 label: str = "") -> Event:
        """Schedule ``action`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        event = Event(time=self._now + delay, seq=next(self._seq),
                      action=action, label=label)
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(self, time: float, action: Callable[[], Any],
                    label: str = "") -> Event:
        return self.schedule(time - self._now, action, label)

    def step(self) -> bool:
        """Process one event; returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.action()
            self.events_processed += 1
            return True
        return False

    def run_until(self, end_time: float) -> None:
        """Process events up to (and including) ``end_time``."""
        while self._queue:
            if self._queue[0].time > end_time:
                break
            self.step()
        self._now = max(self._now, end_time)

    def run(self, max_events: int | None = None) -> None:
        """Drain the event queue (optionally bounded)."""
        processed = 0
        while self.step():
            processed += 1
            if max_events is not None and processed >= max_events:
                break


class SimClock:
    """Adapter giving platform components the DES notion of time."""

    def __init__(self, simulator: Simulator):
        self._sim = simulator

    def now(self) -> float:
        return self._sim.now()
