"""The student population model behind Figure 1.

Each registered student may *engage* with the labs; an engaged student
survives week to week with a retention probability (MOOC attrition),
and in each active week makes a few working sessions clustered before
the weekly Thursday deadline — producing the paper's signature pattern:
"A spike occurs every Wednesday as students rush to complete the lab."
Sessions follow a diurnal profile (evenings peak) and span one or more
hours; the hourly count of distinct active students is the Figure 1
series.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.simulate.metrics import HOURS_PER_WEEK, HourlySeries

#: Relative weight of sessions on each day, expressed as days *before*
#: the deadline day (index 0 = deadline day, 1 = the day before, ...).
#: The day before the deadline dominates (the Wednesday rush).
DEADLINE_PROXIMITY_WEIGHTS = np.array(
    [20.0, 34.0, 14.0, 9.0, 8.0, 8.0, 7.0])

#: Relative activity by hour of day (UTC-ish evening-heavy profile).
DIURNAL_WEIGHTS = np.array([
    2.0, 1.5, 1.0, 0.7, 0.5, 0.5, 0.8, 1.2,   # 00-07
    2.0, 3.0, 3.8, 4.2, 4.0, 4.2, 4.6, 5.0,   # 08-15
    5.5, 6.0, 6.8, 7.2, 7.0, 6.0, 4.5, 3.0,   # 16-23
])


@dataclass(frozen=True)
class PopulationParams:
    """Calibration knobs for one offering's population."""

    registered: int
    weeks: int = 10
    engaged_fraction: float = 0.10
    weekly_retention: float = 0.86
    sessions_per_week: float = 1.6
    session_hours_mean: float = 1.8
    #: day-of-week of the deadline, 0 = the offering's start weekday
    deadline_day: int = 4
    seed: int = 2015

    def __post_init__(self) -> None:
        if not (0 < self.engaged_fraction <= 1):
            raise ValueError("engaged_fraction must be in (0, 1]")
        if not (0 < self.weekly_retention <= 1):
            raise ValueError("weekly_retention must be in (0, 1]")


@dataclass
class SessionRecord:
    """One working session of one student."""

    student: int
    week: int
    start_hour: int      # hours since offering start
    duration_hours: int


@dataclass
class PopulationResult:
    """Everything the generator produces."""

    hourly_active: HourlySeries
    sessions: list[SessionRecord]
    engaged_students: int
    active_per_week: list[int]
    completed_students: int


class StudentPopulation:
    """Samples a full offering's student activity."""

    def __init__(self, params: PopulationParams):
        self.params = params
        self._rng = np.random.default_rng(params.seed)

    def generate(self) -> PopulationResult:
        p = self.params
        rng = self._rng
        total_hours = p.weeks * HOURS_PER_WEEK
        active_sets: list[set[int]] = [set() for _ in range(total_hours)]
        sessions: list[SessionRecord] = []
        active_per_week = [0] * p.weeks
        completed = 0

        engaged = rng.random(p.registered) < p.engaged_fraction
        engaged_ids = np.flatnonzero(engaged)

        day_weights = self._day_weights()
        hour_weights = DIURNAL_WEIGHTS / DIURNAL_WEIGHTS.sum()

        for student in engaged_ids:
            week = 0
            while week < p.weeks:
                active_per_week[week] += 1
                n_sessions = rng.poisson(p.sessions_per_week)
                for _ in range(max(1, n_sessions)):
                    day = int(rng.choice(7, p=day_weights))
                    hour_of_day = int(rng.choice(24, p=hour_weights))
                    start = (week * HOURS_PER_WEEK + day * 24 + hour_of_day)
                    duration = max(1, int(rng.exponential(
                        p.session_hours_mean)))
                    sessions.append(SessionRecord(
                        student=int(student), week=week, start_hour=start,
                        duration_hours=duration))
                    for h in range(start, min(start + duration, total_hours)):
                        active_sets[h].add(int(student))
                if rng.random() > p.weekly_retention:
                    break
                week += 1
            else:
                completed += 1

        series = HourlySeries(total_hours)
        for hour, students in enumerate(active_sets):
            series.counts[hour] = len(students)
        return PopulationResult(
            hourly_active=series, sessions=sessions,
            engaged_students=int(engaged_ids.size),
            active_per_week=active_per_week,
            completed_students=completed)

    def _day_weights(self) -> np.ndarray:
        """Map deadline-proximity weights onto days-of-week."""
        weights = np.zeros(7)
        for days_before, weight in enumerate(DEADLINE_PROXIMITY_WEIGHTS):
            day = (self.params.deadline_day - days_before) % 7
            weights[day] += weight
        return weights / weights.sum()
