"""Workload simulation: the student population and course dynamics.

Table I and Figure 1 of the paper are *workload* artifacts — they
describe what ~36k registered MOOC students did over a 9.5-week
offering. This package models that population:

* :mod:`repro.simulate.des` — a discrete-event simulation core;
* :mod:`repro.simulate.students` — per-student behaviour: engagement,
  weekly drop-out, deadline-driven weekly activity spikes (Thursday
  deadline ⇒ Wednesday rush), diurnal rhythm;
* :mod:`repro.simulate.funnel` — the enrollment → completion →
  certificate funnel (Table I);
* :mod:`repro.simulate.scenarios` — calibrated offerings: HPP
  2013/2014/2015 (from the paper's published numbers), ECE 408, PUMPS;
* :mod:`repro.simulate.workload` — active students → job arrivals →
  queueing at a worker fleet (drives the scaling benchmarks);
* :mod:`repro.simulate.metrics` — time series and summary helpers.
"""

from repro.simulate.des import Event, SimClock, Simulator
from repro.simulate.metrics import HitRateSeries, HourlySeries, weekly_profile
from repro.simulate.students import PopulationParams, StudentPopulation
from repro.simulate.funnel import FunnelResult, simulate_funnel
from repro.simulate.scenarios import (
    ECE408_2015,
    HPP_2013,
    HPP_2014,
    HPP_2015,
    PUMPS_2015,
    OfferingScenario,
)
from repro.simulate.workload import (
    FleetSimResult,
    simulate_fleet,
    jobs_from_activity,
)
from repro.simulate.replay import ReplayStats, replay_cohort

__all__ = [
    "ECE408_2015",
    "Event",
    "FleetSimResult",
    "FunnelResult",
    "HPP_2013",
    "HPP_2014",
    "HPP_2015",
    "HitRateSeries",
    "HourlySeries",
    "OfferingScenario",
    "PUMPS_2015",
    "PopulationParams",
    "ReplayStats",
    "SimClock",
    "Simulator",
    "StudentPopulation",
    "jobs_from_activity",
    "replay_cohort",
    "simulate_fleet",
    "simulate_funnel",
    "weekly_profile",
]
