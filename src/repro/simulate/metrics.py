"""Time-series containers and summaries for simulation output."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

HOURS_PER_WEEK = 24 * 7


@dataclass
class HourlySeries:
    """Counts bucketed by hour since the start of the observation."""

    hours: int
    counts: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.counts is None:
            self.counts = np.zeros(self.hours, dtype=np.int64)
        elif len(self.counts) != self.hours:
            raise ValueError("counts length must equal hours")

    def add(self, hour: int, count: int = 1) -> None:
        if 0 <= hour < self.hours:
            self.counts[hour] += count

    @property
    def peak(self) -> int:
        return int(self.counts.max()) if self.hours else 0

    @property
    def peak_hour(self) -> int:
        return int(self.counts.argmax()) if self.hours else 0

    def trough_over(self, start_hour: int = 0) -> int:
        """Minimum over hours >= start_hour (skip the cold start)."""
        window = self.counts[start_hour:]
        return int(window.min()) if window.size else 0

    def daily_max(self, partial: bool = False) -> np.ndarray:
        """Max per day (used to find spike days).

        By default only *complete* 24-hour days are reported — a
        trailing partial day is silently truncated, so a series of 30
        hours yields one value. Pass ``partial=True`` to append one
        extra value for the remainder bucket (the max over however many
        trailing hours exist); a series whose length is an exact
        multiple of 24 is unaffected.
        """
        days = self.hours // 24
        full = self.counts[: days * 24].reshape(days, 24).max(axis=1)
        if not partial or self.hours == days * 24:
            return full
        tail = self.counts[days * 24:]
        return np.concatenate([full, [tail.max() if tail.size else 0]])

    def weekly_totals(self, partial: bool = False) -> np.ndarray:
        """Total per week.

        Like :meth:`daily_max`, a trailing partial week (anything short
        of 168 hours) is truncated by default; ``partial=True`` appends
        the remainder bucket's total so no observed hour is dropped.
        """
        weeks = self.hours // HOURS_PER_WEEK
        full = (self.counts[: weeks * HOURS_PER_WEEK]
                .reshape(weeks, HOURS_PER_WEEK).sum(axis=1))
        if not partial or self.hours == weeks * HOURS_PER_WEEK:
            return full
        tail = self.counts[weeks * HOURS_PER_WEEK:]
        return np.concatenate([full, [tail.sum() if tail.size else 0]])


def weekly_profile(series: HourlySeries) -> np.ndarray:
    """Mean activity per hour-of-week (168 bins), for spike detection."""
    weeks = series.hours // HOURS_PER_WEEK
    if weeks == 0:
        raise ValueError("need at least one full week of data")
    trimmed = series.counts[: weeks * HOURS_PER_WEEK]
    return trimmed.reshape(weeks, HOURS_PER_WEEK).mean(axis=0)


def spike_day_of_week(series: HourlySeries) -> int:
    """Which day of week (0 = the series' first day) peaks on average."""
    profile = weekly_profile(series)
    per_day = profile.reshape(7, 24).sum(axis=1)
    return int(per_day.argmax())


def percentile(values: list[float], q: float) -> float:
    """Convenience wrapper with empty-list safety."""
    if not values:
        return 0.0
    return float(np.percentile(np.asarray(values), q))


@dataclass
class HitRateSeries:
    """Cache hits vs misses bucketed by hour (per worker or fleet-wide).

    The grading/compile caches (``repro.cache``) report a hit or a miss
    per request; simulations bucket those here to see how the hit rate
    climbs across a deadline spike (most resubmissions are duplicates,
    so the rate rises as the storm progresses).
    """

    hours: int
    hits: np.ndarray = field(default=None)    # type: ignore[assignment]
    misses: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.hits is None:
            self.hits = np.zeros(self.hours, dtype=np.int64)
        if self.misses is None:
            self.misses = np.zeros(self.hours, dtype=np.int64)
        if len(self.hits) != self.hours or len(self.misses) != self.hours:
            raise ValueError("hits/misses length must equal hours")

    def add(self, hour: int, hit: bool, count: int = 1) -> None:
        if 0 <= hour < self.hours:
            if hit:
                self.hits[hour] += count
            else:
                self.misses[hour] += count

    def rate(self, hour: int) -> float:
        total = int(self.hits[hour]) + int(self.misses[hour])
        return int(self.hits[hour]) / total if total else 0.0

    def hourly_rates(self) -> np.ndarray:
        totals = self.hits + self.misses
        with np.errstate(divide="ignore", invalid="ignore"):
            rates = np.where(totals > 0, self.hits / np.maximum(totals, 1),
                             0.0)
        return rates.astype(np.float64)

    @property
    def overall(self) -> float:
        total = int(self.hits.sum()) + int(self.misses.sum())
        return int(self.hits.sum()) / total if total else 0.0
