"""The enrollment funnel: registered -> completed -> certified.

Reproduces Table I: per-student weekly survival (geometric attrition
over the offering's weeks) determines completion; completers attend
the proctored quiz (certificate) with the scenario's certificate rate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.simulate.scenarios import OfferingScenario


@dataclass(frozen=True)
class FunnelResult:
    """One simulated offering's Table-I row."""

    name: str
    registered: int
    completions: int
    certificates: int

    @property
    def completion_rate(self) -> float:
        return self.completions / self.registered if self.registered else 0.0

    def row(self) -> dict[str, float | int | str]:
        return {
            "offering": self.name,
            "registered": self.registered,
            "completions": self.completions,
            "completion_rate_pct": round(100 * self.completion_rate, 2),
            "certificates": self.certificates,
        }


def simulate_funnel(scenario: OfferingScenario,
                    seed: int | None = None) -> FunnelResult:
    """Sample every registered student through the funnel."""
    rng = np.random.default_rng(scenario.seed if seed is None else seed)
    n = scenario.registered

    engaged = rng.random(n) < scenario.engaged_fraction
    num_engaged = int(engaged.sum())

    # survive all `weeks` weekly retention draws
    survival = rng.random((num_engaged, scenario.weeks)) \
        < scenario.weekly_retention
    completed_mask = survival.all(axis=1)
    completions = int(completed_mask.sum())

    if scenario.certificates_issued is None:
        certificates = 0
    else:
        cert_draws = rng.random(completions) < scenario.certificate_rate
        certificates = int(cert_draws.sum())

    return FunnelResult(name=scenario.name, registered=n,
                        completions=completions, certificates=certificates)


def funnel_table(scenarios: tuple[OfferingScenario, ...],
                 seed: int | None = None) -> list[FunnelResult]:
    """Table I: one funnel row per offering."""
    return [simulate_funnel(s, seed=seed) for s in scenarios]
