"""Full-stack replay: simulated students drive the real platform.

Closes the loop between the workload model and the platform: each
simulated student follows the incremental-development cycle the paper
describes (save skeleton → compile → submit a buggy version → read the
mismatch report → fix → submit for grading), with skill deciding how
many buggy iterations they need. Everything flows through the actual
WebGPU facade — sandbox, minicuda, gpusim, grading, gradebook.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.platform import RateLimited, WebGPU
from repro.labs.catalog import get_lab
from repro.labs.mutations import buggy_source, mutations_for


@dataclass
class ReplayStats:
    """What a replayed cohort produced."""

    students: int = 0
    compiles: int = 0
    runs: int = 0
    submissions: int = 0
    rate_limited: int = 0
    final_grades: list[float] = field(default_factory=list)
    feedback_messages: int = 0
    hints_taken: int = 0

    @property
    def mean_grade(self) -> float:
        if not self.final_grades:
            return 0.0
        return sum(self.final_grades) / len(self.final_grades)


def replay_cohort(platform: WebGPU, course_key: str, lab_slug: str,
                  num_students: int, seed: int = 0,
                  think_time_s: float = 120.0) -> ReplayStats:
    """Run ``num_students`` through the lab's development cycle.

    Student skill is sampled: strong students go straight to the
    solution; weaker ones first submit one or two classic buggy
    variants (from :mod:`repro.labs.mutations`), request feedback and a
    hint, then fix their code. The platform clock advances between
    actions so rate limits behave realistically.
    """
    rng = random.Random(seed)
    lab = get_lab(lab_slug)
    course = platform.course(course_key)
    bugs = [m for m in mutations_for(lab_slug)
            if m.expected_feedback_keyword]
    stats = ReplayStats(students=num_students)
    clock = platform.clock

    for index in range(num_students):
        student = platform.users.register(
            f"replay{seed}-{index}@students.example", f"Student {index}",
            "pw", now=clock.now())
        course.enroll(student.user_id, now=clock.now())

        # everyone starts from the skeleton and compiles it
        platform.save_code(course_key, student, lab_slug, lab.skeleton)
        clock.advance(think_time_s)
        try:
            platform.compile_code(course_key, student, lab_slug)
            stats.compiles += 1
        except RateLimited:
            stats.rate_limited += 1

        # weaker students iterate through buggy versions first
        buggy_iterations = rng.choices((0, 1, 2), weights=(4, 4, 2))[0]
        for _ in range(min(buggy_iterations, len(bugs))):
            mutation = rng.choice(bugs)
            platform.save_code(course_key, student, lab_slug,
                               buggy_source(mutation))
            clock.advance(think_time_s)
            try:
                platform.run_attempt(course_key, student, lab_slug,
                                     dataset_index=rng.randrange(
                                         len(lab.dataset_sizes)))
                stats.runs += 1
            except RateLimited:
                stats.rate_limited += 1
                clock.advance(think_time_s)
                continue
            stats.feedback_messages += len(
                platform.get_feedback(course_key, student, lab_slug))
            hint = platform.request_hint(course_key, student, lab_slug)
            if hint is not None:
                stats.hints_taken += 1

        # the fix, then the graded submission
        platform.save_code(course_key, student, lab_slug, lab.solution)
        clock.advance(think_time_s)
        try:
            _attempt, grade = platform.submit_for_grading(
                course_key, student, lab_slug)
            stats.submissions += 1
            stats.final_grades.append(grade.total_points)
        except RateLimited:
            stats.rate_limited += 1
    return stats
