"""From student activity to job arrivals to fleet queueing.

Drives the scaling analyses: "The number of GPUs available through
WebGPU can be dramatically fewer than the expected number of concurrent
users, and can be dynamically scaled as the course participation
changes" (Section I). Jobs arrive as a Poisson process modulated by the
hourly active-student series; a fleet of ``c`` simulated workers (c may
change over time under an autoscaler) serves them FIFO.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.simulate.metrics import HourlySeries, percentile

#: Mean jobs per active student per hour (compiles + runs + submits).
JOBS_PER_STUDENT_HOUR = 2.5
#: Service-time lognormal parameters (mean ~8 s: compile + run + IO).
SERVICE_MU = 1.9
SERVICE_SIGMA = 0.5


def jobs_from_activity(series: HourlySeries, seed: int = 7,
                       jobs_per_student_hour: float = JOBS_PER_STUDENT_HOUR
                       ) -> np.ndarray:
    """Poisson job arrival times (seconds) from an active-student series."""
    rng = np.random.default_rng(seed)
    arrivals: list[float] = []
    for hour, active in enumerate(series.counts):
        lam = float(active) * jobs_per_student_hour
        count = rng.poisson(lam)
        if count:
            offsets = rng.random(count) * 3600.0
            base = hour * 3600.0
            arrivals.extend(base + o for o in offsets)
    return np.sort(np.array(arrivals))


def sample_service_times(count: int, seed: int = 11) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.lognormal(SERVICE_MU, SERVICE_SIGMA, size=count)


@dataclass
class FleetSimResult:
    """Queueing outcomes for one provisioning policy."""

    waits: list[float] = field(default_factory=list)
    worker_seconds: float = 0.0          # provisioned capacity-time
    busy_seconds: float = 0.0
    max_queue_depth: int = 0
    worker_counts: list[tuple[float, int]] = field(default_factory=list)

    @property
    def mean_wait(self) -> float:
        return float(np.mean(self.waits)) if self.waits else 0.0

    @property
    def p95_wait(self) -> float:
        return percentile(self.waits, 95)

    @property
    def p99_wait(self) -> float:
        return percentile(self.waits, 99)

    @property
    def gpu_hours(self) -> float:
        return self.worker_seconds / 3600.0

    @property
    def utilization(self) -> float:
        if self.worker_seconds == 0:
            return 0.0
        return self.busy_seconds / self.worker_seconds


def simulate_fleet(arrivals: np.ndarray, service_times: np.ndarray,
                   num_workers: int | None = None,
                   scaler: Callable[[float, float, int], int] | None = None,
                   scale_interval_s: float = 900.0) -> FleetSimResult:
    """FIFO multi-server queue with a (possibly time-varying) fleet.

    Exactly one of ``num_workers`` (static) or ``scaler`` must be
    given. ``scaler(now, recent_demand, current)`` returns the target
    worker count; ``recent_demand`` is offered load in worker-equivalents
    measured over the last scaling interval.
    """
    if (num_workers is None) == (scaler is None):
        raise ValueError("provide exactly one of num_workers / scaler")
    result = FleetSimResult()
    if arrivals.size == 0:
        return result

    mean_service = float(np.mean(service_times)) if service_times.size else 1.0
    count = min(len(arrivals), len(service_times))
    arrivals = arrivals[:count]
    service_times = service_times[:count]

    current = num_workers if num_workers is not None else 1
    # free_at: a heap of times when each provisioned worker frees up
    free_at = [0.0] * current
    heapq.heapify(free_at)
    last_scale = 0.0
    recent_arrivals = 0
    capacity_accum_from = float(arrivals[0])

    for arrive, service in zip(arrivals, service_times):
        arrive = float(arrive)
        service = float(service)
        if scaler is not None and arrive - last_scale >= scale_interval_s:
            interval = max(arrive - last_scale, 1e-9)
            demand = recent_arrivals * mean_service / interval
            target = max(1, scaler(arrive, demand, current))
            result.worker_seconds += current * (arrive - capacity_accum_from)
            capacity_accum_from = arrive
            if target > current:
                for _ in range(target - current):
                    heapq.heappush(free_at, arrive)
            elif target < current:
                # retire the most-idle workers
                pool = sorted(free_at)[: target] if target else []
                free_at = pool
                heapq.heapify(free_at)
            current = target
            result.worker_counts.append((arrive, current))
            last_scale = arrive
            recent_arrivals = 0
        recent_arrivals += 1

        free = heapq.heappop(free_at)
        start = max(arrive, free)
        result.waits.append(start - arrive)
        heapq.heappush(free_at, start + service)
        result.busy_seconds += service
        depth = sum(1 for t in free_at if t > arrive)
        result.max_queue_depth = max(result.max_queue_depth, depth)

    end = max(max(free_at), float(arrivals[-1]))
    result.worker_seconds += current * (end - capacity_accum_from)
    return result
