"""Command-line interface: ``python -m repro`` / ``webgpu-sim``.

Subcommands:

* ``list-labs``             — Table II course matrix plus extensions;
* ``show-lab SLUG``         — description, rubric, questions, datasets;
* ``run-lab SLUG``          — run a source file (default: the reference
  solution) against a lab dataset on the full worker path and print
  the verdict plus the kernel profile;
* ``funnel``                — regenerate Table I;
* ``figure1``               — regenerate the Figure 1 trace summary;
* ``occupancy THREADS``     — the occupancy calculator;
* ``trace-attempt SLUG``    — run one graded attempt through the v2
  broker path with tracing on, print the ASCII waterfall and the
  per-stage latency breakdown (``--tag`` slices it by requirement tag
  with explicit zero rows for stages the tag never hit), and
  optionally write the spans as JSONL (``--trace-out traces.jsonl``);
* ``profile-attempt SLUG``  — run one attempt with the per-source-line
  kernel profiler on and print the annotated listing (per-line
  instruction/memory/divergence counters, heat bar, hottest lines)
  plus any lab line-budget violations.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.gpusim import Device
from repro.labs import EXTRA_LABS, execute_lab_source, get_lab
from repro.labs.catalog import render_course_matrix
from repro.minicuda import CompileError
from repro.simulate import HPP_2015, StudentPopulation
from repro.simulate.funnel import funnel_table
from repro.simulate.scenarios import COURSERA_OFFERINGS


def cmd_list_labs(_args: argparse.Namespace) -> int:
    print(render_course_matrix())
    if EXTRA_LABS:
        print("\nextension labs (beyond Table II):")
        for lab in EXTRA_LABS:
            print(f"  {lab.slug:<18} {lab.title} [{lab.language}]")
    return 0


def cmd_show_lab(args: argparse.Namespace) -> int:
    lab = get_lab(args.slug)
    print(lab.description.strip())
    print(f"\nlanguage     : {lab.language}")
    print(f"courses      : {', '.join(sorted(lab.courses)) or '(extension)'}")
    print(f"requirements : {', '.join(sorted(lab.requirements)) or 'cuda'}")
    print(f"datasets     : {len(lab.dataset_sizes)} "
          f"(sizes {list(lab.dataset_sizes)})")
    print(f"rubric       : {lab.rubric.dataset_points} datasets + "
          f"{lab.rubric.compile_points} compile + "
          f"{lab.rubric.question_points} questions = {lab.rubric.total}")
    for i, question in enumerate(lab.questions):
        print(f"question {i}   : {question}")
    if args.skeleton:
        print("\n--- skeleton ---")
        print(lab.skeleton.strip())
    return 0


def cmd_run_lab(args: argparse.Namespace) -> int:
    lab = get_lab(args.slug)
    if args.source:
        source = Path(args.source).read_text()
    else:
        source = lab.solution
        print("(no --source given: running the reference solution)")
    indices = ([args.dataset] if args.dataset is not None
               else range(len(lab.dataset_sizes)))
    failures = 0
    for index in indices:
        data = lab.dataset(index)
        try:
            result = execute_lab_source(lab, source, data)
        except CompileError as exc:
            print(f"dataset {index}: COMPILE ERROR\n{exc}")
            return 2
        except Exception as exc:  # runtime fault
            print(f"dataset {index}: RUNTIME ERROR: {exc}")
            failures += 1
            continue
        verdict = "PASS" if result.passed else "FAIL"
        print(f"dataset {index}: {verdict} "
              f"(kernel {result.kernel_seconds * 1e6:.1f} us simulated)")
        if not result.passed:
            failures += 1
            print("  " + result.compare.report().replace("\n", "\n  "))
        elif args.profile and result.kernel_stats:
            stats = result.kernel_stats[0]
            print(f"  instr={stats.instructions} "
                  f"ld_tx={stats.global_load_transactions} "
                  f"st_tx={stats.global_store_transactions} "
                  f"eff={stats.load_efficiency:.2f} "
                  f"shared={stats.shared_accesses} "
                  f"conflicts={stats.bank_conflicts} "
                  f"atomics={stats.atomic_ops} "
                  f"barriers={stats.barriers}")
    return 1 if failures else 0


def cmd_funnel(_args: argparse.Namespace) -> int:
    print(f"{'offering':<10} {'registered':>10} {'completed':>10} "
          f"{'rate':>7} {'certs':>6}")
    for result in funnel_table(COURSERA_OFFERINGS):
        print(f"{result.name:<10} {result.registered:>10} "
              f"{result.completions:>10} "
              f"{100 * result.completion_rate:>6.2f}% "
              f"{result.certificates:>6}")
    return 0


def cmd_figure1(_args: argparse.Namespace) -> int:
    result = StudentPopulation(HPP_2015.figure1_population_params()).generate()
    series = result.hourly_active
    print(f"{'week':>4} {'active':>7} {'peak/hr':>8}")
    for week in range(10):
        window = series.counts[week * 168:(week + 1) * 168]
        print(f"{week + 1:>4} {result.active_per_week[week]:>7} "
              f"{int(window.max()):>8}")
    print(f"\npeak {series.peak} (paper 112), late trough "
          f"{series.daily_max()[7:].min()} (paper 8), spikes on the day "
          "before the Thursday deadline")
    return 0


def cmd_occupancy(args: argparse.Namespace) -> int:
    device = Device()
    report = device.occupancy(args.threads, args.shared)
    print(f"device               : {device.spec.name}")
    print(f"threads per block    : {args.threads}")
    print(f"shared per block     : {args.shared} bytes")
    print(f"active blocks per SM : {report.active_blocks_per_sm}")
    print(f"active warps per SM  : {report.active_warps_per_sm}"
          f"/{report.max_warps_per_sm}")
    print(f"occupancy            : {report.occupancy:.0%} "
          f"(limited by {report.limiter})")
    return 0


def cmd_trace_attempt(args: argparse.Namespace) -> int:
    from repro.cluster.node import ManualClock
    from repro.core.course import CourseOffering
    from repro.core.platform_v2 import WebGPU2
    from repro.telemetry import Telemetry, waterfall, write_jsonl

    lab = get_lab(args.slug)
    if args.source:
        source = Path(args.source).read_text()
    else:
        source = lab.solution
        print("(no --source given: tracing the reference solution)")

    clock = ManualClock()
    telemetry = Telemetry(clock=clock, tracing=True,
                          exemplar_percentile=args.exemplar_percentile)
    platform = WebGPU2(clock=clock, num_workers=args.workers,
                       telemetry=telemetry)
    offering = CourseOffering(code="TRACE", year=2016, deadlines={})
    course = platform.create_course(offering, [args.slug])
    user = platform.users.register("trace@webgpu", "Tracer", "pw")
    course.enroll(user.user_id)
    platform.save_code(offering.key, user, args.slug, source)
    _attempt, entry = platform.submit_for_grading(offering.key, user,
                                                  args.slug)
    print(f"grade: {entry.total_points:.0f}/{lab.rubric.total}\n")

    tracer = telemetry.tracer
    for trace_id in tracer.trace_ids():
        print(waterfall(tracer.for_trace(trace_id)))

    by_tag = args.tag is not None
    summaries = platform.dashboard.latency_summary(by_tag=by_tag)
    slice_name = f" for tag {args.tag!r}" if by_tag else ""
    print(f"\nstage latency{slice_name} (p50/p95/p99, seconds):")
    zero = {"count": 0, "p50": 0.0, "p95": 0.0, "p99": 0.0}
    for stage, summary in summaries.items():
        # a stage never observed for the selected tag still gets an
        # explicit zero row (the dashboard's convention): the table
        # always covers the whole pipeline
        row = (summary.get("tags", {}).get(args.tag) or zero
               if by_tag else summary)
        print(f"  {stage:<18} {row['p50']:.4f} / {row['p95']:.4f}"
              f" / {row['p99']:.4f} (n={int(row['count'])})")

    exemplars = telemetry.exemplars.snapshot()
    if args.tag is not None:
        exemplars = [rec for rec in exemplars if rec["tag"] == args.tag]
    if exemplars:
        print("\ntail-sampled exemplars (histogram bucket -> trace):")
        for rec in exemplars:
            print(f"  {rec['stage']:<18} tag={rec['tag']} "
                  f"le={rec['le']:.4g}s observed={rec['seconds']:.4f}s "
                  f"trace={rec['trace_id']}")
    if args.trace_out:
        count = write_jsonl(tracer.spans, args.trace_out)
        print(f"\nwrote {count} span(s) to {args.trace_out}")
    return 0


def cmd_profile_attempt(args: argparse.Namespace) -> int:
    from repro.profiler import check_line_budgets, render_annotated

    lab = get_lab(args.slug)
    if args.source:
        source = Path(args.source).read_text()
    else:
        source = lab.solution
        print("(no --source given: profiling the reference solution)")
    data = lab.dataset(args.dataset)
    try:
        result = execute_lab_source(lab, source, data, engine=args.engine,
                                    profile=True)
    except CompileError as exc:
        print(f"COMPILE ERROR\n{exc}")
        return 2
    verdict = "PASS" if result.passed else "FAIL"
    print(f"dataset {args.dataset}: {verdict} "
          f"(kernel {result.kernel_seconds * 1e6:.1f} us simulated, "
          f"engine {args.engine or 'default'})")
    profile = result.line_profile
    if profile is None or not profile.lines:
        print("no profiled kernel launches — nothing to attribute")
        return 0
    if result.fingerprint:
        print(f"profile key: {result.fingerprint[:16]}")
    print()
    print(render_annotated(source, profile, top=args.top))
    if lab.line_budgets:
        violations = check_line_budgets(lab.line_budgets, profile, source)
        if violations:
            print("\nline-budget violations:")
            for violation in violations:
                print(f"  {violation.describe()}")
            return 1
        print(f"\nall {len(lab.line_budgets)} line budget(s) satisfied")
    return 0 if result.passed else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="webgpu-sim",
        description="WebGPU reproduction: labs, workers, and workload "
                    "simulation from the IPDPS-W 2016 paper.")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-labs", help="Table II course matrix") \
        .set_defaults(fn=cmd_list_labs)

    show = sub.add_parser("show-lab", help="one lab's manual and config")
    show.add_argument("slug")
    show.add_argument("--skeleton", action="store_true",
                      help="also print the starter code")
    show.set_defaults(fn=cmd_show_lab)

    run = sub.add_parser("run-lab", help="compile+run a source against "
                                         "a lab's datasets")
    run.add_argument("slug")
    run.add_argument("--source", help="path to a CUDA-C file "
                                      "(default: reference solution)")
    run.add_argument("--dataset", type=int, default=None,
                     help="single dataset index (default: all)")
    run.add_argument("--profile", action="store_true",
                     help="print the kernel profile counters")
    run.set_defaults(fn=cmd_run_lab)

    sub.add_parser("funnel", help="Table I enrollment funnel") \
        .set_defaults(fn=cmd_funnel)
    sub.add_parser("figure1", help="Figure 1 activity trace summary") \
        .set_defaults(fn=cmd_figure1)

    occ = sub.add_parser("occupancy", help="occupancy calculator")
    occ.add_argument("threads", type=int)
    occ.add_argument("--shared", type=int, default=0,
                     help="shared memory bytes per block")
    occ.set_defaults(fn=cmd_occupancy)

    trace = sub.add_parser(
        "trace-attempt",
        help="trace one graded attempt end-to-end through the v2 "
             "broker path")
    trace.add_argument("slug")
    trace.add_argument("--source", help="path to a CUDA-C file "
                                        "(default: reference solution)")
    trace.add_argument("--workers", type=int, default=2,
                       help="worker fleet size (default 2)")
    trace.add_argument("--trace-out", default=None,
                       help="write the trace spans to this JSONL file")
    trace.add_argument("--tag", default=None,
                       help="slice the stage breakdown by one "
                            "requirement tag (e.g. mpi+multi-gpu); "
                            "stages the tag never hit print explicit "
                            "zero rows")
    trace.add_argument("--exemplar-percentile", type=float, default=0.95,
                       help="tail-sampling knob: keep a trace exemplar "
                            "only when the stage latency is at or above "
                            "this percentile of its series (default "
                            "0.95)")
    trace.set_defaults(fn=cmd_trace_attempt)

    prof = sub.add_parser(
        "profile-attempt",
        help="run one attempt with the line profiler on and print the "
             "annotated hot-line listing")
    prof.add_argument("slug")
    prof.add_argument("--source", help="path to a CUDA-C file "
                                       "(default: reference solution)")
    prof.add_argument("--dataset", type=int, default=0,
                      help="dataset index to profile (default 0)")
    prof.add_argument("--engine", default=None,
                      help="kernel engine (ast|closure|codegen|simd; "
                           "the ledger is engine-invariant)")
    prof.add_argument("--top", type=int, default=5,
                      help="hot lines to summarize (default 5)")
    prof.set_defaults(fn=cmd_profile_attempt)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
