"""Device specifications and the device object.

A :class:`DeviceSpec` captures the architectural parameters the timing
model and launch validation need; a :class:`Device` owns global-memory
allocations and accumulated profiling statistics. Three presets span
the GPU generations the course used between 2013 and 2016.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpusim.errors import (
    InvalidPointerError,
    LaunchConfigError,
    OutOfMemoryError,
)
from repro.gpusim.grid import Dim3
from repro.gpusim.memory import DeviceBuffer


@dataclass(frozen=True)
class DeviceSpec:
    """Architectural parameters of one simulated GPU model."""

    name: str
    compute_capability: tuple[int, int]
    num_sms: int
    warp_size: int = 32
    max_threads_per_block: int = 1024
    max_block_dim: tuple[int, int, int] = (1024, 1024, 64)
    max_grid_dim: tuple[int, int, int] = (2**31 - 1, 65535, 65535)
    shared_mem_per_block: int = 48 * 1024
    global_mem_bytes: int = 4 * 1024**3
    clock_ghz: float = 0.7
    mem_bandwidth_gbs: float = 200.0
    cores_per_sm: int = 192
    max_threads_per_sm: int = 2048
    max_blocks_per_sm: int = 16
    shared_mem_per_sm: int = 48 * 1024

    @property
    def peak_gflops(self) -> float:
        """Single-precision FMA peak (2 flops per core per cycle)."""
        return self.num_sms * self.cores_per_sm * self.clock_ghz * 2.0


FERMI_C2050 = DeviceSpec(
    name="Fermi C2050", compute_capability=(2, 0), num_sms=14,
    max_threads_per_block=1024, shared_mem_per_block=48 * 1024,
    global_mem_bytes=3 * 1024**3, clock_ghz=1.15,
    mem_bandwidth_gbs=144.0, cores_per_sm=32,
)

KEPLER_K20 = DeviceSpec(
    name="Kepler K20", compute_capability=(3, 5), num_sms=13,
    max_threads_per_block=1024, shared_mem_per_block=48 * 1024,
    global_mem_bytes=5 * 1024**3, clock_ghz=0.706,
    mem_bandwidth_gbs=208.0, cores_per_sm=192,
)

PASCAL_P100 = DeviceSpec(
    name="Pascal P100", compute_capability=(6, 0), num_sms=56,
    max_threads_per_block=1024, shared_mem_per_block=64 * 1024,
    global_mem_bytes=16 * 1024**3, clock_ghz=1.328,
    mem_bandwidth_gbs=732.0, cores_per_sm=64,
)


@dataclass(frozen=True)
class OccupancyReport:
    """cudaOccupancyMaxActiveBlocksPerMultiprocessor equivalent.

    The course's occupancy lessons: which resource (threads, blocks, or
    shared memory) caps the number of resident blocks per SM, and what
    fraction of the SM's warp slots that leaves active.
    """

    active_blocks_per_sm: int
    active_warps_per_sm: int
    max_warps_per_sm: int
    limiter: str    # "threads" | "blocks" | "shared_memory" | "block_size"

    @property
    def occupancy(self) -> float:
        """Active warps over the SM's warp capacity (0.0 - 1.0)."""
        if self.max_warps_per_sm == 0:
            return 0.0
        return self.active_warps_per_sm / self.max_warps_per_sm


@dataclass
class DeviceProperties:
    """The subset of ``cudaDeviceProp`` the Device Query lab prints."""

    name: str
    compute_capability: tuple[int, int]
    multiprocessor_count: int
    total_global_mem: int
    shared_mem_per_block: int
    warp_size: int
    max_threads_per_block: int
    max_block_dim: tuple[int, int, int]
    max_grid_dim: tuple[int, int, int]
    clock_rate_khz: int


class Device:
    """One simulated GPU: allocations, limits, and profiling totals."""

    def __init__(self, spec: DeviceSpec = KEPLER_K20, device_id: int = 0):
        self.spec = spec
        self.device_id = device_id
        self._allocs: dict[int, DeviceBuffer] = {}
        self.bytes_allocated = 0
        self.peak_bytes_allocated = 0
        self.kernels_launched = 0
        self.total_kernel_seconds = 0.0

    # -- memory management ----------------------------------------------

    def malloc(self, num_elements: int, dtype: np.dtype | str,
               label: str = "", read_only: bool = False) -> DeviceBuffer:
        buf = DeviceBuffer(num_elements, dtype, read_only=read_only, label=label)
        if self.bytes_allocated + buf.nbytes > self.spec.global_mem_bytes:
            raise OutOfMemoryError(
                f"cudaMalloc of {buf.nbytes} bytes failed: "
                f"{self.bytes_allocated} of {self.spec.global_mem_bytes} in use"
            )
        self._allocs[buf.alloc_id] = buf
        self.bytes_allocated += buf.nbytes
        self.peak_bytes_allocated = max(self.peak_bytes_allocated,
                                        self.bytes_allocated)
        return buf

    def free(self, buf: DeviceBuffer) -> None:
        if buf.alloc_id not in self._allocs:
            raise InvalidPointerError(
                f"cudaFree of unknown or already-freed buffer {buf.label}"
            )
        del self._allocs[buf.alloc_id]
        self.bytes_allocated -= buf.nbytes
        buf.freed = True

    @property
    def live_allocations(self) -> int:
        return len(self._allocs)

    # -- launch validation -------------------------------------------------

    def validate_launch(self, grid: Dim3, block: Dim3,
                        shared_bytes: int = 0) -> None:
        spec = self.spec
        if block.count > spec.max_threads_per_block:
            raise LaunchConfigError(
                f"block of {block.count} threads exceeds limit "
                f"{spec.max_threads_per_block}"
            )
        for axis, (have, limit) in enumerate(
            zip((block.x, block.y, block.z), spec.max_block_dim)
        ):
            if have > limit:
                raise LaunchConfigError(
                    f"blockDim.{'xyz'[axis]}={have} exceeds limit {limit}"
                )
        for axis, (have, limit) in enumerate(
            zip((grid.x, grid.y, grid.z), spec.max_grid_dim)
        ):
            if have > limit:
                raise LaunchConfigError(
                    f"gridDim.{'xyz'[axis]}={have} exceeds limit {limit}"
                )
        if shared_bytes > spec.shared_mem_per_block:
            raise LaunchConfigError(
                f"{shared_bytes} bytes of shared memory exceeds per-block "
                f"limit {spec.shared_mem_per_block}"
            )

    # -- occupancy ----------------------------------------------------------

    def occupancy(self, threads_per_block: int,
                  shared_bytes_per_block: int = 0) -> OccupancyReport:
        """How many blocks of this shape can be resident per SM."""
        spec = self.spec
        if not (1 <= threads_per_block <= spec.max_threads_per_block):
            raise LaunchConfigError(
                f"block of {threads_per_block} threads is not launchable")
        if shared_bytes_per_block > spec.shared_mem_per_block:
            raise LaunchConfigError(
                f"{shared_bytes_per_block} bytes of shared memory exceeds "
                f"the per-block limit {spec.shared_mem_per_block}")
        by_threads = spec.max_threads_per_sm // threads_per_block
        by_blocks = spec.max_blocks_per_sm
        if shared_bytes_per_block > 0:
            by_shared = spec.shared_mem_per_sm // shared_bytes_per_block
        else:
            by_shared = by_blocks
        blocks = max(0, min(by_threads, by_blocks, by_shared))
        if blocks == by_shared and by_shared < min(by_threads, by_blocks):
            limiter = "shared_memory"
        elif blocks == by_threads and by_threads < min(by_blocks, by_shared):
            limiter = "threads"
        else:
            limiter = "blocks"
        warp_size = spec.warp_size
        warps_per_block = (threads_per_block + warp_size - 1) // warp_size
        max_warps = spec.max_threads_per_sm // warp_size
        return OccupancyReport(
            active_blocks_per_sm=blocks,
            active_warps_per_sm=min(blocks * warps_per_block, max_warps),
            max_warps_per_sm=max_warps,
            limiter=limiter)

    # -- introspection -----------------------------------------------------

    def properties(self) -> DeviceProperties:
        """cudaGetDeviceProperties equivalent (Device Query lab)."""
        spec = self.spec
        return DeviceProperties(
            name=spec.name,
            compute_capability=spec.compute_capability,
            multiprocessor_count=spec.num_sms,
            total_global_mem=spec.global_mem_bytes,
            shared_mem_per_block=spec.shared_mem_per_block,
            warp_size=spec.warp_size,
            max_threads_per_block=spec.max_threads_per_block,
            max_block_dim=spec.max_block_dim,
            max_grid_dim=spec.max_grid_dim,
            clock_rate_khz=int(spec.clock_ghz * 1e6),
        )
