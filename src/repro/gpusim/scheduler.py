"""SIMT execution: blocks, warps, lockstep barriers, access tracking.

Kernels are Python callables ``kernel(ctx, *args)``. A kernel that uses
``__syncthreads`` must be a *generator* function yielding
:data:`SYNC` at each barrier; barrier-free kernels may be plain
functions. Each block's threads run in linear-thread-id order between
barriers, which is deterministic and correct for data-race-free
programs (racy programs are student bugs; the simulator's serial order
simply picks one outcome deterministically).

Functional execution doubles as profiling: every global access is
recorded with its warp id and per-thread access sequence number so the
coalescing model can count 128-byte transactions per warp request, and
shared accesses are checked for bank conflicts.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.gpusim.device import Device
from repro.gpusim.errors import BarrierDivergenceError, LaunchConfigError
from repro.gpusim.grid import Dim3, Idx3
from repro.gpusim.memory import DevicePtr, SharedArray
from repro.gpusim.timing import SEGMENT_BYTES, KernelStats

#: Sentinel yielded by kernel generators at ``__syncthreads()``.
SYNC = object()


@dataclass
class BlockResult:
    """Stats and output for one executed block."""

    stats: KernelStats
    output: list[str] = field(default_factory=list)


class _BlockState:
    """Mutable per-block execution state shared by its threads."""

    def __init__(self, device: Device, block_dim: Dim3):
        self.device = device
        self.block_dim = block_dim
        self.shared: dict[str, SharedArray] = {}
        self.shared_bytes = 0
        self.stats = KernelStats()
        # (warp, seq) -> list of (byte_address, nbytes), separate ld/st
        self.load_accesses: dict[tuple[int, int], list[tuple[int, int]]] = {}
        self.store_accesses: dict[tuple[int, int], list[tuple[int, int]]] = {}
        # (warp, seq) -> list of (bank, word) for shared accesses
        self.shared_hits: dict[tuple[int, int], list[tuple[int, int]]] = {}
        self.output: list[str] = []

    def finalize(self) -> None:
        """Convert raw access records into transaction/conflict counts."""
        st = self.stats
        for accesses in self.load_accesses.values():
            st.global_load_requests += 1
            segments = {addr // SEGMENT_BYTES for addr, _ in accesses}
            st.global_load_transactions += len(segments)
            st.bytes_read += sum(n for _, n in accesses)
        for accesses in self.store_accesses.values():
            st.global_store_requests += 1
            segments = {addr // SEGMENT_BYTES for addr, _ in accesses}
            st.global_store_transactions += len(segments)
            st.bytes_written += sum(n for _, n in accesses)
        for hits in self.shared_hits.values():
            st.shared_accesses += len(hits)
            words_per_bank: dict[int, set[int]] = {}
            for bank, word in hits:
                words_per_bank.setdefault(bank, set()).add(word)
            if words_per_bank:
                replays = max(len(words) for words in words_per_bank.values())
                st.bank_conflicts += replays - 1


class ThreadContext:
    """The per-thread view a kernel executes against.

    Exposes CUDA's builtin variables plus checked, profiled accessors
    for global/shared memory and atomics. The minicuda interpreter and
    hand-written Python kernels both target this interface.
    """

    __slots__ = ("threadIdx", "blockIdx", "blockDim", "gridDim",
                 "_block", "_warp", "_seq", "_linear_tid")

    def __init__(self, threadIdx: Idx3, blockIdx: Idx3, blockDim: Dim3,
                 gridDim: Dim3, block_state: _BlockState):
        self.threadIdx = threadIdx
        self.blockIdx = blockIdx
        self.blockDim = blockDim
        self.gridDim = gridDim
        self._block = block_state
        self._linear_tid = blockDim.linear_index(
            threadIdx.x, threadIdx.y, threadIdx.z)
        self._warp = self._linear_tid // block_state.device.spec.warp_size
        self._seq = 0

    # -- indexing helpers -------------------------------------------------

    @property
    def global_x(self) -> int:
        """``blockIdx.x * blockDim.x + threadIdx.x``."""
        return self.blockIdx.x * self.blockDim.x + self.threadIdx.x

    @property
    def global_y(self) -> int:
        return self.blockIdx.y * self.blockDim.y + self.threadIdx.y

    @property
    def global_z(self) -> int:
        return self.blockIdx.z * self.blockDim.z + self.threadIdx.z

    @property
    def warp_id(self) -> int:
        return self._warp

    # -- instruction accounting --------------------------------------------

    def count_instr(self, n: int = 1) -> None:
        """Charge ``n`` dynamic instructions to this thread."""
        self._block.stats.instructions += n

    # -- global memory -----------------------------------------------------

    def load(self, ptr: DevicePtr, index: int = 0) -> Any:
        """Profiled, bounds-checked global load."""
        value = ptr.read(index)
        key = (self._warp, self._seq)
        self._seq += 1
        self._block.load_accesses.setdefault(key, []).append(
            (ptr.byte_address(index), ptr.dtype.itemsize))
        self._block.stats.instructions += 1
        return value

    def store(self, ptr: DevicePtr, index: int, value: Any) -> None:
        """Profiled, bounds-checked global store."""
        ptr.write(index, value)
        key = (self._warp, self._seq)
        self._seq += 1
        self._block.store_accesses.setdefault(key, []).append(
            (ptr.byte_address(index), ptr.dtype.itemsize))
        self._block.stats.instructions += 1

    # -- shared memory -------------------------------------------------------

    def shared(self, name: str, num_elements: int, dtype: Any = "float") -> SharedArray:
        """Get or allocate this block's ``__shared__`` array ``name``."""
        block = self._block
        arr = block.shared.get(name)
        if arr is None:
            arr = SharedArray(name, num_elements, dtype)
            limit = block.device.spec.shared_mem_per_block
            if block.shared_bytes + arr.nbytes > limit:
                raise LaunchConfigError(
                    f"shared memory exceeded: {block.shared_bytes + arr.nbytes}"
                    f" > {limit} bytes (allocating {name!r})"
                )
            block.shared[name] = arr
            block.shared_bytes += arr.nbytes
        return arr

    def shared_load(self, arr: SharedArray, index: int) -> Any:
        key = (self._warp, self._seq)
        self._seq += 1
        index = int(index)
        self._block.shared_hits.setdefault(key, []).append(
            (arr.bank(index), index * arr.dtype.itemsize // 4))
        self._block.stats.instructions += 1
        return arr.read(index)

    def shared_store(self, arr: SharedArray, index: int, value: Any) -> None:
        key = (self._warp, self._seq)
        self._seq += 1
        index = int(index)
        self._block.shared_hits.setdefault(key, []).append(
            (arr.bank(index), index * arr.dtype.itemsize // 4))
        self._block.stats.instructions += 1
        arr.write(index, value)

    # -- atomics ---------------------------------------------------------------

    def _atomic(self, target: DevicePtr | SharedArray, index: int,
                update: Callable[[Any], Any]) -> Any:
        index = int(index)
        stats = self._block.stats
        old = target.read(index)
        target.write(index, update(old))
        stats.atomic_ops += 1
        stats.instructions += 1
        if isinstance(target, SharedArray):
            # shared atomics serialise only within the block's SM; the
            # timing model charges them at a fraction of global cost
            addr = (id(target) << 20) + index
            hits = stats.shared_atomic_addresses
            hits[addr] = hits.get(addr, 0) + 1
            stats.max_shared_atomic_contention = max(
                stats.max_shared_atomic_contention, hits[addr])
        else:
            addr = target.byte_address(index)
            hits = stats.atomic_addresses
            hits[addr] = hits.get(addr, 0) + 1
        return old

    def atomic_add(self, target: DevicePtr | SharedArray, index: int, value: Any) -> Any:
        """``atomicAdd``: returns the old value."""
        return self._atomic(target, index, lambda old: old + value)

    def atomic_max(self, target: DevicePtr | SharedArray, index: int, value: Any) -> Any:
        return self._atomic(target, index, lambda old: max(old, value))

    def atomic_min(self, target: DevicePtr | SharedArray, index: int, value: Any) -> Any:
        return self._atomic(target, index, lambda old: min(old, value))

    def atomic_exch(self, target: DevicePtr | SharedArray, index: int, value: Any) -> Any:
        return self._atomic(target, index, lambda old: value)

    def atomic_cas(self, target: DevicePtr | SharedArray, index: int,
                   compare: Any, value: Any) -> Any:
        return self._atomic(
            target, index, lambda old: value if old == compare else old)

    # -- output ---------------------------------------------------------------

    def printf(self, text: str) -> None:
        """Device-side printf (collected into the launch output)."""
        self._block.output.append(text)


def _as_generator(kernel: Callable[..., Any], ctx: ThreadContext,
                  args: tuple[Any, ...]):
    """Normalise plain-function kernels into (empty) generators."""
    if inspect.isgeneratorfunction(kernel):
        return kernel(ctx, *args)

    def _wrapped():
        kernel(ctx, *args)
        return
        yield  # pragma: no cover - makes _wrapped a generator

    return _wrapped()


def run_block(device: Device, kernel: Callable[..., Any], grid: Dim3,
              block: Dim3, block_idx: Idx3, args: tuple[Any, ...]) -> BlockResult:
    """Execute one block to completion with lockstep barriers."""
    state = _BlockState(device, block)
    threads = []
    for (x, y, z) in block.iter_points():
        ctx = ThreadContext(Idx3(x, y, z), block_idx, block, grid, state)
        threads.append(_as_generator(kernel, ctx, args))

    state.stats.blocks = 1
    state.stats.threads = block.count
    warp_size = device.spec.warp_size
    state.stats.warps = (block.count + warp_size - 1) // warp_size

    live = list(range(len(threads)))
    while live:
        arrived: list[int] = []
        finished: list[int] = []
        for i in live:
            try:
                token = next(threads[i])
            except StopIteration:
                finished.append(i)
                continue
            if token is not SYNC:
                raise BarrierDivergenceError(
                    f"kernel yielded unexpected token {token!r}; kernels "
                    "must yield SYNC only"
                )
            arrived.append(i)
        if arrived and finished:
            raise BarrierDivergenceError(
                f"{len(arrived)} thread(s) waiting at __syncthreads() while "
                f"{len(finished)} thread(s) exited the kernel in block "
                f"({block_idx.x},{block_idx.y},{block_idx.z})"
            )
        if arrived:
            state.stats.barriers += 1
        live = arrived

    state.finalize()
    return BlockResult(stats=state.stats, output=state.output)


def run_grid(device: Device, kernel: Callable[..., Any], grid: Dim3,
             block: Dim3, args: tuple[Any, ...] = ()) -> tuple[KernelStats, list[str]]:
    """Execute every block of the launch; returns merged stats + output."""
    merged = KernelStats()
    output: list[str] = []
    for (bx, by, bz) in grid.iter_points():
        result = run_block(device, kernel, grid, block, Idx3(bx, by, bz), args)
        merged.merge(result.stats)
        output.extend(result.output)
    return merged, output
