"""SIMT execution: blocks, warps, lockstep barriers, access tracking.

Kernels are Python callables ``kernel(ctx, *args)``. A kernel that uses
``__syncthreads`` must be a *generator* function yielding
:data:`SYNC` at each barrier; barrier-free kernels may be plain
functions. Each block's threads run in linear-thread-id order between
barriers, which is deterministic and correct for data-race-free
programs (racy programs are student bugs; the simulator's serial order
simply picks one outcome deterministically).

Functional execution doubles as profiling: every global access is
recorded with its warp id and per-thread access sequence number so the
coalescing model can count 128-byte transactions per warp request, and
shared accesses are checked for bank conflicts.

Two execution fast paths keep the grading hot loop cheap:

* barrier-free kernels (plain functions) run as direct calls — no
  generator allocation, no ``next()`` driving, no lockstep machinery;
* access tracking appends to flat per-thread arrays and the per-block
  :meth:`_BlockState.finalize` reduces them with vectorized numpy
  segment/bank grouping instead of dict-of-lists bookkeeping. The
  resulting :class:`KernelStats` are bit-identical to the historical
  per-access dictionary implementation.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.gpusim.device import Device
from repro.gpusim.errors import BarrierDivergenceError, LaunchConfigError
from repro.gpusim.grid import Dim3, Idx3
from repro.gpusim.memory import DevicePtr, SharedArray
from repro.gpusim.timing import SEGMENT_BYTES, KernelStats
from repro.profiler import LineProfile

#: Sentinel yielded by kernel generators at ``__syncthreads()``.
SYNC = object()

#: Local alias of :data:`SharedArray.NUM_BANKS` for the per-access
#: bank computation in the thread-context hot path.
_NUM_BANKS = SharedArray.NUM_BANKS

#: Bits reserved for the per-thread access sequence number when packing
#: a (warp, seq) warp-request key into one int64. The interpreter step
#: budget (default 5e7) bounds seq far below 2**40.
_SEQ_BITS = 40


@dataclass
class BlockResult:
    """Stats and output for one executed block."""

    stats: KernelStats
    output: list[str] = field(default_factory=list)


def _packed_rows(traces: list[tuple[int, list[int]]],
                 chunks: list[tuple] = (),
                 banks_from_words: bool = False) -> np.ndarray | None:
    """Concatenate per-thread flat traces into an (n, 3) int64 array
    whose first column is the packed ``(warp << _SEQ_BITS) | seq``
    warp-request key. Returns None when no thread recorded anything.

    ``chunks`` carries whole-warp access batches recorded by the SIMD
    engine: ``(count, warp, seqs, col1, col2)`` where ``seqs`` /
    ``col1`` / ``col2`` are scalars or length-``count`` arrays (scalars
    broadcast — e.g. one uniform seq for a full-mask access). The row
    multiset is identical to per-thread recording, so the downstream
    coalescing / bank grouping is unaffected by who recorded the rows.

    With ``banks_from_words`` the chunks' col1 is ignored and the bank
    column is derived from the word column in one vectorized pass —
    shared-access recorders then skip a ``% NUM_BANKS`` per access.
    (Per-thread traces always carry their bank already.)
    """
    rows_list = []
    for warp, flat in traces:
        if not flat:
            continue
        rows = np.asarray(flat, dtype=np.int64).reshape(-1, 3)
        rows[:, 0] |= warp << _SEQ_BITS
        rows_list.append(rows)
    if chunks:
        total = sum(c[0] for c in chunks)
        # (3, total) C-contiguous fill; the transposed view has the
        # same (n, 3) layout downstream consumers index by column
        buf = np.empty((3, total), dtype=np.int64)
        pos = 0
        for count, warp, seqs, col1, col2 in chunks:
            end = pos + count
            key = buf[0, pos:end]
            key[...] = seqs
            key |= warp << _SEQ_BITS
            if not banks_from_words:
                buf[1, pos:end] = col1
            buf[2, pos:end] = col2
            pos = end
        if banks_from_words:
            np.mod(buf[2], _NUM_BANKS, out=buf[1])
        rows_list.append(buf.T)
    if not rows_list:
        return None
    if len(rows_list) == 1:
        return rows_list[0]
    return np.concatenate(rows_list)


def _first_of_group(*columns: np.ndarray) -> np.ndarray:
    """Boolean mask marking the first row of each run of equal rows
    (inputs must already be lexsorted by the given columns)."""
    n = len(columns[0])
    mask = np.zeros(n, dtype=bool)
    mask[0] = True
    for col in columns:
        mask[1:] |= col[1:] != col[:-1]
    return mask


def _packed_rows4(traces: list[tuple[int, list[int]]],
                  chunks: list[tuple] = (),
                  banks_from_words: bool = False) -> np.ndarray | None:
    """Line-profiled variant of :func:`_packed_rows`: per-thread traces
    carry four ints per access (the base three plus the charging source
    line), and SIMD chunks are six-tuples ``(count, warp, seqs, col1,
    col2, lines)`` (``lines`` scalar or length-``count``). Columns 0-2
    are identical to the unprofiled layout, so :meth:`_BlockState.
    _coalesce` and :meth:`_BlockState._bank_replays` consume the result
    unchanged; column 3 feeds the per-line attribution reductions."""
    rows_list = []
    for warp, flat in traces:
        if not flat:
            continue
        rows = np.asarray(flat, dtype=np.int64).reshape(-1, 4)
        rows[:, 0] |= warp << _SEQ_BITS
        rows_list.append(rows)
    if chunks:
        total = sum(c[0] for c in chunks)
        buf = np.empty((4, total), dtype=np.int64)
        pos = 0
        for count, warp, seqs, col1, col2, lines in chunks:
            end = pos + count
            key = buf[0, pos:end]
            key[...] = seqs
            key |= warp << _SEQ_BITS
            if not banks_from_words:
                buf[1, pos:end] = col1
            buf[2, pos:end] = col2
            buf[3, pos:end] = lines
            pos = end
        if banks_from_words:
            np.mod(buf[2], _NUM_BANKS, out=buf[1])
        rows_list.append(buf.T)
    if not rows_list:
        return None
    if len(rows_list) == 1:
        return rows_list[0]
    return np.concatenate(rows_list)


class _BlockState:
    """Mutable per-block execution state shared by its threads.

    Threads append raw access records to flat per-thread lists (three
    ints per access); :meth:`finalize` groups them by warp request with
    vectorized numpy reductions. This replaces the historical
    ``dict[(warp, seq)] -> list[tuple]`` bookkeeping, which paid a
    hash + setdefault + tuple allocation on every single memory access.
    """

    #: set to ``self`` on :class:`_ProfiledBlockState`; engines test it
    #: to decide whether to record line attribution
    prof = None

    def __init__(self, device: Device, block_dim: Dim3):
        self.device = device
        self.block_dim = block_dim
        self.shared: dict[str, SharedArray] = {}
        self.shared_bytes = 0
        self.stats = KernelStats()
        # per-thread flat traces: (warp, [seq, a, b, seq, a, b, ...])
        # loads/stores record (seq, byte_address, nbytes); shared hits
        # record (seq, bank, word).
        self.load_traces: list[tuple[int, list[int]]] = []
        self.store_traces: list[tuple[int, list[int]]] = []
        self.shared_traces: list[tuple[int, list[int]]] = []
        # whole-warp access batches from the SIMD engine:
        # (count, warp, seqs, col1, col2); for loads/stores col1 is the
        # byte address and col2 the access width; for shared hits col2
        # is the word index and col1 is unused (banks are derived from
        # words in one vectorized pass at finalize).
        self.load_chunks: list[tuple] = []
        self.store_chunks: list[tuple] = []
        self.shared_chunks: list[tuple] = []
        self.output: list[str] = []

    def register_thread(self, warp: int) -> tuple[list[int], list[int], list[int]]:
        """Allocate one thread's (loads, stores, shared) trace lists."""
        loads: list[int] = []
        stores: list[int] = []
        shared: list[int] = []
        self.load_traces.append((warp, loads))
        self.store_traces.append((warp, stores))
        self.shared_traces.append((warp, shared))
        return loads, stores, shared

    def finalize(self) -> None:
        """Convert raw access records into transaction/conflict counts."""
        st = self.stats
        loads = _packed_rows(self.load_traces, self.load_chunks)
        if loads is not None:
            requests, transactions = self._coalesce(loads)
            st.global_load_requests += requests
            st.global_load_transactions += transactions
            st.bytes_read += int(loads[:, 2].sum())
        stores = _packed_rows(self.store_traces, self.store_chunks)
        if stores is not None:
            requests, transactions = self._coalesce(stores)
            st.global_store_requests += requests
            st.global_store_transactions += transactions
            st.bytes_written += int(stores[:, 2].sum())
        hits = _packed_rows(self.shared_traces, self.shared_chunks,
                            banks_from_words=True)
        if hits is not None:
            st.shared_accesses += len(hits)
            st.bank_conflicts += self._bank_replays(hits)

    @staticmethod
    def _coalesce(rows: np.ndarray) -> tuple[int, int]:
        """(warp requests, 128-byte segment transactions) for packed
        (key, byte_address, nbytes) access rows."""
        keys = rows[:, 0]
        segments = rows[:, 1] // SEGMENT_BYTES
        order = np.lexsort((segments, keys))
        keys = keys[order]
        segments = segments[order]
        new_request = _first_of_group(keys)
        new_transaction = _first_of_group(keys, segments)
        return int(new_request.sum()), int(new_transaction.sum())

    @staticmethod
    def _bank_replays(rows: np.ndarray) -> int:
        """Total serialised bank-conflict replays for packed
        (key, bank, word) shared-access rows: per warp request, the
        replay count is (max distinct words on any one bank) - 1."""
        keys, banks, words = rows[:, 0], rows[:, 1], rows[:, 2]
        order = np.lexsort((words, banks, keys))
        keys, banks, words = keys[order], banks[order], words[order]
        # distinct (key, bank, word) triples; duplicates are broadcasts
        distinct = _first_of_group(keys, banks, words)
        keys, banks = keys[distinct], banks[distinct]
        # distinct-word count per (key, bank) group
        group_start = np.flatnonzero(_first_of_group(keys, banks))
        group_sizes = np.diff(np.append(group_start, len(keys)))
        group_keys = keys[group_start]
        # max group size per warp-request key
        key_start = np.flatnonzero(_first_of_group(group_keys))
        replays = np.maximum.reduceat(group_sizes, key_start)
        return int((replays - 1).sum())


class _ProfiledBlockState(_BlockState):
    """Block state that additionally builds a per-source-line ledger.

    Totals are computed with the exact same reductions as the base
    class — the 4th (line) trace column is invisible to them — and the
    line attribution runs as extra vectorized passes at finalize. Per
    the profiler's parity contract, every attribution below depends
    only on the *multiset* of recorded rows, never on recording order,
    so differently-batched engines produce bit-identical ledgers.
    """

    def __init__(self, device: Device, block_dim: Dim3):
        super().__init__(device, block_dim)
        self.prof = self
        # dict-accumulated counters charged live by the thread contexts
        # (and the engines' stats shims): line -> count
        self.instr_lines: dict[int, int] = {}
        self.atomic_lines: dict[int, int] = {}
        # per-thread branch traces: (warp, [bseq, line, taken, ...]);
        # SIMD chunks: (count, warp, bseqs, line, taken)
        self.branch_traces: list[tuple[int, list[int]]] = []
        self.branch_chunks: list[tuple] = []

    def finalize(self) -> None:
        st = self.stats
        profile = LineProfile()
        loads = _packed_rows4(self.load_traces, self.load_chunks)
        if loads is not None:
            requests, transactions = self._coalesce(loads)
            st.global_load_requests += requests
            st.global_load_transactions += transactions
            st.bytes_read += int(loads[:, 2].sum())
            self._line_transactions(loads, profile,
                                    "global_load_transactions")
        stores = _packed_rows4(self.store_traces, self.store_chunks)
        if stores is not None:
            requests, transactions = self._coalesce(stores)
            st.global_store_requests += requests
            st.global_store_transactions += transactions
            st.bytes_written += int(stores[:, 2].sum())
            self._line_transactions(stores, profile,
                                    "global_store_transactions")
        hits = _packed_rows4(self.shared_traces, self.shared_chunks,
                             banks_from_words=True)
        if hits is not None:
            st.shared_accesses += len(hits)
            st.bank_conflicts += self._bank_replays(hits)
            lines, counts = np.unique(hits[:, 3], return_counts=True)
            profile.bump("shared_accesses",
                         dict(zip(lines.tolist(), counts.tolist())))
            self._line_bank_replays(hits, profile)
        branches = _packed_rows(self.branch_traces, self.branch_chunks)
        if branches is not None:
            self._line_divergence(branches, profile)
        profile.bump("instructions", self.instr_lines)
        profile.bump("atomic_ops", self.atomic_lines)
        st.line_profile = profile

    @staticmethod
    def _line_transactions(rows: np.ndarray, profile: LineProfile,
                           counter: str) -> None:
        """Attribute each coalesced 128-byte transaction to the minimum
        source line among the accesses it merged."""
        keys = rows[:, 0]
        segments = rows[:, 1] // SEGMENT_BYTES
        lines = rows[:, 3]
        # line is the least-significant sort key, so the first row of
        # each (key, segment) group carries the group's minimum line
        order = np.lexsort((lines, segments, keys))
        keys = keys[order]
        segments = segments[order]
        tx_lines = lines[order][_first_of_group(keys, segments)]
        uline, counts = np.unique(tx_lines, return_counts=True)
        profile.bump(counter, dict(zip(uline.tolist(), counts.tolist())))

    @staticmethod
    def _line_bank_replays(rows: np.ndarray, profile: LineProfile) -> None:
        """Attribute each warp request's serialised replays to the
        request's minimum source line (mirrors :meth:`_bank_replays`)."""
        keys, banks, words, lines = (rows[:, 0], rows[:, 1], rows[:, 2],
                                     rows[:, 3])
        order = np.lexsort((lines, words, banks, keys))
        keys, banks, words, lines = (keys[order], banks[order],
                                     words[order], lines[order])
        distinct = _first_of_group(keys, banks, words)
        keys, banks, lines = keys[distinct], banks[distinct], lines[distinct]
        group_start = np.flatnonzero(_first_of_group(keys, banks))
        group_sizes = np.diff(np.append(group_start, len(keys)))
        group_keys = keys[group_start]
        key_start = np.flatnonzero(_first_of_group(group_keys))
        replays = np.maximum.reduceat(group_sizes, key_start) - 1
        key_row_start = np.flatnonzero(_first_of_group(keys))
        key_lines = np.minimum.reduceat(lines, key_row_start)
        per_line: dict[int, int] = {}
        for line, extra in zip(key_lines.tolist(), replays.tolist()):
            if extra:
                per_line[line] = per_line.get(line, 0) + extra
        profile.bump("bank_conflicts", per_line)

    @staticmethod
    def _line_divergence(rows: np.ndarray, profile: LineProfile) -> None:
        """Count one divergent branch per (warp, branch-seq, line) group
        whose threads disagreed on the taken arm. Rows are packed
        (key=(warp<<SEQ)|bseq, line, taken)."""
        keys, lines, taken = rows[:, 0], rows[:, 1], rows[:, 2]
        order = np.lexsort((taken, lines, keys))
        keys, lines, taken = keys[order], lines[order], taken[order]
        starts = np.flatnonzero(_first_of_group(keys, lines))
        ends = np.append(starts[1:], len(keys)) - 1
        # taken is sorted within each group: divergent iff first != last
        divergent = taken[starts] != taken[ends]
        div_lines = lines[starts][divergent]
        uline, counts = np.unique(div_lines, return_counts=True)
        profile.bump("divergent_branches",
                     dict(zip(uline.tolist(), counts.tolist())))


class ThreadContext:
    """The per-thread view a kernel executes against.

    Exposes CUDA's builtin variables plus checked, profiled accessors
    for global/shared memory and atomics. The minicuda interpreter and
    hand-written Python kernels both target this interface.
    """

    __slots__ = ("threadIdx", "blockIdx", "blockDim", "gridDim",
                 "_block", "_warp", "_seq", "_linear_tid", "_stats",
                 "_loads", "_stores", "_shared_trace")

    #: overridden to True on :class:`ProfiledThreadContext`
    profiled = False

    def __init__(self, threadIdx: Idx3, blockIdx: Idx3, blockDim: Dim3,
                 gridDim: Dim3, block_state: _BlockState):
        self.threadIdx = threadIdx
        self.blockIdx = blockIdx
        self.blockDim = blockDim
        self.gridDim = gridDim
        self._block = block_state
        self._stats = block_state.stats
        self._linear_tid = blockDim.linear_index(
            threadIdx.x, threadIdx.y, threadIdx.z)
        self._warp = self._linear_tid // block_state.device.spec.warp_size
        self._seq = 0
        self._loads, self._stores, self._shared_trace = \
            block_state.register_thread(self._warp)

    # -- indexing helpers -------------------------------------------------

    @property
    def global_x(self) -> int:
        """``blockIdx.x * blockDim.x + threadIdx.x``."""
        return self.blockIdx.x * self.blockDim.x + self.threadIdx.x

    @property
    def global_y(self) -> int:
        return self.blockIdx.y * self.blockDim.y + self.threadIdx.y

    @property
    def global_z(self) -> int:
        return self.blockIdx.z * self.blockDim.z + self.threadIdx.z

    @property
    def warp_id(self) -> int:
        return self._warp

    # -- instruction accounting --------------------------------------------

    def count_instr(self, n: int = 1) -> None:
        """Charge ``n`` dynamic instructions to this thread."""
        self._stats.instructions += n

    # -- global memory -----------------------------------------------------

    def load(self, ptr: DevicePtr, index: int = 0) -> Any:
        """Profiled, bounds-checked global load."""
        if type(ptr) is DevicePtr:
            # fast path: resolve the buffer index once instead of
            # paying read + byte_address + dtype wrapper hops
            buf = ptr.buffer
            i = ptr.offset + int(index)
            value = buf.read(i)
            nbytes = buf._itemsize
            self._loads += (self._seq, buf._base + i * nbytes, nbytes)
        else:
            value = ptr.read(index)
            self._loads += (self._seq, ptr.byte_address(index),
                            ptr.dtype.itemsize)
        self._seq += 1
        self._stats.instructions += 1
        return value

    def store(self, ptr: DevicePtr, index: int, value: Any) -> None:
        """Profiled, bounds-checked global store."""
        if type(ptr) is DevicePtr:
            buf = ptr.buffer
            i = ptr.offset + int(index)
            buf.write(i, value)
            nbytes = buf._itemsize
            self._stores += (self._seq, buf._base + i * nbytes, nbytes)
        else:
            ptr.write(index, value)
            self._stores += (self._seq, ptr.byte_address(index),
                             ptr.dtype.itemsize)
        self._seq += 1
        self._stats.instructions += 1

    # -- shared memory -------------------------------------------------------

    def shared(self, name: str, num_elements: int, dtype: Any = "float") -> SharedArray:
        """Get or allocate this block's ``__shared__`` array ``name``."""
        block = self._block
        arr = block.shared.get(name)
        if arr is None:
            arr = SharedArray(name, num_elements, dtype)
            limit = block.device.spec.shared_mem_per_block
            if block.shared_bytes + arr.nbytes > limit:
                raise LaunchConfigError(
                    f"shared memory exceeded: {block.shared_bytes + arr.nbytes}"
                    f" > {limit} bytes (allocating {name!r})"
                )
            block.shared[name] = arr
            block.shared_bytes += arr.nbytes
        return arr

    def shared_load(self, arr: SharedArray, index: int) -> Any:
        index = int(index)
        if type(arr) is SharedArray:
            # bank == word % NUM_BANKS: compute the word index once
            word = index * arr._itemsize // 4
            self._shared_trace += (self._seq, word % _NUM_BANKS, word)
        else:
            self._shared_trace += (self._seq, arr.bank(index),
                                   index * arr.dtype.itemsize // 4)
        self._seq += 1
        self._stats.instructions += 1
        return arr.read(index)

    def shared_store(self, arr: SharedArray, index: int, value: Any) -> None:
        index = int(index)
        if type(arr) is SharedArray:
            word = index * arr._itemsize // 4
            self._shared_trace += (self._seq, word % _NUM_BANKS, word)
        else:
            self._shared_trace += (self._seq, arr.bank(index),
                                   index * arr.dtype.itemsize // 4)
        self._seq += 1
        self._stats.instructions += 1
        arr.write(index, value)

    # -- atomics ---------------------------------------------------------------

    def _atomic(self, target: DevicePtr | SharedArray, index: int,
                update: Callable[[Any], Any]) -> Any:
        index = int(index)
        stats = self._block.stats
        old = target.read(index)
        target.write(index, update(old))
        stats.atomic_ops += 1
        stats.instructions += 1
        if isinstance(target, SharedArray):
            # shared atomics serialise only within the block's SM; the
            # timing model charges them at a fraction of global cost
            addr = (id(target) << 20) + index
            hits = stats.shared_atomic_addresses
            hits[addr] = hits.get(addr, 0) + 1
            stats.max_shared_atomic_contention = max(
                stats.max_shared_atomic_contention, hits[addr])
        else:
            # a global atomic is a read-modify-write through the memory
            # hierarchy: record it in the coalescing trace so byte and
            # transaction counters include atomic traffic
            addr = target.byte_address(index)
            nbytes = target.dtype.itemsize
            self._loads += (self._seq, addr, nbytes)
            self._seq += 1
            self._stores += (self._seq, addr, nbytes)
            self._seq += 1
            hits = stats.atomic_addresses
            hits[addr] = hits.get(addr, 0) + 1
        return old

    def atomic_add(self, target: DevicePtr | SharedArray, index: int, value: Any) -> Any:
        """``atomicAdd``: returns the old value."""
        return self._atomic(target, index, lambda old: old + value)

    def atomic_max(self, target: DevicePtr | SharedArray, index: int, value: Any) -> Any:
        return self._atomic(target, index, lambda old: max(old, value))

    def atomic_min(self, target: DevicePtr | SharedArray, index: int, value: Any) -> Any:
        return self._atomic(target, index, lambda old: min(old, value))

    def atomic_exch(self, target: DevicePtr | SharedArray, index: int, value: Any) -> Any:
        return self._atomic(target, index, lambda old: value)

    def atomic_cas(self, target: DevicePtr | SharedArray, index: int,
                   compare: Any, value: Any) -> Any:
        return self._atomic(
            target, index, lambda old: value if old == compare else old)

    # -- output ---------------------------------------------------------------

    def printf(self, text: str) -> None:
        """Device-side printf (collected into the launch output)."""
        self._block.output.append(text)


class _LineStatsProxy:
    """Stands in for the raw ``KernelStats`` in engines that charge
    instructions via bare ``stats.instructions += n`` (the closure
    engine's frame slot): the setter forwards the delta to the real
    stats *and* to the per-line ledger at the context's current line."""

    __slots__ = ("_ctx", "_count")

    def __init__(self, ctx: "ProfiledThreadContext"):
        self._ctx = ctx
        self._count = 0

    @property
    def instructions(self) -> int:
        return self._count

    @instructions.setter
    def instructions(self, value: int) -> None:
        delta = value - self._count
        self._count = value
        ctx = self._ctx
        ctx._stats.instructions += delta
        il = ctx._instr_lines
        ln = ctx.line
        il[ln] = il.get(ln, 0) + delta


class ProfiledThreadContext(ThreadContext):
    """Thread context that also attributes every charge to ``line``.

    The engines keep ``line`` pointed at the innermost enclosing
    statement's source line (re-set before loop condition/step
    evaluation, saved/restored around user device-function calls); the
    overridden accessors mirror the base bodies exactly, adding a 4th
    line column to the access traces and dict accumulation for
    instructions/atomics. ``record_branch`` logs per-thread ``if``
    outcomes keyed by a per-thread branch sequence number so finalize
    can detect intra-warp divergence.
    """

    __slots__ = ("line", "bseq", "stats_proxy", "_instr_lines",
                 "_atomic_lines", "_branches")

    profiled = True

    def __init__(self, threadIdx: Idx3, blockIdx: Idx3, blockDim: Dim3,
                 gridDim: Dim3, block_state: _BlockState):
        super().__init__(threadIdx, blockIdx, blockDim, gridDim,
                         block_state)
        self.line = 0
        self.bseq = 0
        self._instr_lines = block_state.instr_lines
        self._atomic_lines = block_state.atomic_lines
        branches: list[int] = []
        block_state.branch_traces.append((self._warp, branches))
        self._branches = branches
        self.stats_proxy = _LineStatsProxy(self)

    def count_instr(self, n: int = 1) -> None:
        self._stats.instructions += n
        il = self._instr_lines
        ln = self.line
        il[ln] = il.get(ln, 0) + n

    def record_branch(self, line: int, taken: bool) -> None:
        """Log one executed ``if`` (its line and which arm ran)."""
        self._branches += (self.bseq, line, 1 if taken else 0)
        self.bseq += 1

    def load(self, ptr: DevicePtr, index: int = 0) -> Any:
        ln = self.line
        if type(ptr) is DevicePtr:
            buf = ptr.buffer
            i = ptr.offset + int(index)
            value = buf.read(i)
            nbytes = buf._itemsize
            self._loads += (self._seq, buf._base + i * nbytes, nbytes, ln)
        else:
            value = ptr.read(index)
            self._loads += (self._seq, ptr.byte_address(index),
                            ptr.dtype.itemsize, ln)
        self._seq += 1
        self._stats.instructions += 1
        il = self._instr_lines
        il[ln] = il.get(ln, 0) + 1
        return value

    def store(self, ptr: DevicePtr, index: int, value: Any) -> None:
        ln = self.line
        if type(ptr) is DevicePtr:
            buf = ptr.buffer
            i = ptr.offset + int(index)
            buf.write(i, value)
            nbytes = buf._itemsize
            self._stores += (self._seq, buf._base + i * nbytes, nbytes, ln)
        else:
            ptr.write(index, value)
            self._stores += (self._seq, ptr.byte_address(index),
                             ptr.dtype.itemsize, ln)
        self._seq += 1
        self._stats.instructions += 1
        il = self._instr_lines
        il[ln] = il.get(ln, 0) + 1

    def shared_load(self, arr: SharedArray, index: int) -> Any:
        index = int(index)
        ln = self.line
        if type(arr) is SharedArray:
            word = index * arr._itemsize // 4
            self._shared_trace += (self._seq, word % _NUM_BANKS, word, ln)
        else:
            self._shared_trace += (self._seq, arr.bank(index),
                                   index * arr.dtype.itemsize // 4, ln)
        self._seq += 1
        self._stats.instructions += 1
        il = self._instr_lines
        il[ln] = il.get(ln, 0) + 1
        return arr.read(index)

    def shared_store(self, arr: SharedArray, index: int, value: Any) -> None:
        index = int(index)
        ln = self.line
        if type(arr) is SharedArray:
            word = index * arr._itemsize // 4
            self._shared_trace += (self._seq, word % _NUM_BANKS, word, ln)
        else:
            self._shared_trace += (self._seq, arr.bank(index),
                                   index * arr.dtype.itemsize // 4, ln)
        self._seq += 1
        self._stats.instructions += 1
        il = self._instr_lines
        il[ln] = il.get(ln, 0) + 1
        arr.write(index, value)

    def _atomic(self, target: DevicePtr | SharedArray, index: int,
                update: Callable[[Any], Any]) -> Any:
        index = int(index)
        stats = self._block.stats
        old = target.read(index)
        target.write(index, update(old))
        stats.atomic_ops += 1
        stats.instructions += 1
        ln = self.line
        al = self._atomic_lines
        al[ln] = al.get(ln, 0) + 1
        il = self._instr_lines
        il[ln] = il.get(ln, 0) + 1
        if isinstance(target, SharedArray):
            addr = (id(target) << 20) + index
            hits = stats.shared_atomic_addresses
            hits[addr] = hits.get(addr, 0) + 1
            stats.max_shared_atomic_contention = max(
                stats.max_shared_atomic_contention, hits[addr])
        else:
            addr = target.byte_address(index)
            nbytes = target.dtype.itemsize
            self._loads += (self._seq, addr, nbytes, ln)
            self._seq += 1
            self._stores += (self._seq, addr, nbytes, ln)
            self._seq += 1
            hits = stats.atomic_addresses
            hits[addr] = hits.get(addr, 0) + 1
        return old


def run_block(device: Device, kernel: Callable[..., Any], grid: Dim3,
              block: Dim3, block_idx: Idx3, args: tuple[Any, ...],
              is_generator: bool | None = None) -> BlockResult:
    """Execute one block to completion with lockstep barriers.

    ``is_generator`` may be supplied by :func:`run_grid` so the
    ``inspect.isgeneratorfunction`` reflection runs once per launch
    rather than once per thread per block.
    """
    if is_generator is None:
        is_generator = inspect.isgeneratorfunction(kernel)
    # line-profiled kernels (bound with kernel.profiled = True) get the
    # ledger-building state + context; the unprofiled path pays nothing
    # beyond this getattr
    if getattr(kernel, "profiled", False):
        state: _BlockState = _ProfiledBlockState(device, block)
        ctx_cls: type[ThreadContext] = ProfiledThreadContext
    else:
        state = _BlockState(device, block)
        ctx_cls = ThreadContext
    state.stats.blocks = 1
    state.stats.threads = block.count
    warp_size = device.spec.warp_size
    state.stats.warps = (block.count + warp_size - 1) // warp_size

    if not is_generator:
        # Warp-vectorized fast path: an engine may attach a vector_run
        # executor that runs a whole warp's lanes as batched operations
        # (per-thread access order is preserved, and the coalescing /
        # bank-conflict model keys on per-thread sequence numbers, so
        # cross-lane interleaving is unobservable in the stats).
        vector_run = getattr(kernel, "vector_run", None)
        if vector_run is not None:
            ctxs = [ctx_cls(Idx3(x, y, z), block_idx, block, grid,
                            state)
                    for (x, y, z) in block.iter_points()]
            for start in range(0, len(ctxs), warp_size):
                vector_run(ctxs[start:start + warp_size])
            state.finalize()
            return BlockResult(stats=state.stats, output=state.output)
        # Barrier-free fast path: plain calls in linear-thread order —
        # no generator allocation, no next() driving, no barrier checks.
        for (x, y, z) in block.iter_points():
            ctx = ctx_cls(Idx3(x, y, z), block_idx, block, grid, state)
            kernel(ctx, *args)
        state.finalize()
        return BlockResult(stats=state.stats, output=state.output)

    # Whole-warp lockstep path for barrier kernels: an engine may
    # attach a warp_run executor — a generator factory taking a warp's
    # contexts and yielding at each __syncthreads(). Warps advance in
    # rounds exactly like threads do below, so the barrier counter and
    # the per-round access ordering match the per-thread path.
    warp_run = getattr(kernel, "warp_run", None)
    if warp_run is not None:
        ctxs = [ctx_cls(Idx3(x, y, z), block_idx, block, grid, state)
                for (x, y, z) in block.iter_points()]
        spans = list(range(0, len(ctxs), warp_size))
        gens = [warp_run(ctxs[start:start + warp_size]) for start in spans]
        lanes = [len(ctxs[start:start + warp_size]) for start in spans]
        live_warps = list(range(len(gens)))
        while live_warps:
            arrived_w: list[int] = []
            finished_w: list[int] = []
            for i in live_warps:
                try:
                    next(gens[i])
                except StopIteration:
                    finished_w.append(i)
                    continue
                arrived_w.append(i)
            if arrived_w and finished_w:
                # report thread counts so the message is byte-identical
                # to the per-thread lockstep path below
                n_wait = sum(lanes[i] for i in arrived_w)
                n_done = sum(lanes[i] for i in finished_w)
                raise BarrierDivergenceError(
                    f"{n_wait} thread(s) waiting at __syncthreads() while "
                    f"{n_done} thread(s) exited the kernel in block "
                    f"({block_idx.x},{block_idx.y},{block_idx.z})"
                )
            if arrived_w:
                state.stats.barriers += 1
            live_warps = arrived_w
        state.finalize()
        return BlockResult(stats=state.stats, output=state.output)

    threads = []
    for (x, y, z) in block.iter_points():
        ctx = ctx_cls(Idx3(x, y, z), block_idx, block, grid, state)
        threads.append(kernel(ctx, *args))

    live = list(range(len(threads)))
    while live:
        arrived: list[int] = []
        finished: list[int] = []
        for i in live:
            try:
                token = next(threads[i])
            except StopIteration:
                finished.append(i)
                continue
            if token is not SYNC:
                raise BarrierDivergenceError(
                    f"kernel yielded unexpected token {token!r}; kernels "
                    "must yield SYNC only"
                )
            arrived.append(i)
        if arrived and finished:
            raise BarrierDivergenceError(
                f"{len(arrived)} thread(s) waiting at __syncthreads() while "
                f"{len(finished)} thread(s) exited the kernel in block "
                f"({block_idx.x},{block_idx.y},{block_idx.z})"
            )
        if arrived:
            state.stats.barriers += 1
        live = arrived

    state.finalize()
    return BlockResult(stats=state.stats, output=state.output)


def run_grid(device: Device, kernel: Callable[..., Any], grid: Dim3,
             block: Dim3, args: tuple[Any, ...] = ()) -> tuple[KernelStats, list[str]]:
    """Execute every block of the launch; returns merged stats + output."""
    merged = KernelStats()
    output: list[str] = []
    # decide generator-ness once per launch, not once per thread
    is_generator = inspect.isgeneratorfunction(kernel)
    for (bx, by, bz) in grid.iter_points():
        result = run_block(device, kernel, grid, block, Idx3(bx, by, bz),
                           args, is_generator=is_generator)
        merged.merge(result.stats)
        output.extend(result.output)
    return merged, output
