"""Analytic kernel timing model.

The model does not cycle-simulate; it estimates a kernel's duration
from counters gathered during functional execution:

* compute: total dynamic instructions over the device's core count;
* memory: coalesced global transactions (128-byte segments per warp
  request) over the device's bandwidth;
* shared memory: accesses plus serialised bank-conflict replays;
* atomics: contention on the hottest address serialises;
* barriers: fixed cost each.

Absolute numbers are synthetic, but the model preserves the orderings
the labs teach: tiling reduces global traffic and therefore time,
coalesced access beats strided, padding removes bank conflicts,
privatised histograms beat contended global atomics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.gpusim.device import DeviceSpec

#: Model constants (cycles / seconds); chosen for plausible magnitudes.
CPI = 1.0                     # cycles per simple instruction
SEGMENT_BYTES = 128           # global-memory coalescing granularity
SHARED_ACCESS_CYCLES = 1.0    # per shared access (per warp, amortised)
BANK_CONFLICT_CYCLES = 1.0    # extra cycles per serialised replay
ATOMIC_CYCLES = 30.0          # per atomic operation issue
ATOMIC_CONTENTION_CYCLES = 300.0  # per serialised op on hottest address
#: shared-memory atomics serialise within an SM at ~10x lower cost than
#: global ones — the whole point of histogram/queue privatisation
SHARED_ATOMIC_CONTENTION_CYCLES = 30.0
BARRIER_CYCLES = 40.0         # per __syncthreads per block
LAUNCH_OVERHEAD_S = 5e-6      # fixed kernel launch cost


@dataclass
class KernelStats:
    """Counters for one kernel launch (merged over all blocks)."""

    blocks: int = 0
    threads: int = 0
    warps: int = 0
    instructions: int = 0
    global_load_requests: int = 0
    global_store_requests: int = 0
    global_load_transactions: int = 0
    global_store_transactions: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    shared_accesses: int = 0
    bank_conflicts: int = 0
    atomic_ops: int = 0
    max_atomic_contention: int = 0
    max_shared_atomic_contention: int = 0
    barriers: int = 0
    elapsed_seconds: float = 0.0
    #: per-address atomic hit counts (address -> count), merged per launch
    atomic_addresses: dict[int, int] = field(default_factory=dict)
    #: same, for __shared__ targets (serialise only within their SM)
    shared_atomic_addresses: dict[int, int] = field(default_factory=dict)
    #: optional per-source-line ledger (a repro.profiler.LineProfile);
    #: None unless the launch ran under the line profiler. Duck-typed so
    #: the timing layer stays import-free of the profiler package.
    line_profile: Any = None

    def merge(self, other: "KernelStats") -> None:
        self.blocks += other.blocks
        self.threads += other.threads
        self.warps += other.warps
        self.instructions += other.instructions
        self.global_load_requests += other.global_load_requests
        self.global_store_requests += other.global_store_requests
        self.global_load_transactions += other.global_load_transactions
        self.global_store_transactions += other.global_store_transactions
        self.bytes_read += other.bytes_read
        self.bytes_written += other.bytes_written
        self.shared_accesses += other.shared_accesses
        self.bank_conflicts += other.bank_conflicts
        self.atomic_ops += other.atomic_ops
        self.barriers += other.barriers
        for addr, n in other.atomic_addresses.items():
            self.atomic_addresses[addr] = self.atomic_addresses.get(addr, 0) + n
        if self.atomic_addresses:
            self.max_atomic_contention = max(self.atomic_addresses.values())
        # shared arrays are per block: contention does not accumulate
        # across blocks, so track the per-block maximum
        self.max_shared_atomic_contention = max(
            self.max_shared_atomic_contention,
            other.max_shared_atomic_contention)
        if other.line_profile is not None:
            if self.line_profile is None:
                self.line_profile = other.line_profile.copy()
            else:
                self.line_profile.merge(other.line_profile)

    @property
    def global_transactions(self) -> int:
        return self.global_load_transactions + self.global_store_transactions

    @property
    def load_efficiency(self) -> float:
        """Useful bytes per transferred byte for loads (1.0 = coalesced)."""
        if self.global_load_transactions == 0:
            return 1.0
        return min(1.0, self.bytes_read /
                   (self.global_load_transactions * SEGMENT_BYTES))


class TimingModel:
    """Turns :class:`KernelStats` into an elapsed-seconds estimate."""

    def __init__(self, spec: DeviceSpec):
        self.spec = spec

    def estimate(self, stats: KernelStats) -> float:
        spec = self.spec
        clock_hz = spec.clock_ghz * 1e9
        cores = spec.num_sms * spec.cores_per_sm
        # Fewer resident threads than cores -> underutilisation.
        effective_parallel = max(1, min(cores, stats.threads))

        compute_s = stats.instructions * CPI / (effective_parallel * clock_hz)

        mem_bytes = stats.global_transactions * SEGMENT_BYTES
        mem_s = mem_bytes / (spec.mem_bandwidth_gbs * 1e9)

        shared_cycles = (stats.shared_accesses * SHARED_ACCESS_CYCLES / spec.warp_size
                         + stats.bank_conflicts * BANK_CONFLICT_CYCLES)
        shared_s = shared_cycles / (spec.num_sms * clock_hz)

        atomic_cycles = (
            stats.atomic_ops * ATOMIC_CYCLES
            + stats.max_atomic_contention * ATOMIC_CONTENTION_CYCLES
            + stats.max_shared_atomic_contention
            * SHARED_ATOMIC_CONTENTION_CYCLES)
        atomic_s = atomic_cycles / clock_hz / max(1, spec.num_sms)

        barrier_s = stats.barriers * BARRIER_CYCLES / (spec.num_sms * clock_hz)

        return (LAUNCH_OVERHEAD_S + max(compute_s, mem_s)
                + shared_s + atomic_s + barrier_s)
