"""Deterministic SIMT GPU simulator.

The paper's worker nodes execute student CUDA/OpenCL code on physical
NVIDIA GPUs. This package substitutes a from-scratch simulator that
preserves the *programming model* the course teaches and the
*performance ordering* the labs grade:

* grids of thread blocks, warps of 32 threads, ``__syncthreads``
  barriers with divergence detection (:mod:`repro.gpusim.scheduler`);
* global / shared / constant memory spaces with bounds checking
  (:mod:`repro.gpusim.memory`);
* serialised-but-counted atomics (:mod:`repro.gpusim.atomics` via
  thread context helpers);
* an analytic timing model counting instructions, coalesced global
  memory transactions (128-byte segments per warp), shared-memory bank
  conflicts, atomic serialisation, and barrier costs
  (:mod:`repro.gpusim.timing`);
* a CUDA-runtime-style host API — malloc / memcpy / launch /
  synchronize / events (:mod:`repro.gpusim.host`).

Kernels are Python *generator* functions of one
:class:`~repro.gpusim.scheduler.ThreadContext` argument that ``yield``
at barrier points; the minicuda interpreter compiles CUDA-C source into
exactly such generators.
"""

from repro.gpusim.device import (DeviceSpec, Device, OccupancyReport,
                                 KEPLER_K20, FERMI_C2050, PASCAL_P100)
from repro.gpusim.grid import Dim3, Idx3, dim3
from repro.gpusim.memory import DeviceBuffer, DevicePtr, SharedArray
from repro.gpusim.scheduler import SYNC, ThreadContext, BlockResult
from repro.gpusim.timing import KernelStats, TimingModel
from repro.gpusim.host import GpuRuntime, GpuEvent
from repro.gpusim.errors import (
    BarrierDivergenceError,
    GpuError,
    InvalidPointerError,
    LaunchConfigError,
    OutOfBoundsError,
    OutOfMemoryError,
)

__all__ = [
    "BarrierDivergenceError",
    "BlockResult",
    "Device",
    "DeviceBuffer",
    "DevicePtr",
    "DeviceSpec",
    "Dim3",
    "FERMI_C2050",
    "GpuError",
    "GpuEvent",
    "GpuRuntime",
    "Idx3",
    "InvalidPointerError",
    "KEPLER_K20",
    "KernelStats",
    "LaunchConfigError",
    "OccupancyReport",
    "OutOfBoundsError",
    "OutOfMemoryError",
    "PASCAL_P100",
    "SYNC",
    "SharedArray",
    "ThreadContext",
    "TimingModel",
    "dim3",
]
