"""GPU simulator exception hierarchy (mirrors CUDA error classes)."""


class GpuError(Exception):
    """Base class for all simulator errors."""


class OutOfMemoryError(GpuError):
    """cudaMalloc-equivalent failed: device global memory exhausted."""


class OutOfBoundsError(GpuError):
    """A device memory access fell outside its allocation.

    Real GPUs may silently corrupt memory here; the simulator behaves
    like ``cuda-memcheck`` and faults deterministically.
    """


class InvalidPointerError(GpuError):
    """A freed or foreign pointer was dereferenced / freed."""


class LaunchConfigError(GpuError):
    """Grid/block dimensions or shared memory exceed device limits."""


class BarrierDivergenceError(GpuError):
    """Threads of one block disagreed about reaching __syncthreads().

    On hardware this deadlocks or yields undefined behaviour; the
    simulator detects it and fails the kernel, which is exactly the
    feedback a GPU-programming student needs.
    """
