"""CUDA-runtime-style host API: malloc / memcpy / launch / events.

:class:`GpuRuntime` is what host programs (and the minicuda interpreter
running host code) use. It maintains a simulated device clock advanced
by kernel execution and memory transfers, so ``GpuEvent`` timing works
like ``cudaEventElapsedTime``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.gpusim.device import Device, DeviceProperties
from repro.gpusim.errors import GpuError, OutOfBoundsError
from repro.gpusim.grid import dim3
from repro.gpusim.memory import DeviceBuffer, DevicePtr
from repro.gpusim.scheduler import run_grid
from repro.gpusim.timing import KernelStats, TimingModel
from repro.telemetry import KERNEL_EXEC_SECONDS, WARP_ACTIVE_LANE_RATIO

#: Host<->device transfer bandwidth (PCIe gen2 x16-ish), bytes/second.
PCIE_BANDWIDTH = 6e9
#: Fixed per-transfer latency in seconds.
TRANSFER_LATENCY_S = 10e-6


@dataclass
class GpuEvent:
    """cudaEvent analogue: records the simulated device timestamp."""

    timestamp: float | None = None

    def elapsed_since(self, earlier: "GpuEvent") -> float:
        """Seconds between two recorded events (cudaEventElapsedTime)."""
        if self.timestamp is None or earlier.timestamp is None:
            raise GpuError("event has not been recorded")
        return self.timestamp - earlier.timestamp


class GpuRuntime:
    """Host-side handle to one simulated device."""

    def __init__(self, device: Device | None = None,
                 telemetry: Any = None):
        self.device = device if device is not None else Device()
        self.timing = TimingModel(self.device.spec)
        self.device_time = 0.0
        self.last_stats: KernelStats | None = None
        self.launch_history: list[KernelStats] = []
        #: Optional hook receiving device printf output lines.
        self.io_hook: Callable[[str], None] | None = None
        #: Optional repro.telemetry.Telemetry; None keeps the launch
        #: hot path free of even a wall-clock read (the overhead
        #: benchmark holds this path to the seed's timing).
        self.telemetry = telemetry

    # -- memory -----------------------------------------------------------

    def malloc(self, num_elements: int, dtype: Any = "float",
               label: str = "") -> DeviceBuffer:
        """cudaMalloc: allocate ``num_elements`` of ``dtype``."""
        return self.device.malloc(num_elements, dtype, label=label)

    def malloc_like(self, array: np.ndarray, label: str = "") -> DeviceBuffer:
        """Allocate a buffer shaped after a host array and copy it in."""
        buf = self.device.malloc(int(array.size), array.dtype, label=label)
        self.memcpy_htod(buf, array)
        return buf

    def const_malloc(self, array: np.ndarray, label: str = "") -> DeviceBuffer:
        """Allocate read-only (``__constant__``) memory from a host array."""
        buf = self.device.malloc(int(array.size), array.dtype,
                                 label=label, read_only=True)
        buf.as_ndarray()[:] = array.ravel()
        self._advance_transfer(buf.nbytes)
        return buf

    def free(self, buf: DeviceBuffer) -> None:
        """cudaFree."""
        self.device.free(buf)

    def memcpy_htod(self, dst: DeviceBuffer | DevicePtr, src: np.ndarray) -> None:
        """cudaMemcpy host -> device."""
        flat = np.asarray(src).ravel()
        target = dst.ptr() if isinstance(dst, DeviceBuffer) else dst
        view = target.as_array()
        if flat.size > view.size:
            raise OutOfBoundsError(
                f"memcpy of {flat.size} elements into {view.size}")
        # read-only (constant) buffers are written via the host path only
        view[: flat.size] = flat.astype(target.dtype, copy=False)
        self._advance_transfer(int(flat.size) * target.dtype.itemsize)

    def memcpy_dtoh(self, src: DeviceBuffer | DevicePtr,
                    count: int | None = None) -> np.ndarray:
        """cudaMemcpy device -> host; returns a fresh host array."""
        ptr = src.ptr() if isinstance(src, DeviceBuffer) else src
        view = ptr.as_array(count)
        if count is not None and view.size < count:
            raise OutOfBoundsError(
                f"memcpy of {count} elements from {view.size}")
        self._advance_transfer(int(view.size) * ptr.dtype.itemsize)
        return view.copy()

    def memset(self, buf: DeviceBuffer, value: Any = 0) -> None:
        """cudaMemset (element-wise, not byte-wise, for convenience).
        Goes through the zero-copy view so a freed buffer faults."""
        buf.as_ndarray()[:] = value
        self._advance_transfer(buf.nbytes)

    def _advance_transfer(self, nbytes: int) -> None:
        self.device_time += TRANSFER_LATENCY_S + nbytes / PCIE_BANDWIDTH

    # -- kernel launch --------------------------------------------------------

    def launch(self, kernel: Callable[..., Any], grid: Any, block: Any,
               *args: Any, kernel_name: str | None = None,
               engine: str | None = None) -> KernelStats:
        """``kernel<<<grid, block>>>(*args)``; returns the launch stats.

        ``engine`` tags the per-engine exec-time histogram when
        telemetry is attached (the interpreter passes its active
        kernel engine through here)."""
        grid_d = dim3(grid)
        block_d = dim3(block)
        self.device.validate_launch(grid_d, block_d)
        if self.telemetry is None:
            stats, output = run_grid(self.device, kernel, grid_d, block_d,
                                     args)
        else:
            wall_start = time.perf_counter()
            stats, output = run_grid(self.device, kernel, grid_d, block_d,
                                     args)
            wall = time.perf_counter() - wall_start
        stats.elapsed_seconds = self.timing.estimate(stats)
        self.device_time += stats.elapsed_seconds
        self.device.kernels_launched += 1
        self.device.total_kernel_seconds += stats.elapsed_seconds
        self.last_stats = stats
        self.launch_history.append(stats)
        if self.telemetry is not None:
            name = kernel_name or getattr(kernel, "__name__", "kernel")
            self.telemetry.record_kernel(name, wall, stats)
            if engine is not None:
                self.telemetry.metrics.histogram(
                    KERNEL_EXEC_SECONDS,
                    "Kernel exec wall time by engine",
                ).observe(wall, engine=engine, kernel=name)
            occ = getattr(kernel, "lane_occupancy", None)
            if occ is not None and occ[1]:
                # simd engine: active lanes / lane slots this launch.
                # A histogram, not a gauge — fleet merge adds bucket
                # counts; merged gauges would sum ratios into nonsense.
                self.telemetry.metrics.histogram(
                    WARP_ACTIVE_LANE_RATIO,
                    "Active-lane fraction of simd warp execution",
                ).observe(occ[0] / occ[1], kernel=name)
        if self.io_hook is not None:
            for line in output:
                self.io_hook(line)
        return stats

    def synchronize(self) -> None:
        """cudaDeviceSynchronize (a no-op: launches run eagerly)."""

    # -- events & properties ---------------------------------------------------

    def record_event(self) -> GpuEvent:
        """cudaEventRecord at the current simulated device time."""
        return GpuEvent(timestamp=self.device_time)

    def properties(self) -> DeviceProperties:
        """cudaGetDeviceProperties."""
        return self.device.properties()
