"""Grid and block dimensions (CUDA ``dim3``)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True)
class Dim3:
    """A CUDA ``dim3``: extents along x, y, z (all >= 1)."""

    x: int = 1
    y: int = 1
    z: int = 1

    def __post_init__(self) -> None:
        for axis in (self.x, self.y, self.z):
            if not isinstance(axis, int) or axis < 1:
                raise ValueError(f"dim3 components must be ints >= 1, got {self}")

    @property
    def count(self) -> int:
        """Total number of points in the 3-D extent."""
        return self.x * self.y * self.z

    def linear_index(self, x: int, y: int, z: int) -> int:
        """Row-major linearisation used for warp assignment (x fastest)."""
        return (z * self.y + y) * self.x + x

    def iter_points(self) -> Iterator[tuple[int, int, int]]:
        """All (x, y, z) points, x varying fastest (CUDA thread order)."""
        for z in range(self.z):
            for y in range(self.y):
                for x in range(self.x):
                    yield (x, y, z)


@dataclass(frozen=True)
class Idx3:
    """A coordinate (CUDA ``uint3``): components >= 0."""

    x: int = 0
    y: int = 0
    z: int = 0

    def __post_init__(self) -> None:
        for axis in (self.x, self.y, self.z):
            if not isinstance(axis, int) or axis < 0:
                raise ValueError(f"Idx3 components must be ints >= 0, got {self}")


def dim3(x: int | tuple[int, ...] | Dim3 = 1, y: int = 1, z: int = 1) -> Dim3:
    """Coerce ints / tuples / Dim3 into a :class:`Dim3`.

    Accepts ``dim3(256)``, ``dim3((16, 16))``, ``dim3(Dim3(8, 8, 8))``.
    """
    if isinstance(x, Dim3):
        return x
    if isinstance(x, tuple):
        parts = tuple(x) + (1, 1, 1)
        return Dim3(*parts[:3])
    return Dim3(x, y, z)
