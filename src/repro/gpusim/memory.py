"""Device memory spaces: global buffers, pointers, shared arrays.

Global memory is a set of typed allocations (numpy-backed). Device
pointers are (allocation, element offset) pairs supporting pointer
arithmetic; all dereferences are bounds-checked so student
out-of-bounds bugs fault deterministically (like ``cuda-memcheck``)
instead of corrupting neighbouring data.
"""

from __future__ import annotations

import itertools
from typing import Any

import numpy as np

from repro.gpusim.errors import InvalidPointerError, OutOfBoundsError

#: CUDA-C scalar type name -> numpy dtype.
CTYPE_TO_DTYPE: dict[str, np.dtype] = {
    "float": np.dtype(np.float32),
    "double": np.dtype(np.float64),
    "int": np.dtype(np.int32),
    "unsigned": np.dtype(np.uint32),
    "unsigned int": np.dtype(np.uint32),
    "long": np.dtype(np.int64),
    "char": np.dtype(np.int8),
    "unsigned char": np.dtype(np.uint8),
    "bool": np.dtype(np.bool_),
}

_alloc_ids = itertools.count(1)


class DeviceBuffer:
    """One global-memory allocation on a device."""

    def __init__(self, num_elements: int, dtype: np.dtype | str,
                 read_only: bool = False, label: str = ""):
        if isinstance(dtype, str):
            dtype = CTYPE_TO_DTYPE[dtype] if dtype in CTYPE_TO_DTYPE \
                else np.dtype(dtype)
        if num_elements < 1:
            raise ValueError("allocation must hold at least one element")
        self.alloc_id = next(_alloc_ids)
        self.dtype = np.dtype(dtype)
        self.data = np.zeros(num_elements, dtype=self.dtype)
        self.read_only = read_only
        self.label = label or f"alloc{self.alloc_id}"
        self.freed = False
        # hot-path precomputes (read/byte_address run per simulated
        # memory access; dtype comparisons and property hops add up)
        self._itemsize = int(self.dtype.itemsize)
        self._is_bool = self.dtype == np.bool_
        self._base = self.alloc_id << 40

    @property
    def num_elements(self) -> int:
        return int(self.data.size)

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)

    def _check(self, index: int) -> None:
        if self.freed:
            raise InvalidPointerError(f"use after free of {self.label}")
        if not (0 <= index < self.data.size):
            raise OutOfBoundsError(
                f"index {index} out of bounds for {self.label} "
                f"[{self.data.size} x {self.dtype.name}]"
            )

    def read(self, index: int) -> Any:
        if self.freed or not 0 <= index < self.data.size:
            self._check(index)
        value = self.data[index]
        return bool(value) if self._is_bool else value.item()

    def write(self, index: int, value: Any) -> None:
        if self.freed or not 0 <= index < self.data.size:
            self._check(index)
        if self.read_only:
            raise OutOfBoundsError(f"write to read-only memory {self.label}")
        self.data[index] = value

    def byte_address(self, index: int) -> int:
        """A synthetic flat byte address used by the coalescing model."""
        return self._base + index * self._itemsize

    # -- lane-vector access (warp-SIMD engine) -------------------------------

    def as_ndarray(self) -> np.ndarray:
        """Zero-copy numpy view of the whole allocation."""
        if self.freed:
            raise InvalidPointerError(f"use after free of {self.label}")
        return self.data

    def _check_lanes(self, indices: np.ndarray) -> None:
        """Vectorized bounds check: one unsigned-max reduction on the
        fast path (negatives wrap to huge values), then the exact
        per-index fault of :meth:`_check` for the first offending lane."""
        if self.freed:
            raise InvalidPointerError(f"use after free of {self.label}")
        size = self.data.size
        if len(indices) == 0:
            return
        u = (indices.view(np.uint64) if indices.dtype == np.int64
             else indices.astype(np.uint64))
        if int(u.max()) >= size:
            bad = (indices < 0) | (indices >= size)
            index = int(indices[int(np.argmax(bad))])
            raise OutOfBoundsError(
                f"index {index} out of bounds for {self.label} "
                f"[{size} x {self.dtype.name}]"
            )

    def gather(self, indices: np.ndarray) -> np.ndarray:
        """Bounds-checked vector load of ``data[indices]``."""
        self._check_lanes(indices)
        return self.data[indices]

    def scatter(self, indices: np.ndarray, values: Any) -> None:
        """Bounds-checked vector store (duplicate indices: last lane
        wins, matching serial per-lane execution order)."""
        self._check_lanes(indices)
        if self.read_only:
            raise OutOfBoundsError(f"write to read-only memory {self.label}")
        self.data[indices] = values

    def ptr(self, offset: int = 0) -> "DevicePtr":
        return DevicePtr(self, offset)


class DevicePtr:
    """A typed pointer into a :class:`DeviceBuffer` (element-granular)."""

    __slots__ = ("buffer", "offset")

    def __init__(self, buffer: DeviceBuffer, offset: int = 0):
        self.buffer = buffer
        self.offset = offset

    @property
    def dtype(self) -> np.dtype:
        return self.buffer.dtype

    def __add__(self, n: int) -> "DevicePtr":
        return DevicePtr(self.buffer, self.offset + int(n))

    __radd__ = __add__

    def __sub__(self, n: int) -> "DevicePtr":
        return DevicePtr(self.buffer, self.offset - int(n))

    def read(self, index: int = 0) -> Any:
        return self.buffer.read(self.offset + int(index))

    def write(self, index: int, value: Any) -> None:
        self.buffer.write(self.offset + int(index), value)

    def byte_address(self, index: int = 0) -> int:
        return self.buffer.byte_address(self.offset + int(index))

    def as_array(self, length: int | None = None) -> np.ndarray:
        """Host-side view of the pointed-to elements (for memcpy)."""
        end = None if length is None else self.offset + length
        return self.buffer.data[self.offset:end]

    def __repr__(self) -> str:
        return f"DevicePtr({self.buffer.label}+{self.offset})"


class SharedArray:
    """A per-block ``__shared__`` array.

    Access is bounds-checked; the scheduler's thread context counts
    bank conflicts when threads of a warp hit the same bank.
    """

    __slots__ = ("name", "data", "dtype", "_itemsize", "_cache")

    NUM_BANKS = 32

    def __init__(self, name: str, num_elements: int, dtype: np.dtype | str):
        if isinstance(dtype, str):
            dtype = CTYPE_TO_DTYPE[dtype] if dtype in CTYPE_TO_DTYPE \
                else np.dtype(dtype)
        self.name = name
        self.dtype = np.dtype(dtype)
        self.data = np.zeros(num_elements, dtype=self.dtype)
        self._itemsize = int(self.dtype.itemsize)
        # Python-scalar mirror of ``data``, refreshed on every write():
        # shared reads dominate simulated kernels (tile loops hit each
        # element many times) and a list index is ~20x cheaper than a
        # numpy scalar read + .item(). All writes go through write(),
        # so the mirror cannot go stale.
        self._cache: list[Any] = self.data.tolist()

    @property
    def num_elements(self) -> int:
        return int(self.data.size)

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)

    def _check(self, index: int) -> None:
        if not (0 <= index < self.data.size):
            raise OutOfBoundsError(
                f"index {index} out of bounds for __shared__ {self.name} "
                f"[{self.data.size} x {self.dtype.name}]"
            )

    def read(self, index: int) -> Any:
        if not 0 <= index < self.data.size:
            self._check(index)
        return self._cache[index]

    def write(self, index: int, value: Any) -> None:
        if not 0 <= index < self.data.size:
            self._check(index)
        data = self.data
        data[index] = value  # numpy applies the dtype conversion
        self._cache[index] = data[index].item()

    # -- lane-vector access (warp-SIMD engine) -------------------------------

    def _check_lanes(self, indices: np.ndarray) -> None:
        size = self.data.size
        if len(indices) == 0:
            return
        u = (indices.view(np.uint64) if indices.dtype == np.int64
             else indices.astype(np.uint64))
        if int(u.max()) >= size:
            bad = (indices < 0) | (indices >= size)
            index = int(indices[int(np.argmax(bad))])
            raise OutOfBoundsError(
                f"index {index} out of bounds for __shared__ {self.name} "
                f"[{size} x {self.dtype.name}]"
            )

    def read_lanes(self, indices: np.ndarray) -> np.ndarray:
        """Bounds-checked vector read of ``data[indices]``."""
        self._check_lanes(indices)
        return self.data[indices]

    def write_lanes(self, indices: np.ndarray, values: Any) -> None:
        """Bounds-checked vector write keeping the Python-scalar
        ``_cache`` mirror coherent (duplicate indices: last lane wins,
        like serial per-lane order; numpy fancy assignment matches)."""
        self._check_lanes(indices)
        data = self.data
        data[indices] = values
        cache = self._cache
        for i, v in zip(indices.tolist(), data[indices].tolist()):
            cache[i] = v

    def bank(self, index: int) -> int:
        """Which of the 32 banks a 4-byte word at ``index`` maps to."""
        byte = index * self._itemsize
        return (byte // 4) % self.NUM_BANKS
