"""Counters shared by every cache in the subsystem.

Each cache owns one :class:`CacheStats` and mutates it on the hot path;
observers (the dashboard, benchmarks, the quickstart demo) read
point-in-time :meth:`CacheStats.snapshot` dictionaries, never the live
object.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CacheStats:
    """Hit/miss/eviction/byte counters for one cache."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    expirations: int = 0
    dedup_hits: int = 0          # single-flight joins (memo.py)
    integrity_failures: int = 0  # CAS blobs that failed verification
    bytes_stored: int = 0
    bytes_evicted: int = 0
    seconds_saved: float = 0.0   # synthetic work the cache absorbed

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when idle)."""
        total = self.lookups
        return self.hits / total if total else 0.0

    @property
    def bytes_live(self) -> int:
        return self.bytes_stored - self.bytes_evicted

    def record_hit(self, seconds_saved: float = 0.0) -> None:
        self.hits += 1
        self.seconds_saved += seconds_saved

    def record_miss(self) -> None:
        self.misses += 1

    def record_store(self, size: int = 0) -> None:
        self.stores += 1
        self.bytes_stored += size

    def record_eviction(self, size: int = 0, expired: bool = False) -> None:
        self.evictions += 1
        if expired:
            self.expirations += 1
        self.bytes_evicted += size

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Element-wise sum (for fleet-wide aggregation)."""
        return CacheStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            stores=self.stores + other.stores,
            evictions=self.evictions + other.evictions,
            expirations=self.expirations + other.expirations,
            dedup_hits=self.dedup_hits + other.dedup_hits,
            integrity_failures=(self.integrity_failures
                                + other.integrity_failures),
            bytes_stored=self.bytes_stored + other.bytes_stored,
            bytes_evicted=self.bytes_evicted + other.bytes_evicted,
            seconds_saved=self.seconds_saved + other.seconds_saved)

    def snapshot(self) -> dict[str, float]:
        """Immutable view for dashboards and logs."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
            "stores": self.stores,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "dedup_hits": self.dedup_hits,
            "integrity_failures": self.integrity_failures,
            "bytes_stored": self.bytes_stored,
            "bytes_evicted": self.bytes_evicted,
            "bytes_live": self.bytes_live,
            "seconds_saved": round(self.seconds_saved, 6),
        }
