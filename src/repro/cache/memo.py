"""Single-flight memoization: concurrent identical requests pay once.

Under a resubmission storm, N workers can poll N copies of the same
job (same source, same datasets) at nearly the same instant. A plain
cache only helps *after* the first result lands; :class:`MemoTable`
closes the gap with a single-flight protocol:

* the first requester for a key becomes the flight's **owner** and
  performs the computation;
* later requesters **join** the in-flight computation (counted as
  ``dedup_hits``) and receive the owner's value when it is delivered;
* once delivered, the value is memoized — subsequent requests are
  plain **hits**.

The simulation is cooperatively scheduled, so "concurrent" means
interleaved ``begin`` calls before the owner ``deliver``s — exactly
what the broker's pull loop produces when several drivers poll the
same storm.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.cache.policy import EvictionPolicy
from repro.cache.stats import CacheStats
from repro.telemetry import Telemetry

#: Roles handed out by :meth:`MemoTable.begin`.
HIT = "hit"
OWNER = "owner"
JOINED = "joined"


class Flight:
    """One in-flight (or finished) computation for a key."""

    __slots__ = ("key", "done", "failed", "value", "error", "joiners",
                 "callbacks")

    def __init__(self, key: str):
        self.key = key
        self.done = False
        self.failed = False
        self.value: Any = None
        self.error: BaseException | None = None
        self.joiners = 0
        self.callbacks: list[Callable[[Any], None]] = []

    def result(self) -> Any:
        """The delivered value (raises if the flight failed/unfinished)."""
        if not self.done:
            raise RuntimeError(f"flight {self.key[:12]}… not delivered yet")
        if self.failed:
            assert self.error is not None
            raise self.error
        return self.value

    def on_delivery(self, callback: Callable[[Any], None]) -> None:
        """Run ``callback(value)`` when the owner delivers (immediately
        if already done)."""
        if self.done and not self.failed:
            callback(self.value)
        else:
            self.callbacks.append(callback)


class MemoTable:
    """Memoized results + single-flight dedup + pluggable eviction."""

    def __init__(self, policy: EvictionPolicy | None = None,
                 stats: CacheStats | None = None,
                 clock: Any = None,
                 memoize_errors: bool = False,
                 weigh: Callable[[Any], int] | None = None,
                 on_evict: Callable[[str, Any], None] | None = None,
                 telemetry: Telemetry | None = None,
                 cache_name: str = "memo"):
        self.policy = policy if policy is not None else EvictionPolicy()
        self.stats = stats if stats is not None else CacheStats()
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.cache_name = cache_name
        self.memoize_errors = memoize_errors
        self._weigh = weigh or (lambda value: 1)
        self._on_evict = on_evict
        self._clock = clock
        self._ticks = 0
        self._done: dict[str, Flight] = {}
        self._inflight: dict[str, Flight] = {}
        self.compute_count = 0  # times an owner actually did the work

    def _now(self) -> float:
        if self._clock is not None:
            return float(self._clock.now())
        self._ticks += 1
        return float(self._ticks)

    # -- single-flight protocol -------------------------------------------

    def begin(self, key: str) -> tuple[str, Flight]:
        """Enter the flight for ``key``: returns (role, flight) where
        role is ``HIT`` (value ready), ``OWNER`` (caller must compute
        and ``deliver``), or ``JOINED`` (another caller is computing)."""
        now = self._now()
        lookups = self.telemetry.metrics.counter(
            "webgpu_cache_lookups_total",
            "memo-table lookups by cache and outcome")
        flight = self._done.get(key)
        if flight is not None:
            if flight.failed and not self.memoize_errors:
                del self._done[key]
            else:
                self.stats.record_hit()
                self.policy.record_access(key, now)
                lookups.inc(cache=self.cache_name, outcome="hit")
                return HIT, flight
        flight = self._inflight.get(key)
        if flight is not None:
            flight.joiners += 1
            self.stats.dedup_hits += 1
            lookups.inc(cache=self.cache_name, outcome="join")
            return JOINED, flight
        self.stats.record_miss()
        lookups.inc(cache=self.cache_name, outcome="miss")
        flight = Flight(key)
        self._inflight[key] = flight
        return OWNER, flight

    def deliver(self, key: str, value: Any) -> Flight:
        """Owner hands in the computed value; joiners are notified."""
        flight = self._inflight.pop(key, None)
        if flight is None:
            flight = Flight(key)
        flight.done = True
        flight.value = value
        self.compute_count += 1
        self._done[key] = flight
        size = self._weigh(value)
        self.stats.record_store(size)
        self.policy.record_store(key, size, self._now())
        self._evict()
        for callback in flight.callbacks:
            callback(value)
        flight.callbacks.clear()
        return flight

    def fail(self, key: str, error: BaseException) -> Flight:
        """Owner reports a failure; memoized only if configured to."""
        flight = self._inflight.pop(key, None)
        if flight is None:
            flight = Flight(key)
        flight.done = True
        flight.failed = True
        flight.error = error
        self.compute_count += 1
        if self.memoize_errors:
            self._done[key] = flight
            size = self._weigh(error)
            self.stats.record_store(size)
            self.policy.record_store(key, size, self._now())
            self._evict()
        return flight

    # -- convenience sync paths -------------------------------------------

    def get_or_compute(self, key: str, compute: Callable[[], Any],
                       seconds_saved: float = 0.0) -> tuple[Any, bool]:
        """Synchronous helper: returns ``(value, was_hit)``.

        A recursive request for a key that is mid-computation (possible
        only if ``compute`` itself re-enters the same key) is computed
        without being stored, to keep single-flight semantics sound.
        """
        role, flight = self.begin(key)
        if role == HIT:
            if seconds_saved:
                self.stats.seconds_saved += seconds_saved
            return flight.result(), True
        if role == JOINED:
            return compute(), False
        try:
            value = compute()
        except BaseException as exc:
            self.fail(key, exc)
            raise
        self.deliver(key, value)
        return value, False

    def peek(self, key: str) -> Flight | None:
        """The finished flight for ``key`` without touching stats."""
        return self._done.get(key)

    def abandon(self, key: str) -> None:
        """Owner gave up without a value (e.g. the result turned out
        uncacheable): clear the in-flight entry so the next requester
        becomes a fresh owner instead of joining a dead flight."""
        self._inflight.pop(key, None)

    def invalidate(self, key: str) -> bool:
        """Drop a memoized entry (config/dataset changed)."""
        flight = self._done.pop(key, None)
        if flight is None:
            return False
        self.policy.forget(key)
        if self._on_evict is not None and not flight.failed:
            self._on_evict(key, flight.value)
        return True

    def _evict(self) -> None:
        for key in self.policy.select_victims(self._now()):
            flight = self._done.pop(key, None)
            if flight is not None:
                size = self._weigh(flight.error if flight.failed
                                   else flight.value)
                self.stats.record_eviction(size)
                if self._on_evict is not None and not flight.failed:
                    self._on_evict(key, flight.value)

    def __len__(self) -> int:
        return len(self._done)

    @property
    def inflight_count(self) -> int:
        return len(self._inflight)
