"""Content-addressed artifact cache: compile & grading memoization.

MOOC traffic is dominated by near-duplicate work — thousands of
students resubmitting identical or barely-edited code against the same
instructor datasets (paper Fig. 1's deadline spikes). The original
WebGPU recompiled and re-ran every attempt from scratch; this package
turns that redundant work into O(1) lookups, the same shape as a
compile/kernel cache in a training or inference stack:

* :mod:`repro.cache.cas` — a content-addressed blob store (sha256
  addresses, ref-counting, integrity verification on read) layered
  over :mod:`repro.storage`;
* :mod:`repro.cache.policy` — pluggable eviction: LRU entry caps,
  byte-size caps, TTL expiry, and compositions thereof, with explicit
  per-policy eviction stats;
* :mod:`repro.cache.memo` — a single-flight memoization table that
  deduplicates concurrent identical requests, so N workers compiling
  the same source pay for one compile;
* :mod:`repro.cache.keys` — deterministic content-derived key
  derivation (program hash, dataset fingerprint, composed keys);
* :mod:`repro.cache.stats` — hit/miss/eviction/byte counters exposed
  as snapshots on the dashboard.

Consumers: :class:`repro.minicuda.compiler.CompileCache` (front-end
results keyed by preprocessed-source hash) and
:class:`repro.cluster.result_cache.GradingResultCache` (grading job
results keyed by ``(program_hash, dataset_hash, requirements)``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.cas import (
    CasError,
    ContentAddressedStore,
    IntegrityError,
    MissingBlobError,
)
from repro.cache.keys import (
    compose_key,
    hash_bytes,
    hash_mapping,
    hash_text,
    stable_digest_of,
)
from repro.cache.memo import HIT, JOINED, OWNER, Flight, MemoTable
from repro.cache.policy import (
    CompositePolicy,
    EvictionPolicy,
    LRUPolicy,
    PolicyStats,
    SizeCappedPolicy,
    TTLPolicy,
)
from repro.cache.stats import CacheStats


@dataclass(frozen=True)
class CacheConfig:
    """Knobs for the platform-level cache assembly.

    ``ttl_s=None`` disables time-based expiry (pure LRU/size caps).
    """

    compile_entries: int = 512
    result_entries: int = 4096
    result_max_bytes: int = 64 * 1024 * 1024
    ttl_s: float | None = None
    verify_reads: bool = True


__all__ = [
    "CacheConfig",
    "CacheStats",
    "CasError",
    "CompositePolicy",
    "ContentAddressedStore",
    "EvictionPolicy",
    "Flight",
    "HIT",
    "IntegrityError",
    "JOINED",
    "LRUPolicy",
    "MemoTable",
    "MissingBlobError",
    "OWNER",
    "PolicyStats",
    "SizeCappedPolicy",
    "TTLPolicy",
    "compose_key",
    "hash_bytes",
    "hash_mapping",
    "hash_text",
    "stable_digest_of",
]
