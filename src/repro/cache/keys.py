"""Deterministic cache-key derivation helpers.

Every cache key in the subsystem is a hex sha256 digest derived from
the *content* that determines the result — never from identities like
user, submission id, or wall-clock time. Two students submitting
byte-identical code against byte-identical lab configuration therefore
collapse onto one key, which is the whole point.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Iterable, Mapping

#: Separator that cannot occur inside a hex digest or a JSON dump.
_SEP = b"\x1f"


def hash_bytes(data: bytes) -> str:
    """sha256 hex digest of raw bytes."""
    return hashlib.sha256(data).hexdigest()


def hash_text(text: str) -> str:
    """sha256 hex digest of UTF-8 text (the program-hash primitive)."""
    return hash_bytes(text.encode("utf-8"))


def hash_mapping(mapping: Mapping[str, Any]) -> str:
    """Digest of a JSON-able mapping, insensitive to key order."""
    dumped = json.dumps(mapping, sort_keys=True, separators=(",", ":"),
                        default=str)
    return hash_text(dumped)


def compose_key(*parts: Any) -> str:
    """Combine heterogeneous parts into one digest.

    Parts are stringified; iterables (lists/tuples/frozensets) are
    sorted first so ``frozenset({"mpi", "cuda"})`` always contributes
    the same bytes.
    """
    h = hashlib.sha256()
    for part in parts:
        if isinstance(part, (frozenset, set)):
            part = sorted(str(p) for p in part)
        if isinstance(part, (list, tuple)):
            part = ",".join(str(p) for p in part)
        h.update(str(part).encode("utf-8"))
        h.update(_SEP)
    return h.hexdigest()


def stable_digest_of(items: Iterable[tuple[str, str]]) -> str:
    """Digest of (name, digest) pairs, order-insensitive."""
    h = hashlib.sha256()
    for name, digest in sorted(items):
        h.update(name.encode("utf-8"))
        h.update(_SEP)
        h.update(digest.encode("utf-8"))
        h.update(_SEP)
    return h.hexdigest()
