"""Pluggable eviction policies.

A policy is pure bookkeeping: the owning cache reports stores/accesses/
removals, then asks :meth:`EvictionPolicy.select_victims` which keys
must go. The cache performs the actual deletion (and releases CAS
references), so one policy implementation serves every cache shape.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field


@dataclass
class PolicyStats:
    """Why entries were evicted, per policy."""

    evicted_capacity: int = 0
    evicted_bytes: int = 0
    evicted_expired: int = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "evicted_capacity": self.evicted_capacity,
            "evicted_bytes": self.evicted_bytes,
            "evicted_expired": self.evicted_expired,
        }


class EvictionPolicy:
    """Base policy: tracks nothing, never evicts."""

    def __init__(self) -> None:
        self.stats = PolicyStats()

    def record_store(self, key: str, size: int, now: float) -> None:
        pass

    def record_access(self, key: str, now: float) -> None:
        pass

    def forget(self, key: str) -> None:
        """The cache removed ``key`` for its own reasons."""

    def select_victims(self, now: float) -> list[str]:
        return []


class LRUPolicy(EvictionPolicy):
    """Entry-count cap with least-recently-used ordering."""

    def __init__(self, max_entries: int):
        super().__init__()
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._order: OrderedDict[str, float] = OrderedDict()

    def record_store(self, key: str, size: int, now: float) -> None:
        self._order[key] = now
        self._order.move_to_end(key)

    def record_access(self, key: str, now: float) -> None:
        if key in self._order:
            self._order[key] = now
            self._order.move_to_end(key)

    def forget(self, key: str) -> None:
        self._order.pop(key, None)

    def select_victims(self, now: float) -> list[str]:
        excess = len(self._order) - self.max_entries
        if excess <= 0:
            return []
        victims = list(self._order)[:excess]
        for key in victims:
            del self._order[key]
        self.stats.evicted_capacity += len(victims)
        return victims


class SizeCappedPolicy(EvictionPolicy):
    """Total-bytes cap, evicting least-recently-used entries first."""

    def __init__(self, max_bytes: int):
        super().__init__()
        if max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        self.max_bytes = max_bytes
        self._entries: OrderedDict[str, int] = OrderedDict()  # key -> size
        self._total = 0

    def record_store(self, key: str, size: int, now: float) -> None:
        if key in self._entries:
            self._total -= self._entries[key]
        self._entries[key] = size
        self._entries.move_to_end(key)
        self._total += size

    def record_access(self, key: str, now: float) -> None:
        if key in self._entries:
            self._entries.move_to_end(key)

    def forget(self, key: str) -> None:
        size = self._entries.pop(key, None)
        if size is not None:
            self._total -= size

    def select_victims(self, now: float) -> list[str]:
        victims: list[str] = []
        while self._total > self.max_bytes and self._entries:
            key, size = next(iter(self._entries.items()))
            del self._entries[key]
            self._total -= size
            victims.append(key)
            self.stats.evicted_bytes += 1
        return victims

    @property
    def total_bytes(self) -> int:
        return self._total


class TTLPolicy(EvictionPolicy):
    """Time-to-live: entries idle longer than ``ttl_s`` expire.

    The clock is whatever the caller reports via ``now`` — the caches
    pass simulation time, so TTL expiry is deterministic in tests.
    """

    def __init__(self, ttl_s: float):
        super().__init__()
        if ttl_s <= 0:
            raise ValueError("ttl_s must be positive")
        self.ttl_s = ttl_s
        self._last_touch: OrderedDict[str, float] = OrderedDict()

    def record_store(self, key: str, size: int, now: float) -> None:
        self._last_touch[key] = now
        self._last_touch.move_to_end(key)

    def record_access(self, key: str, now: float) -> None:
        if key in self._last_touch:
            self._last_touch[key] = now
            self._last_touch.move_to_end(key)

    def forget(self, key: str) -> None:
        self._last_touch.pop(key, None)

    def select_victims(self, now: float) -> list[str]:
        victims = [k for k, touched in self._last_touch.items()
                   if now - touched > self.ttl_s]
        for key in victims:
            del self._last_touch[key]
        self.stats.evicted_expired += len(victims)
        return victims


@dataclass
class CompositePolicy(EvictionPolicy):
    """Union of several policies (e.g. LRU cap *and* TTL)."""

    policies: tuple[EvictionPolicy, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        super().__init__()

    def record_store(self, key: str, size: int, now: float) -> None:
        for p in self.policies:
            p.record_store(key, size, now)

    def record_access(self, key: str, now: float) -> None:
        for p in self.policies:
            p.record_access(key, now)

    def forget(self, key: str) -> None:
        for p in self.policies:
            p.forget(key)

    def select_victims(self, now: float) -> list[str]:
        victims: list[str] = []
        seen: set[str] = set()
        for p in self.policies:
            for key in p.select_victims(now):
                if key not in seen:
                    seen.add(key)
                    victims.append(key)
        # a victim picked by one policy must be forgotten by the others
        for key in victims:
            for p in self.policies:
                p.forget(key)
        return victims
