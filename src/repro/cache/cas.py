"""Content-addressed blob store layered over the object store.

Blobs are addressed by the sha256 of their content (so identical
payloads are stored once), ref-counted (eviction releases a reference;
the blob is only deleted when the last reference drops), and verified
on read: a blob whose bytes no longer hash to its address raises
:class:`IntegrityError` rather than silently serving corrupt data.
"""

from __future__ import annotations

from repro.cache.keys import hash_bytes
from repro.cache.stats import CacheStats
from repro.storage import Bucket, NoSuchKeyError


class CasError(Exception):
    """Base class for content-addressed-store errors."""


class IntegrityError(CasError):
    """A stored blob no longer matches its content address."""


class MissingBlobError(CasError):
    """The requested address is not in the store."""


def blob_key(address: str) -> str:
    """Object-store key for an address (fanned out S3-style)."""
    return f"cas/{address[:2]}/{address[2:]}"


class ContentAddressedStore:
    """sha256-addressed blobs with ref-counting over a :class:`Bucket`."""

    def __init__(self, bucket: Bucket | None = None,
                 verify_on_read: bool = True,
                 stats: CacheStats | None = None):
        self.bucket = bucket if bucket is not None else Bucket("cas")
        self.verify_on_read = verify_on_read
        self.stats = stats if stats is not None else CacheStats()
        self._refcounts: dict[str, int] = {}
        self._sizes: dict[str, int] = {}

    # -- writes ------------------------------------------------------------

    def put(self, data: bytes) -> str:
        """Store ``data`` and return its address; bumps the refcount if
        the identical blob is already present (dedup by content)."""
        address = hash_bytes(data)
        if address in self._refcounts:
            self._refcounts[address] += 1
            return address
        meta = self.bucket.put(blob_key(address), data)
        # cross-check the object store's own sha256 etag (satellite:
        # md5-only etags could silently alias distinct blobs)
        if getattr(meta, "sha256", address) != address:
            raise IntegrityError(
                f"object store reported sha256 {meta.sha256} for {address}")
        self._refcounts[address] = 1
        self._sizes[address] = len(data)
        self.stats.record_store(len(data))
        return address

    def addref(self, address: str) -> None:
        """Take an extra reference on an existing blob."""
        if address not in self._refcounts:
            raise MissingBlobError(address)
        self._refcounts[address] += 1

    def release(self, address: str) -> bool:
        """Drop one reference; returns True when the blob was deleted."""
        count = self._refcounts.get(address)
        if count is None:
            raise MissingBlobError(address)
        if count > 1:
            self._refcounts[address] = count - 1
            return False
        del self._refcounts[address]
        size = self._sizes.pop(address)
        try:
            self.bucket.delete(blob_key(address))
        except NoSuchKeyError:
            pass
        self.stats.record_eviction(size)
        return True

    # -- reads -------------------------------------------------------------

    def get(self, address: str) -> bytes:
        """Fetch a blob, verifying content integrity on the way out."""
        if address not in self._refcounts:
            raise MissingBlobError(address)
        data = self.bucket.get(blob_key(address))
        if self.verify_on_read and hash_bytes(data) != address:
            self.stats.integrity_failures += 1
            raise IntegrityError(
                f"blob {address[:12]}… failed sha256 verification")
        return data

    def contains(self, address: str) -> bool:
        return address in self._refcounts

    def refcount(self, address: str) -> int:
        return self._refcounts.get(address, 0)

    def size_of(self, address: str) -> int:
        try:
            return self._sizes[address]
        except KeyError:
            raise MissingBlobError(address) from None

    @property
    def total_bytes(self) -> int:
        return sum(self._sizes.values())

    @property
    def addresses(self) -> tuple[str, ...]:
        return tuple(sorted(self._refcounts))

    def __len__(self) -> int:
        return len(self._refcounts)
