"""The GPU worker node (paper Sections III-C and III-D).

"Upon a user program submission, the web-server selects a single worker
node and sends user code along with configurations specified by the
lab. The worker node then compiles, executes, and evaluates the code
using the datasets provided by the instructor."

Each dataset evaluation runs the full sandbox pipeline: blacklist scan,
time-limited compile, seccomp-gated execution confined to a fresh temp
directory. Results (or error messages) go back to the web-server.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.cluster.job import DatasetOutcome, Job, JobKind, JobResult, JobStatus
from repro.cluster.node import Clock, ManualClock, Node
from repro.gpusim.device import DeviceSpec, KEPLER_K20
from repro.labs.base import LabDefinition, execute_lab_source
from repro.minicuda import CompileError, compile_source
from repro.profiler import LineProfile, check_line_budgets
from repro.sandbox import (
    BlacklistScanner,
    SandboxConfig,
    SandboxExecutor,
    SeccompPolicy,
)
from repro.sandbox.sandbox import CompileFailure, ExecutionOutcome, SandboxEnv
from repro.telemetry import NULL_SPAN, Telemetry, requirement_tag

#: Fixed overhead per job for scheduling/IO on the worker, seconds.
JOB_OVERHEAD_S = 0.15
#: Interpreter step budget per wall-clock second of run limit.
STEPS_PER_LIMIT_SECOND = 400_000


@dataclass(frozen=True)
class WorkerConfig:
    """Deployment parameters of one worker."""

    tags: frozenset[str] = frozenset({"cuda"})
    gpu_spec: DeviceSpec = KEPLER_K20
    num_gpus: int = 1
    health_interval_s: float = 10.0
    policy: SeccompPolicy = field(default_factory=SeccompPolicy.baseline)
    scanner: BlacklistScanner = field(default_factory=BlacklistScanner)
    #: kernel execution engine ("closure"/"codegen"/"simd"/"ast");
    #: None → env var/default
    kernel_engine: str | None = None
    #: run every dataset evaluation under the per-source-line kernel
    #: profiler; attempt results then carry the LineProfile ledger
    line_profile: bool = False


class GpuWorker(Node):
    """A worker node: accepts jobs, evaluates them in the sandbox."""

    kind = "worker"

    def __init__(self, config: WorkerConfig | None = None,
                 clock: Clock | None = None, zone: str = "us-east-1a",
                 name: str = "", compile_cache: Any = None,
                 result_cache: Any = None,
                 telemetry: Telemetry | None = None,
                 profile_cas: Any = None):
        super().__init__(zone=zone, name=name)
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.config = config or WorkerConfig()
        self.clock = clock or ManualClock()
        self.jobs_processed = 0
        self.busy_seconds = 0.0
        self.outcome_counts: dict[str, int] = {}
        self.last_heartbeat = self.clock.now()
        self.drop_health_checks = False  # fault injection
        self.crash_mid_job = False       # armed: die after taking a job
        self.wedge_mid_job = False       # armed: wedge holding a job
        self.wedged = False              # stuck: alive but not polling
        self.active_jobs = 0
        #: optional repro.minicuda.CompileCache shared across the fleet
        self.compile_cache = compile_cache
        #: optional repro.cluster.result_cache.GradingResultCache
        self.result_cache = result_cache
        self.cache_hits = 0
        #: optional repro.cache.cas.ContentAddressedStore for serialized
        #: line-profile ledgers (dedup by content: identical programs
        #: produce identical ledgers, stored once fleet-wide)
        self.profile_cas = profile_cas
        #: (program fingerprint, lab slug, dataset index) -> CAS address
        self._profile_index: dict[tuple[str, str, int], str] = {}
        self.profile_cache_hits = 0

    # -- capability matching (v2 uses this for pull; v1 for placement) -----

    def can_run(self, job: Job) -> bool:
        needs = set(job.requirements)
        if "multi-gpu" in needs and self.config.num_gpus < 2:
            return False
        needs.discard("multi-gpu")
        return needs <= set(self.config.tags)

    # -- health ----------------------------------------------------------------

    def heartbeat(self) -> float | None:
        """Emit a health check (returns the timestamp, or None if the
        fault injector is suppressing them)."""
        if not self.alive or self.drop_health_checks:
            return None
        self.last_heartbeat = self.clock.now()
        return self.last_heartbeat

    # -- job processing -----------------------------------------------------------

    def process(self, job: Job, started_at: float | None = None) -> JobResult:
        """Run one job to completion (synchronous, simulated time).

        ``started_at`` lets the caller offset the job's simulated start
        (the v2 driver passes poll time + container acquisition so the
        worker's spans nest after the container span); it defaults to
        the clock.
        """
        started = self.clock.now() if started_at is None else started_at
        if self.crash_mid_job:
            # fault injection: the process dies after taking the job
            # but before producing a result
            self.crash_mid_job = False
            self.crash()
        if not self.alive:
            return JobResult(job_id=job.job_id, status=JobStatus.FAILED,
                             worker_name=self.name, started_at=started,
                             finished_at=started,
                             error=f"worker {self.name} is down")
        self.active_jobs += 1
        self.jobs_processed += 1
        tracer = self.telemetry.tracer
        span = NULL_SPAN
        if tracer.enabled:
            span = tracer.start_span("process", parent=job.trace,
                                     time=started, job_id=job.job_id,
                                     worker=self.name, lab=job.lab.slug,
                                     kind=job.kind.value)
        try:
            result = self._evaluate_cached(job, started, span)
        finally:
            self.active_jobs -= 1
        span.end(time=max(started, result.finished_at),
                 status=result.status.value)
        self.busy_seconds += result.service_seconds
        for d in result.datasets:
            self.outcome_counts[d.outcome] = (
                self.outcome_counts.get(d.outcome, 0) + 1)
        return result

    def _evaluate_cached(self, job: Job, started: float,
                         span: Any = NULL_SPAN) -> JobResult:
        """Consult the grading result cache before the sandbox: a
        resubmission of unchanged code against unchanged datasets is
        answered from cache without entering the sandbox at all."""
        if self.result_cache is None:
            return self._evaluate(job, started, span)
        cached = self.result_cache.fetch(job, worker_name=self.name,
                                         now=started)
        if cached is not None:
            self.cache_hits += 1
            span.event("cache.hit", time=started, cache="grading_results")
            return cached
        span.event("cache.miss", time=started, cache="grading_results")
        result = self._evaluate(job, started, span)
        self.result_cache.complete(job, result)
        return result

    def _evaluate(self, job: Job, started: float,
                  span: Any = NULL_SPAN) -> JobResult:
        lab = job.lab
        sandbox = SandboxExecutor(SandboxConfig(
            policy=self.config.policy,
            compile_limit_s=lab.compile_limit_s,
            run_limit_s=lab.run_limit_s,
            scanner=self.config.scanner,
        ), telemetry=self.telemetry)
        result = JobResult(job_id=job.job_id, status=JobStatus.COMPLETED,
                           worker_name=self.name, started_at=started)
        elapsed = JOB_OVERHEAD_S
        tag = requirement_tag(job)
        tracer = self.telemetry.tracer

        if job.kind is JobKind.COMPILE_ONLY:
            indices: list[int] = []
        elif job.kind is JobKind.FULL_GRADING:
            indices = list(range(len(lab.dataset_sizes)))
        else:
            indices = [min(job.dataset_index, len(lab.dataset_sizes) - 1)]

        # compile-only check first so pure compile jobs still sandbox-scan
        compile_start = started + elapsed
        compile_probe = sandbox.execute(
            job.source, self._compile_fn(lab), lambda artifact, env: None)
        result.compile_ok = compile_probe.ok
        result.compile_message = compile_probe.stderr
        result.compile_seconds = compile_probe.compile_seconds
        elapsed += compile_probe.compile_seconds
        self.telemetry.record_stage("compile", compile_probe.compile_seconds,
                                    tag=tag, trace=job.trace)
        if tracer.enabled:
            # end at started + elapsed (not compile_start + seconds):
            # same value, but the same summation order as finished_at,
            # so nesting survives float non-associativity
            tracer.start_span(
                "compile", parent=span, time=compile_start,
                job_id=job.job_id, ok=compile_probe.ok).end(
                    time=started + elapsed)
        if not compile_probe.ok:
            result.finished_at = started + elapsed
            return result

        for index in indices:
            data = lab.dataset(index)
            max_steps = int(lab.run_limit_s * STEPS_PER_LIMIT_SECOND)
            exec_start = started + elapsed
            run = sandbox.execute(
                job.source, self._compile_fn(lab),
                self._run_fn(lab, data, max_steps))
            elapsed += run.compile_seconds + run.run_seconds
            self.telemetry.record_stage(
                "exec", run.compile_seconds + run.run_seconds, tag=tag,
                trace=job.trace)
            if tracer.enabled:
                tracer.start_span(
                    "exec", parent=span, time=exec_start,
                    job_id=job.job_id, dataset_index=index,
                    outcome=run.outcome.value).end(
                        time=started + elapsed)
            if run.ok:
                execution = run.value
                outcome = DatasetOutcome(
                    dataset_index=index,
                    outcome=ExecutionOutcome.OK.value,
                    correct=execution.passed,
                    report=execution.compare.report(),
                    stdout=tuple(execution.stdout),
                    kernel_seconds=execution.kernel_seconds,
                    profile=self._profile_summary(execution))
                self._attach_line_profile(job, index, execution, outcome)
                result.datasets.append(outcome)
            else:
                result.datasets.append(DatasetOutcome(
                    dataset_index=index, outcome=run.outcome.value,
                    correct=False, report=run.stderr))
        result.finished_at = started + elapsed
        return result

    def _attach_line_profile(self, job: Job, index: int, execution: Any,
                             outcome: DatasetOutcome) -> None:
        """Attach the per-line ledger to the attempt result, assert the
        lab's line budgets against it, and persist it in the profile
        CAS keyed by the program's preprocessed-source fingerprint
        (identical resubmissions share one blob)."""
        lp = getattr(execution, "line_profile", None)
        if lp is None:
            return
        outcome.line_profile = lp
        if job.lab.line_budgets:
            outcome.budget_violations = tuple(check_line_budgets(
                job.lab.line_budgets, lp, job.source))
        if self.profile_cas is None or not execution.fingerprint:
            return
        key = (execution.fingerprint, job.lab.slug, index)
        address = self._profile_index.get(key)
        if address is not None and self.profile_cas.contains(address):
            self.profile_cache_hits += 1
        else:
            address = self.profile_cas.put(lp.to_json().encode())
            self._profile_index[key] = address
        outcome.profile_address = address

    def cached_profile(self, fingerprint: str, lab_slug: str,
                       dataset_index: int) -> "LineProfile | None":
        """Recall a previously stored ledger from the profile CAS, or
        None when this (program, lab, dataset) was never profiled."""
        if self.profile_cas is None:
            return None
        address = self._profile_index.get(
            (fingerprint, lab_slug, dataset_index))
        if address is None or not self.profile_cas.contains(address):
            return None
        return LineProfile.from_json(self.profile_cas.get(address).decode())

    @staticmethod
    def _profile_summary(execution: Any) -> dict[str, float]:
        """Aggregate kernel counters into the per-attempt profile the
        platform shows next to each attempt (and that automated
        feedback reasons over)."""
        stats = execution.kernel_stats
        if not stats:
            return {}
        loads = sum(s.global_load_transactions for s in stats)
        reqs = sum(s.global_load_requests for s in stats)
        return {
            "kernels": float(len(stats)),
            "instructions": float(sum(s.instructions for s in stats)),
            "load_transactions": float(loads),
            "load_efficiency": (
                min(1.0, sum(s.bytes_read for s in stats)
                    / (loads * 128.0)) if loads else 1.0),
            "load_requests": float(reqs),
            "shared_accesses": float(sum(s.shared_accesses for s in stats)),
            "bank_conflicts": float(sum(s.bank_conflicts for s in stats)),
            "atomic_ops": float(sum(s.atomic_ops for s in stats)),
            "max_atomic_contention": float(max(
                (s.max_atomic_contention for s in stats), default=0)),
            "barriers": float(sum(s.barriers for s in stats)),
        }

    def _compile_fn(self, lab: LabDefinition):
        def compile_fn(source: str, limiter: Any):
            try:
                program = compile_source(source, cache=self.compile_cache,
                                         telemetry=self.telemetry)
            except CompileError as exc:
                limiter.charge(0.2)  # front-end bails early
                raise CompileFailure(str(exc)) from None
            # a CompileCache hit charges zero synthetic nvcc cost
            limiter.charge(program.estimated_compile_seconds)
            return program

        return compile_fn

    def _run_fn(self, lab: LabDefinition, data: Any, max_steps: int):
        from repro.minicuda.interpreter import KernelHang
        from repro.sandbox.limits import TimeLimitExceeded

        def run_fn(artifact: Any, env: SandboxEnv):
            try:
                execution = execute_lab_source(
                    lab, artifact.source, data, spec=self.config.gpu_spec,
                    max_steps=max_steps,
                    stdout_hook=lambda _line: None,
                    syscall_hook=env.gate.invoke,
                    engine=self.config.kernel_engine,
                    telemetry=self.telemetry,
                    profile=self.config.line_profile)
            except KernelHang:
                # an exhausted step budget is the watchdog firing
                raise TimeLimitExceeded("run", lab.run_limit_s,
                                        lab.run_limit_s) from None
            env.run_limiter.charge(execution.device_seconds + 0.01)
            return execution

        return run_fn
