"""Grading memoization: resubmitted identical work is answered from cache.

The dominant MOOC pattern is a student (or thousands of them) running
byte-identical code against unchanged instructor datasets. Evaluation
is deterministic — same source, same datasets, same sandbox policy in,
same :class:`~repro.cluster.job.JobResult` out — so the grading path
memoizes results keyed by ``(program_hash, dataset_hash,
requirements, kind, dataset_index)``:

* **program_hash** — sha256 of the submitted source;
* **dataset_hash** — :func:`repro.labs.config.lab_fingerprint`, which
  digests the §IV-E config JSON (generator, sizes, limits, rubric,
  evaluation mode) plus the dataset base seed, so any instructor edit
  or config-version bump invalidates every dependent entry;
* **requirements** — the worker tags the job needs (an ``mpi`` job's
  result is distinct from a single-GPU one even for equal source).

Result payloads are serialized to JSON and stored in the
content-addressed store (:mod:`repro.cache.cas`), so identical results
reached from *different* keys (e.g. two labs sharing a dataset) are
stored once, integrity-verified on read, and ref-counted across keys.
A pluggable eviction policy (LRU entries + byte cap + optional TTL)
bounds the footprint and releases CAS references as entries age out.
A cache hit re-materializes a fresh :class:`JobResult` without
occupying a worker or a container slot.
"""

from __future__ import annotations

import json
from typing import Any

from repro.cache import (
    HIT,
    JOINED,
    CacheConfig,
    CacheStats,
    CompositePolicy,
    ContentAddressedStore,
    EvictionPolicy,
    IntegrityError,
    LRUPolicy,
    MemoTable,
    SizeCappedPolicy,
    TTLPolicy,
)
from repro.cache.keys import compose_key, hash_text
from repro.cluster.job import DatasetOutcome, Job, JobKind, JobResult, JobStatus
from repro.labs.config import lab_fingerprint
from repro.minicuda.compiler import CompileCache
from repro.storage import Bucket

#: Synthetic seconds a cache hit costs (key lookup + payload fetch).
CACHE_HIT_SECONDS = 0.002


def serialize_result(result: JobResult) -> bytes:
    """JSON payload for the CAS. Worker identity, job id, timestamps,
    and per-dispatch ``extra`` are deliberately excluded — they belong
    to the *dispatch*, not to the content-determined outcome."""
    payload = {
        "status": result.status.value,
        "compile_ok": result.compile_ok,
        "compile_message": result.compile_message,
        "compile_seconds": result.compile_seconds,
        "error": result.error,
        "service_seconds": result.service_seconds,
        "datasets": [{
            "dataset_index": d.dataset_index,
            "outcome": d.outcome,
            "correct": d.correct,
            "report": d.report,
            "stdout": list(d.stdout),
            "kernel_seconds": d.kernel_seconds,
            "profile": d.profile,
        } for d in result.datasets],
    }
    return json.dumps(payload, sort_keys=True).encode("utf-8")


def revive_result(payload: bytes, job: Job, worker_name: str,
                  now: float) -> JobResult:
    """Rebuild a fresh :class:`JobResult` for ``job`` from a cached
    payload, stamped with the *current* dispatch context and marked
    ``extra["cache_hit"]``."""
    data = json.loads(payload.decode("utf-8"))
    result = JobResult(
        job_id=job.job_id,
        status=JobStatus(data["status"]),
        worker_name=worker_name,
        compile_ok=data["compile_ok"],
        compile_message=data["compile_message"],
        compile_seconds=0.0,  # nothing was compiled this time
        started_at=now,
        finished_at=now + CACHE_HIT_SECONDS,
        error=data["error"],
    )
    for d in data["datasets"]:
        result.datasets.append(DatasetOutcome(
            dataset_index=d["dataset_index"],
            outcome=d["outcome"],
            correct=d["correct"],
            report=d["report"],
            stdout=tuple(d["stdout"]),
            kernel_seconds=d["kernel_seconds"],
            profile=d["profile"]))
    result.extra["cache_hit"] = True
    result.extra["cached_service_s"] = data["service_seconds"]
    return result


class GradingResultCache:
    """Memoized grading outcomes over a content-addressed payload store.

    The single-flight memo table maps keys to CAS addresses; eviction
    (driven by the pluggable policy) releases the CAS reference, and
    the blob disappears when its last referencing key is gone.
    """

    def __init__(self, config: CacheConfig | None = None,
                 bucket: Bucket | None = None,
                 policy: EvictionPolicy | None = None,
                 stats: CacheStats | None = None,
                 clock: Any = None,
                 base_seed: int = 1234):
        config = config or CacheConfig()
        self.stats = stats if stats is not None else CacheStats()
        self.cas = ContentAddressedStore(
            bucket=bucket, verify_on_read=config.verify_reads)
        if policy is None:
            policies: list[EvictionPolicy] = [
                LRUPolicy(config.result_entries),
                SizeCappedPolicy(config.result_max_bytes),
            ]
            if config.ttl_s is not None:
                policies.append(TTLPolicy(config.ttl_s))
            policy = CompositePolicy(tuple(policies))
        self.memo = MemoTable(
            policy=policy, stats=self.stats, clock=clock,
            weigh=self._weigh_address, on_evict=self._release_address,
            cache_name="grading_results")
        self.base_seed = base_seed
        self._fingerprints: dict[str, str] = {}  # lab slug -> cached fp

    def _weigh_address(self, address: Any) -> int:
        if isinstance(address, str) and self.cas.contains(address):
            return self.cas.size_of(address)
        return 0

    def _release_address(self, key: str, address: Any) -> None:
        if isinstance(address, str) and self.cas.contains(address):
            self.cas.release(address)

    # -- key derivation ----------------------------------------------------

    def key_for(self, job: Job) -> str:
        """(program_hash, dataset_hash, requirements, kind, index)."""
        fp = self._fingerprints.get(job.lab.slug)
        if fp is None:
            fp = lab_fingerprint(job.lab, self.base_seed)
            self._fingerprints[job.lab.slug] = fp
        if job.kind is JobKind.RUN_DATASET and job.lab.dataset_sizes:
            index = min(job.dataset_index, len(job.lab.dataset_sizes) - 1)
        else:
            index = 0
        return compose_key(hash_text(job.source), fp,
                           job.requirements, job.kind.value, index)

    def invalidate_lab(self, slug: str) -> None:
        """Instructor changed a lab: forget its memoized fingerprint so
        new keys derive from the updated config (old entries can never
        be hit again and age out via the eviction policy)."""
        self._fingerprints.pop(slug, None)

    # -- lookup / store ----------------------------------------------------

    def fetch(self, job: Job, worker_name: str = "",
              now: float = 0.0) -> JobResult | None:
        """Serve ``job`` from cache, or return None and open a flight.

        On None the caller must evaluate the job and call
        :meth:`complete` (which also closes the flight for any
        concurrent pollers that joined it meanwhile).
        """
        key = self.key_for(job)
        role, flight = self.memo.begin(key)
        if role == JOINED:
            # a concurrent identical request is mid-evaluation; the sim
            # cannot block, so this poller recomputes — the join is
            # still counted as a dedup opportunity in the stats
            return None
        if role != HIT:
            return None  # owner: caller evaluates, then complete()s
        address = flight.result()
        try:
            payload = self.cas.get(address)
        except IntegrityError:
            self.memo.invalidate(key)
            return None
        result = revive_result(payload, job, worker_name, now)
        self.stats.seconds_saved += float(
            result.extra.get("cached_service_s", 0.0))
        return result

    def abandon(self, job: Job) -> None:
        """The flight's owner died without a result (worker crash
        mid-job): close the single-flight so the redelivered job's
        worker becomes a fresh owner instead of joining a computation
        that will never be delivered."""
        self.memo.abandon(self.key_for(job))

    def cacheable(self, result: JobResult) -> bool:
        """Only deterministic, completed evaluations are memoized —
        infrastructure failures and rejections must be retried."""
        return result.status is JobStatus.COMPLETED and not result.error

    def complete(self, job: Job, result: JobResult) -> str | None:
        """Owner hands in the evaluated result; returns the CAS address
        (None when the result is not cacheable)."""
        key = self.key_for(job)
        if self.memo.peek(key) is not None:
            self.memo.abandon(key)
            return None  # someone else completed it first
        if not self.cacheable(result):
            self.memo.abandon(key)
            return None
        payload = serialize_result(result)
        address = self.cas.put(payload)
        self.memo.deliver(key, address)
        return address

    def __len__(self) -> int:
        return len(self.memo)

    def snapshot(self) -> dict[str, float]:
        snap = self.stats.snapshot()
        snap["entries"] = len(self.memo)
        snap["cas_blobs"] = len(self.cas)
        snap["cas_bytes"] = self.cas.total_bytes
        snap["integrity_failures"] = self.cas.stats.integrity_failures
        return snap


class PlatformCaches:
    """The cache assembly one platform (or fleet) shares.

    * ``compile`` — front-end results keyed by preprocessed-source hash
      (shared by every worker: N workers compiling the same source pay
      for one compile);
    * ``results`` — grading outcomes keyed by
      ``(program_hash, dataset_hash, requirements)``;
    * ``grades`` — rubric computations memoized by the Grader.
    """

    def __init__(self, config: CacheConfig | None = None,
                 clock: Any = None, bucket: Bucket | None = None,
                 base_seed: int = 1234):
        self.config = config or CacheConfig()
        self.compile = CompileCache(max_entries=self.config.compile_entries,
                                    clock=clock)
        self.results = GradingResultCache(config=self.config, bucket=bucket,
                                          clock=clock, base_seed=base_seed)
        self.grades = MemoTable(stats=CacheStats(), clock=clock,
                                cache_name="grades")

    def attach_telemetry(self, telemetry: Any) -> None:
        """Late-bind the platform's telemetry bundle (caches are built
        by callers before any platform exists)."""
        self.compile.memo.telemetry = telemetry
        self.compile.memo.cache_name = "compile"
        self.results.memo.telemetry = telemetry
        self.grades.telemetry = telemetry

    def snapshot(self) -> dict[str, dict[str, float]]:
        """Point-in-time stats for dashboards/benchmarks."""
        return {
            "compile": self.compile.snapshot(),
            "results": self.results.snapshot(),
            "grades": self.grades.stats.snapshot(),
        }
