"""Worker provisioning policies.

The paper's challenge C ("participation reduces as course progresses")
motivates elastic capacity: "a statically-provisioned computing
resource large enough for the beginning of the course will be mostly
idle by the end", and operationally "we increased the number of GPUs
available to WebGPU the day before the deadline" (Section III).

Three policies cover the space the benchmarks sweep:

* :class:`StaticProvisioner` — fixed fleet sized for the peak;
* :class:`ReactiveAutoscaler` — utilisation-tracking scale up/down
  with a cooldown (the cloud-native answer);
* :class:`DeadlineAwareScaler` — reactive plus a pre-deadline boost
  window, modelling what the operators actually did;
* :class:`SLOBurnPolicy` — sizes the fleet on the *observed* queue-wait
  SLO burn rate (p95 / target) instead of raw depth or offered load —
  multiplicative increase while the SLO burns, slow additive decrease
  once it recovers (the fabric autoscaler's policy head).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass(frozen=True)
class ScalingDecision:
    """Target worker count at a point in time, with the reason."""

    timestamp: float
    target: int
    reason: str


class StaticProvisioner:
    """Always the same fleet size."""

    def __init__(self, size: int):
        if size < 1:
            raise ValueError("fleet size must be >= 1")
        self.size = size

    def target_workers(self, now: float, demand: float,
                       current: int) -> ScalingDecision:
        return ScalingDecision(now, self.size, "static")


@dataclass
class ReactiveAutoscaler:
    """Track demand: keep utilisation near ``target_utilization``.

    ``demand`` is offered load in jobs-per-worker-capacity units (e.g.
    active users x jobs/user-hour x service time / 3600). The policy
    sizes the fleet to ``demand / target_utilization``, bounded by
    [min_workers, max_workers], changing at most once per ``cooldown_s``.
    """

    target_utilization: float = 0.7
    min_workers: int = 1
    max_workers: int = 64
    cooldown_s: float = 900.0
    _last_change: float = field(default=-math.inf)
    _current_target: int = 0
    decisions: list[ScalingDecision] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not (0 < self.target_utilization <= 1):
            raise ValueError("target_utilization must be in (0, 1]")
        self._current_target = self.min_workers

    def target_workers(self, now: float, demand: float,
                       current: int) -> ScalingDecision:
        desired = math.ceil(max(0.0, demand) / self.target_utilization)
        desired = max(self.min_workers, min(self.max_workers, desired))
        if desired != self._current_target \
                and now - self._last_change >= self.cooldown_s:
            self._current_target = desired
            self._last_change = now
            decision = ScalingDecision(now, desired,
                                       f"reactive: demand={demand:.2f}")
            self.decisions.append(decision)
            return decision
        return ScalingDecision(now, self._current_target, "hold")


@dataclass
class SLOBurnPolicy:
    """Multiplicative-increase / additive-decrease sizing on SLO burn.

    ``burn`` is the control signal from the SLO meter: windowed p95
    queue wait divided by the SLO target. Above 1.0 the fleet grows by
    the burn factor (capped at ``max_step_factor`` per decision — a 4x
    burn does not quadruple the fleet in one cooldown, it doubles it
    twice); below ``scale_down_burn`` it shrinks by one worker at a
    time, so recovery never flaps back into the storm.
    """

    min_workers: int = 1
    max_workers: int = 64
    scale_down_burn: float = 0.5
    max_step_factor: float = 2.0
    cooldown_s: float = 60.0
    _last_change: float = field(default=-math.inf)
    decisions: list[ScalingDecision] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.min_workers < 1 or self.max_workers < self.min_workers:
            raise ValueError("need 1 <= min_workers <= max_workers")
        if self.max_step_factor <= 1.0:
            raise ValueError("max_step_factor must be > 1")

    def target_workers(self, now: float, burn: float,
                       current: int) -> ScalingDecision:
        current = max(current, 1)
        if now - self._last_change < self.cooldown_s:
            return ScalingDecision(now, current, "hold (cooldown)")
        if burn > 1.0:
            factor = min(burn, self.max_step_factor)
            desired = min(self.max_workers,
                          max(current + 1, math.ceil(current * factor)))
            reason = f"slo burn {burn:.2f}x"
        elif burn < self.scale_down_burn:
            desired = max(self.min_workers, current - 1)
            reason = f"slo recovered (burn {burn:.2f}x)"
        else:
            return ScalingDecision(now, current, "hold")
        if desired != current:
            self._last_change = now
            decision = ScalingDecision(now, desired, reason)
            self.decisions.append(decision)
            return decision
        return ScalingDecision(now, current, "hold")


@dataclass
class DeadlineAwareScaler:
    """Reactive scaling plus a boost window before each deadline.

    ``deadlines`` are timestamps (seconds); within ``boost_window_s``
    before any of them, the fleet is at least ``boost_workers`` — the
    paper's "increase the number of GPUs the day before the deadline".
    """

    base: ReactiveAutoscaler
    deadlines: tuple[float, ...] = ()
    boost_window_s: float = 24 * 3600.0
    boost_workers: int = 8

    def target_workers(self, now: float, demand: float,
                       current: int) -> ScalingDecision:
        decision = self.base.target_workers(now, demand, current)
        for deadline in self.deadlines:
            if 0 <= deadline - now <= self.boost_window_s:
                if decision.target < self.boost_workers:
                    return ScalingDecision(
                        now, self.boost_workers,
                        f"deadline boost (deadline at {deadline:.0f})")
        return decision
