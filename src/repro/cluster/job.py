"""Job and result records exchanged between web-server and workers."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.labs.base import LabDefinition


class JobStatus(enum.Enum):
    """Lifecycle of a compile/run job."""

    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"          # infrastructure failure (worker died)
    REJECTED = "rejected"      # rate limit / security rejection


class JobKind(enum.Enum):
    """What the student asked for (the paper's student actions 2/3/5)."""

    COMPILE_ONLY = "compile"
    RUN_DATASET = "run"        # attempt against one chosen dataset
    FULL_GRADING = "grade"     # all datasets, rubric applied


_job_ids = itertools.count(1)


@dataclass
class DeliveryState:
    """Broker-side at-least-once bookkeeping carried by the job.

    ``attempts`` counts deliveries handed out (a job completed on its
    first poll has ``attempts == 1``); ``failures`` holds one record
    per failed delivery (time, consumer, reason, backoff) — the history
    a dead-lettered job is parked with.
    """

    attempts: int = 0
    failures: list[dict[str, Any]] = field(default_factory=list)

    @property
    def redeliveries(self) -> int:
        return max(0, self.attempts - 1)


@dataclass
class Job:
    """One unit of work pushed to (v1) or pulled by (v2) a worker."""

    lab: LabDefinition
    source: str
    kind: JobKind = JobKind.RUN_DATASET
    dataset_index: int = 0
    user: str = ""
    #: course key; with the lab slug it forms the fabric partition key
    #: ``course/lab`` so one course's deadline storm lands on one shard
    course: str = ""
    submission_id: int = 0
    submitted_at: float = 0.0
    job_id: int = field(default_factory=lambda: next(_job_ids))
    delivery: DeliveryState = field(default_factory=DeliveryState)
    #: telemetry TraceContext this job extends (set by the platform at
    #: submit, carried across the broker so redeliveries, cache hits,
    #: and the worker's sandbox spans all land in one trace); None when
    #: tracing is off or the job was built outside a platform.
    trace: Any = None

    def __post_init__(self) -> None:
        if self.dataset_index < 0:
            raise ValueError("dataset_index must be >= 0, got "
                             f"{self.dataset_index}")

    @property
    def requirements(self) -> frozenset[str]:
        """Worker tags this job needs (v2 tag matching, Section VI-A)."""
        return self.lab.requirements


@dataclass
class DatasetOutcome:
    """Result of one dataset evaluation inside a job."""

    dataset_index: int
    outcome: str                 # sandbox ExecutionOutcome value
    correct: bool
    report: str = ""
    stdout: tuple[str, ...] = ()
    kernel_seconds: float = 0.0
    #: aggregated kernel profile for this dataset (feedback engine input)
    profile: dict[str, float] = field(default_factory=dict)
    #: per-source-line ledger (repro.profiler.LineProfile) when the
    #: worker ran with line profiling on; None otherwise
    line_profile: Any = None
    #: CAS address of the serialized ledger (when a profile CAS is
    #: attached to the worker); "" otherwise
    profile_address: str = ""
    #: per-line budget violations (repro.profiler.BudgetViolation)
    #: asserted from the lab's ``line_budgets``
    budget_violations: tuple[Any, ...] = ()


@dataclass
class JobResult:
    """What the worker sends back to the web-server."""

    job_id: int
    status: JobStatus
    worker_name: str = ""
    compile_ok: bool = False
    compile_message: str = ""
    compile_seconds: float = 0.0
    datasets: list[DatasetOutcome] = field(default_factory=list)
    started_at: float = 0.0
    finished_at: float = 0.0
    error: str = ""
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def all_correct(self) -> bool:
        return (self.compile_ok and bool(self.datasets)
                and all(d.correct for d in self.datasets))

    @property
    def service_seconds(self) -> float:
        return self.finished_at - self.started_at
