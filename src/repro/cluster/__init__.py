"""WebGPU 1.0 cluster substrate (paper Figure 2).

Three node classes — web-servers, database servers, and GPU workers —
"since these three node types are separate, each can be scaled as
required". This package provides the worker side and the dispatch
machinery the web-server uses:

* :mod:`repro.cluster.node` — node identity, zones, the simulation
  clock protocol;
* :mod:`repro.cluster.job` — job and result records;
* :mod:`repro.cluster.worker` — the GPU worker: blacklist scan,
  sandboxed compile + execute against lab datasets, time limits,
  health-check emission;
* :mod:`repro.cluster.health` — heartbeat tracking and eviction
  ("the web-server would evict the worker from the pool of workers if
  a health check is not received within an allotted time");
* :mod:`repro.cluster.pool` — the worker pool and v1's *push*
  dispatcher (web-server picks a worker and sends the job);
* :mod:`repro.cluster.scaling` — provisioning policies: static,
  reactive, and the paper's deadline-aware manual scaling;
* :mod:`repro.cluster.faults` — fault injection for resilience tests.
"""

from repro.cluster.node import Clock, ManualClock, Node
from repro.cluster.job import Job, JobResult, JobStatus
from repro.cluster.worker import GpuWorker, WorkerConfig
from repro.cluster.result_cache import GradingResultCache, PlatformCaches
from repro.cluster.health import HealthMonitor
from repro.cluster.pool import DispatchError, PushDispatcher, WorkerPool
from repro.cluster.scaling import (
    DeadlineAwareScaler,
    ReactiveAutoscaler,
    ScalingDecision,
    SLOBurnPolicy,
    StaticProvisioner,
)
from repro.cluster.faults import FaultInjector

__all__ = [
    "Clock",
    "DeadlineAwareScaler",
    "DispatchError",
    "FaultInjector",
    "GpuWorker",
    "GradingResultCache",
    "HealthMonitor",
    "Job",
    "JobResult",
    "JobStatus",
    "ManualClock",
    "Node",
    "PlatformCaches",
    "PushDispatcher",
    "ReactiveAutoscaler",
    "ScalingDecision",
    "SLOBurnPolicy",
    "StaticProvisioner",
    "WorkerConfig",
    "WorkerPool",
]
