"""Fault injection for resilience tests and benchmarks."""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.cluster.worker import GpuWorker


@dataclass
class FaultInjector:
    """Deterministic (seeded) fault injection against a worker fleet."""

    seed: int = 0
    log: list[tuple[str, str]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    def crash(self, worker: GpuWorker) -> None:
        """Kill a worker outright (process() fails, heartbeats stop)."""
        worker.crash()
        self.log.append(("crash", worker.name))

    def crash_mid_job(self, worker: GpuWorker) -> None:
        """Arm a crash that fires *between* job poll and completion —
        the worker dies holding a leased job, acking nothing. The
        at-least-once broker redelivers the job when the lease expires."""
        worker.crash_mid_job = True
        self.log.append(("crash_mid_job", worker.name))

    def silence(self, worker: GpuWorker) -> None:
        """Worker keeps running but stops sending health checks —
        the scenario eviction exists for (a wedged but live node)."""
        worker.drop_health_checks = True
        self.log.append(("silence", worker.name))

    def wedge_mid_job(self, worker: GpuWorker) -> None:
        """Arm a silence-mid-job: the node wedges holding its next
        leased job — alive but stuck, heartbeats stop, never acks."""
        worker.wedge_mid_job = True
        self.log.append(("wedge_mid_job", worker.name))

    def heal(self, worker: GpuWorker) -> None:
        worker.restart()
        worker.drop_health_checks = False
        worker.crash_mid_job = False
        worker.wedge_mid_job = False
        worker.wedged = False
        self.log.append(("heal", worker.name))

    def crash_shard(self, fabric, name: str, now: float):
        """Kill one broker-fabric shard's primary queue; the shard
        promotes its synchronous replica (waiting jobs, leases, DLQ all
        survive). Returns the shard's FailoverReport."""
        report = fabric.crash_shard(name, now)
        self.log.append(("crash_shard", name))
        return report

    def crash_random_shard(self, fabric, now: float):
        """Crash one random shard (deterministic under the seed)."""
        name = self._rng.choice(sorted(fabric.shards))
        return self.crash_shard(fabric, name, now)

    def crash_random(self, workers: list[GpuWorker]) -> GpuWorker | None:
        """Crash one random alive worker; returns it (or None)."""
        alive = [w for w in workers if w.alive]
        if not alive:
            return None
        victim = self._rng.choice(alive)
        self.crash(victim)
        return victim
