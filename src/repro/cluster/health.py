"""Heartbeat tracking and worker eviction (paper Section III-C).

"An additional task is for the worker node to send regular health
checks to the web-server. The web-server would evict the worker from
the pool of workers if a health check is not received within an
allotted time."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.cluster.node import Clock
from repro.cluster.worker import GpuWorker
from repro.telemetry import WARNING, Telemetry


@dataclass
class HealthMonitor:
    """The web-server side of the health-check protocol."""

    clock: Clock
    timeout_s: float = 30.0
    last_seen: dict[str, float] = field(default_factory=dict)
    evictions: list[tuple[float, str]] = field(default_factory=list)
    telemetry: Telemetry = field(default_factory=Telemetry)

    def record(self, worker_name: str, timestamp: float) -> None:
        """A health check arrived from ``worker_name``."""
        self.last_seen[worker_name] = timestamp

    def poll_workers(self, workers: list[GpuWorker]) -> None:
        """Collect heartbeats from every worker that emits one."""
        for worker in workers:
            stamp = worker.heartbeat()
            if stamp is not None:
                self.record(worker.name, stamp)

    def overdue(self) -> list[str]:
        """Workers whose last health check is older than the timeout."""
        now = self.clock.now()
        return [name for name, seen in self.last_seen.items()
                if now - seen > self.timeout_s]

    def evict_overdue(self, pool: "WorkerPoolLike",
                      evict: Callable[[str], bool] | None = None
                      ) -> list[str]:
        """Evict every overdue worker; returns the evicted names.

        ``evict`` overrides ``pool.evict`` — platforms route this
        through their ``remove_worker`` so their own bookkeeping (e.g.
        a v2 node's pull driver) is torn down with the pool entry. A
        worker the eviction callback does not know (returns False) is
        *not* counted as an eviction and keeps its heartbeat record.
        """
        evict = evict or pool.evict
        evicted = []
        for name in self.overdue():
            if evict(name):
                evicted.append(name)
                now = self.clock.now()
                self.evictions.append((now, name))
                overdue_s = now - self.last_seen.get(name, now)
                self.last_seen.pop(name, None)
                self.telemetry.metrics.counter(
                    "webgpu_health_evictions_total",
                    "workers evicted for missed health checks").inc(
                        worker=name)
                self.telemetry.tracer.log_event(
                    "health.evicted", time=now, level=WARNING,
                    worker=name, overdue_s=overdue_s)
        return evicted

    def forget(self, worker_name: str) -> None:
        """Worker left the fleet (scale-down or administrative removal):
        drop its heartbeat record so it is never reported overdue."""
        self.last_seen.pop(worker_name, None)


class WorkerPoolLike:
    """Protocol stub for documentation; see cluster.pool.WorkerPool."""

    def evict(self, name: str) -> bool:  # pragma: no cover - interface
        raise NotImplementedError
