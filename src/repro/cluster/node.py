"""Node identity and the simulation clock protocol."""

from __future__ import annotations

import itertools
from typing import Protocol, runtime_checkable


@runtime_checkable
class Clock(Protocol):
    """Anything with a ``now()`` — the DES clock or a manual one."""

    def now(self) -> float: ...


class ManualClock:
    """A clock advanced explicitly (tests and standalone platform use)."""

    def __init__(self, start: float = 0.0):
        self._now = start

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise ValueError("cannot advance a clock backwards")
        self._now += seconds
        return self._now

    def set(self, timestamp: float) -> None:
        if timestamp < self._now:
            raise ValueError("cannot move a clock backwards")
        self._now = timestamp


_node_ids = itertools.count(1)


class Node:
    """Base class for platform nodes: identity, zone, liveness."""

    kind = "node"

    def __init__(self, zone: str = "us-east-1a", name: str = ""):
        self.node_id = next(_node_ids)
        self.zone = zone
        self.name = name or f"{self.kind}-{self.node_id}"
        self.alive = True

    def crash(self) -> None:
        """Simulate the node dying (fault injection)."""
        self.alive = False

    def restart(self) -> None:
        self.alive = True

    def __repr__(self) -> str:
        state = "up" if self.alive else "down"
        return f"<{type(self).__name__} {self.name} ({self.zone}, {state})>"
