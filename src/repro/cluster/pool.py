"""Worker pool and the v1 push dispatcher.

In WebGPU 1.0 "the web-server pushed jobs to a worker node" (Section
VI-A): the server must itself pick a worker, know each worker's
capabilities, and notice failures. The pull-based v2 design in
:mod:`repro.broker` removes exactly these obligations; benchmarks
compare the two under heterogeneity and faults.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.job import Job, JobResult, JobStatus
from repro.cluster.worker import GpuWorker


class DispatchError(Exception):
    """No eligible worker is available for a job."""


class WorkerPool:
    """The web-server's registry of known-healthy workers."""

    def __init__(self):
        self._workers: dict[str, GpuWorker] = {}

    def register(self, worker: GpuWorker) -> None:
        self._workers[worker.name] = worker

    def evict(self, name: str) -> bool:
        """Remove a worker (health timeout or scale-down)."""
        return self._workers.pop(name, None) is not None

    def get(self, name: str) -> GpuWorker | None:
        return self._workers.get(name)

    @property
    def workers(self) -> list[GpuWorker]:
        return list(self._workers.values())

    @property
    def size(self) -> int:
        return len(self._workers)

    def eligible(self, job: Job) -> list[GpuWorker]:
        """Registered workers whose tags satisfy the job's requirements.

        Deliberately *not* filtered by liveness: the web-server only
        learns a worker is dead through a failed dispatch or a missed
        health check — the push model's defining weakness (Section VI).
        """
        return [w for w in self._workers.values() if w.can_run(job)]


@dataclass
class PushDispatcher:
    """v1 dispatch: the web-server selects a worker and pushes the job.

    Selection is least-active-jobs with round-robin tie-breaking. If
    the chosen worker turns out to be dead (push finds out the hard
    way — the defining weakness of push), the job is retried on the
    next candidate up to ``max_retries`` times.
    """

    pool: WorkerPool
    max_retries: int = 2
    dispatched: int = 0
    retries: int = 0
    failures: int = 0
    per_worker: dict[str, int] = field(default_factory=dict)
    _rr: int = 0

    def select(self, job: Job) -> GpuWorker:
        candidates = self.pool.eligible(job)
        if not candidates:
            raise DispatchError(
                f"no eligible worker for job {job.job_id} "
                f"(requires {sorted(job.requirements) or 'nothing'}, pool "
                f"has {self.pool.size} worker(s))")
        least = min(w.active_jobs for w in candidates)
        tied = [w for w in candidates if w.active_jobs == least]
        self._rr += 1
        return tied[self._rr % len(tied)]

    def dispatch(self, job: Job) -> JobResult:
        """Push the job to a worker; retry on worker failure."""
        attempts = 0
        last_error = ""
        while attempts <= self.max_retries:
            worker = self.select(job)
            result = worker.process(job)
            self.dispatched += 1
            self.per_worker[worker.name] = (
                self.per_worker.get(worker.name, 0) + 1)
            if result.status is not JobStatus.FAILED:
                return result
            # the push went to a dead worker: evict it and retry
            last_error = result.error
            self.pool.evict(worker.name)
            self.retries += 1
            attempts += 1
        self.failures += 1
        return JobResult(job_id=job.job_id, status=JobStatus.FAILED,
                         error=f"all dispatch attempts failed: {last_error}")
