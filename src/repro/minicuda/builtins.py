"""Catalog of builtin functions and variables for the CUDA-C subset.

Shared between semantic analysis (name/arity checking) and the
interpreter (dispatch). Arity ``None`` means variadic / overloaded.
"""

from __future__ import annotations

#: Implicit variables available inside device code.
DEVICE_VARIABLES = frozenset({
    "threadIdx", "blockIdx", "blockDim", "gridDim", "warpSize",
})

#: Device-side builtin functions: name -> arity (None = variadic).
DEVICE_BUILTINS: dict[str, int | None] = {
    "__syncthreads": 0,
    "atomicAdd": 2,
    "atomicSub": 2,
    "atomicMax": 2,
    "atomicMin": 2,
    "atomicExch": 2,
    "atomicCAS": 3,
    "printf": None,
    # OpenCL work-item functions
    "get_global_id": 1,
    "get_local_id": 1,
    "get_group_id": 1,
    "get_local_size": 1,
    "get_num_groups": 1,
    "get_global_size": 1,
    "barrier": 1,
}

#: Math builtins usable in both host and device code.
MATH_BUILTINS: dict[str, int | None] = {
    "min": 2, "max": 2, "abs": 1,
    "fminf": 2, "fmaxf": 2, "fmin": 2, "fmax": 2,
    "sqrt": 1, "sqrtf": 1, "rsqrtf": 1,
    "fabs": 1, "fabsf": 1,
    "exp": 1, "expf": 1, "log": 1, "logf": 1, "log2f": 1,
    "pow": 2, "powf": 2,
    "sin": 1, "sinf": 1, "cos": 1, "cosf": 1, "tanf": 1,
    "floor": 1, "floorf": 1, "ceil": 1, "ceilf": 1,
    "round": 1, "roundf": 1,
    "__fdividef": 2,
}

#: Host-side builtins: CUDA runtime + libwb + MPI + stdlib.
HOST_BUILTINS: dict[str, int | None] = {
    # CUDA runtime
    "cudaMalloc": 2,
    "cudaFree": 1,
    "cudaMemcpy": 4,
    "cudaMemset": 3,
    "cudaDeviceSynchronize": 0,
    "cudaGetDeviceCount": 1,
    "cudaGetDeviceProperties": 2,
    "cudaSetDevice": 1,
    "cudaGetLastError": 0,
    "cudaGetErrorString": 1,
    "cudaMemcpyToSymbol": 3,
    # libwb
    "wbArg_read": None,
    "wbArg_getInputFile": 2,
    "wbImport": None,
    "wbExport": None,
    "wbLog": None,
    "wbTime_start": None,
    "wbTime_stop": None,
    "wbSolution": None,
    "wbCheck": 1,
    # stdlib
    "malloc": 1,
    "calloc": 2,
    "free": 1,
    "memset": 3,
    "memcpy": 3,
    "printf": None,
    "fprintf": None,
    "exit": 1,
    "assert": 1,
    "rand": 0,
    "srand": 1,
    "fopen": 2,
    "fclose": 1,
    "fread": 4,
    "fwrite": 4,
    "remove": 1,
    "socket": 3,
    "connect": 3,
    # MPI (Multi-GPU Stencil lab)
    "MPI_Init": 2,
    "MPI_Finalize": 0,
    "MPI_Comm_rank": 2,
    "MPI_Comm_size": 2,
    "MPI_Send": 6,
    "MPI_Recv": 7,
    "MPI_Barrier": 1,
    "MPI_Allreduce": 6,
}

#: Identifier-like constants visible to host code.
HOST_CONSTANTS: dict[str, object] = {
    "cudaMemcpyHostToDevice": "h2d",
    "cudaMemcpyDeviceToHost": "d2h",
    "cudaMemcpyDeviceToDevice": "d2d",
    "cudaSuccess": 0,
    "MPI_COMM_WORLD": "world",
    "MPI_FLOAT": "float",
    "MPI_INT": "int",
    "MPI_DOUBLE": "double",
    "MPI_SUM": "sum",
    "MPI_STATUS_IGNORE": None,
    "CLK_LOCAL_MEM_FENCE": 1,
    "RAND_MAX": 2**31 - 1,
    "stderr": "stderr",
    "stdout": "stdout",
    # libwb log levels
    "TRACE": "TRACE", "DEBUG": "DEBUG", "INFO": "INFO", "ERROR": "ERROR",
    # libwb timer tags
    "Generic": "Generic", "GPU": "GPU", "Compute": "Compute", "Copy": "Copy",
}

#: Constants visible to device code too.
DEVICE_CONSTANTS: dict[str, object] = {
    "CLK_LOCAL_MEM_FENCE": 1,
    "CLK_GLOBAL_MEM_FENCE": 2,
}


def known_in_device(name: str) -> bool:
    return (name in DEVICE_BUILTINS or name in MATH_BUILTINS
            or name in DEVICE_VARIABLES or name in DEVICE_CONSTANTS)


def known_in_host(name: str) -> bool:
    return (name in HOST_BUILTINS or name in MATH_BUILTINS
            or name in HOST_CONSTANTS)
