"""minicuda: a from-scratch compiler for a CUDA-C subset.

The paper's workers invoke ``nvcc`` (or the OpenCL/OpenACC toolchains)
on student source. This package substitutes a complete, self-contained
toolchain for a C dialect large enough to express every lab in the
course (Table II):

* :mod:`repro.minicuda.preprocessor` — comments, ``#define`` object- and
  function-like macros, ``#include``, ``#ifdef`` conditionals;
* :mod:`repro.minicuda.lexer` — tokens with line/column positions;
* :mod:`repro.minicuda.parser` — recursive descent into a typed AST,
  including CUDA's ``kernel<<<grid, block>>>(...)`` launch syntax,
  ``__global__ / __device__ / __shared__ / __constant__`` qualifiers and
  OpenCL's ``__kernel / __global`` spellings;
* :mod:`repro.minicuda.semantic` — symbol resolution, kernel signature
  collection, lvalue and arity checking with source positions;
* :mod:`repro.minicuda.interpreter` — a tree-walking interpreter.
  Device kernels execute as per-thread generators against
  :class:`repro.gpusim.ThreadContext` (so ``__syncthreads()`` maps onto
  the scheduler's lockstep barrier and every memory access is profiled);
  host code runs against a CUDA-runtime + libwb host API
  (:mod:`repro.minicuda.hostapi`);
* :mod:`repro.minicuda.codegen` — the ``closure`` kernel execution
  engine (the default): lowers each checked kernel AST once into nested
  Python closures, memoized per program fingerprint, with the
  tree-walker kept as the ``ast`` reference oracle;
* :mod:`repro.minicuda.srcgen` — the ``codegen`` engine: lowers each
  checked kernel to generated Python source compiled once per program
  fingerprint, with a warp-vectorized fast path for divergence-free
  kernels (fastest; shares the closure engine's memo table under
  versioned keys).

The facade is :func:`repro.minicuda.compiler.compile_source`.
"""

from repro.minicuda.diagnostics import CompileError, Diagnostic, SourcePos
from repro.minicuda.preprocessor import Preprocessor, preprocess
from repro.minicuda.lexer import Lexer, Token, TokenKind, tokenize
from repro.minicuda.parser import Parser, parse
from repro.minicuda.semantic import analyze
from repro.minicuda.compiler import CompileCache, CompiledProgram, compile_source
from repro.minicuda.hostapi import HostEnv, SolutionRecorded, WbTimer
from repro.minicuda.interpreter import ENGINES, resolve_engine

__all__ = [
    "CompileCache",
    "CompileError",
    "CompiledProgram",
    "Diagnostic",
    "ENGINES",
    "HostEnv",
    "Lexer",
    "Parser",
    "Preprocessor",
    "SolutionRecorded",
    "SourcePos",
    "Token",
    "TokenKind",
    "WbTimer",
    "analyze",
    "compile_source",
    "parse",
    "preprocess",
    "resolve_engine",
    "tokenize",
]
