"""AST node definitions for the CUDA-C subset."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.minicuda.diagnostics import SourcePos


# ---------------------------------------------------------------- types

@dataclass(frozen=True)
class CType:
    """A C type: base scalar name, pointer depth, optional array dims.

    ``base`` is the canonical scalar name ("float", "int", "unsigned",
    "double", "char", "bool", "long", "void", "dim3", or a runtime
    handle name). ``pointers`` counts ``*``. ``array_dims`` holds
    declared constant extents for array declarators.
    """

    base: str
    pointers: int = 0
    array_dims: tuple[int, ...] = ()
    const: bool = False

    @property
    def is_pointer(self) -> bool:
        return self.pointers > 0

    @property
    def is_array(self) -> bool:
        return bool(self.array_dims)

    @property
    def is_void(self) -> bool:
        return self.base == "void" and not self.pointers

    @property
    def is_float(self) -> bool:
        return self.base in ("float", "double") and not self.pointers

    @property
    def is_integer(self) -> bool:
        return self.base in ("int", "unsigned", "long", "char", "short",
                             "size_t", "bool") and not self.pointers

    def deref(self) -> "CType":
        if self.pointers < 1:
            raise ValueError(f"cannot dereference non-pointer {self}")
        return CType(self.base, self.pointers - 1, (), self.const)

    def element(self) -> "CType":
        """Element type of an array declarator."""
        return CType(self.base, self.pointers, (), self.const)

    def __str__(self) -> str:
        s = ("const " if self.const else "") + self.base + "*" * self.pointers
        for d in self.array_dims:
            s += f"[{d}]"
        return s


# ------------------------------------------------------------ expressions

@dataclass
class Expr:
    pos: SourcePos = field(default_factory=SourcePos, kw_only=True)


@dataclass
class IntLit(Expr):
    value: int


@dataclass
class FloatLit(Expr):
    value: float


@dataclass
class StrLit(Expr):
    value: str


@dataclass
class BoolLit(Expr):
    value: bool


@dataclass
class NullLit(Expr):
    pass


@dataclass
class Ident(Expr):
    name: str


@dataclass
class Member(Expr):
    """``obj.field`` (dim3/builtin index variables only)."""

    obj: Expr
    field_name: str


@dataclass
class Index(Expr):
    """``base[index]``."""

    base: Expr
    index: Expr


@dataclass
class Call(Expr):
    """``callee(args...)`` — callee is an identifier in this subset."""

    name: str
    args: list[Expr]


@dataclass
class KernelLaunch(Expr):
    """``name<<<grid, block[, shared]>>>(args...)``."""

    name: str
    grid: Expr
    block: Expr
    shared: Optional[Expr]
    args: list[Expr]


@dataclass
class Unary(Expr):
    """Prefix unary: ``- + ! ~ * &``."""

    op: str
    operand: Expr


@dataclass
class IncDec(Expr):
    """``++x / x++ / --x / x--``."""

    op: str  # "++" or "--"
    operand: Expr
    prefix: bool


@dataclass
class Binary(Expr):
    op: str
    left: Expr
    right: Expr


@dataclass
class Assign(Expr):
    """``target op value`` where op in = += -= *= /= %= &= |= ^= <<= >>=."""

    op: str
    target: Expr
    value: Expr


@dataclass
class Conditional(Expr):
    """``cond ? then : otherwise``."""

    cond: Expr
    then: Expr
    otherwise: Expr


@dataclass
class Cast(Expr):
    """``(type) value``."""

    type: CType
    value: Expr


@dataclass
class SizeOf(Expr):
    """``sizeof(type)`` — types only, not expressions."""

    type: CType


# ------------------------------------------------------------- statements

@dataclass
class Stmt:
    pos: SourcePos = field(default_factory=SourcePos, kw_only=True)


@dataclass
class Declarator:
    """One declared name inside a declaration statement."""

    name: str
    type: CType
    init: Optional[Expr]
    ctor_args: list[Expr] = field(default_factory=list)  # dim3 g(x, y);


@dataclass
class DeclStmt(Stmt):
    declarators: list[Declarator]
    shared: bool = False      # __shared__
    constant: bool = False    # __constant__ (file scope)


@dataclass
class ExprStmt(Stmt):
    expr: Expr


@dataclass
class Block(Stmt):
    statements: list[Stmt]


@dataclass
class If(Stmt):
    cond: Expr
    then: Stmt
    otherwise: Optional[Stmt]


@dataclass
class While(Stmt):
    cond: Expr
    body: Stmt


@dataclass
class DoWhile(Stmt):
    body: Stmt
    cond: Expr


@dataclass
class For(Stmt):
    init: Optional[Stmt]      # DeclStmt or ExprStmt
    cond: Optional[Expr]
    step: Optional[Expr]
    body: Stmt


@dataclass
class SwitchCase:
    """One ``case CONST:`` (value) or ``default:`` (value None) arm."""

    value: Optional[int]
    statements: list["Stmt"]


@dataclass
class Switch(Stmt):
    """C ``switch`` with fallthrough semantics."""

    subject: Expr
    cases: list[SwitchCase]


@dataclass
class Return(Stmt):
    value: Optional[Expr]


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Empty(Stmt):
    pass


@dataclass
class AccParallelLoop(Stmt):
    """An OpenACC ``#pragma acc parallel loop`` (or ``kernels``)
    annotating a canonical for-loop: the loop's iterations execute on
    the device with compiler-managed (here: interpreter-managed) data
    movement for every host array the body touches."""

    directive: str       # the pragma text after "pragma"
    loop: "For"


# ------------------------------------------------------------- top level

@dataclass
class Param:
    name: str
    type: CType
    opencl_global: bool = False  # OpenCL __global qualifier


@dataclass
class FuncDef:
    name: str
    return_type: CType
    params: list[Param]
    body: Block
    qualifiers: frozenset[str] = frozenset()
    pos: SourcePos = field(default_factory=SourcePos)
    prototype: bool = False

    @property
    def is_kernel(self) -> bool:
        return "__global__" in self.qualifiers or "__kernel" in self.qualifiers

    @property
    def is_device(self) -> bool:
        return "__device__" in self.qualifiers


@dataclass
class GlobalVar:
    """File-scope variable (notably ``__constant__`` arrays)."""

    decl: DeclStmt
    pos: SourcePos = field(default_factory=SourcePos)


@dataclass
class TranslationUnit:
    functions: list[FuncDef]
    globals: list[GlobalVar]

    def function(self, name: str) -> FuncDef:
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(name)

    def kernels(self) -> Sequence[FuncDef]:
        return [f for f in self.functions if f.is_kernel]


def walk(node: Any):
    """Yield every AST node reachable from ``node`` (pre-order)."""
    if isinstance(node, (Expr, Stmt, FuncDef, GlobalVar, TranslationUnit,
                         Declarator, Param)):
        yield node
        for value in vars(node).values():
            yield from walk(value)
    elif isinstance(node, list):
        for item in node:
            yield from walk(item)
