"""Tree-walking interpreter for the CUDA-C subset.

One :class:`Interpreter` instance executes one program. Host code runs
directly; device kernels are packaged as per-thread *generator*
functions (:meth:`Interpreter.make_kernel`) that the gpusim scheduler
executes in lockstep — every ``__syncthreads()`` becomes a ``yield
SYNC`` and every global/shared access routes through the profiling
:class:`~repro.gpusim.ThreadContext`.

All execution methods are generators so barrier yields propagate
through arbitrarily nested statements and device-function calls via
``yield from``.
"""

from __future__ import annotations

import math
import time
from typing import Any, Callable, Iterator

from repro.gpusim.grid import Dim3
from repro.gpusim.host import GpuRuntime
from repro.telemetry import KERNEL_COMPILE_SECONDS
from repro.gpusim.memory import DevicePtr, SharedArray
from repro.gpusim.scheduler import SYNC, ThreadContext
from repro.minicuda import ast_nodes as ast
from repro.minicuda import builtins as bi
from repro.minicuda.diagnostics import SourcePos
from repro.minicuda.semantic import ProgramInfo
from repro.minicuda.values import (
    NULL,
    CType,
    ElemRef,
    Env,
    HostBuffer,
    HostPtr,
    LocalArray,
    MDView,
    MemoryFault,
    NullPtr,
    VarRef,
    coerce,
    dtype_for,
    sizeof_ctype,
)

import numpy as np


class InterpreterError(Exception):
    """A runtime error in the interpreted program (with position)."""

    def __init__(self, message: str, pos: SourcePos | None = None):
        self.pos = pos or SourcePos()
        super().__init__(f"{self.pos}: {message}" if pos else message)


class KernelHang(InterpreterError):
    """The step budget was exhausted (infinite-loop protection)."""


class _Return(Exception):
    def __init__(self, value: Any):
        self.value = value


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


def _c_div(a: Any, b: Any) -> Any:
    if isinstance(a, int) and isinstance(b, int):
        if b == 0:
            raise MemoryFault("integer division by zero")
        q = abs(a) // abs(b)
        return q if (a >= 0) == (b >= 0) else -q
    if b == 0:
        return math.inf if a > 0 else (-math.inf if a < 0 else math.nan)
    return a / b


def _c_mod(a: Any, b: Any) -> Any:
    if isinstance(a, int) and isinstance(b, int):
        if b == 0:
            raise MemoryFault("integer modulo by zero")
        return a - _c_div(a, b) * b
    return math.fmod(a, b)


_BINOPS: dict[str, Callable[[Any, Any], Any]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": _c_div,
    "%": _c_mod,
    "<": lambda a, b: int(a < b),
    "<=": lambda a, b: int(a <= b),
    ">": lambda a, b: int(a > b),
    ">=": lambda a, b: int(a >= b),
    "==": lambda a, b: int(a == b),
    "!=": lambda a, b: int(a != b),
    "<<": lambda a, b: int(a) << int(b),
    ">>": lambda a, b: int(a) >> int(b),
    "&": lambda a, b: int(a) & int(b),
    "|": lambda a, b: int(a) | int(b),
    "^": lambda a, b: int(a) ^ int(b),
}

_MATH_IMPL: dict[str, Callable[..., Any]] = {
    "min": min, "max": max, "abs": abs,
    "fminf": min, "fmaxf": max, "fmin": min, "fmax": max,
    "sqrt": math.sqrt, "sqrtf": math.sqrt,
    "rsqrtf": lambda x: 1.0 / math.sqrt(x),
    "fabs": abs, "fabsf": abs,
    "exp": math.exp, "expf": math.exp,
    "log": math.log, "logf": math.log, "log2f": math.log2,
    "pow": math.pow, "powf": math.pow,
    "sin": math.sin, "sinf": math.sin,
    "cos": math.cos, "cosf": math.cos, "tanf": math.tan,
    "floor": math.floor, "floorf": math.floor,
    "ceil": math.ceil, "ceilf": math.ceil,
    "round": round, "roundf": round,
    "__fdividef": lambda a, b: a / b,
}


def _truthy(value: Any) -> bool:
    if isinstance(value, NullPtr):
        return False
    if isinstance(value, (int, float, bool)):
        return value != 0
    return value is not None


def member_value(obj: Any, field: str, pos: SourcePos) -> Any:
    """``obj.field`` access shared by both execution engines."""
    # dim3/uint3 components and runtime-struct fields (cudaDeviceProp)
    if not field.startswith("_") and hasattr(obj, field):
        value = getattr(obj, field)
        if not callable(value):
            return value
    raise InterpreterError(
        f"no member {field!r} on value of type {type(obj).__name__}", pos)


def read_indexed(base: Any, index: Any, ctx: "ThreadContext | None",
                 pos: SourcePos) -> Any:
    """``base[index]`` dispatch shared by both execution engines."""
    if isinstance(base, DevicePtr):
        if ctx is None:
            raise MemoryFault(
                "segmentation fault: host code dereferenced a device "
                "pointer (use cudaMemcpy)")
        return ctx.load(base, int(index))
    if isinstance(base, HostPtr):
        if ctx is not None:
            raise MemoryFault(
                "invalid device access: kernel dereferenced a host "
                "pointer (pass device memory to kernels)")
        return base.read(int(index))
    if isinstance(base, SharedArray):
        assert ctx is not None
        return ctx.shared_load(base, int(index))
    if isinstance(base, MDView):
        if base.is_scalar_level:
            flat = base.flat_index(int(index))
            return read_indexed(base.storage, flat, ctx, pos)
        return base.sub(int(index))
    if isinstance(base, LocalArray):
        if ctx is not None:
            ctx.count_instr()
        return base.read(int(index))
    if isinstance(base, (list, tuple)):
        return base[int(index)]
    if isinstance(base, NullPtr):
        base.read(0)
    raise InterpreterError(
        f"value of type {type(base).__name__} is not indexable", pos)


def write_indexed(base: Any, index: Any, value: Any,
                  ctx: "ThreadContext | None", pos: SourcePos) -> None:
    """``base[index] = value`` dispatch shared by both engines."""
    if isinstance(base, DevicePtr):
        if ctx is None:
            raise MemoryFault(
                "segmentation fault: host code wrote through a device "
                "pointer (use cudaMemcpy)")
        ctx.store(base, int(index), value)
        return
    if isinstance(base, HostPtr):
        if ctx is not None:
            raise MemoryFault(
                "invalid device access: kernel wrote through a host "
                "pointer")
        base.write(int(index), value)
        return
    if isinstance(base, SharedArray):
        assert ctx is not None
        ctx.shared_store(base, int(index), value)
        return
    if isinstance(base, MDView):
        if base.is_scalar_level:
            flat = base.flat_index(int(index))
            write_indexed(base.storage, flat, value, ctx, pos)
            return
        raise InterpreterError("assignment to a sub-array", pos)
    if isinstance(base, LocalArray):
        if ctx is not None:
            ctx.count_instr()
        base.write(int(index), value)
        return
    if isinstance(base, NullPtr):
        base.write(0, value)
    raise InterpreterError(
        f"value of type {type(base).__name__} is not indexable", pos)


#: Kernel execution engines: ``closure`` (compiled, default),
#: ``ast`` (the tree-walking reference oracle), ``codegen``
#: (generated Python source with a warp-vectorized fast path), and
#: ``simd`` (warp-SIMD numpy batching with masked lane predication;
#: falls back to ``codegen`` per kernel when ineligible).
ENGINES = ("closure", "ast", "codegen", "simd")


def resolve_engine(engine: str | None) -> str:
    """Resolve an engine choice: explicit argument, then the
    ``WEBGPU_KERNEL_ENGINE`` environment variable, then ``closure``."""
    if engine is None:
        import os
        engine = os.environ.get("WEBGPU_KERNEL_ENGINE") or "closure"
    if engine not in ENGINES:
        raise InterpreterError(
            f"unknown kernel engine {engine!r} (expected one of {ENGINES})")
    return engine


def c_format(fmt: str, args: tuple[Any, ...]) -> str:
    """Approximate C printf formatting using Python %-formatting."""
    pyfmt = (fmt.replace("%u", "%d").replace("%lu", "%d")
             .replace("%ld", "%d").replace("%lld", "%d")
             .replace("%lf", "%f").replace("%zu", "%d"))
    try:
        return pyfmt % args if args else pyfmt
    except (TypeError, ValueError):
        return fmt + " " + " ".join(str(a) for a in args)


class Interpreter:
    """Executes one analysed program against a GPU runtime.

    Parameters
    ----------
    info:
        The semantic-analysis result.
    runtime:
        The simulated GPU the program's kernels launch onto.
    host_env:
        Host API provider (libwb/CUDA-runtime/MPI builtins). ``None``
        is acceptable for programs that only define kernels.
    max_steps:
        Combined statement/expression budget; exceeding it raises
        :class:`KernelHang` (infinite-loop protection on both sides).
    """

    def __init__(self, info: ProgramInfo, runtime: GpuRuntime,
                 host_env: Any = None, max_steps: int = 50_000_000,
                 engine: str | None = None, profile: bool = False):
        self.info = info
        self.runtime = runtime
        self.host = host_env
        self.max_steps = max_steps
        self.steps = 0
        self.engine = resolve_engine(engine)
        #: line-level profiling: kernels are bound in profiled mode and
        #: every charge is attributed to its enclosing statement's line
        self.profile = bool(profile)
        self.globals = Env()
        self._init_globals()

    # -- setup ---------------------------------------------------------------

    def _init_globals(self) -> None:
        for gvar in self.info.unit.globals:
            for decl in gvar.decl.declarators:
                value = self._make_global(decl, gvar.decl.constant)
                self.globals.declare(decl.name, value, decl.type)

    def _make_global(self, decl: ast.Declarator, constant: bool) -> Any:
        if decl.type.is_array:
            total = 1
            for d in decl.type.array_dims:
                total *= d
            if constant:
                # kernels may not write __constant__ memory; the host
                # fills it via cudaMemcpyToSymbol (direct buffer access)
                buf = self.runtime.device.malloc(
                    total, dtype_for(decl.type.base),
                    label=f"__constant__ {decl.name}", read_only=True)
                target: Any = buf.ptr()
            else:
                target = LocalArray(decl.name, total, decl.type.base)
            if decl.init is not None:
                values = _flatten_init(decl.init)[:total]
                # bulk init through the zero-copy ndarray view: one
                # vectorized assignment instead of a per-element loop
                dest = (target.buffer.as_ndarray()
                        if isinstance(target, DevicePtr)
                        else target.as_array())
                dest[:len(values)] = values
            if len(decl.type.array_dims) > 1:
                return MDView(target, decl.type.array_dims)
            return target
        if decl.init is not None:
            value = _const_eval(decl.init)
            return coerce(value, decl.type)
        return NULL if decl.type.is_pointer else coerce(0, decl.type)

    # -- step accounting -------------------------------------------------------

    def _step(self, pos: SourcePos) -> None:
        self.steps += 1
        if self.steps > self.max_steps:
            raise KernelHang(
                "execution step budget exhausted (possible infinite loop)",
                pos)

    # -- public entry points ----------------------------------------------------

    def run_host_function(self, name: str, args: tuple[Any, ...] = ()) -> Any:
        """Execute a host function to completion (no barriers allowed)."""
        fn = self.info.host_functions.get(name)
        if fn is None:
            raise InterpreterError(f"no host function {name!r}")
        gen = self._call_user_function(fn, args, ctx=None)
        return _drive_host(gen)

    def make_kernel(self, name: str,
                    args: tuple[Any, ...]) -> Callable[[ThreadContext], Any]:
        """Package kernel ``name`` as a gpusim per-thread callable.

        Under the default ``closure`` engine the kernel's AST is
        lowered once into nested Python closures (memoized per
        program+kernel); barrier-free kernels come back as plain
        functions so the scheduler skips generator machinery entirely.
        The ``codegen`` engine goes one step further and emits real
        Python source per kernel (flat locals, ``compile()``-d once
        per program fingerprint), attaching a warp-vectorized executor
        to divergence-free kernels. The ``simd`` engine lowers eligible
        kernels to whole-warp numpy array programs with masked lane
        predication, falling back to ``codegen`` per kernel otherwise.
        The ``ast`` engine — and any construct the compilers do not
        support — takes the tree-walking path below.
        """
        fn = self.info.kernels.get(name)
        if fn is None:
            raise InterpreterError(f"no kernel {name!r}")
        coerced = self._coerce_args(fn, args)

        if self.engine in ("closure", "codegen", "simd"):
            if self.engine == "closure":
                from repro.minicuda import codegen as backend
            elif self.engine == "simd":
                from repro.minicuda import simd as backend
            else:
                from repro.minicuda import srcgen as backend
            telemetry = getattr(self.runtime, "telemetry", None)
            if telemetry is not None:
                start = time.perf_counter()
                compiled = backend.compile_kernel(self.info, name,
                                                  profile=self.profile)
                telemetry.metrics.histogram(
                    KERNEL_COMPILE_SECONDS,
                    "Kernel compile wall time by engine",
                ).observe(time.perf_counter() - start,
                          engine=self.engine, kernel=name)
            else:
                compiled = backend.compile_kernel(self.info, name,
                                                  profile=self.profile)
            if compiled is not None:
                return compiled.bind(self, coerced)

        def kernel_thread(ctx: ThreadContext) -> Iterator[Any]:
            yield from self._call_user_function(fn, coerced, ctx)

        if self.profile:
            kernel_thread.profiled = True
        return kernel_thread

    def launch_kernel(self, name: str, grid: Any, block: Any,
                      args: tuple[Any, ...]) -> Any:
        """Host-side kernel launch helper (used by KernelLaunch)."""
        kernel = self.make_kernel(name, args)
        return self.runtime.launch(kernel, _as_dim3(grid), _as_dim3(block),
                                   kernel_name=name, engine=self.engine)

    def _coerce_args(self, fn: ast.FuncDef, args: tuple[Any, ...]) -> tuple:
        if len(args) != len(fn.params):
            raise InterpreterError(
                f"{fn.name!r} expects {len(fn.params)} args, got {len(args)}",
                fn.pos)
        return tuple(coerce(a, p.type) for a, p in zip(args, fn.params))

    # -- function invocation ------------------------------------------------------

    def _call_user_function(self, fn: ast.FuncDef, args: tuple[Any, ...],
                            ctx: ThreadContext | None) -> Iterator[Any]:
        env = Env(self.globals)
        for param, arg in zip(fn.params, args):
            env.declare(param.name or "_", coerce(arg, param.type), param.type)
        try:
            yield from self.exec_block(fn.body, Env(env), ctx)
        except _Return as ret:
            return ret.value
        return None

    # -- statements --------------------------------------------------------------

    def exec_block(self, block: ast.Block, env: Env,
                   ctx: ThreadContext | None) -> Iterator[Any]:
        for stmt in block.statements:
            yield from self.exec_stmt(stmt, env, ctx)

    def exec_stmt(self, stmt: ast.Stmt, env: Env,
                  ctx: ThreadContext | None) -> Iterator[Any]:
        self._step(stmt.pos)
        # line profiling: every charge belongs to the innermost
        # enclosing statement's line; loop condition/step charges are
        # re-attributed to the loop statement before each evaluation
        profiling = self.profile and ctx is not None
        if profiling:
            ctx.line = stmt.pos.line
        cls = type(stmt)
        if cls is ast.ExprStmt:
            yield from self.eval(stmt.expr, env, ctx)
        elif cls is ast.DeclStmt:
            yield from self._exec_decl(stmt, env, ctx)
        elif cls is ast.If:
            cond = yield from self.eval(stmt.cond, env, ctx)
            taken = _truthy(cond)
            if profiling:
                ctx.record_branch(stmt.pos.line, taken)
            if taken:
                yield from self.exec_stmt(stmt.then, Env(env), ctx)
            elif stmt.otherwise is not None:
                yield from self.exec_stmt(stmt.otherwise, Env(env), ctx)
        elif cls is ast.While:
            while True:
                if profiling:
                    ctx.line = stmt.pos.line
                cond = yield from self.eval(stmt.cond, env, ctx)
                if not _truthy(cond):
                    break
                try:
                    yield from self.exec_stmt(stmt.body, Env(env), ctx)
                except _Break:
                    break
                except _Continue:
                    continue
        elif cls is ast.DoWhile:
            while True:
                try:
                    yield from self.exec_stmt(stmt.body, Env(env), ctx)
                except _Break:
                    break
                except _Continue:
                    pass
                if profiling:
                    ctx.line = stmt.pos.line
                cond = yield from self.eval(stmt.cond, env, ctx)
                if not _truthy(cond):
                    break
        elif cls is ast.For:
            loop_env = Env(env)
            if stmt.init is not None:
                yield from self.exec_stmt(stmt.init, loop_env, ctx)
            while True:
                if stmt.cond is not None:
                    if profiling:
                        ctx.line = stmt.pos.line
                    cond = yield from self.eval(stmt.cond, loop_env, ctx)
                    if not _truthy(cond):
                        break
                try:
                    yield from self.exec_stmt(stmt.body, Env(loop_env), ctx)
                except _Break:
                    break
                except _Continue:
                    pass
                if stmt.step is not None:
                    if profiling:
                        ctx.line = stmt.pos.line
                    yield from self.eval(stmt.step, loop_env, ctx)
                self._step(stmt.pos)
        elif cls is ast.Return:
            value = None
            if stmt.value is not None:
                value = yield from self.eval(stmt.value, env, ctx)
            raise _Return(value)
        elif cls is ast.Break:
            raise _Break()
        elif cls is ast.Continue:
            raise _Continue()
        elif cls is ast.Switch:
            subject = yield from self.eval(stmt.subject, env, ctx)
            subject = int(subject)
            start = None
            for index, case in enumerate(stmt.cases):
                if case.value is not None and case.value == subject:
                    start = index
                    break
            if start is None:
                for index, case in enumerate(stmt.cases):
                    if case.value is None:
                        start = index
                        break
            if start is not None:
                switch_env = Env(env)
                try:
                    # C fallthrough: run from the matched arm onward
                    for case in stmt.cases[start:]:
                        for inner in case.statements:
                            yield from self.exec_stmt(inner, switch_env,
                                                      ctx)
                except _Break:
                    pass
        elif cls is ast.AccParallelLoop:
            yield from self._exec_acc_loop(stmt, env, ctx)
        elif cls is ast.Block:
            yield from self.exec_block(stmt, Env(env), ctx)
        elif cls is ast.Empty:
            pass
        else:  # pragma: no cover
            raise InterpreterError(f"unsupported statement {cls.__name__}",
                                   stmt.pos)

    def _exec_decl(self, stmt: ast.DeclStmt, env: Env,
                   ctx: ThreadContext | None) -> Iterator[Any]:
        for decl in stmt.declarators:
            ctype = decl.type
            if stmt.shared:
                if ctx is None:
                    raise InterpreterError(
                        "__shared__ outside device code", stmt.pos)
                total = 1
                for d in ctype.array_dims or (1,):
                    total *= d
                arr = ctx.shared(decl.name, total, ctype.base)
                value: Any = arr
                if len(ctype.array_dims) > 1:
                    value = MDView(arr, ctype.array_dims)
                env.declare(decl.name, value, ctype)
                continue
            if ctype.is_array:
                total = 1
                for d in ctype.array_dims:
                    total *= d
                arr = LocalArray(decl.name, total, ctype.base)
                if decl.init is not None:
                    values = yield from self._eval_init_list(decl.init, env, ctx)
                    for i, item in enumerate(values[:total]):
                        arr.write(i, item)
                value = arr
                if len(ctype.array_dims) > 1:
                    value = MDView(arr, ctype.array_dims)
                env.declare(decl.name, value, ctype)
                continue
            if ctype.base == "dim3" and not ctype.is_pointer:
                if decl.ctor_args:
                    parts = []
                    for arg in decl.ctor_args:
                        parts.append((yield from self.eval(arg, env, ctx)))
                    value = _make_dim3(parts, stmt.pos)
                elif decl.init is not None:
                    value = yield from self.eval(decl.init, env, ctx)
                else:
                    value = Dim3(1, 1, 1)
                env.declare(decl.name, value, ctype)
                continue
            if decl.init is not None:
                value = yield from self.eval(decl.init, env, ctx)
                env.declare(decl.name, coerce(value, ctype), ctype)
            else:
                default = NULL if ctype.is_pointer else coerce(0, ctype)
                env.declare(decl.name, default, ctype)

    def _exec_acc_loop(self, stmt: ast.AccParallelLoop, env: Env,
                       ctx: ThreadContext | None) -> Iterator[Any]:
        """Offload an OpenACC-annotated loop: one device thread per
        iteration, with interpreter-managed copyin/copyout of every
        host array the body references (the implicit-data-clause model
        the PGI compiler defaults to for `kernels` regions)."""
        if ctx is not None:
            raise InterpreterError("OpenACC offload inside device code",
                                   stmt.pos)
        loop = stmt.loop
        decl = loop.init.declarators[0]
        var = decl.name
        start = int((yield from self.eval(decl.init, env, ctx)))
        bound = int((yield from self.eval(loop.cond.right, env, ctx)))
        if loop.cond.op == "<=":
            bound += 1
        count = bound - start
        if count <= 0:
            return

        # implicit data clauses: mirror every host array the body uses
        host_arrays: dict[str, HostPtr] = {}
        for node in ast.walk(loop.body):
            if isinstance(node, ast.Ident) and node.name not in host_arrays:
                if env.has(node.name):
                    value = env.get(node.name)
                    if isinstance(value, HostPtr):
                        host_arrays[node.name] = value
        mirrors: dict[str, Any] = {}
        buffers = []
        for name, hptr in host_arrays.items():
            view = hptr.as_array()
            buf = self.runtime.device.malloc(max(1, int(view.size)),
                                             view.dtype,
                                             label=f"acc:{name}")
            self.runtime.memcpy_htod(buf, view)
            mirrors[name] = buf.ptr()
            buffers.append((hptr, buf))

        interp = self

        def acc_kernel(kctx: ThreadContext) -> Iterator[Any]:
            i = kctx.blockIdx.x * kctx.blockDim.x + kctx.threadIdx.x
            if i >= count:
                return
            child = Env(env)
            child.declare(var, start + i, decl.type)
            for name, dptr in mirrors.items():
                child.declare(name, dptr, None)
            yield from interp.exec_stmt(loop.body, child, kctx)

        if self.profile:
            acc_kernel.profiled = True
        block = 128
        grid = (count + block - 1) // block
        stats = self.runtime.launch(acc_kernel, (grid,), (block,),
                                    kernel_name=f"acc@{stmt.pos.line}")
        if self.host is not None:
            self.host.on_kernel_launch(f"acc@{stmt.pos.line}", stats)

        # copyout: device results replace the host arrays
        for hptr, buf in buffers:
            view = hptr.as_array()
            view[:] = self.runtime.memcpy_dtoh(buf, int(view.size))
            self.runtime.free(buf)

    def _eval_init_list(self, expr: ast.Expr, env: Env,
                        ctx: ThreadContext | None) -> Iterator[Any]:
        if isinstance(expr, ast.Call) and expr.name == "__init_list__":
            out: list[Any] = []
            for item in expr.args:
                nested = yield from self._eval_init_list(item, env, ctx)
                out.extend(nested)
            return out
        value = yield from self.eval(expr, env, ctx)
        return [value]

    # -- expressions -----------------------------------------------------------

    def eval(self, expr: ast.Expr, env: Env,
             ctx: ThreadContext | None) -> Iterator[Any]:
        self._step(expr.pos)
        cls = type(expr)
        if cls is ast.IntLit or cls is ast.FloatLit or cls is ast.BoolLit:
            return expr.value
        if cls is ast.StrLit:
            return expr.value
        if cls is ast.NullLit:
            return NULL
        if cls is ast.Ident:
            return self._eval_ident(expr, env, ctx)
        if cls is ast.Member:
            obj = yield from self.eval(expr.obj, env, ctx)
            return self._member(obj, expr.field_name, expr.pos)
        if cls is ast.Index:
            base = yield from self.eval(expr.base, env, ctx)
            index = yield from self.eval(expr.index, env, ctx)
            return self._read_indexed(base, index, ctx, expr.pos)
        if cls is ast.Binary:
            return (yield from self._eval_binary(expr, env, ctx))
        if cls is ast.Assign:
            return (yield from self._eval_assign(expr, env, ctx))
        if cls is ast.Unary:
            return (yield from self._eval_unary(expr, env, ctx))
        if cls is ast.IncDec:
            return (yield from self._eval_incdec(expr, env, ctx))
        if cls is ast.Conditional:
            cond = yield from self.eval(expr.cond, env, ctx)
            branch = expr.then if _truthy(cond) else expr.otherwise
            return (yield from self.eval(branch, env, ctx))
        if cls is ast.Cast:
            value = yield from self.eval(expr.value, env, ctx)
            return self._cast(value, expr.type, expr.pos)
        if cls is ast.SizeOf:
            return sizeof_ctype(expr.type)
        if cls is ast.Call:
            return (yield from self._eval_call(expr, env, ctx))
        if cls is ast.KernelLaunch:
            return (yield from self._eval_launch(expr, env, ctx))
        raise InterpreterError(f"unsupported expression {cls.__name__}",
                               expr.pos)  # pragma: no cover

    def _eval_ident(self, expr: ast.Ident, env: Env,
                    ctx: ThreadContext | None) -> Any:
        name = expr.name
        if env.has(name):
            return env.get(name)
        if ctx is not None:
            if name == "threadIdx":
                return ctx.threadIdx
            if name == "blockIdx":
                return ctx.blockIdx
            if name == "blockDim":
                return ctx.blockDim
            if name == "gridDim":
                return ctx.gridDim
            if name == "warpSize":
                return ctx._block.device.spec.warp_size
            if name in bi.DEVICE_CONSTANTS:
                return bi.DEVICE_CONSTANTS[name]
        else:
            if name in bi.HOST_CONSTANTS:
                return bi.HOST_CONSTANTS[name]
        raise InterpreterError(f"undefined identifier {name!r}", expr.pos)

    @staticmethod
    def _member(obj: Any, field: str, pos: SourcePos) -> Any:
        return member_value(obj, field, pos)

    # -- memory access dispatch ---------------------------------------------------

    def _read_indexed(self, base: Any, index: Any,
                      ctx: ThreadContext | None, pos: SourcePos) -> Any:
        return read_indexed(base, index, ctx, pos)

    def _write_indexed(self, base: Any, index: Any, value: Any,
                       ctx: ThreadContext | None, pos: SourcePos) -> None:
        write_indexed(base, index, value, ctx, pos)

    # -- lvalues --------------------------------------------------------------------

    def _eval_lvalue(self, expr: ast.Expr, env: Env,
                     ctx: ThreadContext | None) -> Iterator[Any]:
        """Returns a (getter, setter) pair for an assignable expression."""
        if isinstance(expr, ast.Ident):
            name = expr.name
            if not env.has(name):
                raise InterpreterError(
                    f"assignment to undefined variable {name!r}", expr.pos)
            return (lambda: env.get(name),
                    lambda v: env.assign(name, v))
        if isinstance(expr, ast.Index):
            base = yield from self.eval(expr.base, env, ctx)
            index = yield from self.eval(expr.index, env, ctx)
            return (lambda: self._read_indexed(base, index, ctx, expr.pos),
                    lambda v: self._write_indexed(base, index, v, ctx,
                                                  expr.pos))
        if isinstance(expr, ast.Unary) and expr.op == "*":
            ptr = yield from self.eval(expr.operand, env, ctx)
            return (lambda: self._read_indexed(ptr, 0, ctx, expr.pos),
                    lambda v: self._write_indexed(ptr, 0, v, ctx, expr.pos))
        raise InterpreterError("expression is not assignable", expr.pos)

    # -- operators ---------------------------------------------------------------

    def _eval_binary(self, expr: ast.Binary, env: Env,
                     ctx: ThreadContext | None) -> Iterator[Any]:
        op = expr.op
        if op == "&&":
            left = yield from self.eval(expr.left, env, ctx)
            if not _truthy(left):
                return 0
            right = yield from self.eval(expr.right, env, ctx)
            return int(_truthy(right))
        if op == "||":
            left = yield from self.eval(expr.left, env, ctx)
            if _truthy(left):
                return 1
            right = yield from self.eval(expr.right, env, ctx)
            return int(_truthy(right))
        left = yield from self.eval(expr.left, env, ctx)
        right = yield from self.eval(expr.right, env, ctx)
        if ctx is not None:
            ctx.count_instr()
        # pointer arithmetic
        if isinstance(left, (DevicePtr, HostPtr)) and op in ("+", "-"):
            return left + int(right) if op == "+" else left - int(right)
        if isinstance(right, (DevicePtr, HostPtr)) and op == "+":
            return right + int(left)
        if isinstance(left, NullPtr) or isinstance(right, NullPtr):
            if op == "==":
                return int((left is NULL) == (right is NULL))
            if op == "!=":
                return int((left is NULL) != (right is NULL))
        try:
            return _BINOPS[op](left, right)
        except TypeError:
            raise InterpreterError(
                f"invalid operands to {op!r}: {type(left).__name__} and "
                f"{type(right).__name__}", expr.pos) from None

    def _eval_assign(self, expr: ast.Assign, env: Env,
                     ctx: ThreadContext | None) -> Iterator[Any]:
        getter, setter = yield from self._eval_lvalue(expr.target, env, ctx)
        value = yield from self.eval(expr.value, env, ctx)
        if expr.op != "=":
            op = expr.op[:-1]
            current = getter()
            if isinstance(current, (DevicePtr, HostPtr)) and op in ("+", "-"):
                value = current + int(value) if op == "+" \
                    else current - int(value)
            else:
                value = _BINOPS[op](current, value)
        if ctx is not None:
            ctx.count_instr()
        setter(value)
        return value

    def _eval_unary(self, expr: ast.Unary, env: Env,
                    ctx: ThreadContext | None) -> Iterator[Any]:
        op = expr.op
        if op == "&":
            return (yield from self._eval_addressof(expr.operand, env, ctx))
        value = yield from self.eval(expr.operand, env, ctx)
        if ctx is not None:
            ctx.count_instr()
        if op == "*":
            return self._read_indexed(value, 0, ctx, expr.pos)
        if op == "-":
            return -value
        if op == "+":
            return value
        if op == "!":
            return int(not _truthy(value))
        if op == "~":
            return ~int(value)
        raise InterpreterError(f"unsupported unary {op!r}", expr.pos)

    def _eval_addressof(self, operand: ast.Expr, env: Env,
                        ctx: ThreadContext | None) -> Iterator[Any]:
        if isinstance(operand, ast.Ident):
            if env.has(operand.name):
                return VarRef(env, operand.name)
            raise InterpreterError(
                f"cannot take address of {operand.name!r}", operand.pos)
        if isinstance(operand, ast.Index):
            base = yield from self.eval(operand.base, env, ctx)
            index = yield from self.eval(operand.index, env, ctx)
            if isinstance(base, (DevicePtr, HostPtr)):
                return base + int(index)
            if isinstance(base, (SharedArray, LocalArray)):
                return ElemRef(base, int(index))
            if isinstance(base, MDView) and base.is_scalar_level:
                return ElemRef(base.storage, base.flat_index(int(index)))
            raise InterpreterError(
                "cannot take the address of this element", operand.pos)
        raise InterpreterError("cannot take the address of this expression",
                               operand.pos)

    def _eval_incdec(self, expr: ast.IncDec, env: Env,
                     ctx: ThreadContext | None) -> Iterator[Any]:
        getter, setter = yield from self._eval_lvalue(expr.operand, env, ctx)
        old = getter()
        if isinstance(old, (DevicePtr, HostPtr)):
            new = old + 1 if expr.op == "++" else old - 1
        else:
            new = old + 1 if expr.op == "++" else old - 1
        if ctx is not None:
            ctx.count_instr()
        setter(new)
        return new if expr.prefix else old

    def _cast(self, value: Any, ctype: CType, pos: SourcePos) -> Any:
        if ctype.is_pointer:
            if isinstance(value, HostPtr):
                return value.retyped(ctype.base)
            if isinstance(value, (DevicePtr, NullPtr)):
                return value
            if isinstance(value, VarRef):  # (void**)&ptr
                return value
            if isinstance(value, int) and value == 0:
                return NULL
            raise InterpreterError(
                f"unsupported pointer cast of {type(value).__name__}", pos)
        return coerce(value, ctype)

    # -- calls --------------------------------------------------------------------

    def _eval_call(self, expr: ast.Call, env: Env,
                   ctx: ThreadContext | None) -> Iterator[Any]:
        name = expr.name
        if name == "dim3":
            parts = []
            for arg in expr.args:
                parts.append((yield from self.eval(arg, env, ctx)))
            return _make_dim3(parts, expr.pos)

        if ctx is not None:
            result = yield from self._eval_device_call(expr, env, ctx)
            return result

        # host side -----------------------------------------------------------
        fn = self.info.host_functions.get(name)
        if fn is not None and not fn.prototype:
            args = []
            for arg in expr.args:
                args.append((yield from self.eval(arg, env, ctx)))
            return (yield from self._call_user_function(fn, tuple(args), None))
        if name in bi.MATH_BUILTINS:
            args = []
            for arg in expr.args:
                args.append((yield from self.eval(arg, env, ctx)))
            return _MATH_IMPL[name](*args)
        if self.host is None:
            raise InterpreterError(
                f"host builtin {name!r} requires a host environment",
                expr.pos)
        # evaluate arguments, preserving &x as references
        args = []
        for arg in expr.args:
            if isinstance(arg, ast.Unary) and arg.op == "&":
                args.append((yield from self._eval_addressof(arg.operand,
                                                             env, ctx)))
            elif isinstance(arg, ast.Cast) and isinstance(arg.value, ast.Unary) \
                    and arg.value.op == "&":
                args.append((yield from self._eval_addressof(
                    arg.value.operand, env, ctx)))
            else:
                args.append((yield from self.eval(arg, env, ctx)))
        return self.host.call(self, name, tuple(args), expr.pos)

    def _eval_device_call(self, expr: ast.Call, env: Env,
                          ctx: ThreadContext) -> Iterator[Any]:
        name = expr.name
        if name in ("__syncthreads", "barrier"):
            for arg in expr.args:
                yield from self.eval(arg, env, ctx)
            yield SYNC
            return 0
        if name.startswith("atomic"):
            return (yield from self._eval_atomic(expr, env, ctx))
        if name in bi.MATH_BUILTINS:
            args = []
            for arg in expr.args:
                args.append((yield from self.eval(arg, env, ctx)))
            ctx.count_instr()
            return _MATH_IMPL[name](*args)
        if name == "printf":
            args = []
            for arg in expr.args:
                args.append((yield from self.eval(arg, env, ctx)))
            if args:
                ctx.printf(c_format(str(args[0]), tuple(args[1:])))
            return 0
        if name in ("get_global_id", "get_local_id", "get_group_id",
                    "get_local_size", "get_num_groups", "get_global_size"):
            dim_val = yield from self.eval(expr.args[0], env, ctx)
            return _opencl_index(name, int(dim_val), ctx)
        fn = self.info.device_functions.get(name)
        if fn is not None:
            args = []
            for arg in expr.args:
                args.append((yield from self.eval(arg, env, ctx)))
            ctx.count_instr()
            if not self.profile:
                return (yield from self._call_user_function(fn, tuple(args),
                                                            ctx))
            # the call charges to the call site; callee-internal charges
            # go to the callee's own lines — restore the caller's line
            # so charges after the call re-attribute to the call site
            # (matching the codegen engine's static attribution)
            saved_line = ctx.line
            result = yield from self._call_user_function(fn, tuple(args), ctx)
            ctx.line = saved_line
            return result
        raise InterpreterError(f"unknown device function {name!r}", expr.pos)

    _ATOMIC_DISPATCH = {
        "atomicAdd": "atomic_add",
        "atomicSub": None,  # implemented as add of negation
        "atomicMax": "atomic_max",
        "atomicMin": "atomic_min",
        "atomicExch": "atomic_exch",
        "atomicCAS": "atomic_cas",
    }

    def _eval_atomic(self, expr: ast.Call, env: Env,
                     ctx: ThreadContext) -> Iterator[Any]:
        name = expr.name
        if name not in self._ATOMIC_DISPATCH:
            raise InterpreterError(f"unknown atomic {name!r}", expr.pos)
        target_expr = expr.args[0]
        if isinstance(target_expr, ast.Unary) and target_expr.op == "&":
            ref = yield from self._eval_addressof(target_expr.operand, env, ctx)
        else:
            ref = yield from self.eval(target_expr, env, ctx)
        values = []
        for arg in expr.args[1:]:
            values.append((yield from self.eval(arg, env, ctx)))
        if isinstance(ref, (DevicePtr, HostPtr)):
            target: Any = ref
            index = 0
        elif isinstance(ref, ElemRef):
            target = ref.target
            index = ref.index
        elif isinstance(ref, SharedArray):
            target, index = ref, 0
        else:
            raise InterpreterError(
                f"atomic target must be a memory location, got "
                f"{type(ref).__name__}", expr.pos)
        if isinstance(target, (HostPtr, LocalArray)):
            raise MemoryFault("atomics require device or shared memory")
        if name == "atomicSub":
            return ctx.atomic_add(target, index, -values[0])
        if name == "atomicCAS":
            return ctx.atomic_cas(target, index, values[0], values[1])
        method = getattr(ctx, self._ATOMIC_DISPATCH[name])
        return method(target, index, values[0])

    def _eval_launch(self, expr: ast.KernelLaunch, env: Env,
                     ctx: ThreadContext | None) -> Iterator[Any]:
        if ctx is not None:
            raise InterpreterError("dynamic parallelism is not supported",
                                   expr.pos)
        grid = yield from self.eval(expr.grid, env, ctx)
        block = yield from self.eval(expr.block, env, ctx)
        if expr.shared is not None:
            yield from self.eval(expr.shared, env, ctx)
        args = []
        for arg in expr.args:
            args.append((yield from self.eval(arg, env, ctx)))
        stats = self.launch_kernel(expr.name, grid, block, tuple(args))
        if self.host is not None:
            self.host.on_kernel_launch(expr.name, stats)
        return 0


def _as_dim3(value: Any) -> Dim3:
    if isinstance(value, Dim3):
        return value
    if isinstance(value, (int, float)):
        iv = int(value)
        if iv < 1:
            raise InterpreterError(
                f"invalid launch dimension {iv} (must be >= 1)")
        return Dim3(iv, 1, 1)
    raise InterpreterError(f"invalid launch configuration value {value!r}")


def _make_dim3(parts: list[Any], pos: SourcePos) -> Dim3:
    ints = [int(p) for p in parts] + [1] * (3 - len(parts))
    if any(v < 1 for v in ints[:3]):
        raise InterpreterError(
            f"invalid dim3({', '.join(str(int(p)) for p in parts)}): "
            "components must be >= 1", pos)
    return Dim3(*ints[:3])


def _opencl_index(name: str, dim: int, ctx: ThreadContext) -> int:
    axis = "xyz"[dim] if 0 <= dim < 3 else "x"
    t = getattr(ctx.threadIdx, axis)
    b = getattr(ctx.blockIdx, axis)
    bd = getattr(ctx.blockDim, axis)
    gd = getattr(ctx.gridDim, axis)
    if name == "get_global_id":
        return b * bd + t
    if name == "get_local_id":
        return t
    if name == "get_group_id":
        return b
    if name == "get_local_size":
        return bd
    if name == "get_num_groups":
        return gd
    if name == "get_global_size":
        return gd * bd
    raise AssertionError(name)  # pragma: no cover


def _drive_host(gen: Iterator[Any]) -> Any:
    """Run a host-side generator to completion; barriers are illegal."""
    try:
        while True:
            token = next(gen)
            if token is SYNC:
                raise InterpreterError(
                    "__syncthreads() called from host code")
    except StopIteration as stop:
        return stop.value


def _flatten_init(expr: ast.Expr) -> list[Any]:
    if isinstance(expr, ast.Call) and expr.name == "__init_list__":
        out: list[Any] = []
        for item in expr.args:
            out.extend(_flatten_init(item))
        return out
    value = _const_eval(expr)
    return [value]


def _const_eval(expr: ast.Expr) -> Any:
    """Minimal constant evaluation for global initialisers."""
    if isinstance(expr, (ast.IntLit, ast.FloatLit, ast.BoolLit, ast.StrLit)):
        return expr.value
    if isinstance(expr, ast.Unary) and expr.op == "-":
        return -_const_eval(expr.operand)
    if isinstance(expr, ast.Binary):
        left, right = _const_eval(expr.left), _const_eval(expr.right)
        return _BINOPS[expr.op](left, right)
    raise InterpreterError("global initialiser must be constant", expr.pos)
