"""A small C preprocessor: comments, #include, #define, #if[n]def.

Supports what course lab code actually uses:

* ``//`` and ``/* */`` comments (newlines preserved for positions);
* ``#include "name"`` / ``#include <name>`` resolved against a caller-
  supplied header map (unknown system headers are silently dropped,
  like ``wb.h`` whose functionality is built into the interpreter);
* object-like macros ``#define TILE 16`` and function-like macros
  ``#define MIN(a, b) ((a) < (b) ? (a) : (b))`` with recursive
  expansion (self-references are not re-expanded);
* ``#undef``, ``#ifdef`` / ``#ifndef`` / ``#else`` / ``#endif``;
* ``#pragma`` lines are preserved verbatim (OpenACC labs inspect them).
"""

from __future__ import annotations

import re
from typing import Mapping

from repro.minicuda.diagnostics import CompileError, SourcePos

_IDENT = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_INCLUDE = re.compile(r'#\s*include\s+[<"]([^>"]+)[>"]')
_DEFINE_FUNC = re.compile(r"#\s*define\s+([A-Za-z_]\w*)\(([^)]*)\)\s*(.*)")
_DEFINE_OBJ = re.compile(r"#\s*define\s+([A-Za-z_]\w*)(?:\s+(.*))?$")
_UNDEF = re.compile(r"#\s*undef\s+([A-Za-z_]\w*)")
_IFDEF = re.compile(r"#\s*(ifdef|ifndef)\s+([A-Za-z_]\w*)")

MAX_EXPANSION_DEPTH = 32


def _strip_comments(source: str) -> str:
    """Blank out comments, preserving newlines and string literals."""
    out: list[str] = []
    i, n = 0, len(source)
    while i < n:
        ch = source[i]
        if ch == '"' or ch == "'":
            quote = ch
            out.append(ch)
            i += 1
            while i < n:
                out.append(source[i])
                if source[i] == "\\" and i + 1 < n:
                    out.append(source[i + 1])
                    i += 2
                    continue
                if source[i] == quote:
                    i += 1
                    break
                i += 1
        elif ch == "/" and i + 1 < n and source[i + 1] == "/":
            while i < n and source[i] != "\n":
                i += 1
        elif ch == "/" and i + 1 < n and source[i + 1] == "*":
            j = source.find("*/", i + 2)
            if j < 0:
                raise CompileError("unterminated block comment",
                                   SourcePos(source.count("\n", 0, i) + 1, 1))
            out.extend("\n" if c == "\n" else " " for c in source[i:j + 2])
            i = j + 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


class _Macro:
    __slots__ = ("name", "params", "body")

    def __init__(self, name: str, params: list[str] | None, body: str):
        self.name = name
        self.params = params  # None => object-like
        self.body = body


class Preprocessor:
    """Stateful preprocessor; one instance per compilation."""

    def __init__(self, headers: Mapping[str, str] | None = None,
                 predefined: Mapping[str, str] | None = None):
        self.headers = dict(headers or {})
        self.macros: dict[str, _Macro] = {}
        for name, body in (predefined or {}).items():
            self.macros[name] = _Macro(name, None, body)
        self.included: set[str] = set()

    def process(self, source: str) -> str:
        return self._process(source, depth=0)

    def _process(self, source: str, depth: int) -> str:
        if depth > 16:
            raise CompileError("#include nesting too deep")
        text = _strip_comments(source)
        out_lines: list[str] = []
        # stack of booleans: is the current conditional branch active?
        cond_stack: list[bool] = []
        # parallel stack: has this level already consumed its #else?
        else_stack: list[bool] = []
        for lineno, line in enumerate(text.splitlines(), start=1):
            stripped = line.strip()
            active = all(cond_stack)
            if stripped.startswith("#"):
                m = _IFDEF.match(stripped)
                if m:
                    defined = m.group(2) in self.macros
                    want = defined if m.group(1) == "ifdef" else not defined
                    cond_stack.append(want)
                    else_stack.append(False)
                    out_lines.append("")
                    continue
                if re.match(r"#\s*else\b", stripped):
                    if not cond_stack:
                        raise CompileError("#else without #ifdef",
                                           SourcePos(lineno, 1))
                    if else_stack[-1]:
                        raise CompileError("duplicate #else",
                                           SourcePos(lineno, 1))
                    else_stack[-1] = True
                    cond_stack[-1] = not cond_stack[-1]
                    out_lines.append("")
                    continue
                if re.match(r"#\s*endif\b", stripped):
                    if not cond_stack:
                        raise CompileError("#endif without #ifdef",
                                           SourcePos(lineno, 1))
                    cond_stack.pop()
                    else_stack.pop()
                    out_lines.append("")
                    continue
                if not active:
                    out_lines.append("")
                    continue
                m = _INCLUDE.match(stripped)
                if m:
                    name = m.group(1)
                    if name in self.headers and name not in self.included:
                        self.included.add(name)
                        expanded = self._process(self.headers[name], depth + 1)
                        out_lines.append(expanded)
                    else:
                        out_lines.append("")
                    continue
                m = _DEFINE_FUNC.match(stripped)
                if m:
                    params = [p.strip() for p in m.group(2).split(",") if p.strip()]
                    self.macros[m.group(1)] = _Macro(m.group(1), params,
                                                     m.group(3).strip())
                    out_lines.append("")
                    continue
                m = _DEFINE_OBJ.match(stripped)
                if m:
                    self.macros[m.group(1)] = _Macro(m.group(1), None,
                                                     (m.group(2) or "").strip())
                    out_lines.append("")
                    continue
                m = _UNDEF.match(stripped)
                if m:
                    self.macros.pop(m.group(1), None)
                    out_lines.append("")
                    continue
                if re.match(r"#\s*pragma\b", stripped):
                    out_lines.append(line)
                    continue
                raise CompileError(f"unsupported preprocessor directive: "
                                   f"{stripped.split()[0]}", SourcePos(lineno, 1))
            if not active:
                out_lines.append("")
                continue
            out_lines.append(self._expand_line(line, lineno))
        if cond_stack:
            raise CompileError("unterminated #ifdef")
        return "\n".join(out_lines)

    # -- macro expansion -----------------------------------------------------

    def _expand_line(self, line: str, lineno: int) -> str:
        return self._expand(line, frozenset(), lineno, 0)

    def _expand(self, text: str, hidden: frozenset[str], lineno: int,
                depth: int) -> str:
        if depth > MAX_EXPANSION_DEPTH:
            raise CompileError("macro expansion too deep",
                               SourcePos(lineno, 1))
        out: list[str] = []
        i, n = 0, len(text)
        while i < n:
            ch = text[i]
            if ch in ('"', "'"):
                # never expand inside string or character literals
                j = i + 1
                while j < n:
                    if text[j] == "\\":
                        j += 2
                        continue
                    if text[j] == ch:
                        j += 1
                        break
                    j += 1
                out.append(text[i:j])
                i = j
                continue
            m = _IDENT.match(text, i)
            if not m:
                out.append(ch)
                i += 1
                continue
            name = m.group(0)
            i = m.end()
            macro = self.macros.get(name)
            if macro is None or name in hidden:
                out.append(name)
                continue
            if macro.params is None:
                out.append(self._expand(macro.body, hidden | {name},
                                        lineno, depth + 1))
                continue
            # function-like: need an argument list
            j = i
            while j < n and text[j].isspace():
                j += 1
            if j >= n or text[j] != "(":
                out.append(name)
                continue
            args, end = self._parse_args(text, j, lineno)
            if len(args) != len(macro.params):
                raise CompileError(
                    f"macro {name!r} expects {len(macro.params)} argument(s), "
                    f"got {len(args)}", SourcePos(lineno, j + 1))
            body = macro.body
            # substitute parameters as whole identifiers
            for param, arg in zip(macro.params, args):
                body = re.sub(rf"(?<![A-Za-z0-9_]){re.escape(param)}"
                              rf"(?![A-Za-z0-9_])", arg.replace("\\", "\\\\"),
                              body)
            out.append(self._expand(body, hidden | {name}, lineno, depth + 1))
            i = end
        return "".join(out)

    @staticmethod
    def _parse_args(text: str, open_paren: int,
                    lineno: int) -> tuple[list[str], int]:
        """Split a balanced macro argument list starting at ``(``."""
        depth = 0
        args: list[str] = []
        current: list[str] = []
        i = open_paren
        while i < len(text):
            ch = text[i]
            if ch == "(":
                depth += 1
                if depth > 1:
                    current.append(ch)
            elif ch == ")":
                depth -= 1
                if depth == 0:
                    args.append("".join(current).strip())
                    if len(args) == 1 and not args[0]:
                        return ([], i + 1)  # F() passes zero arguments
                    if any(not a for a in args):
                        raise CompileError(
                            "empty macro argument",
                            SourcePos(lineno, open_paren + 1))
                    return (args, i + 1)
                current.append(ch)
            elif ch == "," and depth == 1:
                args.append("".join(current).strip())
                current = []
            else:
                current.append(ch)
            i += 1
        raise CompileError("unterminated macro argument list",
                           SourcePos(lineno, open_paren + 1))


def preprocess(source: str, headers: Mapping[str, str] | None = None,
               predefined: Mapping[str, str] | None = None) -> str:
    """One-shot preprocessing of ``source``."""
    return Preprocessor(headers, predefined).process(source)
