"""Semantic analysis: symbols, arity, lvalues, qualifier rules.

Produces a :class:`ProgramInfo` describing kernels and host entry
points, or raises :class:`CompileError` with every diagnostic found
(the worker relays them all to the student at once, like nvcc).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.minicuda import ast_nodes as ast
from repro.minicuda import builtins as bi
from repro.minicuda.diagnostics import CompileError, Diagnostic, SourcePos


#: Device builtins that hit a block-wide barrier when called.
BARRIER_BUILTINS = frozenset({"__syncthreads", "barrier"})


@dataclass
class ProgramInfo:
    """What later stages need to know about a checked program."""

    unit: ast.TranslationUnit
    kernels: dict[str, ast.FuncDef] = field(default_factory=dict)
    device_functions: dict[str, ast.FuncDef] = field(default_factory=dict)
    host_functions: dict[str, ast.FuncDef] = field(default_factory=dict)
    constants: dict[str, ast.Declarator] = field(default_factory=dict)
    #: Kernels / device functions whose execution may reach a barrier
    #: (``__syncthreads`` / OpenCL ``barrier``), closed transitively
    #: over device-function calls. Execution engines use this to decide
    #: whether a kernel needs lockstep generator scheduling.
    barrier_functions: set[str] = field(default_factory=set)
    #: sha256 of the preprocessed source this program was compiled
    #: from; set by the compiler facade. Used as a stable memoization
    #: key for per-kernel codegen artifacts ("" when unavailable).
    fingerprint: str = ""

    @property
    def has_main(self) -> bool:
        return "main" in self.host_functions

    def kernel_uses_barrier(self, name: str) -> bool:
        """May the named kernel reach a ``__syncthreads`` barrier?"""
        return name in self.barrier_functions


class _Scope:
    def __init__(self, parent: "_Scope | None" = None):
        self.parent = parent
        self.names: dict[str, ast.CType] = {}

    def declare(self, name: str, ctype: ast.CType) -> bool:
        if name in self.names:
            return False
        self.names[name] = ctype
        return True

    def lookup(self, name: str) -> ast.CType | None:
        scope: _Scope | None = self
        while scope is not None:
            if name in scope.names:
                return scope.names[name]
            scope = scope.parent
        return None


class Analyzer:
    def __init__(self, unit: ast.TranslationUnit):
        self.unit = unit
        self.diagnostics: list[Diagnostic] = []
        self.info = ProgramInfo(unit=unit)

    def error(self, message: str, pos: SourcePos) -> None:
        self.diagnostics.append(Diagnostic(message, pos))

    def analyze(self) -> ProgramInfo:
        self._collect_top_level()
        for fn in self.unit.functions:
            if not self._is_prototype(fn):
                self._check_function(fn)
        if self.diagnostics:
            raise CompileError(self.diagnostics)
        self._collect_barrier_functions()
        return self.info

    def _collect_barrier_functions(self) -> None:
        """Mark kernels/device functions that may reach a barrier,
        closing over device-function calls with a fixpoint (handles
        mutual recursion without revisiting)."""
        device_fns = {**self.info.kernels, **self.info.device_functions}
        calls: dict[str, set[str]] = {}
        uses = self.info.barrier_functions
        for name, fn in device_fns.items():
            called: set[str] = set()
            for node in ast.walk(fn.body):
                if isinstance(node, ast.Call):
                    if node.name in BARRIER_BUILTINS:
                        uses.add(name)
                    elif node.name in self.info.device_functions:
                        called.add(node.name)
            calls[name] = called
        changed = True
        while changed:
            changed = False
            for name, called in calls.items():
                if name not in uses and called & uses:
                    uses.add(name)
                    changed = True

    @staticmethod
    def _is_prototype(fn: ast.FuncDef) -> bool:
        return fn.prototype

    def _collect_top_level(self) -> None:
        seen: dict[str, ast.FuncDef] = {}
        for fn in self.unit.functions:
            prior = seen.get(fn.name)
            if prior is not None and not self._is_prototype(prior) \
                    and not self._is_prototype(fn):
                self.error(f"redefinition of function {fn.name!r}", fn.pos)
            if prior is None or self._is_prototype(prior):
                seen[fn.name] = fn
        for fn in seen.values():
            if fn.is_kernel:
                if not fn.return_type.is_void:
                    self.error(
                        f"kernel {fn.name!r} must return void", fn.pos)
                self.info.kernels[fn.name] = fn
            elif fn.is_device:
                self.info.device_functions[fn.name] = fn
            else:
                self.info.host_functions[fn.name] = fn
        for gvar in self.unit.globals:
            for decl in gvar.decl.declarators:
                if gvar.decl.shared:
                    self.error(
                        f"__shared__ variable {decl.name!r} not allowed at "
                        "file scope", gvar.pos)
                self.info.constants[decl.name] = decl

    # -- per-function checking --------------------------------------------

    def _check_function(self, fn: ast.FuncDef) -> None:
        device_side = fn.is_kernel or fn.is_device
        scope = _Scope()
        for gname in self.info.constants:
            scope.declare(gname, ast.CType("float", 1))
        for param in fn.params:
            if param.name and not scope.declare(param.name, param.type):
                self.error(f"duplicate parameter {param.name!r}", fn.pos)
        self._check_block(fn.body, _Scope(scope), fn, device_side,
                          in_loop=False)

    def _check_block(self, block: ast.Block, scope: _Scope,
                     fn: ast.FuncDef, device: bool, in_loop: bool) -> None:
        for stmt in block.statements:
            self._check_stmt(stmt, scope, fn, device, in_loop)

    def _check_stmt(self, stmt: ast.Stmt, scope: _Scope, fn: ast.FuncDef,
                    device: bool, in_loop: bool) -> None:
        if isinstance(stmt, ast.Block):
            self._check_block(stmt, _Scope(scope), fn, device, in_loop)
        elif isinstance(stmt, ast.DeclStmt):
            if stmt.shared and not device:
                self.error("__shared__ is only allowed in device code",
                           stmt.pos)
            for decl in stmt.declarators:
                if decl.init is not None:
                    self._check_expr(decl.init, scope, fn, device)
                for arg in decl.ctor_args:
                    self._check_expr(arg, scope, fn, device)
                if not scope.declare(decl.name, decl.type):
                    self.error(f"redeclaration of {decl.name!r}", stmt.pos)
        elif isinstance(stmt, ast.ExprStmt):
            self._check_expr(stmt.expr, scope, fn, device)
        elif isinstance(stmt, ast.If):
            self._check_expr(stmt.cond, scope, fn, device)
            self._check_stmt(stmt.then, _Scope(scope), fn, device, in_loop)
            if stmt.otherwise is not None:
                self._check_stmt(stmt.otherwise, _Scope(scope), fn, device,
                                 in_loop)
        elif isinstance(stmt, ast.While):
            self._check_expr(stmt.cond, scope, fn, device)
            self._check_stmt(stmt.body, _Scope(scope), fn, device, True)
        elif isinstance(stmt, ast.DoWhile):
            self._check_stmt(stmt.body, _Scope(scope), fn, device, True)
            self._check_expr(stmt.cond, scope, fn, device)
        elif isinstance(stmt, ast.For):
            inner = _Scope(scope)
            if stmt.init is not None:
                self._check_stmt(stmt.init, inner, fn, device, in_loop)
            if stmt.cond is not None:
                self._check_expr(stmt.cond, inner, fn, device)
            if stmt.step is not None:
                self._check_expr(stmt.step, inner, fn, device)
            self._check_stmt(stmt.body, _Scope(inner), fn, device, True)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                if fn.return_type.is_void:
                    self.error(f"void function {fn.name!r} returns a value",
                               stmt.pos)
                self._check_expr(stmt.value, scope, fn, device)
        elif isinstance(stmt, ast.Switch):
            self._check_expr(stmt.subject, scope, fn, device)
            for case in stmt.cases:
                inner = _Scope(scope)
                for inner_stmt in case.statements:
                    # break is legal inside a switch arm
                    self._check_stmt(inner_stmt, inner, fn, device, True)
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            if not in_loop:
                kind = "break" if isinstance(stmt, ast.Break) else "continue"
                self.error(f"{kind} outside of a loop", stmt.pos)
        elif isinstance(stmt, ast.AccParallelLoop):
            if device:
                self.error("OpenACC directives are host-side only",
                           stmt.pos)
            self._check_acc_loop(stmt, scope, fn)
        elif isinstance(stmt, ast.Empty):
            pass
        else:  # pragma: no cover - parser produces no other nodes
            raise AssertionError(f"unknown statement {stmt!r}")

    def _check_acc_loop(self, stmt: ast.AccParallelLoop, scope: _Scope,
                        fn: ast.FuncDef) -> None:
        """OpenACC loops must be canonical: ``for (int i = a; i < b;
        i++)`` (or ``<=`` / ``i += 1``) so iterations map to threads."""
        loop = stmt.loop
        ok_shape = (
            isinstance(loop.init, ast.DeclStmt)
            and len(loop.init.declarators) == 1
            and loop.init.declarators[0].init is not None
            and isinstance(loop.cond, ast.Binary)
            and loop.cond.op in ("<", "<=")
            and isinstance(loop.cond.left, ast.Ident)
            and loop.cond.left.name == loop.init.declarators[0].name
        )
        if not ok_shape:
            self.error(
                "OpenACC loop must be canonical: "
                "for (int i = start; i < end; i++)", stmt.pos)
        step_ok = (
            isinstance(loop.step, ast.IncDec) and loop.step.op == "++"
        ) or (
            isinstance(loop.step, ast.Assign) and loop.step.op == "+="
            and isinstance(loop.step.value, ast.IntLit)
            and loop.step.value.value == 1
        )
        if not step_ok:
            self.error("OpenACC loop step must be i++ (stride 1)",
                       stmt.pos)
        # the body is checked in host scope: OpenACC code is host code
        # that the 'compiler' offloads
        self._check_stmt(loop, _Scope(scope), fn, device=False,
                         in_loop=False)

    # -- expression checking -------------------------------------------------

    def _check_expr(self, expr: ast.Expr, scope: _Scope, fn: ast.FuncDef,
                    device: bool) -> None:
        if isinstance(expr, (ast.IntLit, ast.FloatLit, ast.StrLit,
                             ast.BoolLit, ast.NullLit, ast.SizeOf)):
            return
        if isinstance(expr, ast.Ident):
            if scope.lookup(expr.name) is not None:
                return
            known = (bi.known_in_device(expr.name) if device
                     else bi.known_in_host(expr.name))
            if not known and expr.name not in self.info.constants:
                self.error(f"use of undeclared identifier {expr.name!r}",
                           expr.pos)
            return
        if isinstance(expr, ast.Member):
            # field existence is checked at run time (no struct types in
            # the static checker); only the object expression is checked
            self._check_expr(expr.obj, scope, fn, device)
            return
        if isinstance(expr, ast.Index):
            self._check_expr(expr.base, scope, fn, device)
            self._check_expr(expr.index, scope, fn, device)
            return
        if isinstance(expr, ast.Call):
            self._check_call(expr, scope, fn, device)
            return
        if isinstance(expr, ast.KernelLaunch):
            if device:
                self.error("kernel launch inside device code is not "
                           "supported", expr.pos)
            target = self.info.kernels.get(expr.name)
            if target is None:
                self.error(f"launch of unknown kernel {expr.name!r}",
                           expr.pos)
            elif len(expr.args) != len(target.params):
                self.error(
                    f"kernel {expr.name!r} expects {len(target.params)} "
                    f"argument(s), got {len(expr.args)}", expr.pos)
            self._check_expr(expr.grid, scope, fn, device)
            self._check_expr(expr.block, scope, fn, device)
            if expr.shared is not None:
                self._check_expr(expr.shared, scope, fn, device)
            for arg in expr.args:
                self._check_expr(arg, scope, fn, device)
            return
        if isinstance(expr, ast.Unary):
            if expr.op == "&" and not self._is_lvalue(expr.operand):
                self.error("cannot take the address of this expression",
                           expr.pos)
            self._check_expr(expr.operand, scope, fn, device)
            return
        if isinstance(expr, ast.IncDec):
            if not self._is_lvalue(expr.operand):
                self.error(f"operand of {expr.op} must be an lvalue",
                           expr.pos)
            self._check_expr(expr.operand, scope, fn, device)
            return
        if isinstance(expr, ast.Binary):
            self._check_expr(expr.left, scope, fn, device)
            self._check_expr(expr.right, scope, fn, device)
            return
        if isinstance(expr, ast.Assign):
            if not self._is_lvalue(expr.target):
                self.error("assignment target is not an lvalue", expr.pos)
            self._check_expr(expr.target, scope, fn, device)
            self._check_expr(expr.value, scope, fn, device)
            return
        if isinstance(expr, ast.Conditional):
            self._check_expr(expr.cond, scope, fn, device)
            self._check_expr(expr.then, scope, fn, device)
            self._check_expr(expr.otherwise, scope, fn, device)
            return
        if isinstance(expr, ast.Cast):
            self._check_expr(expr.value, scope, fn, device)
            return
        raise AssertionError(f"unknown expression {expr!r}")  # pragma: no cover

    def _check_call(self, call: ast.Call, scope: _Scope, fn: ast.FuncDef,
                    device: bool) -> None:
        name = call.name
        for arg in call.args:
            self._check_expr(arg, scope, fn, device)
        if name == "__init_list__" or name == "dim3":
            return
        user_fn = None
        if device:
            user_fn = self.info.device_functions.get(name)
            builtin_arity = bi.DEVICE_BUILTINS.get(name,
                                                   bi.MATH_BUILTINS.get(name))
            known = name in bi.DEVICE_BUILTINS or name in bi.MATH_BUILTINS
        else:
            user_fn = self.info.host_functions.get(name)
            builtin_arity = bi.HOST_BUILTINS.get(name,
                                                 bi.MATH_BUILTINS.get(name))
            known = name in bi.HOST_BUILTINS or name in bi.MATH_BUILTINS
        if user_fn is not None:
            if len(call.args) != len(user_fn.params):
                self.error(
                    f"function {name!r} expects {len(user_fn.params)} "
                    f"argument(s), got {len(call.args)}", call.pos)
            return
        if known:
            if builtin_arity is not None and len(call.args) != builtin_arity:
                self.error(
                    f"builtin {name!r} expects {builtin_arity} argument(s), "
                    f"got {len(call.args)}", call.pos)
            return
        side = "device" if device else "host"
        hint = ""
        if not device and name in self.info.kernels:
            hint = " (kernels are launched with <<<...>>>)"
        if device and name in self.info.host_functions:
            hint = " (host functions cannot be called from device code)"
        self.error(f"call to unknown {side} function {name!r}{hint}",
                   call.pos)

    @staticmethod
    def _is_lvalue(expr: ast.Expr) -> bool:
        if isinstance(expr, (ast.Ident, ast.Index, ast.Member)):
            return True
        if isinstance(expr, ast.Unary) and expr.op == "*":
            return True
        return False


def analyze(unit: ast.TranslationUnit) -> ProgramInfo:
    """Check a parsed translation unit; raises CompileError on problems."""
    return Analyzer(unit).analyze()
