"""Tokenizer for the CUDA-C subset."""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import Any, Iterator

from repro.minicuda.diagnostics import CompileError, SourcePos


class TokenKind(enum.Enum):
    IDENT = "ident"
    KEYWORD = "keyword"
    INT = "int"
    FLOAT = "float"
    STRING = "string"
    CHAR = "char"
    PUNCT = "punct"
    PRAGMA = "pragma"   # a surviving "#pragma ..." line (OpenACC)
    EOF = "eof"


KEYWORDS = frozenset({
    "void", "int", "float", "double", "char", "bool", "long", "short",
    "unsigned", "signed", "const", "static", "struct", "size_t",
    "if", "else", "while", "for", "do", "return", "break", "continue",
    "switch", "case", "default",
    "sizeof", "true", "false", "NULL",
    "__global__", "__device__", "__host__", "__shared__", "__constant__",
    "__restrict__", "extern",
    # OpenCL spellings
    "__kernel", "__local", "__global",
    # types provided by the runtime
    "dim3",
})

# Longest first so that e.g. ">>=" is not read as ">" ">" "=".
# Note: "<<<" / ">>>" (kernel launch) are produced by the parser from
# shift tokens, because ">>>" is ambiguous with nested templates in real
# C++ but unambiguous here: we emit them directly as 3-char puncts.
PUNCTUATION = (
    "<<<", ">>>",
    "<<=", ">>=", "...",
    "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "~", "&", "|", "^",
    "?", ":", ";", ",", ".", "(", ")", "[", "]", "{", "}",
)

_FLOAT_RE = re.compile(
    r"(?:\d+\.\d*(?:[eE][-+]?\d+)?|\.\d+(?:[eE][-+]?\d+)?|\d+[eE][-+]?\d+)[fF]?"
    r"|\d+[fF]"
)
_INT_RE = re.compile(r"0[xX][0-9a-fA-F]+[uUlL]*|\d+[uUlL]*")
_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")

_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", "0": "\0", "\\": "\\",
            '"': '"', "'": "'"}


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    pos: SourcePos
    value: Any = None  # parsed literal value for INT/FLOAT/STRING/CHAR

    def is_punct(self, *texts: str) -> bool:
        return self.kind is TokenKind.PUNCT and self.text in texts

    def is_keyword(self, *names: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text in names

    def __str__(self) -> str:
        return f"{self.kind.value}({self.text!r})@{self.pos}"


class Lexer:
    """Streaming tokenizer with 1-based line/column tracking."""

    def __init__(self, source: str):
        self.source = source
        self.i = 0
        self.line = 1
        self.col = 1

    def _pos(self) -> SourcePos:
        return SourcePos(self.line, self.col)

    def _advance(self, n: int) -> None:
        chunk = self.source[self.i:self.i + n]
        newlines = chunk.count("\n")
        if newlines:
            self.line += newlines
            self.col = n - chunk.rfind("\n")
        else:
            self.col += n
        self.i += n

    def tokens(self) -> Iterator[Token]:
        src = self.source
        n = len(src)
        while self.i < n:
            ch = src[self.i]
            if ch in " \t\r\n":
                self._advance(1)
                continue
            if ch == "#":
                # surviving "#pragma" lines become PRAGMA tokens so the
                # parser can attach OpenACC directives to loops; other
                # stray hash lines are skipped
                pos = self._pos()
                end = src.find("\n", self.i)
                line = src[self.i:end if end >= 0 else n]
                self._advance(len(line))
                stripped = line.lstrip("#").strip()
                if stripped.startswith("pragma"):
                    yield Token(TokenKind.PRAGMA, line, pos,
                                stripped[len("pragma"):].strip())
                continue
            pos = self._pos()
            if ch == '"':
                text, value = self._string(pos)
                yield Token(TokenKind.STRING, text, pos, value)
                continue
            if ch == "'":
                text, value = self._char(pos)
                yield Token(TokenKind.CHAR, text, pos, value)
                continue
            m = _FLOAT_RE.match(src, self.i)
            if m:
                text = m.group(0)
                self._advance(len(text))
                yield Token(TokenKind.FLOAT, text, pos,
                            float(text.rstrip("fF")))
                continue
            m = _INT_RE.match(src, self.i)
            if m:
                text = m.group(0)
                self._advance(len(text))
                digits = text.rstrip("uUlL")
                value = int(digits, 16) if digits.lower().startswith("0x") \
                    else int(digits)
                yield Token(TokenKind.INT, text, pos, value)
                continue
            m = _IDENT_RE.match(src, self.i)
            if m:
                text = m.group(0)
                self._advance(len(text))
                kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
                yield Token(kind, text, pos)
                continue
            for punct in PUNCTUATION:
                if src.startswith(punct, self.i):
                    self._advance(len(punct))
                    yield Token(TokenKind.PUNCT, punct, pos)
                    break
            else:
                raise CompileError(f"unexpected character {ch!r}", pos)
        yield Token(TokenKind.EOF, "", self._pos())

    def _string(self, pos: SourcePos) -> tuple[str, str]:
        src = self.source
        j = self.i + 1
        chars: list[str] = []
        while j < len(src):
            c = src[j]
            if c == "\\" and j + 1 < len(src):
                chars.append(_ESCAPES.get(src[j + 1], src[j + 1]))
                j += 2
                continue
            if c == '"':
                text = src[self.i:j + 1]
                self._advance(j + 1 - self.i)
                return text, "".join(chars)
            if c == "\n":
                break
            chars.append(c)
            j += 1
        raise CompileError("unterminated string literal", pos)

    def _char(self, pos: SourcePos) -> tuple[str, int]:
        src = self.source
        j = self.i + 1
        if j < len(src) and src[j] == "\\" and j + 2 < len(src) \
                and src[j + 2] == "'":
            value = ord(_ESCAPES.get(src[j + 1], src[j + 1]))
            text = src[self.i:j + 3]
            self._advance(j + 3 - self.i)
            return text, value
        if j + 1 < len(src) and src[j + 1] == "'":
            value = ord(src[j])
            text = src[self.i:j + 2]
            self._advance(j + 2 - self.i)
            return text, value
        raise CompileError("malformed character literal", pos)


def tokenize(source: str) -> list[Token]:
    """Tokenize preprocessed source into a list ending with EOF."""
    return list(Lexer(source).tokens())
