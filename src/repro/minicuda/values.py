"""Runtime value representations for the minicuda interpreter."""

from __future__ import annotations

import ctypes
from typing import Any

import numpy as np

from repro.gpusim.memory import CTYPE_TO_DTYPE, DevicePtr, SharedArray
from repro.minicuda.ast_nodes import CType


def f32(value: Any, _c: Any = ctypes.c_float) -> float:
    """Round a Python number through IEEE binary32 — the single source
    of truth for ``float``-typed coercion across every execution engine
    (tree-walker, closure, codegen, simd). The ctypes round-trip is
    bit-identical to ``float(np.float32(value))`` (round-to-nearest-
    even, overflow to inf, subnormal flush per IEEE) at a fraction of
    the numpy scalar-construction cost."""
    return _c(value).value

#: sizeof() in bytes for scalar base types.
SCALAR_SIZES = {
    "float": 4, "double": 8, "int": 4, "unsigned": 4, "unsigned int": 4,
    "long": 8, "char": 1, "unsigned char": 1, "bool": 1, "size_t": 8,
    "short": 2, "void": 1, "dim3": 12,
}

POINTER_SIZE = 8


def sizeof_ctype(ctype: CType) -> int:
    if ctype.is_pointer:
        return POINTER_SIZE
    size = SCALAR_SIZES.get(ctype.base)
    if size is None:
        raise ValueError(f"sizeof({ctype}) is not supported")
    if ctype.array_dims:
        for dim in ctype.array_dims:
            size *= dim
    return size


def dtype_for(base: str) -> np.dtype:
    return CTYPE_TO_DTYPE.get(base, np.dtype(np.float32))


class HostBuffer:
    """A host-memory allocation (malloc / wbImport result)."""

    __slots__ = ("data", "label")

    def __init__(self, data: np.ndarray, label: str = "host"):
        self.data = data
        self.label = label

    @property
    def num_elements(self) -> int:
        return int(self.data.size)


class HostPtr:
    """A typed pointer into host memory."""

    __slots__ = ("buffer", "offset")

    def __init__(self, buffer: HostBuffer, offset: int = 0):
        self.buffer = buffer
        self.offset = offset

    @property
    def dtype(self) -> np.dtype:
        return self.buffer.data.dtype

    def __add__(self, n: int) -> "HostPtr":
        return HostPtr(self.buffer, self.offset + int(n))

    __radd__ = __add__

    def __sub__(self, n: int) -> "HostPtr":
        return HostPtr(self.buffer, self.offset - int(n))

    def read(self, index: int = 0) -> Any:
        i = self.offset + int(index)
        if not (0 <= i < self.buffer.data.size):
            raise MemoryFault(
                f"host read out of bounds: index {i} of {self.buffer.label} "
                f"[{self.buffer.data.size}]")
        v = self.buffer.data[i]
        return v.item()

    def write(self, index: int, value: Any) -> None:
        i = self.offset + int(index)
        if not (0 <= i < self.buffer.data.size):
            raise MemoryFault(
                f"host write out of bounds: index {i} of {self.buffer.label} "
                f"[{self.buffer.data.size}]")
        self.buffer.data[i] = value

    def as_array(self, length: int | None = None) -> np.ndarray:
        end = None if length is None else self.offset + length
        return self.buffer.data[self.offset:end]

    def retyped(self, base: str) -> "HostPtr":
        """Pointer cast: reinterpret the underlying bytes as ``base``."""
        dtype = dtype_for(base)
        if dtype == self.buffer.data.dtype:
            return self
        byte_off = self.offset * self.buffer.data.dtype.itemsize
        raw = self.buffer.data.view(np.uint8)
        view = raw[byte_off:].view(dtype)
        return HostPtr(HostBuffer(view, self.buffer.label), 0)

    def __repr__(self) -> str:
        return f"HostPtr({self.buffer.label}+{self.offset})"


class MemoryFault(Exception):
    """The simulated process touched memory it should not have."""


class NullPtr:
    """The NULL pointer; any dereference faults."""

    _instance: "NullPtr | None" = None

    def __new__(cls) -> "NullPtr":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def read(self, index: int = 0) -> Any:
        raise MemoryFault("segmentation fault: NULL pointer dereference")

    def write(self, index: int, value: Any) -> None:
        raise MemoryFault("segmentation fault: NULL pointer write")

    def __bool__(self) -> bool:
        return False

    def __repr__(self) -> str:
        return "NULL"


NULL = NullPtr()


class MDView:
    """A multi-dimensional view over flat storage (row-major).

    Used for ``__shared__ float tile[16][16]``, per-thread local
    arrays, and ``__constant__`` arrays: indexing peels dimensions
    until a scalar element remains.
    """

    __slots__ = ("storage", "dims", "offset")

    def __init__(self, storage: Any, dims: tuple[int, ...], offset: int = 0):
        self.storage = storage  # SharedArray | LocalArray | DevicePtr | HostPtr
        self.dims = dims
        self.offset = offset

    @property
    def is_scalar_level(self) -> bool:
        """True when one more index yields an element."""
        return len(self.dims) == 1

    def sub(self, index: int) -> "MDView":
        index = int(index)
        if not (0 <= index < self.dims[0]):
            raise MemoryFault(
                f"index {index} out of range [0, {self.dims[0]}) in "
                f"multi-dimensional array access")
        stride = 1
        for d in self.dims[1:]:
            stride *= d
        return MDView(self.storage, self.dims[1:], self.offset + index * stride)

    def flat_index(self, index: int) -> int:
        index = int(index)
        if not (0 <= index < self.dims[0]):
            raise MemoryFault(
                f"index {index} out of range [0, {self.dims[0]}) in "
                "array access")
        return self.offset + index

    def __repr__(self) -> str:
        return f"MDView({self.storage!r}, dims={self.dims})"


class LocalArray:
    """A per-thread (or host-local) C array."""

    __slots__ = ("data", "name")

    def __init__(self, name: str, num_elements: int, base: str):
        self.name = name
        self.data = np.zeros(num_elements, dtype=dtype_for(base))

    def read(self, index: int) -> Any:
        i = int(index)
        if not (0 <= i < self.data.size):
            raise MemoryFault(
                f"index {i} out of bounds for local array {self.name} "
                f"[{self.data.size}]")
        return self.data[i].item()

    def write(self, index: int, value: Any) -> None:
        i = int(index)
        if not (0 <= i < self.data.size):
            raise MemoryFault(
                f"index {i} out of bounds for local array {self.name} "
                f"[{self.data.size}]")
        self.data[i] = value

    def as_array(self, length: int | None = None) -> np.ndarray:
        """Host-side view (lets local arrays act as cudaMemcpy targets)."""
        return self.data[:length] if length is not None else self.data

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype


class VarRef:
    """An lvalue reference to a named variable (for ``&x`` out-params)."""

    __slots__ = ("env", "name")

    def __init__(self, env: "Env", name: str):
        self.env = env
        self.name = name

    def get(self) -> Any:
        return self.env.get(self.name)

    def set(self, value: Any) -> None:
        self.env.assign(self.name, value)

    @property
    def ctype(self) -> CType | None:
        return self.env.type_of(self.name)


class ElemRef:
    """An lvalue reference to one element of an array/pointer target."""

    __slots__ = ("target", "index")

    def __init__(self, target: Any, index: int):
        self.target = target
        self.index = int(index)

    def get(self) -> Any:
        return self.target.read(self.index)

    def set(self, value: Any) -> None:
        self.target.write(self.index, value)


class Env:
    """A chained scope of name -> (value, declared type)."""

    __slots__ = ("parent", "values", "types")

    def __init__(self, parent: "Env | None" = None):
        self.parent = parent
        self.values: dict[str, Any] = {}
        self.types: dict[str, CType | None] = {}

    def declare(self, name: str, value: Any, ctype: CType | None = None) -> None:
        self.values[name] = value
        self.types[name] = ctype

    def _find(self, name: str) -> "Env | None":
        env: Env | None = self
        while env is not None:
            if name in env.values:
                return env
            env = env.parent
        return None

    def get(self, name: str) -> Any:
        env = self._find(name)
        if env is None:
            raise NameError(f"undefined variable {name!r}")
        return env.values[name]

    def has(self, name: str) -> bool:
        return self._find(name) is not None

    def assign(self, name: str, value: Any) -> None:
        env = self._find(name)
        if env is None:
            raise NameError(f"assignment to undefined variable {name!r}")
        env.values[name] = coerce(value, env.types.get(name))

    def type_of(self, name: str) -> CType | None:
        env = self._find(name)
        return env.types.get(name) if env is not None else None


_INT_BASES = frozenset({"int", "unsigned", "unsigned int", "long", "char",
                        "unsigned char", "short", "size_t"})
_FLOAT_BASES = frozenset({"float", "double"})


def coerce(value: Any, ctype: CType | None) -> Any:
    """Coerce a value to a declared C type on assignment/initialisation."""
    if ctype is None or ctype.is_pointer or ctype.is_array:
        return value
    if isinstance(value, (bool, int, float)):
        if ctype.base in _INT_BASES:
            return int(value)
        if ctype.base in _FLOAT_BASES:
            if ctype.base == "float":
                # round-trip through binary32 to model single precision
                return f32(value)
            return float(value)
        if ctype.base == "bool":
            return bool(value)
    return value


def is_pointer_value(value: Any) -> bool:
    return isinstance(value, (DevicePtr, HostPtr, NullPtr, MDView,
                              SharedArray, LocalArray))
