"""Source-codegen execution engine for minicuda kernels.

The closure engine (``repro.minicuda.codegen``) removed per-node AST
dispatch but still pays one Python *call* per expression node. This
module takes the next step — the pegen-experiments idiom of emitting
**Python source text** and ``compile()``-ing it: each checked kernel is
lowered to one generated Python function with flat local variables (no
slot indirection, no closure chains), so per-thread execution is plain
bytecode over plain locals.

Design points, mirroring the closure engine where it matters:

* **KernelStats parity** — every ``stats.instructions`` charge point of
  the closure engine is preserved, and all memory traffic still routes
  through the profiling :class:`ThreadContext`, so the profiled
  counters are bit-identical to the tree-walking oracle. Charges in a
  straight-line region are batched into one ``S.instructions += n``
  per region (totals are identical; only the interleaving of the
  counter bumps differs, which nothing observes mid-kernel).
* **Memory-effect order** — every load/store/atomic/user-call is
  hoisted onto its own generated line in C evaluation order, so the
  per-thread access sequence (and therefore the coalescing and
  bank-conflict model) matches the oracle exactly.
* **Step accounting** is the closure engine's coarse scheme: one step
  per kernel/device-function entry and per loop iteration, raising
  :class:`KernelHang` with the same message.
* **Fallback** — constructs the emitter cannot lower (address of a
  scalar local, barriers in expression/for-init position, calls to
  barrier device functions, ``continue`` inside ``switch``, OpenACC)
  raise :class:`UnsupportedConstruct`; the caller falls back to the
  tree-walker, and the verdict is memoized like the closure engine's.
* **Warp-vectorized fast path** — kernels whose bodies are free of
  loops, barriers and non-maskable constructs additionally compile to
  a warp-level executor that runs a whole warp's arithmetic as batched
  numpy-object operations over the active lanes, with masked ``if``
  execution and per-lane retirement on ``return``; the scheduler runs
  it one warp at a time. Any kernel outside that shape simply executes
  lane-by-lane (the scalar generated function), which is the fallback
  at the first divergent construct.

Error-path divergence is deliberate and documented: generated code
lets Python ``TypeError``s from malformed operand types surface raw
instead of wrapping them in :class:`InterpreterError`, and a kernel
that faults mid-statement may have batched instruction charges not yet
flushed. Successful runs are bit-identical.

Compiled kernels are memoized per program fingerprint through the same
:data:`repro.minicuda.codegen.KERNEL_CACHE` the closure engine uses,
under engine- and version-tagged keys (see :func:`codegen.memo_key`).
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.gpusim.grid import Dim3
from repro.gpusim.memory import DevicePtr, SharedArray
from repro.gpusim.scheduler import SYNC, ThreadContext
from repro.minicuda import ast_nodes as ast
from repro.minicuda import builtins as bi
from repro.minicuda.codegen import (
    KERNEL_CACHE,
    UnsupportedConstruct,
    _HANG_MSG,
    _OPENCL_INDEX_FNS,
    _coerce_bool,
    _coerce_f32,
    _coerce_f64,
    _coerce_int,
    _flatten_init_exprs,
    _make_coercer,
    memo_key,
)
from repro.minicuda.interpreter import (
    _BINOPS,
    _MATH_IMPL,
    InterpreterError,
    KernelHang,
    _c_div,
    _c_mod,
    _make_dim3,
    _opencl_index,
    _truthy,
    c_format,
    member_value,
    read_indexed,
    write_indexed,
)
from repro.minicuda.semantic import BARRIER_BUILTINS, ProgramInfo
from repro.minicuda.values import (
    NULL,
    ElemRef,
    HostPtr,
    LocalArray,
    MDView,
    MemoryFault,
    NullPtr,
    VarRef,
    coerce,
    sizeof_ctype,
)
from repro.minicuda.values import f32 as _f32_shared

#: Bump when generated-source semantics change; part of the memo key so
#: stale artifacts and unsupported verdicts are never recalled across
#: compiler upgrades (see ``codegen.memo_key``).
SRCGEN_VERSION = 1

_COMPARISONS = ("<", "<=", ">", ">=")


# -- runtime helpers referenced by generated code ---------------------------

def _err(message: str, pos: Any) -> Any:
    raise InterpreterError(message, pos)


def _c_eq(a: Any, b: Any) -> int:
    if isinstance(a, NullPtr) or isinstance(b, NullPtr):
        return int((a is NULL) == (b is NULL))
    return int(a == b)


def _c_ne(a: Any, b: Any) -> int:
    if isinstance(a, NullPtr) or isinstance(b, NullPtr):
        return int((a is NULL) != (b is NULL))
    return int(a != b)


def _cast_ptr(value: Any, base: str, pos: Any) -> Any:
    if isinstance(value, HostPtr):
        return value.retyped(base)
    if isinstance(value, (DevicePtr, NullPtr, VarRef)):
        return value
    if isinstance(value, int) and value == 0:
        return NULL
    raise InterpreterError(
        f"unsupported pointer cast of {type(value).__name__}", pos)


def _addr_of(base: Any, index: Any, pos: Any) -> Any:
    if isinstance(base, (DevicePtr, HostPtr)):
        return base + int(index)
    if isinstance(base, (SharedArray, LocalArray)):
        return ElemRef(base, int(index))
    if isinstance(base, MDView) and base.is_scalar_level:
        return ElemRef(base.storage, base.flat_index(int(index)))
    raise InterpreterError("cannot take the address of this element", pos)


#: The shared binary32 rounding helper (``values.f32``): every engine
#: routes ``float``-typed coercion through this one function so the
#: scalar and SIMD tiers provably round identically.
_f32_round = _f32_shared


def _md_oob(i: int, d0: int, j: int, d1: int) -> None:
    """Raise the MDView bounds fault for a direct 2-D access: the
    first-level message when ``i`` is out of range, otherwise the
    scalar-level (``flat_index``) message for ``j``."""
    if not 0 <= i < d0:
        raise MemoryFault(
            f"index {i} out of range [0, {d0}) in "
            f"multi-dimensional array access")
    raise MemoryFault(
        f"index {j} out of range [0, {d1}) in array access")


def _resolve_atomic(ref: Any, pos: Any) -> tuple[Any, int]:
    if isinstance(ref, (DevicePtr, HostPtr)):
        target, index = ref, 0
    elif isinstance(ref, ElemRef):
        target, index = ref.target, ref.index
    elif isinstance(ref, SharedArray):
        target, index = ref, 0
    else:
        raise InterpreterError(
            f"atomic target must be a memory location, got "
            f"{type(ref).__name__}", pos)
    if isinstance(target, (HostPtr, LocalArray)):
        raise MemoryFault("atomics require device or shared memory")
    return target, index


_BASE_NS: dict[str, Any] = {
    "InterpreterError": InterpreterError,
    "KernelHang": KernelHang,
    "MemoryFault": MemoryFault,
    "_HANG_MSG": _HANG_MSG,
    "_truthy": _truthy,
    "_c_div": _c_div,
    "_c_mod": _c_mod,
    "_c_eq": _c_eq,
    "_c_ne": _c_ne,
    "read_indexed": read_indexed,
    "write_indexed": write_indexed,
    "member_value": member_value,
    "c_format": c_format,
    "_opencl_index": _opencl_index,
    "_make_dim3": _make_dim3,
    "_err": _err,
    "_md_oob": _md_oob,
    "_cast_ptr": _cast_ptr,
    "_addr_of": _addr_of,
    "_resolve_atomic": _resolve_atomic,
    "DevicePtr": DevicePtr,
    "HostPtr": HostPtr,
    "NullPtr": NullPtr,
    "SharedArray": SharedArray,
    "LocalArray": LocalArray,
    "MDView": MDView,
    "ElemRef": ElemRef,
    "VarRef": VarRef,
    "NULL": NULL,
    "Dim3": Dim3,
    "SYNC": SYNC,
    "_co_int": _coerce_int,
    "_co_f32": _coerce_f32,
    "_co_f64": _coerce_f64,
    "_co_bool": _coerce_bool,
    "_f32": np.float32,
    "_f32f": _f32_round,
}
for _name, _impl in _MATH_IMPL.items():
    _BASE_NS[f"_m_{_name}"] = _impl

#: value-kind lattice: 'int' | 'float' | 'bool' | container kinds | None
_INT_LIKE = ("int", "bool")

_FLOAT_MATH = frozenset({
    "sqrt", "sqrtf", "rsqrtf", "exp", "expf", "log", "logf", "log2f",
    "pow", "powf", "sin", "sinf", "cos", "cosf", "tanf", "__fdividef",
})
_INT_MATH = frozenset({"floor", "floorf", "ceil", "ceilf",
                       "round", "roundf"})

_BUILTIN_IDX = ("threadIdx", "blockIdx", "blockDim", "gridDim")


def _ctype_kinds(ctype: ast.CType | None) -> tuple[Any, str | None]:
    """(value kind after coercion, coercer kind) for a declared type."""
    if ctype is None or ctype.is_pointer or ctype.is_array:
        return None, None
    from repro.minicuda.values import _INT_BASES
    base = ctype.base
    if base in _INT_BASES and base != "bool":
        return "int", "int"
    if base == "bool":
        return "bool", "bool"
    if base == "float":
        return "float", "f32"
    if base == "double":
        return "float", "f64"
    if base == "dim3":
        return "dim3", None
    return None, None


def _is_numeric(kind: Any) -> bool:
    return kind in ("int", "float", "bool")


def _arith_kind(left: Any, right: Any) -> Any:
    if left in _INT_LIKE and right in _INT_LIKE:
        return "int"
    if _is_numeric(left) and _is_numeric(right):
        return "float"
    return None


class CompiledSrcKernel:
    """A kernel lowered to generated Python source."""

    __slots__ = ("name", "factory", "is_gen", "coercers", "warp_factory",
                 "source", "profiled")

    def __init__(self, name: str, factory: Callable, is_gen: bool,
                 coercers: list, warp_factory: Callable | None,
                 source: str, profiled: bool = False):
        self.name = name
        self.factory = factory
        self.is_gen = is_gen
        self.coercers = coercers
        self.warp_factory = warp_factory
        self.source = source
        self.profiled = profiled

    def bind(self, interp: Any, args: tuple[Any, ...]) -> Callable:
        """Per-launch thread callable; plain function unless the kernel
        barriers. Qualifying plain kernels carry a ``vector_run``
        attribute the scheduler uses to execute whole warps at once.
        Profiled kernels run lane-by-lane and carry the ``profiled``
        marker the scheduler dispatches on."""
        args2 = tuple(a if co is None else co(a)
                      for co, a in zip(self.coercers, args))
        thread_fn = self.factory(interp, *args2)
        if self.profiled:
            thread_fn.profiled = True
        elif self.warp_factory is not None and not self.is_gen:
            thread_fn.vector_run = self.warp_factory(interp, args2)
        return thread_fn


# -- the scalar source emitter ----------------------------------------------

class _FnEmitter:
    """Lowers one function body to Python source lines."""

    def __init__(self, mod: "_ModuleEmitter", gen_ok: bool,
                 is_device: bool):
        self.mod = mod
        self.gen_ok = gen_ok
        self.is_device = is_device
        self.profile = mod.profile
        self.scopes: list[dict[str, tuple[str, Any, str | None]]] = [{}]
        self.lines: list[str] = []
        self.indent = 2 if not is_device else 1
        self.pending = 0
        self.has_yield = False
        self.used_builtins: set[str] = set()
        self.used_fields: set[tuple[str, str]] = set()
        self.used_ctx: set[str] = set()
        self.uses_warpsize = False
        self.loop_stack: list[dict] = []

    # -- low-level emission -------------------------------------------------

    def line(self, text: str) -> None:
        self.lines.append("    " * self.indent + text)

    def flush(self) -> None:
        if self.pending:
            self.line(f"S.instructions += {self.pending}")
            self.pending = 0

    def charge(self, n: int = 1) -> None:
        self.pending += n

    def tmp(self) -> str:
        return self.mod.tmp()

    def atom(self, code: str, force: bool = False) -> str:
        """Hoist ``code`` to a temp unless it is already a bare name."""
        if not force and (code.isidentifier() or code.isdigit()):
            return code
        t = self.tmp()
        self.line(f"{t} = {code}")
        return t

    def pos(self, p: Any) -> str:
        return self.mod.pos(p)

    def cm(self, method: str) -> str:
        """A prologue-hoisted bound ctx method (``_cm_x = C.x``) —
        saves the descriptor bind on every hot memory access."""
        self.used_ctx.add(method)
        return f"_cm_{method}"

    # -- scopes ---------------------------------------------------------------

    def push(self) -> None:
        self.scopes.append({})

    def pop(self) -> None:
        self.scopes.pop()

    def declare(self, name: str, vkind: Any, cokind: str | None) -> str:
        py = f"_v{self.mod.nextvar()}_{name}"
        self.scopes[-1][name] = (py, vkind, cokind)
        return py

    def lookup(self, name: str) -> tuple[str, Any, str | None] | None:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        return None

    # -- coercion -------------------------------------------------------------

    def coerced(self, code: str, kind: Any, cokind: str | None) -> str:
        """Wrap ``code`` with the declared-type coercion, eliding it
        when the static value kind proves it a no-op."""
        if cokind is None:
            return code
        if cokind == "int":
            if kind == "int":
                return code
            if kind in ("bool", "float"):
                return f"int({code})"
            return f"_co_int({code})"
        if cokind == "f32":
            if _is_numeric(kind):
                return f"_f32f({code})"
            return f"_co_f32({code})"
        if cokind == "f64":
            if kind == "float":
                return code
            if _is_numeric(kind):
                return f"float({code})"
            return f"_co_f64({code})"
        if cokind == "bool":
            if _is_numeric(kind):
                return f"bool({code})"
            return f"_co_bool({code})"
        return code

    def as_int(self, code: str, kind: Any) -> str:
        return code if kind in _INT_LIKE else f"int({code})"

    # -- buffered sub-compilation ----------------------------------------------

    def subexpr(self, e: ast.Expr) -> tuple[list[str], str, int, Any]:
        saved_lines, saved_pending = self.lines, self.pending
        saved_indent = self.indent
        self.lines, self.pending = [], 0
        self.indent = 0
        code, kind = self.expr(e)
        lines, charges = self.lines, self.pending
        self.lines, self.pending = saved_lines, saved_pending
        self.indent = saved_indent
        return lines, code, charges, kind

    def splice(self, lines: list[str]) -> None:
        pad = "    " * self.indent
        for raw in lines:
            self.lines.append(pad + raw)

    # -- expressions -------------------------------------------------------------

    def expr(self, e: ast.Expr) -> tuple[str, Any]:
        cls = type(e)
        if cls is ast.IntLit:
            return repr(e.value), "int"
        if cls is ast.FloatLit:
            return repr(e.value), "float"
        if cls is ast.BoolLit:
            return repr(e.value), "bool"
        if cls is ast.StrLit:
            return repr(e.value), None
        if cls is ast.NullLit:
            return "NULL", "null"
        if cls is ast.Ident:
            return self._ident(e.name, e.pos)
        if cls is ast.Member:
            return self._member(e)
        if cls is ast.Index:
            return self._index_read(e)
        if cls is ast.Binary:
            return self._binary(e)
        if cls is ast.Assign:
            return self._assign(e, want_value=True)
        if cls is ast.Unary:
            return self._unary(e)
        if cls is ast.IncDec:
            return self._incdec(e, want_value=True)
        if cls is ast.Conditional:
            return self._conditional(e)
        if cls is ast.Cast:
            return self._cast(e)
        if cls is ast.SizeOf:
            return repr(sizeof_ctype(e.type)), "int"
        if cls is ast.Call:
            return self._call(e)
        if cls is ast.KernelLaunch:
            return (f"_err('dynamic parallelism is not supported', "
                    f"{self.pos(e.pos)})", None)
        raise UnsupportedConstruct(f"expression {cls.__name__}")

    def _ident(self, name: str, pos: Any) -> tuple[str, Any]:
        hit = self.lookup(name)
        if hit is not None:
            return hit[0], hit[1]
        if name in self.mod.global_names:
            return f"I.globals.get({name!r})", None
        if name in _BUILTIN_IDX:
            self.used_builtins.add(name)
            return f"_bi_{name}", "dim3"
        if name == "warpSize":
            self.uses_warpsize = True
            return "_warpSize", "int"
        if name in bi.DEVICE_CONSTANTS:
            value = bi.DEVICE_CONSTANTS[name]
            cname = self.mod.const(name, value)
            kind = ("int" if isinstance(value, int) else
                    "float" if isinstance(value, float) else None)
            return cname, kind
        return (f"_err('undefined identifier {name!r}', {self.pos(pos)})",
                None)

    def _member(self, e: ast.Member) -> tuple[str, Any]:
        obj, field = e.obj, e.field_name
        if isinstance(obj, ast.Ident) and field in ("x", "y", "z") \
                and obj.name in _BUILTIN_IDX \
                and self.lookup(obj.name) is None \
                and obj.name not in self.mod.global_names:
            self.used_fields.add((obj.name, field))
            return f"_bi_{obj.name}_{field}", "int"
        obj_code, obj_kind = self.expr(obj)
        if obj_kind == "dim3" and field in ("x", "y", "z"):
            return f"{self.atom(obj_code)}.{field}", "int"
        return (f"member_value({obj_code}, {field!r}, {self.pos(e.pos)})",
                None)

    def _md_direct(self, e: ast.Index) -> tuple | None:
        """Recognise ``A[i][j]`` on a locally declared 2-D shared/local
        array: its dims and flat storage are known at compile time, so
        the access can bypass the MDView ``sub``/``flat_index`` chain."""
        inner = e.base
        if type(inner) is not ast.Index or type(inner.base) is not ast.Ident:
            return None
        hit = self.lookup(inner.base.name)
        if hit is None:
            return None
        vkind = hit[1]
        if not (isinstance(vkind, tuple) and len(vkind) == 3
                and vkind[0] in ("shared_md", "local_md")
                and len(vkind[1]) == 2):
            return None
        return vkind[0], vkind[2], vkind[1], inner.index, e.index

    def _md_flat(self, d0: int, d1: int, i_node: ast.Expr,
                 j_node: ast.Expr) -> str:
        """Emit the checked flat index for a direct 2-D access.
        The bounds test mirrors MDView ``sub`` + ``flat_index``
        (see :func:`_md_oob` for the matching fault messages)."""
        icode, ikind = self.expr(i_node)
        i = self.atom(self.as_int(icode, ikind))
        jcode, jkind = self.expr(j_node)
        j = self.atom(self.as_int(jcode, jkind))
        self.line(f"if not (0 <= {i} < {d0} and 0 <= {j} < {d1}):")
        self.line(f"    _md_oob({i}, {d0}, {j}, {d1})")
        return f"({i} * {d1} + {j})"

    def _index_pair(self, e: ast.Index) -> tuple[str, Any, str, Any]:
        direct = self._md_direct(e)
        if direct is not None:
            space, store, (d0, d1), i_node, j_node = direct
            flat = self._md_flat(d0, d1, i_node, j_node)
            kind = ("shared_flat",) if space == "shared_md" \
                else ("local_flat",)
            return store, kind, flat, "int"
        base_code, base_kind = self.expr(e.base)
        base = self.atom(base_code)
        index_code, index_kind = self.expr(e.index)
        return base, base_kind, index_code, index_kind

    def _index_read(self, e: ast.Index) -> tuple[str, Any]:
        base, bkind, icode, ikind = self._index_pair(e)
        t = self.tmp()
        if bkind == "shared":
            self.line(f"{t} = {self.cm('shared_load')}({base}, {icode})")
            return t, None
        if bkind == "localarray":
            self.charge(1)
            self.line(f"{t} = {base}.read({self.as_int(icode, ikind)})")
            return t, None
        if isinstance(bkind, tuple) and bkind[0] == "shared_flat":
            self.line(f"{t} = {self.cm('shared_load')}({base}, {icode})")
            return t, None
        if isinstance(bkind, tuple) and bkind[0] == "local_flat":
            self.charge(1)
            self.line(f"{t} = {base}.read({icode})")
            return t, None
        if isinstance(bkind, tuple) and bkind[0] in ("shared_md",
                                                     "local_md"):
            sub = self.tmp()
            self.line(f"{sub} = {base}.sub({self.as_int(icode, ikind)})")
            if len(bkind[1]) == 2:
                return sub, (bkind[0].split('_')[0] + "_sub",)
            return sub, None
        if isinstance(bkind, tuple) and bkind[0] == "shared_sub":
            self.line(f"{t} = {self.cm('shared_load')}({base}.storage, "
                      f"{base}.flat_index({self.as_int(icode, ikind)}))")
            return t, None
        if isinstance(bkind, tuple) and bkind[0] == "local_sub":
            self.charge(1)
            self.line(f"{t} = {base}.storage.read("
                      f"{base}.flat_index({self.as_int(icode, ikind)}))")
            return t, None
        idx = self.atom(icode)
        self.line(
            f"{t} = {self.cm('load')}({base}, {self.as_int(idx, ikind)}) "
            f"if type({base}) is DevicePtr "
            f"else read_indexed({base}, {idx}, C, {self.pos(e.pos)})")
        return t, None

    def _emit_store(self, base: str, bkind: Any, icode: str, ikind: Any,
                    value: str, pos: Any) -> None:
        if bkind == "shared":
            self.line(f"{self.cm('shared_store')}({base}, {icode}, "
                      f"{value})")
            return
        if bkind == "localarray":
            self.charge(1)
            self.line(f"{base}.write({self.as_int(icode, ikind)}, {value})")
            return
        if isinstance(bkind, tuple) and bkind[0] == "shared_flat":
            self.line(f"{self.cm('shared_store')}({base}, {icode}, "
                      f"{value})")
            return
        if isinstance(bkind, tuple) and bkind[0] == "local_flat":
            self.charge(1)
            self.line(f"{base}.write({icode}, {value})")
            return
        if isinstance(bkind, tuple) and bkind[0] == "shared_sub":
            self.line(f"{self.cm('shared_store')}({base}.storage, "
                      f"{base}.flat_index({self.as_int(icode, ikind)}), "
                      f"{value})")
            return
        if isinstance(bkind, tuple) and bkind[0] == "local_sub":
            self.charge(1)
            self.line(f"{base}.storage.write("
                      f"{base}.flat_index({self.as_int(icode, ikind)}), "
                      f"{value})")
            return
        self.line(f"if type({base}) is DevicePtr:")
        self.line(f"    {self.cm('store')}({base}, "
                  f"{self.as_int(icode, ikind)}, {value})")
        self.line("else:")
        self.line(f"    write_indexed({base}, {icode}, {value}, C, "
                  f"{self.pos(pos)})")

    def _emit_load_from(self, base: str, bkind: Any, icode: str, ikind: Any,
                        pos: Any) -> str:
        t = self.tmp()
        if bkind == "shared":
            self.line(f"{t} = {self.cm('shared_load')}({base}, {icode})")
        elif bkind == "localarray":
            self.charge(1)
            self.line(f"{t} = {base}.read({self.as_int(icode, ikind)})")
        elif isinstance(bkind, tuple) and bkind[0] == "shared_flat":
            self.line(f"{t} = {self.cm('shared_load')}({base}, {icode})")
        elif isinstance(bkind, tuple) and bkind[0] == "local_flat":
            self.charge(1)
            self.line(f"{t} = {base}.read({icode})")
        elif isinstance(bkind, tuple) and bkind[0] == "shared_sub":
            self.line(f"{t} = {self.cm('shared_load')}({base}.storage, "
                      f"{base}.flat_index({self.as_int(icode, ikind)}))")
        elif isinstance(bkind, tuple) and bkind[0] == "local_sub":
            self.charge(1)
            self.line(f"{t} = {base}.storage.read("
                      f"{base}.flat_index({self.as_int(icode, ikind)}))")
        else:
            self.line(
                f"{t} = {self.cm('load')}({base}, "
                f"{self.as_int(icode, ikind)}) "
                f"if type({base}) is DevicePtr "
                f"else read_indexed({base}, {icode}, C, {self.pos(pos)})")
        return t

    def _binary(self, e: ast.Binary) -> tuple[str, Any]:
        op = e.op
        if op in ("&&", "||"):
            return self._logical(e)
        lcode, lkind = self.expr(e.left)
        rcode, rkind = self.expr(e.right)
        self.charge(1)
        if op in _COMPARISONS:
            if _is_numeric(lkind) and _is_numeric(rkind):
                return f"(1 if {lcode} {op} {rcode} else 0)", "int"
            return f"int({lcode} {op} {rcode})", "int"
        if op == "==":
            if _is_numeric(lkind) and _is_numeric(rkind):
                return f"(1 if {lcode} == {rcode} else 0)", "int"
            return f"_c_eq({lcode}, {rcode})", "int"
        if op == "!=":
            if _is_numeric(lkind) and _is_numeric(rkind):
                return f"(1 if {lcode} != {rcode} else 0)", "int"
            return f"_c_ne({lcode}, {rcode})", "int"
        if op in ("+", "-", "*"):
            return f"({lcode} {op} {rcode})", _arith_kind(lkind, rkind)
        if op == "/":
            kind = ("int" if lkind in _INT_LIKE and rkind in _INT_LIKE
                    else "float" if _is_numeric(lkind) and _is_numeric(rkind)
                    else None)
            return f"_c_div({lcode}, {rcode})", kind
        if op == "%":
            kind = ("int" if lkind in _INT_LIKE and rkind in _INT_LIKE
                    else "float" if _is_numeric(lkind) and _is_numeric(rkind)
                    else None)
            return f"_c_mod({lcode}, {rcode})", kind
        if op in ("<<", ">>", "&", "|", "^"):
            li = lcode if lkind in _INT_LIKE else f"int({lcode})"
            ri = rcode if rkind in _INT_LIKE else f"int({rcode})"
            return f"({li} {op} {ri})", "int"
        raise UnsupportedConstruct(f"binary operator {op!r}")

    def _logical(self, e: ast.Binary) -> tuple[str, Any]:
        lcode, lkind = self.expr(e.left)
        rlines, rcode, rcharges, rkind = self.subexpr(e.right)
        lbool = lcode if _is_numeric(lkind) else f"_truthy({lcode})"
        rbool = (f"(1 if {rcode} else 0)" if _is_numeric(rkind)
                 else f"int(_truthy({rcode}))")
        if not rlines and not rcharges:
            if e.op == "&&":
                return f"({rbool} if {lbool} else 0)", "int"
            return f"(1 if {lbool} else {rbool})", "int"
        t = self.tmp()
        self.flush()
        if e.op == "&&":
            self.line(f"if {lbool}:")
        else:
            self.line(f"if not ({lbool}):")
        self.indent += 1
        self.splice(rlines)
        self.pending = rcharges
        self.flush()
        self.line(f"{t} = {rbool}")
        self.indent -= 1
        self.line("else:")
        self.line(f"    {t} = {'0' if e.op == '&&' else '1'}")
        return t, "int"

    def _conditional(self, e: ast.Conditional) -> tuple[str, Any]:
        ccode, ckind = self.expr(e.cond)
        tlines, tcode, tcharges, tkind = self.subexpr(e.then)
        elines, ecode, echarges, ekind = self.subexpr(e.otherwise)
        cbool = ccode if _is_numeric(ckind) else f"_truthy({ccode})"
        kind = tkind if tkind == ekind else None
        if not tlines and not elines and not tcharges and not echarges:
            return f"({tcode} if {cbool} else {ecode})", kind
        t = self.tmp()
        self.flush()
        self.line(f"if {cbool}:")
        self.indent += 1
        self.splice(tlines)
        self.pending = tcharges
        self.flush()
        self.line(f"{t} = {tcode}")
        self.indent -= 1
        self.line("else:")
        self.indent += 1
        self.splice(elines)
        self.pending = echarges
        self.flush()
        self.line(f"{t} = {ecode}")
        self.indent -= 1
        return t, kind

    def _unary(self, e: ast.Unary) -> tuple[str, Any]:
        op = e.op
        if op == "&":
            return self._addressof(e.operand)
        code, kind = self.expr(e.operand)
        if op == "*":
            self.charge(1)
            ptr = self.atom(code)
            t = self.tmp()
            self.line(f"{t} = {self.cm('load')}({ptr}, 0) "
                      f"if type({ptr}) is DevicePtr "
                      f"else read_indexed({ptr}, 0, C, {self.pos(e.pos)})")
            return t, None
        self.charge(1)
        if op == "-":
            return f"(-{code})", kind if _is_numeric(kind) else None
        if op == "+":
            return f"({code})", kind
        if op == "!":
            if _is_numeric(kind):
                return f"(0 if {code} else 1)", "int"
            return f"int(not _truthy({code}))", "int"
        if op == "~":
            inner = code if kind in _INT_LIKE else f"int({code})"
            return f"(~{inner})", "int"
        return (f"_err('unsupported unary {op!r}', {self.pos(e.pos)})", None)

    def _addressof(self, operand: ast.Expr) -> tuple[str, Any]:
        if isinstance(operand, ast.Ident):
            name = operand.name
            if self.lookup(name) is not None:
                raise UnsupportedConstruct(
                    "address of a slot-allocated local")
            if name in self.mod.global_names:
                return f"VarRef(I.globals, {name!r})", None
            return (f"_err('cannot take address of {name!r}', "
                    f"{self.pos(operand.pos)})", None)
        if isinstance(operand, ast.Index):
            base_code, _ = self.expr(operand.base)
            base = self.atom(base_code)
            icode, _ = self.expr(operand.index)
            return f"_addr_of({base}, {icode}, {self.pos(operand.pos)})", None
        return (f"_err('cannot take the address of this expression', "
                f"{self.pos(operand.pos)})", None)

    def _cast(self, e: ast.Cast) -> tuple[str, Any]:
        code, kind = self.expr(e.value)
        if e.type.is_pointer:
            return (f"_cast_ptr({code}, {e.type.base!r}, "
                    f"{self.pos(e.pos)})", None)
        vkind, cokind = _ctype_kinds(e.type)
        if cokind is None:
            return code, kind
        return self.coerced(code, kind, cokind), vkind

    # -- assignment family ------------------------------------------------------

    def _combine(self, bop: str, cur: str, curk: Any, val: str,
                 valk: Any) -> tuple[str, Any]:
        """``cur bop val`` with the closure engine's pointer-aware
        semantics (the DevicePtr/HostPtr dunders already int() their
        operand, so plain + / - matches)."""
        if bop in ("+", "-", "*"):
            return f"({cur} {bop} {val})", _arith_kind(curk, valk)
        if bop == "/":
            return f"_c_div({cur}, {val})", None
        if bop == "%":
            return f"_c_mod({cur}, {val})", None
        if bop in ("<<", ">>", "&", "|", "^"):
            ci = cur if curk in _INT_LIKE else f"int({cur})"
            vi = val if valk in _INT_LIKE else f"int({val})"
            return f"({ci} {bop} {vi})", "int"
        raise UnsupportedConstruct(f"compound operator {bop}=")

    def _assign(self, e: ast.Assign, want_value: bool) -> tuple[str, Any]:
        compound = e.op != "="
        bop = e.op[:-1] if compound else None
        target = e.target
        if isinstance(target, ast.Ident):
            name = target.name
            hit = self.lookup(name)
            if hit is not None:
                py, vkind, cokind = hit
                if vkind in ("shared", "localarray") or \
                        isinstance(vkind, tuple):
                    raise UnsupportedConstruct(
                        "assignment to an array-valued local")
                vcode, vk = self.expr(e.value)
                if compound:
                    vcode, vk = self._combine(bop, py, vkind, vcode, vk)
                self.charge(1)
                if want_value:
                    t = self.atom(vcode, force=True)
                    self.line(f"{py} = {self.coerced(t, vk, cokind)}")
                    return t, vk
                self.line(f"{py} = {self.coerced(vcode, vk, cokind)}")
                return py, vkind
            if name in self.mod.global_names:
                vcode, vk = self.expr(e.value)
                if compound:
                    cur = self.atom(f"I.globals.get({name!r})", force=True)
                    vcode, vk = self._combine(bop, cur, None, vcode, vk)
                self.charge(1)
                t = self.atom(vcode, force=True) if want_value else vcode
                self.line(f"I.globals.assign({name!r}, {t})")
                return (t, vk) if want_value else ("0", "int")
            return (f"_err('assignment to undefined variable {name!r}', "
                    f"{self.pos(target.pos)})", None)
        if isinstance(target, ast.Index):
            base, bkind, icode, ikind = self._index_pair(target)
            icode = self.atom(icode)
            vcode, vk = self.expr(e.value)
            if compound:
                cur = self._emit_load_from(base, bkind, icode, ikind,
                                           target.pos)
                vcode, vk = self._combine(bop, cur, None, vcode, vk)
                vcode = self.atom(vcode, force=True)
            elif want_value:
                vcode = self.atom(vcode, force=True)
            self.charge(1)
            self._emit_store(base, bkind, icode, ikind, vcode, target.pos)
            return vcode, vk
        if isinstance(target, ast.Unary) and target.op == "*":
            pcode, _ = self.expr(target.operand)
            ptr = self.atom(pcode)
            vcode, vk = self.expr(e.value)
            if compound:
                cur = self._emit_load_from(ptr, None, "0", "int", target.pos)
                vcode, vk = self._combine(bop, cur, None, vcode, vk)
                vcode = self.atom(vcode, force=True)
            elif want_value:
                vcode = self.atom(vcode, force=True)
            self.charge(1)
            self._emit_store(ptr, None, "0", "int", vcode, target.pos)
            return vcode, vk
        return (f"_err('expression is not assignable', "
                f"{self.pos(target.pos)})", None)

    def _incdec(self, e: ast.IncDec, want_value: bool) -> tuple[str, Any]:
        step = "+ 1" if e.op == "++" else "- 1"
        target = e.operand
        if isinstance(target, ast.Ident):
            name = target.name
            hit = self.lookup(name)
            if hit is not None:
                py, vkind, cokind = hit
                if vkind in ("shared", "localarray") or \
                        isinstance(vkind, tuple):
                    raise UnsupportedConstruct(
                        "increment of an array-valued local")
                self.charge(1)
                if not want_value:
                    new = f"({py} {step})"
                    self.line(f"{py} = {self.coerced(new, vkind, cokind)}")
                    return py, vkind
                if e.prefix:
                    t = self.tmp()
                    self.line(f"{t} = {py} {step}")
                    self.line(f"{py} = {self.coerced(t, vkind, cokind)}")
                    return t, vkind
                old = self.tmp()
                self.line(f"{old} = {py}")
                new = f"({old} {step})"
                self.line(f"{py} = {self.coerced(new, vkind, cokind)}")
                return old, vkind
            if name in self.mod.global_names:
                old = self.tmp()
                new = self.tmp()
                self.line(f"{old} = I.globals.get({name!r})")
                self.line(f"{new} = {old} {step}")
                self.charge(1)
                self.line(f"I.globals.assign({name!r}, {new})")
                return (new if e.prefix else old), None
            return (f"_err('assignment to undefined variable {name!r}', "
                    f"{self.pos(target.pos)})", None)
        if isinstance(target, ast.Index):
            base, bkind, icode, ikind = self._index_pair(target)
            icode = self.atom(icode)
            old = self._emit_load_from(base, bkind, icode, ikind, target.pos)
            new = self.tmp()
            self.line(f"{new} = {old} {step}")
            self.charge(1)
            self._emit_store(base, bkind, icode, ikind, new, target.pos)
            return (new if e.prefix else old), None
        if isinstance(target, ast.Unary) and target.op == "*":
            pcode, _ = self.expr(target.operand)
            ptr = self.atom(pcode)
            old = self._emit_load_from(ptr, None, "0", "int", target.pos)
            new = self.tmp()
            self.line(f"{new} = {old} {step}")
            self.charge(1)
            self._emit_store(ptr, None, "0", "int", new, target.pos)
            return (new if e.prefix else old), None
        return (f"_err('expression is not assignable', "
                f"{self.pos(target.pos)})", None)

    # -- calls -------------------------------------------------------------------

    def _call(self, e: ast.Call) -> tuple[str, Any]:
        name = e.name
        if name == "dim3":
            parts = [self.expr(a)[0] for a in e.args]
            return (f"_make_dim3([{', '.join(parts)}], "
                    f"{self.pos(e.pos)})", "dim3")
        if name in BARRIER_BUILTINS:
            raise UnsupportedConstruct("barrier call in expression position")
        if name.startswith("atomic"):
            return self._atomic(e)
        if name in bi.MATH_BUILTINS:
            codes = [self.expr(a)[0] for a in e.args]
            self.charge(1)
            kind = ("float" if name in _FLOAT_MATH
                    else "int" if name in _INT_MATH else None)
            return f"_m_{name}({', '.join(codes)})", kind
        if name == "printf":
            if not e.args:
                return "0", "int"
            codes = [self.atom(self.expr(a)[0]) for a in e.args]
            rest = ", ".join(codes[1:])
            self.line(f"C.printf(c_format(str({codes[0]}), ({rest}{',' if codes[1:] else ''})))")
            return "0", "int"
        if name in _OPENCL_INDEX_FNS:
            dcode, dkind = self.expr(e.args[0])
            return (f"_opencl_index({name!r}, {self.as_int(dcode, dkind)}, "
                    f"C)", "int")
        fn = self.mod.info.device_functions.get(name)
        if fn is not None:
            if name in self.mod.info.barrier_functions:
                raise UnsupportedConstruct(
                    f"call to barrier device function {name!r}")
            pyfn = self.mod.ensure_device(name)
            codes = [self.expr(a)[0] for a in e.args]
            self.charge(1)
            t = self.tmp()
            argstr = ", ".join([""] + codes) if codes else ""
            if self.profile:
                # callee statements re-pin C.line; the call charge and
                # everything after belongs to the call site
                self.flush()
                sv = self.tmp()
                self.line(f"{sv} = C.line")
                self.line(f"{t} = {pyfn}(C, I, S{argstr})")
                self.line(f"C.line = {sv}")
            else:
                self.line(f"{t} = {pyfn}(C, I, S{argstr})")
            return t, None
        return (f"_err('unknown device function {name!r}', "
                f"{self.pos(e.pos)})", None)

    def _atomic(self, e: ast.Call) -> tuple[str, Any]:
        name = e.name
        if name not in ("atomicAdd", "atomicSub", "atomicMax", "atomicMin",
                        "atomicExch", "atomicCAS"):
            return (f"_err('unknown atomic {name!r}', {self.pos(e.pos)})",
                    None)
        target_expr = e.args[0]
        if isinstance(target_expr, ast.Unary) and target_expr.op == "&":
            rcode, _ = self._addressof(target_expr.operand)
        else:
            rcode, _ = self.expr(target_expr)
        ref = self.atom(rcode, force=True)
        vals = [self.atom(self.expr(a)[0]) for a in e.args[1:]]
        rt, ri = self.tmp(), self.tmp()
        self.line(f"{rt}, {ri} = _resolve_atomic({ref}, {self.pos(e.pos)})")
        t = self.tmp()
        if name == "atomicSub":
            self.line(f"{t} = C.atomic_add({rt}, {ri}, -{vals[0]})")
        elif name == "atomicCAS":
            self.line(f"{t} = C.atomic_cas({rt}, {ri}, {vals[0]}, "
                      f"{vals[1]})")
        else:
            method = {"atomicAdd": "atomic_add", "atomicMax": "atomic_max",
                      "atomicMin": "atomic_min",
                      "atomicExch": "atomic_exch"}[name]
            self.line(f"{t} = C.{method}({rt}, {ri}, {vals[0]})")
        return t, None

    # -- conditions ----------------------------------------------------------------

    def cond(self, e: ast.Expr) -> str:
        """Compile an expression for boolean context (truthiness)."""
        if isinstance(e, ast.Binary) and e.op in _COMPARISONS + ("==", "!="):
            lcode, lkind = self.expr(e.left)
            rcode, rkind = self.expr(e.right)
            self.charge(1)
            if e.op in ("==", "!=") and not (
                    _is_numeric(lkind) and _is_numeric(rkind)):
                fn = "_c_eq" if e.op == "==" else "_c_ne"
                return f"{fn}({lcode}, {rcode})"
            return f"({lcode} {e.op} {rcode})"
        code, kind = self.expr(e)
        if _is_numeric(kind):
            return code
        return f"_truthy({code})"

    # -- statements -------------------------------------------------------------------

    def stmt(self, s: ast.Stmt) -> None:
        if self.profile:
            # Pin the attribution line and flush the charge batch at
            # both statement boundaries: with ``S`` bound to the
            # thread's stats proxy, every ``S.instructions += n``
            # lands on whatever ``C.line`` holds at flush time, so a
            # batch must never straddle a line change.
            cls = type(s)
            if cls is not ast.Block and cls is not ast.Empty:
                self.flush()
                self.line(f"C.line = {s.pos.line}")
                self._stmt_dispatch(s)
                self.flush()
                return
        self._stmt_dispatch(s)

    def _stmt_dispatch(self, s: ast.Stmt) -> None:
        cls = type(s)
        if cls is ast.ExprStmt:
            self._expr_stmt(s)
        elif cls is ast.DeclStmt:
            for decl in s.declarators:
                self._declarator(decl, s)
        elif cls is ast.If:
            self._if(s)
        elif cls is ast.While:
            self._while(s)
        elif cls is ast.DoWhile:
            self._dowhile(s)
        elif cls is ast.For:
            self._for(s)
        elif cls is ast.Return:
            self._return(s)
        elif cls is ast.Break:
            self._break(s)
        elif cls is ast.Continue:
            self._continue(s)
        elif cls is ast.Switch:
            self._switch(s)
        elif cls is ast.Block:
            self.push()
            for inner in s.statements:
                self.stmt(inner)
            self.pop()
        elif cls is ast.Empty:
            pass
        else:
            raise UnsupportedConstruct(f"statement {cls.__name__}")

    def _expr_stmt(self, s: ast.ExprStmt) -> None:
        expr = s.expr
        if isinstance(expr, ast.Call) and expr.name in BARRIER_BUILTINS:
            if not self.gen_ok:
                raise UnsupportedConstruct("barrier outside a gen context")
            for a in expr.args:
                code, _ = self.expr(a)
                if not code.isidentifier():
                    self.line(code)
            self.flush()
            self.line("yield SYNC")
            self.has_yield = True
            return
        if isinstance(expr, ast.Assign):
            self._assign(expr, want_value=False)
            return
        if isinstance(expr, ast.IncDec):
            self._incdec(expr, want_value=False)
            return
        code, _ = self.expr(expr)
        if not (code.isidentifier() or code.isdigit()):
            self.line(code)

    def _declarator(self, decl: ast.Declarator, s: ast.DeclStmt) -> None:
        ctype = decl.type
        name = decl.name
        if s.shared:
            dims = tuple(ctype.array_dims or (1,))
            total = 1
            for d in dims:
                total *= d
            md = len(ctype.array_dims) > 1
            alloc = f"C.shared({name!r}, {total}, {ctype.base!r})"
            if md:
                # keep the flat storage in its own local so 2-D
                # accesses can bypass the MDView wrapper entirely
                store = f"_s{self.mod.nextvar()}_{name}"
                py = self.declare(name, ("shared_md", dims, store), None)
                self.line(f"{store} = {alloc}")
                self.line(f"{py} = MDView({store}, {dims!r})")
            else:
                py = self.declare(name, "shared", None)
                self.line(f"{py} = {alloc}")
            return
        if ctype.is_array:
            total = 1
            for d in ctype.array_dims:
                total *= d
            dims = tuple(ctype.array_dims)
            md = len(dims) > 1
            init_codes = None
            if decl.init is not None:
                init_codes = [self.atom(self.expr(e2)[0])
                              for e2 in _flatten_init_exprs(decl.init)]
            if md:
                arr = f"_s{self.mod.nextvar()}_{name}"
                py = self.declare(name, ("local_md", dims, arr), None)
            else:
                arr = self.tmp()
                py = self.declare(name, "localarray", None)
            self.line(f"{arr} = LocalArray({name!r}, {total}, "
                      f"{ctype.base!r})")
            if init_codes is not None:
                for i, code in enumerate(init_codes[:total]):
                    self.line(f"{arr}.write({i}, {code})")
            if md:
                self.line(f"{py} = MDView({arr}, {dims!r})")
            else:
                self.line(f"{py} = {arr}")
            return
        if ctype.base == "dim3" and not ctype.is_pointer:
            if decl.ctor_args:
                parts = [self.expr(a)[0] for a in decl.ctor_args]
                py = self.declare(name, "dim3", None)
                self.line(f"{py} = _make_dim3([{', '.join(parts)}], "
                          f"{self.pos(s.pos)})")
            elif decl.init is not None:
                code, _ = self.expr(decl.init)
                py = self.declare(name, "dim3", None)
                self.line(f"{py} = {code}")
            else:
                py = self.declare(name, "dim3", None)
                self.line(f"{py} = Dim3(1, 1, 1)")
            return
        vkind, cokind = _ctype_kinds(ctype)
        if decl.init is not None:
            code, kind = self.expr(decl.init)
            py = self.declare(name, vkind if cokind else (vkind or kind),
                              cokind)
            self.line(f"{py} = {self.coerced(code, kind, cokind)}")
            return
        py = self.declare(name, vkind, cokind)
        if ctype.is_pointer:
            self.line(f"{py} = NULL")
        else:
            default = coerce(0, ctype)
            self.line(f"{py} = {default!r}")

    def _if(self, s: ast.If) -> None:
        cond = self.cond(s.cond)
        self.flush()
        if self.profile:
            t = self.tmp()
            self.line(f"{t} = 1 if ({cond}) else 0")
            self.line(f"C.record_branch({s.pos.line}, {t})")
            cond = t
        self.line(f"if {cond}:")
        self.indent += 1
        self.push()
        mark = len(self.lines)
        self.stmt(s.then)
        self.flush()
        if len(self.lines) == mark:
            self.line("pass")
        self.pop()
        self.indent -= 1
        if s.otherwise is not None:
            self.line("else:")
            self.indent += 1
            self.push()
            mark = len(self.lines)
            self.stmt(s.otherwise)
            self.flush()
            if len(self.lines) == mark:
                self.line("pass")
            self.pop()
            self.indent -= 1

    def _steps(self, pos: Any) -> None:
        self.line("I.steps += 1")
        self.line("if I.steps > I.max_steps:")
        self.line(f"    raise KernelHang(_HANG_MSG, {self.pos(pos)})")

    def _body_signals(self, body: ast.Stmt) -> tuple[bool, bool]:
        """(has break, has continue) bound to the enclosing loop."""
        has_break = has_continue = False

        def scan(node: ast.Stmt, in_switch: bool) -> None:
            nonlocal has_break, has_continue
            cls = type(node)
            if cls is ast.Break:
                if not in_switch:
                    has_break = True
            elif cls is ast.Continue:
                has_continue = True
            elif cls is ast.Block:
                for inner in node.statements:
                    scan(inner, in_switch)
            elif cls is ast.If:
                scan(node.then, in_switch)
                if node.otherwise is not None:
                    scan(node.otherwise, in_switch)
            elif cls is ast.Switch:
                for case in node.cases:
                    for inner in case.statements:
                        scan(inner, True)
            # nested loops capture their own break/continue

        scan(body, False)
        return has_break, has_continue

    def _loop_body(self, body: ast.Stmt, wrapped: bool,
                   flag: str | None) -> None:
        """Emit a loop body, wrapping it in a one-shot inner loop when
        ``continue`` must jump over trailing step/cond code."""
        if not wrapped:
            self.loop_stack.append({"brk": "break", "cont": "continue"})
            self.push()
            self.stmt(body)
            self.flush()
            self.pop()
            self.loop_stack.pop()
            return
        if flag is not None:
            self.line(f"{flag} = False")
        self.line("for _ in (0,):")
        self.indent += 1
        self.loop_stack.append({
            "brk": (f"{flag} = True", "break") if flag else ("break",),
            "cont": "break"})
        self.push()
        mark = len(self.lines)
        self.stmt(body)
        self.flush()
        if len(self.lines) == mark:
            self.line("pass")
        self.pop()
        self.loop_stack.pop()
        self.indent -= 1
        if flag is not None:
            self.line(f"if {flag}:")
            self.line("    break")

    def _while(self, s: ast.While) -> None:
        self.flush()
        self.line("while True:")
        self.indent += 1
        self._steps(s.pos)
        if self.profile:
            # the body moved C.line; condition charges belong here
            self.line(f"C.line = {s.pos.line}")
        cond = self.cond(s.cond)
        self.flush()
        self.line(f"if not {cond}:")
        self.line("    break")
        self._loop_body(s.body, wrapped=False, flag=None)
        self.indent -= 1

    def _dowhile(self, s: ast.DoWhile) -> None:
        _, has_continue = self._body_signals(s.body)
        self.flush()
        self.line("while True:")
        self.indent += 1
        self._steps(s.pos)
        if has_continue:
            flag = self.tmp()
            self._loop_body(s.body, wrapped=True, flag=flag)
        else:
            self._loop_body(s.body, wrapped=False, flag=None)
            # simple form: C continue would rerun the body without the
            # condition test; _body_signals guarantees there is none.
        if self.profile:
            self.line(f"C.line = {s.pos.line}")
        cond = self.cond(s.cond)
        self.flush()
        self.line(f"if not {cond}:")
        self.line("    break")
        self.indent -= 1

    def _for(self, s: ast.For) -> None:
        has_break, has_continue = self._body_signals(s.body)
        self.push()
        if s.init is not None:
            if _stmt_contains_barrier(s.init):
                self.pop()
                raise UnsupportedConstruct("barrier in for-init")
            self.stmt(s.init)
        self.flush()
        self.line("while True:")
        self.indent += 1
        if s.cond is not None:
            if self.profile:
                self.line(f"C.line = {s.pos.line}")
            cond = self.cond(s.cond)
            self.flush()
            self.line(f"if not {cond}:")
            self.line("    break")
        if has_continue:
            flag = self.tmp() if has_break else None
            self._loop_body(s.body, wrapped=True, flag=flag)
        else:
            self._loop_body(s.body, wrapped=False, flag=None)
        if s.step is not None:
            if self.profile:
                self.line(f"C.line = {s.pos.line}")
            code, _ = self.expr(s.step)
            if not (code.isidentifier() or code.isdigit()):
                self.line(code)
            self.flush()
        self._steps(s.pos)
        self.indent -= 1
        self.pop()

    def _switch(self, s: ast.Switch) -> None:
        scode, skind = self.expr(s.subject)
        self.flush()
        sw = self.tmp()
        self.line(f"{sw} = {self.as_int(scode, skind)}")
        si = self.tmp()
        default_index = None
        emitted_any = False
        for i, case in enumerate(s.cases):
            if case.value is None:
                default_index = i
                continue
            kw = "if" if not emitted_any else "elif"
            self.line(f"{kw} {sw} == {case.value!r}:")
            self.line(f"    {si} = {i}")
            emitted_any = True
        fallback = default_index if default_index is not None \
            else len(s.cases)
        if emitted_any:
            self.line("else:")
            self.line(f"    {si} = {fallback}")
        else:
            self.line(f"{si} = {fallback}")
        self.line("for _ in (0,):")
        self.indent += 1
        self.loop_stack.append({"brk": "break", "cont": None})
        emitted_body = False
        for i, case in enumerate(s.cases):
            if not case.statements:
                continue
            self.line(f"if {si} <= {i}:")
            self.indent += 1
            self.push()
            mark = len(self.lines)
            for inner in case.statements:
                self.stmt(inner)
            self.flush()
            if len(self.lines) == mark:
                self.line("pass")
            self.pop()
            self.indent -= 1
            emitted_body = True
        if not emitted_body:
            self.line("pass")
        self.loop_stack.pop()
        self.indent -= 1

    def _return(self, s: ast.Return) -> None:
        if s.value is None:
            self.flush()
            self.line("return" if not self.is_device else "return None")
            return
        code, _ = self.expr(s.value)
        self.flush()
        if self.is_device:
            self.line(f"return {code}")
        else:
            if not (code.isidentifier() or code.isdigit()):
                self.line(code)
            self.line("return")

    def _break(self, s: ast.Break) -> None:
        if not self.loop_stack:
            raise UnsupportedConstruct("break outside loop or switch")
        self.flush()
        brk = self.loop_stack[-1]["brk"]
        if isinstance(brk, tuple):
            for part in brk:
                self.line(part)
        else:
            self.line(brk)

    def _continue(self, s: ast.Continue) -> None:
        if not self.loop_stack:
            raise UnsupportedConstruct("continue outside loop")
        cont = self.loop_stack[-1]["cont"]
        if cont is None:
            raise UnsupportedConstruct("continue inside switch")
        self.flush()
        self.line(cont)


def _stmt_contains_barrier(stmt: ast.Stmt) -> bool:
    for node in ast.walk(stmt):
        if isinstance(node, ast.Call) and node.name in BARRIER_BUILTINS:
            return True
    return False


# -- module assembly ---------------------------------------------------------

class _ModuleEmitter:
    """One generated module per compiled kernel (self-contained: the
    kernel factory plus every device function it transitively calls)."""

    def __init__(self, info: ProgramInfo, global_names: frozenset[str],
                 profile: bool = False):
        self.info = info
        self.global_names = global_names
        self.profile = bool(profile)
        self.module_lines: list[str] = []
        self.ns: dict[str, Any] = {}
        self._counter = 0
        self._positions: dict[int, str] = {}
        self.device_funcs: dict[str, str] = {}

    def tmp(self) -> str:
        self._counter += 1
        return f"_t{self._counter}"

    def nextvar(self) -> int:
        self._counter += 1
        return self._counter

    def pos(self, p: Any) -> str:
        name = self._positions.get(id(p))
        if name is None:
            name = f"_pos{len(self._positions)}"
            self._positions[id(p)] = name
            self.ns[name] = p
        return name

    def const(self, name: str, value: Any) -> str:
        cname = f"_const_{name}"
        self.ns[cname] = value
        return cname

    def ensure_device(self, name: str) -> str:
        pyfn = self.device_funcs.get(name)
        if pyfn is not None:
            return pyfn
        fn = self.info.device_functions[name]
        pyfn = f"_dev_{name}"
        self.device_funcs[name] = pyfn  # pre-register for recursion
        em = _FnEmitter(self, gen_ok=False, is_device=True)
        params, copies = self._bind_params(em, fn)
        for s2 in fn.body.statements:
            em.stmt(s2)
        em.flush()
        if em.has_yield:  # pragma: no cover - refused at the call site
            raise UnsupportedConstruct("barrier inside device function")
        header = [f"def {pyfn}(C, I, S{params}):"]
        prologue = self._prologue(em, fn.pos, copies, entry_steps=True)
        self.module_lines.extend(
            header + prologue + (em.lines or ["    pass"]) + [""])
        return pyfn

    def _bind_params(self, em: _FnEmitter,
                     fn: ast.FuncDef) -> tuple[str, list[str]]:
        em.push()
        params, copies = [], []
        for i, param in enumerate(fn.params):
            vkind, cokind = _ctype_kinds(param.type)
            py = em.declare(param.name or f"_unnamed{i}", vkind, cokind)
            params.append(f"_a{i}")
            co = _make_coercer(param.type)
            if co is None or not em.is_device:
                copies.append(f"{py} = _a{i}")
            else:
                fname = {"int": "_co_int", "f32": "_co_f32",
                         "f64": "_co_f64", "bool": "_co_bool"}[cokind]
                copies.append(f"{py} = {fname}(_a{i})")
        em.push()
        joined = ", ".join([""] + params) if params else ""
        return joined, copies

    def _prologue(self, em: _FnEmitter, pos: Any, copies: list[str],
                  entry_steps: bool) -> list[str]:
        pad = "    " * (em.indent - 0) if em.is_device else "        "
        pad = "    " if em.is_device else "        "
        out = []
        for copy in copies:
            out.append(pad + copy)
        if entry_steps:
            out.append(pad + "I.steps += 1")
            out.append(pad + "if I.steps > I.max_steps:")
            out.append(pad + f"    raise KernelHang(_HANG_MSG, "
                             f"{self.pos(pos)})")
        for name in sorted(em.used_builtins):
            out.append(pad + f"_bi_{name} = C.{name}")
        for name, fld in sorted(em.used_fields):
            out.append(pad + f"_bi_{name}_{fld} = C.{name}.{fld}")
        for method in sorted(em.used_ctx):
            out.append(pad + f"_cm_{method} = C.{method}")
        if em.uses_warpsize:
            out.append(pad + "_warpSize = C._block.device.spec.warp_size")
        return out

    def compile_kernel(self, fn: ast.FuncDef,
                       gen_ok: bool) -> CompiledSrcKernel:
        em = _FnEmitter(self, gen_ok=gen_ok, is_device=False)
        params, copies = self._bind_params(em, fn)
        for s in fn.body.statements:
            em.stmt(s)
        em.flush()
        factory = f"_mk_{fn.name}"
        stats_src = ("        S = C.stats_proxy" if self.profile
                     else "        S = C._block.stats")
        header = [f"def {factory}(I{params}):",
                  "    def _t(C):",
                  stats_src]
        prologue = self._prologue(em, fn.pos, copies, entry_steps=True)
        footer = ["    return _t", ""]
        self.module_lines.extend(
            header + prologue + (em.lines or ["        pass"]) + footer)

        source = "\n".join(self.module_lines)
        code = compile(source, f"<minicuda-srcgen:{fn.name}>", "exec")
        ns = dict(_BASE_NS)
        ns.update(self.ns)
        exec(code, ns)  # noqa: S102 - our own generated source

        coercers = [_make_coercer(p.type) for p in fn.params]
        warp_factory = None
        if not em.has_yield and not self.profile:
            # the warp-batched path has no per-line bookkeeping;
            # profiled kernels always run lane-by-lane
            warp_factory = _compile_warp(self.info, self.global_names, fn)
        return CompiledSrcKernel(fn.name, ns[factory], em.has_yield,
                                 coercers, warp_factory, source,
                                 profiled=self.profile)


# -- warp-vectorized fast path ------------------------------------------------

class _WarpUnsupported(Exception):
    """This kernel shape cannot run warp-batched; use the scalar path."""


_VBIN = {op: np.frompyfunc(fn, 2, 1) for op, fn in _BINOPS.items()}
_VTRUTHY = np.frompyfunc(_truthy, 1, 1)
_VCO = {
    "int": np.frompyfunc(_coerce_int, 1, 1),
    "f32": np.frompyfunc(_coerce_f32, 1, 1),
    "f64": np.frompyfunc(_coerce_f64, 1, 1),
    "bool": np.frompyfunc(_coerce_bool, 1, 1),
}
_VNEG = np.frompyfunc(lambda v: -v, 1, 1)
_VNOT = np.frompyfunc(lambda v: int(not _truthy(v)), 1, 1)
_VINV = np.frompyfunc(lambda v: ~int(v), 1, 1)
_VMATH = {name: np.frompyfunc(impl, 1, 1) for name, impl in
          _MATH_IMPL.items() if name not in ("min", "max", "fminf",
                                             "fmaxf", "fmin", "fmax",
                                             "pow", "powf", "__fdividef")}
_VMATH2 = {name: np.frompyfunc(_MATH_IMPL[name], 2, 1) for name in
           ("min", "max", "fminf", "fmaxf", "fmin", "fmax", "pow",
            "powf", "__fdividef")}


class _WarpState:
    __slots__ = ("ctxs", "n", "frame", "stats", "_bi")

    def __init__(self, ctxs: list, frame_size: int):
        self.ctxs = ctxs
        self.n = len(ctxs)
        self.frame: list = [None] * frame_size
        self.stats = ctxs[0]._block.stats
        self._bi: dict[str, np.ndarray] = {}

    def builtin(self, name: str, field: str) -> np.ndarray:
        key = f"{name}.{field}"
        arr = self._bi.get(key)
        if arr is None:
            arr = np.array([getattr(getattr(c, name), field)
                            for c in self.ctxs], dtype=object)
            self._bi[key] = arr
        return arr


class _WarpCompiler:
    """Lowers a loop/barrier-free kernel body to warp-level closures.

    Every expression evaluates to a length-``len(idx)`` object ndarray
    aligned with ``idx``, the active lane indices. ``if`` partitions
    ``idx`` by the condition's truth per lane; ``return`` retires
    lanes by returning a reduced ``idx`` from the statement closure.
    Anything else (loops, barriers, atomics, pointer tricks) raises
    :class:`_WarpUnsupported` — those kernels run lane-by-lane.
    """

    def __init__(self, info: ProgramInfo, global_names: frozenset[str]):
        self.info = info
        self.global_names = global_names
        self.scopes: list[dict[str, tuple[int, str | None]]] = [{}]
        self.frame_size = 0

    def push(self) -> None:
        self.scopes.append({})

    def pop(self) -> None:
        self.scopes.pop()

    def alloc(self, name: str, cokind: str | None) -> int:
        slot = self.frame_size
        self.frame_size += 1
        self.scopes[-1][name] = (slot, cokind)
        return slot

    def lookup(self, name: str) -> tuple[int, str | None] | None:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        return None

    # -- expressions ----------------------------------------------------------

    def expr(self, e: ast.Expr) -> Callable:
        cls = type(e)
        if cls in (ast.IntLit, ast.FloatLit, ast.BoolLit):
            value = e.value
            return lambda st, idx: np.full(len(idx), value, dtype=object)
        if cls is ast.Ident:
            return self._ident(e)
        if cls is ast.Member:
            return self._member(e)
        if cls is ast.Index:
            return self._index_read(e)
        if cls is ast.Binary:
            return self._binary(e)
        if cls is ast.Unary:
            return self._unary(e)
        if cls is ast.Cast:
            return self._cast(e)
        if cls is ast.SizeOf:
            size = sizeof_ctype(e.type)
            return lambda st, idx: np.full(len(idx), size, dtype=object)
        if cls is ast.Call:
            return self._call(e)
        raise _WarpUnsupported(f"expression {cls.__name__}")

    def _ident(self, e: ast.Ident) -> Callable:
        hit = self.lookup(e.name)
        if hit is not None:
            slot = hit[0]
            return lambda st, idx: st.frame[slot][idx]
        if e.name == "warpSize":
            return lambda st, idx: np.full(
                len(idx), st.ctxs[0]._block.device.spec.warp_size,
                dtype=object)
        if e.name in bi.DEVICE_CONSTANTS:
            const = bi.DEVICE_CONSTANTS[e.name]
            return lambda st, idx: np.full(len(idx), const, dtype=object)
        raise _WarpUnsupported(f"identifier {e.name!r}")

    def _member(self, e: ast.Member) -> Callable:
        obj, field = e.obj, e.field_name
        if isinstance(obj, ast.Ident) and field in ("x", "y", "z") \
                and obj.name in _BUILTIN_IDX \
                and self.lookup(obj.name) is None \
                and obj.name not in self.global_names:
            name = obj.name
            return lambda st, idx: st.builtin(name, field)[idx]
        raise _WarpUnsupported("member access")

    def _index_read(self, e: ast.Index) -> Callable:
        base_c = self.expr(e.base)
        index_c = self.expr(e.index)
        pos = e.pos

        def vload(st: _WarpState, idx: np.ndarray) -> np.ndarray:
            bases = base_c(st, idx)
            indices = index_c(st, idx)
            out = np.empty(len(idx), dtype=object)
            ctxs = st.ctxs
            for j, lane in enumerate(idx):
                b = bases[j]
                ctx = ctxs[lane]
                if type(b) is DevicePtr:
                    out[j] = ctx.load(b, int(indices[j]))
                else:
                    out[j] = read_indexed(b, indices[j], ctx, pos)
            return out
        return vload

    def _binary(self, e: ast.Binary) -> Callable:
        if e.op in ("&&", "||"):
            raise _WarpUnsupported("short-circuit operator")
        left_c = self.expr(e.left)
        right_c = self.expr(e.right)
        vop = _VBIN[e.op]

        def vbin(st: _WarpState, idx: np.ndarray) -> np.ndarray:
            left = left_c(st, idx)
            right = right_c(st, idx)
            st.stats.instructions += len(idx)
            return vop(left, right)
        return vbin

    def _unary(self, e: ast.Unary) -> Callable:
        op = e.op
        if op not in ("-", "+", "!", "~"):
            raise _WarpUnsupported(f"unary {op!r}")
        operand_c = self.expr(e.operand)
        vop = {"-": _VNEG, "+": None, "!": _VNOT, "~": _VINV}[op]

        def vun(st: _WarpState, idx: np.ndarray) -> np.ndarray:
            values = operand_c(st, idx)
            st.stats.instructions += len(idx)
            return values if vop is None else vop(values)
        return vun

    def _cast(self, e: ast.Cast) -> Callable:
        if e.type.is_pointer:
            raise _WarpUnsupported("pointer cast")
        value_c = self.expr(e.value)
        co = _make_coercer(e.type)
        if co is None:
            return value_c
        vco = _VCO[{_coerce_int: "int", _coerce_f32: "f32",
                    _coerce_f64: "f64", _coerce_bool: "bool"}[co]]
        return lambda st, idx: vco(value_c(st, idx))

    def _call(self, e: ast.Call) -> Callable:
        name = e.name
        if name in _VMATH and len(e.args) == 1:
            arg_c = self.expr(e.args[0])
            vfn = _VMATH[name]

            def vmath1(st: _WarpState, idx: np.ndarray) -> np.ndarray:
                values = arg_c(st, idx)
                st.stats.instructions += len(idx)
                return vfn(values)
            return vmath1
        if name in _VMATH2 and len(e.args) == 2:
            a_c = self.expr(e.args[0])
            b_c = self.expr(e.args[1])
            vfn = _VMATH2[name]

            def vmath2(st: _WarpState, idx: np.ndarray) -> np.ndarray:
                a = a_c(st, idx)
                b = b_c(st, idx)
                st.stats.instructions += len(idx)
                return vfn(a, b)
            return vmath2
        if name in _OPENCL_INDEX_FNS:
            dim_c = self.expr(e.args[0])

            def vopencl(st: _WarpState, idx: np.ndarray) -> np.ndarray:
                dims = dim_c(st, idx)
                out = np.empty(len(idx), dtype=object)
                for j, lane in enumerate(idx):
                    out[j] = _opencl_index(name, int(dims[j]),
                                           st.ctxs[lane])
                return out
            return vopencl
        raise _WarpUnsupported(f"call to {name!r}")

    # -- statements -------------------------------------------------------------

    def stmt(self, s: ast.Stmt) -> Callable:
        cls = type(s)
        if cls is ast.DeclStmt:
            return self._decl(s)
        if cls is ast.ExprStmt:
            return self._expr_stmt(s)
        if cls is ast.If:
            return self._if(s)
        if cls is ast.Return:
            return self._return(s)
        if cls is ast.Block:
            self.push()
            stmts = [self.stmt(inner) for inner in s.statements]
            self.pop()

            def vblock(st: _WarpState, idx: np.ndarray) -> np.ndarray:
                for fn in stmts:
                    idx = fn(st, idx)
                    if not len(idx):
                        break
                return idx
            return vblock
        if cls is ast.Empty:
            return lambda st, idx: idx
        raise _WarpUnsupported(f"statement {cls.__name__}")

    def _decl(self, s: ast.DeclStmt) -> Callable:
        if s.shared:
            raise _WarpUnsupported("shared declaration")
        actions = []
        for decl in s.declarators:
            ctype = decl.type
            if ctype.is_array or (ctype.base == "dim3"
                                  and not ctype.is_pointer):
                raise _WarpUnsupported("non-scalar declaration")
            _, cokind = _ctype_kinds(ctype)
            init_c = self.expr(decl.init) if decl.init is not None else None
            slot = self.alloc(decl.name, cokind)
            vco = _VCO.get(cokind)
            if init_c is None:
                default = NULL if ctype.is_pointer else coerce(0, ctype)

                def act(st, idx, slot=slot, default=default):
                    arr = st.frame[slot]
                    if arr is None:
                        arr = np.empty(st.n, dtype=object)
                        st.frame[slot] = arr
                    arr[idx] = default
                actions.append(act)
                continue

            def act(st, idx, slot=slot, init_c=init_c, vco=vco):
                arr = st.frame[slot]
                if arr is None:
                    arr = np.empty(st.n, dtype=object)
                    st.frame[slot] = arr
                values = init_c(st, idx)
                arr[idx] = vco(values) if vco is not None else values
            actions.append(act)

        def vdecl(st: _WarpState, idx: np.ndarray) -> np.ndarray:
            for act in actions:
                act(st, idx)
            return idx
        return vdecl

    def _expr_stmt(self, s: ast.ExprStmt) -> Callable:
        expr = s.expr
        if isinstance(expr, ast.Assign):
            return self._assign(expr)
        if isinstance(expr, ast.IncDec):
            return self._vincdec(expr)
        raise _WarpUnsupported("expression statement")

    def _assign(self, e: ast.Assign) -> Callable:
        compound = e.op != "="
        vbop = _VBIN[e.op[:-1]] if compound else None
        target = e.target
        value_c = self.expr(e.value)
        if isinstance(target, ast.Ident):
            hit = self.lookup(target.name)
            if hit is None:
                raise _WarpUnsupported("assignment target")
            slot, cokind = hit
            vco = _VCO.get(cokind)

            def vassign(st: _WarpState, idx: np.ndarray) -> np.ndarray:
                values = value_c(st, idx)
                if vbop is not None:
                    values = vbop(st.frame[slot][idx], values)
                st.stats.instructions += len(idx)
                st.frame[slot][idx] = vco(values) if vco is not None \
                    else values
                return idx
            return vassign
        if isinstance(target, ast.Index):
            base_c = self.expr(target.base)
            index_c = self.expr(target.index)
            pos = target.pos

            def vstore(st: _WarpState, idx: np.ndarray) -> np.ndarray:
                bases = base_c(st, idx)
                indices = index_c(st, idx)
                values = value_c(st, idx)
                ctxs = st.ctxs
                if vbop is not None:
                    current = np.empty(len(idx), dtype=object)
                    for j, lane in enumerate(idx):
                        b = bases[j]
                        ctx = ctxs[lane]
                        if type(b) is DevicePtr:
                            current[j] = ctx.load(b, int(indices[j]))
                        else:
                            current[j] = read_indexed(b, indices[j], ctx,
                                                      pos)
                    values = vbop(current, values)
                st.stats.instructions += len(idx)
                for j, lane in enumerate(idx):
                    b = bases[j]
                    ctx = ctxs[lane]
                    if type(b) is DevicePtr:
                        ctx.store(b, int(indices[j]), values[j])
                    else:
                        write_indexed(b, indices[j], values[j], ctx, pos)
                return idx
            return vstore
        raise _WarpUnsupported("assignment target")

    def _vincdec(self, e: ast.IncDec) -> Callable:
        if not isinstance(e.operand, ast.Ident):
            raise _WarpUnsupported("increment target")
        hit = self.lookup(e.operand.name)
        if hit is None:
            raise _WarpUnsupported("increment target")
        slot, cokind = hit
        vco = _VCO.get(cokind)
        delta = 1 if e.op == "++" else -1

        def vincdec(st: _WarpState, idx: np.ndarray) -> np.ndarray:
            values = st.frame[slot][idx] + delta
            st.stats.instructions += len(idx)
            st.frame[slot][idx] = vco(values) if vco is not None else values
            return idx
        return vincdec

    def _if(self, s: ast.If) -> Callable:
        cond_c = self.expr(s.cond)
        self.push()
        then_c = self.stmt(s.then)
        self.pop()
        else_c = None
        if s.otherwise is not None:
            self.push()
            else_c = self.stmt(s.otherwise)
            self.pop()

        def vif(st: _WarpState, idx: np.ndarray) -> np.ndarray:
            cond = cond_c(st, idx)
            truth = _VTRUTHY(cond).astype(bool)
            then_idx = idx[truth]
            else_idx = idx[~truth]
            if len(then_idx):
                then_idx = then_c(st, then_idx)
            if else_c is not None and len(else_idx):
                else_idx = else_c(st, else_idx)
            if not len(else_idx):
                return then_idx
            if not len(then_idx):
                return else_idx
            return np.sort(np.concatenate([then_idx, else_idx]))
        return vif

    def _return(self, s: ast.Return) -> Callable:
        value_c = self.expr(s.value) if s.value is not None else None
        empty = np.empty(0, dtype=np.intp)

        def vreturn(st: _WarpState, idx: np.ndarray) -> np.ndarray:
            if value_c is not None:
                value_c(st, idx)
            return empty
        return vreturn


def _compile_warp(info: ProgramInfo, global_names: frozenset[str],
                  fn: ast.FuncDef) -> Callable | None:
    """Build the warp-batched executor factory for a qualifying kernel
    (None when the kernel shape requires the lane-by-lane path)."""
    wc = _WarpCompiler(info, global_names)
    try:
        wc.push()
        param_slots = []
        for i, param in enumerate(fn.params):
            _, cokind = _ctype_kinds(param.type)
            param_slots.append(wc.alloc(param.name or f"_unnamed{i}",
                                        cokind))
        wc.push()
        stmts = [wc.stmt(s) for s in fn.body.statements]
    except _WarpUnsupported:
        return None
    frame_size = wc.frame_size
    entry_pos = fn.pos

    def warp_factory(interp: Any, args: tuple[Any, ...]) -> Callable:
        def vector_run(ctxs: list) -> None:
            n = len(ctxs)
            interp.steps += n
            if interp.steps > interp.max_steps:
                raise KernelHang(_HANG_MSG, entry_pos)
            st = _WarpState(ctxs, frame_size)
            for slot, arg in zip(param_slots, args):
                st.frame[slot] = np.full(n, arg, dtype=object)
            idx = np.arange(n, dtype=np.intp)
            for stmt_fn in stmts:
                idx = stmt_fn(st, idx)
                if not len(idx):
                    break
        return vector_run
    return warp_factory


# -- memoized program → kernel compilation -------------------------------------

class _SrcArtifact:
    """Per-program compilation workspace for the codegen engine."""

    def __init__(self, info: ProgramInfo, profile: bool = False):
        self.info = info
        self.profile = bool(profile)
        names = set()
        for gvar in info.unit.globals:
            for decl in gvar.decl.declarators:
                names.add(decl.name)
        self.global_names = frozenset(names)
        self.kernels: dict[str, CompiledSrcKernel | None] = {}

    def get_kernel(self, name: str) -> CompiledSrcKernel | None:
        if name in self.kernels:
            return self.kernels[name]
        fn = self.info.kernels.get(name)
        compiled: CompiledSrcKernel | None = None
        if fn is not None:
            gen_ok = name in self.info.barrier_functions
            mod = _ModuleEmitter(self.info, self.global_names,
                                 profile=self.profile)
            try:
                compiled = mod.compile_kernel(fn, gen_ok)
            except UnsupportedConstruct:
                compiled = None
        self.kernels[name] = compiled
        return compiled


def _artifact_for(info: ProgramInfo,
                  profile: bool = False) -> _SrcArtifact:
    attr = "_srcgen_artifact_prof" if profile else "_srcgen_artifact"
    art = getattr(info, attr, None)
    if art is None:
        art = _SrcArtifact(info, profile=profile)
        setattr(info, attr, art)
    return art


def compile_kernel(info: ProgramInfo, name: str,
                   profile: bool = False) -> CompiledSrcKernel | None:
    """Compile kernel ``name`` to generated Python source.

    Returns None when the kernel uses a construct the emitter does not
    support (the caller falls back to the tree-walker). Both outcomes
    are memoized on the program's attached artifact and — when the
    program carries a preprocessed-source fingerprint — in the shared
    :data:`repro.minicuda.codegen.KERNEL_CACHE` under a versioned
    ``codegen`` engine key. Profiled compilation (line-ledger emitting
    source) memoizes under its own engine tag.
    """
    art = _artifact_for(info, profile=profile)
    if info.fingerprint:
        key = memo_key("codegen-prof" if profile else "codegen",
                       SRCGEN_VERSION, info.fingerprint, name)
        value, _ = KERNEL_CACHE.get_or_compute(
            key, lambda: art.get_kernel(name))
        return value
    return art.get_kernel(name)
