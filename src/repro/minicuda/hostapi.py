"""Host-side builtin implementations: CUDA runtime, libwb, stdlib, MPI.

The real course links student code against ``libwb`` (the WebGPU
support library, paper Section IV-C) and the CUDA runtime. Here those
APIs are implemented directly against the simulator: ``wbImport`` reads
instructor datasets supplied by the harness, ``wbSolution`` records the
program's answer for the grader, ``cudaMalloc``/``cudaMemcpy`` talk to
:class:`repro.gpusim.GpuRuntime`, and the MPI subset talks to
:mod:`repro.mpisim`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.gpusim.memory import DevicePtr
from repro.minicuda.diagnostics import SourcePos
from repro.minicuda.values import (
    NULL,
    ElemRef,
    HostBuffer,
    HostPtr,
    LocalArray,
    MemoryFault,
    VarRef,
    dtype_for,
)

#: Values cudaMemcpy/MPI accept as host-side memory.
HOST_MEMORY = (HostPtr, LocalArray)


class ExitProgram(Exception):
    """Raised by ``exit(code)``; carries the exit status."""

    def __init__(self, code: int):
        self.code = code
        super().__init__(f"exit({code})")


class HostApiError(Exception):
    """Misuse of a host builtin (wrong argument kinds, unknown call)."""


@dataclass
class SolutionRecorded:
    """What ``wbSolution`` captured, for the grader to compare."""

    data: np.ndarray
    shape: tuple[int, ...]


@dataclass
class WbTimer:
    tag: str
    message: str
    start: float
    stop: float | None = None

    @property
    def elapsed(self) -> float:
        return (self.stop or self.start) - self.start


class CudaDeviceProp:
    """cudaDeviceProp with the field names the Device Query lab prints."""

    def __init__(self, props: Any):
        self.name = props.name
        self.major = props.compute_capability[0]
        self.minor = props.compute_capability[1]
        self.totalGlobalMem = props.total_global_mem
        self.sharedMemPerBlock = props.shared_mem_per_block
        self.warpSize = props.warp_size
        self.maxThreadsPerBlock = props.max_threads_per_block
        self.maxThreadsDim = list(props.max_block_dim)
        self.maxGridSize = list(props.max_grid_dim)
        self.clockRate = props.clock_rate_khz
        self.multiProcessorCount = props.multiprocessor_count


class _Lcg:
    """Deterministic rand() (glibc-style LCG)."""

    def __init__(self, seed: int = 1):
        self.state = seed

    def next(self) -> int:
        self.state = (self.state * 1103515245 + 12345) & 0x7FFFFFFF
        return self.state


@dataclass
class HostEnv:
    """Everything host builtins need: datasets, IO sinks, timers, MPI.

    Parameters
    ----------
    datasets:
        Named input arrays for ``wbImport`` — keys like ``"input0"``,
        ``"input1"``; the harness maps lab dataset files onto these.
    stdout_hook:
        Called with each line of program output. The worker routes this
        through the sandbox's syscall gate (a blocked ``write`` kills
        the job).
    mpi:
        Optional per-rank MPI endpoint from :mod:`repro.mpisim`.
    """

    datasets: dict[str, np.ndarray] = field(default_factory=dict)
    stdout_hook: Callable[[str], None] | None = None
    syscall_hook: Callable[[str], None] | None = None
    mpi: Any = None
    argv: tuple[str, ...] = ("./program",)

    stdout: list[str] = field(default_factory=list)
    log: list[str] = field(default_factory=list)
    timers: list[WbTimer] = field(default_factory=list)
    solution: SolutionRecorded | None = None
    kernel_launches: list[tuple[str, Any]] = field(default_factory=list)
    exports: dict[str, np.ndarray] = field(default_factory=dict)
    _rng: _Lcg = field(default_factory=_Lcg)
    _open_timers: dict[str, WbTimer] = field(default_factory=dict)
    host_mallocs: int = 0

    # -- hooks -------------------------------------------------------------

    def syscall(self, name: str) -> None:
        """Report a syscall to the sandbox gate (if attached)."""
        if self.syscall_hook is not None:
            self.syscall_hook(name)

    def write_out(self, text: str) -> None:
        self.syscall("write")
        self.stdout.append(text)
        if self.stdout_hook is not None:
            self.stdout_hook(text)

    def on_kernel_launch(self, name: str, stats: Any) -> None:
        self.kernel_launches.append((name, stats))

    # -- dispatch -------------------------------------------------------------

    def call(self, interp: Any, name: str, args: tuple[Any, ...],
             pos: SourcePos) -> Any:
        handler = getattr(self, f"_do_{name}", None)
        if handler is None:
            raise HostApiError(f"{pos}: unimplemented host builtin {name!r}")
        return handler(interp, args, pos)

    # -- CUDA runtime ------------------------------------------------------------

    @staticmethod
    def _ref_elem_type(ref: Any, pos: SourcePos) -> str:
        if not isinstance(ref, VarRef):
            raise HostApiError(
                f"{pos}: cudaMalloc needs the address of a pointer "
                "variable (&ptr)")
        ctype = ref.ctype
        if ctype is None or not ctype.is_pointer:
            raise HostApiError(
                f"{pos}: cudaMalloc target must be a declared pointer")
        return ctype.base

    def _do_cudaMalloc(self, interp: Any, args: tuple, pos: SourcePos) -> int:
        ref, nbytes = args
        base = self._ref_elem_type(ref, pos)
        dtype = dtype_for(base)
        elements = max(1, int(nbytes) // dtype.itemsize)
        buf = interp.runtime.malloc(elements, base, label=ref.name)
        ref.set(buf.ptr())
        return 0

    def _do_cudaFree(self, interp: Any, args: tuple, pos: SourcePos) -> int:
        (ptr,) = args
        if ptr is NULL:
            return 0
        if not isinstance(ptr, DevicePtr):
            raise MemoryFault("cudaFree of a non-device pointer")
        interp.runtime.free(ptr.buffer)
        return 0

    def _do_cudaMemcpy(self, interp: Any, args: tuple, pos: SourcePos) -> int:
        dst, src, nbytes, kind = args
        if kind == "h2d":
            if not isinstance(dst, DevicePtr) or not isinstance(src, HOST_MEMORY):
                raise MemoryFault(
                    "cudaMemcpyHostToDevice requires (device, host) pointers")
            count = int(nbytes) // dst.dtype.itemsize
            interp.runtime.memcpy_htod(dst, src.as_array(count))
        elif kind == "d2h":
            if not isinstance(dst, HOST_MEMORY) or not isinstance(src, DevicePtr):
                raise MemoryFault(
                    "cudaMemcpyDeviceToHost requires (host, device) pointers")
            count = int(nbytes) // src.dtype.itemsize
            data = interp.runtime.memcpy_dtoh(src, count)
            dst.as_array(count)[:] = data
        elif kind == "d2d":
            count = int(nbytes) // src.dtype.itemsize
            data = interp.runtime.memcpy_dtoh(src, count)
            interp.runtime.memcpy_htod(dst, data)
        else:
            raise HostApiError(f"{pos}: unknown cudaMemcpy kind {kind!r}")
        return 0

    def _do_cudaMemset(self, interp: Any, args: tuple, pos: SourcePos) -> int:
        ptr, value, nbytes = args
        if not isinstance(ptr, DevicePtr):
            raise MemoryFault("cudaMemset of a non-device pointer")
        count = int(nbytes) // ptr.dtype.itemsize
        ptr.as_array(count)[:] = value
        return 0

    def _do_cudaMemcpyToSymbol(self, interp: Any, args: tuple,
                               pos: SourcePos) -> int:
        symbol, src, nbytes = args
        if not isinstance(symbol, DevicePtr):
            raise HostApiError(f"{pos}: cudaMemcpyToSymbol target must be a "
                               "__constant__ symbol")
        count = int(nbytes) // symbol.dtype.itemsize
        data = src.as_array(count) if isinstance(src, HOST_MEMORY) else src
        symbol.buffer.data[symbol.offset:symbol.offset + count] = data[:count]
        return 0

    def _do_cudaDeviceSynchronize(self, interp, args, pos) -> int:
        interp.runtime.synchronize()
        return 0

    def _do_cudaGetLastError(self, interp, args, pos) -> int:
        return 0

    def _do_cudaGetErrorString(self, interp, args, pos) -> str:
        return "no error"

    def _do_cudaSetDevice(self, interp, args, pos) -> int:
        return 0

    def _do_cudaGetDeviceCount(self, interp, args, pos) -> int:
        (ref,) = args
        ref.set(1)
        return 0

    def _do_cudaGetDeviceProperties(self, interp, args, pos) -> int:
        ref, _device_id = args
        ref.set(CudaDeviceProp(interp.runtime.properties()))
        return 0

    # -- stdlib ---------------------------------------------------------------------

    def _do_malloc(self, interp, args, pos) -> HostPtr:
        (nbytes,) = args
        self.syscall("mmap")
        self.host_mallocs += 1
        data = np.zeros(max(1, int(nbytes)), dtype=np.uint8)
        return HostPtr(HostBuffer(data, f"malloc#{self.host_mallocs}"))

    def _do_calloc(self, interp, args, pos) -> HostPtr:
        n, size = args
        self.host_mallocs += 1
        data = np.zeros(max(1, int(n) * int(size)), dtype=np.uint8)
        return HostPtr(HostBuffer(data, f"calloc#{self.host_mallocs}"))

    def _do_free(self, interp, args, pos) -> int:
        return 0

    def _do_memset(self, interp, args, pos) -> Any:
        ptr, value, nbytes = args
        if isinstance(ptr, HostPtr):
            raw = ptr.buffer.data.view(np.uint8)
            start = ptr.offset * ptr.buffer.data.dtype.itemsize
            raw[start:start + int(nbytes)] = int(value) & 0xFF
        return ptr

    def _do_memcpy(self, interp, args, pos) -> Any:
        dst, src, nbytes = args
        count_d = int(nbytes) // dst.dtype.itemsize
        dst.as_array(count_d)[:] = src.as_array(count_d)
        return dst

    def _do_printf(self, interp, args, pos) -> int:
        from repro.minicuda.interpreter import c_format
        if args:
            self.write_out(c_format(str(args[0]), tuple(args[1:])))
        return 0

    def _do_fprintf(self, interp, args, pos) -> int:
        from repro.minicuda.interpreter import c_format
        if len(args) >= 2:
            self.write_out(c_format(str(args[1]), tuple(args[2:])))
        return 0

    def _do_exit(self, interp, args, pos) -> None:
        self.syscall("exit")
        raise ExitProgram(int(args[0]))

    # file and network builtins exist so that escape attempts hit the
    # seccomp gate exactly where the real syscall would fire
    def _do_fopen(self, interp, args, pos) -> Any:
        self.syscall("open")
        return NULL  # no filesystem inside the sandbox

    def _do_fclose(self, interp, args, pos) -> int:
        self.syscall("close")
        return 0

    def _do_fread(self, interp, args, pos) -> int:
        self.syscall("read")
        return 0

    def _do_fwrite(self, interp, args, pos) -> int:
        self.syscall("write")
        return 0

    def _do_remove(self, interp, args, pos) -> int:
        self.syscall("unlink")
        return -1

    def _do_socket(self, interp, args, pos) -> int:
        self.syscall("socket")
        return -1

    def _do_connect(self, interp, args, pos) -> int:
        self.syscall("connect")
        return -1

    def _do_assert(self, interp, args, pos) -> int:
        (cond,) = args
        if not cond:
            raise MemoryFault(f"{pos}: assertion failed")
        return 0

    def _do_rand(self, interp, args, pos) -> int:
        return self._rng.next()

    def _do_srand(self, interp, args, pos) -> int:
        self._rng.state = int(args[0]) & 0x7FFFFFFF
        return 0

    # -- libwb ---------------------------------------------------------------------

    def _do_wbArg_read(self, interp, args, pos) -> str:
        return "wbArgs"

    def _do_wbArg_getInputFile(self, interp, args, pos) -> str:
        _args, index = args
        return f"input{int(index)}"

    def _do_wbImport(self, interp, args, pos) -> HostPtr:
        key = str(args[0])
        data = self.datasets.get(key)
        if data is None:
            raise HostApiError(f"{pos}: no dataset {key!r} provided "
                               f"(have {sorted(self.datasets)})")
        refs = [a for a in args[1:] if isinstance(a, (VarRef, ElemRef))]
        flat = np.ascontiguousarray(data).ravel().astype(
            data.dtype if data.dtype != np.float64 else np.float32)
        if len(refs) == 1:
            refs[0].set(int(data.size))
        elif len(refs) >= 2:
            if data.ndim < 2:
                raise HostApiError(
                    f"{pos}: dataset {key!r} is 1-D but two extents were "
                    "requested")
            refs[0].set(int(data.shape[0]))
            refs[1].set(int(data.shape[1]))
        buffer = HostBuffer(flat.copy(), label=key)
        return HostPtr(buffer)

    def _do_wbExport(self, interp, args, pos) -> int:
        if len(args) >= 3 and isinstance(args[1], HostPtr):
            count = int(args[2])
            self.exports[str(args[0])] = args[1].as_array(count).copy()
        return 0

    def _do_wbLog(self, interp, args, pos) -> int:
        level = str(args[0]) if args else "TRACE"
        message = " ".join(str(a) for a in args[1:])
        self.log.append(f"[{level}] {message}")
        self.write_out(message)
        return 0

    def _do_wbTime_start(self, interp, args, pos) -> int:
        tag = str(args[0]) if args else "Generic"
        message = " ".join(str(a) for a in args[1:])
        timer = WbTimer(tag=tag, message=message,
                        start=interp.runtime.device_time)
        self._open_timers[f"{tag}:{message}"] = timer
        self.timers.append(timer)
        return 0

    def _do_wbTime_stop(self, interp, args, pos) -> int:
        tag = str(args[0]) if args else "Generic"
        message = " ".join(str(a) for a in args[1:])
        timer = self._open_timers.pop(f"{tag}:{message}", None)
        if timer is not None:
            timer.stop = interp.runtime.device_time
        return 0

    def _do_wbSolution(self, interp, args, pos) -> int:
        ptr_index = next((i for i, a in enumerate(args)
                          if isinstance(a, HOST_MEMORY)), None)
        if ptr_index is None:
            raise HostApiError(f"{pos}: wbSolution needs a host pointer")
        ptr = args[ptr_index]
        # extents follow the output pointer: wbSolution(args, out, rows, cols)
        extents = [int(a) for a in args[ptr_index + 1:]
                   if isinstance(a, (int, float)) and not isinstance(a, bool)]
        if extents:
            total = 1
            for e in extents:
                total *= e
            data = ptr.as_array(total).copy()
            shape = tuple(extents)
        else:
            data = ptr.as_array().copy()
            shape = data.shape
        self.solution = SolutionRecorded(data=data, shape=shape)
        return 0

    def _do_wbCheck(self, interp, args, pos) -> Any:
        return args[0]

    # -- MPI -----------------------------------------------------------------------

    def _require_mpi(self, pos: SourcePos) -> Any:
        if self.mpi is None:
            raise HostApiError(f"{pos}: this lab requires MPI support "
                               "(no MPI endpoint attached)")
        return self.mpi

    def _do_MPI_Init(self, interp, args, pos) -> int:
        return 0

    def _do_MPI_Finalize(self, interp, args, pos) -> int:
        return 0

    def _do_MPI_Comm_rank(self, interp, args, pos) -> int:
        _comm, ref = args
        ref.set(self._require_mpi(pos).rank)
        return 0

    def _do_MPI_Comm_size(self, interp, args, pos) -> int:
        _comm, ref = args
        ref.set(self._require_mpi(pos).size)
        return 0

    def _do_MPI_Send(self, interp, args, pos) -> int:
        buf, count, _dtype, dest, tag, _comm = args
        payload = np.array(buf.as_array(int(count)), copy=True)
        self._require_mpi(pos).send(payload, dest=int(dest), tag=int(tag))
        return 0

    def _do_MPI_Recv(self, interp, args, pos) -> int:
        buf, count, _dtype, source, tag, _comm, _status = args
        payload = self._require_mpi(pos).recv(source=int(source),
                                              tag=int(tag))
        buf.as_array(int(count))[:] = payload[: int(count)]
        return 0

    def _do_MPI_Barrier(self, interp, args, pos) -> int:
        self._require_mpi(pos).barrier()
        return 0

    def _do_MPI_Allreduce(self, interp, args, pos) -> int:
        sendbuf, recvbuf, count, _dtype, op, _comm = args
        payload = np.array(sendbuf.as_array(int(count)), copy=True)
        result = self._require_mpi(pos).allreduce(payload, op=str(op))
        recvbuf.as_array(int(count))[:] = result
        return 0
