"""Warp-SIMD numpy execution engine: masked lane batching.

The fourth execution tier. Where the ``codegen`` engine emits scalar
Python source executed once per thread, this engine lowers an eligible
kernel body to numpy array programs executed once per *warp*: builtin
indices become lane vectors, arithmetic becomes dtype-correct numpy
ops on int64/float64 carriers, and global/shared accesses become
gathers/scatters against the numpy storage of ``DeviceBuffer`` /
``SharedArray`` with vectorized bounds checks that reproduce the
scalar fault message for the first offending lane.

Divergent control flow runs under lane masks: ``if``/``else`` without
barriers executes both arms on index partitions, and every charge
point adds ``len(active lanes)`` instructions so ``KernelStats``
stays bit-identical to the tree-walking oracle. Memory accesses are
recorded as whole-warp chunks (``_BlockState.load_chunks`` et al.)
whose row multiset equals per-thread recording, so the coalescing and
bank-conflict models are unaffected.

Eligibility is decided per kernel at compile time; any unsupported
construct raises :class:`_SimdUnsupported` and the kernel falls back
to the scalar ``codegen`` tier (the verdict is memoized, never an
error). Barrier kernels lower to a "spine": straight-line vectorized
statements separated by yields, with uniform-condition loops driven
by scalar conditions so whole warps arrive at every barrier together.

Documented divergences from the scalar engines (shared with the
codegen engine's ``vector_run``): faults surface in statement-major
rather than thread-major order, and int64 carriers wrap where Python
ints would grow unbounded.
"""

from __future__ import annotations

import math
from typing import Any, Callable

import numpy as np

from repro.gpusim.memory import DevicePtr, SharedArray
from repro.gpusim.scheduler import SYNC, ThreadContext
from repro.minicuda import ast_nodes as ast
from repro.minicuda import builtins as bi
from repro.minicuda.codegen import (
    KERNEL_CACHE,
    _HANG_MSG,
    _OPENCL_INDEX_FNS,
    memo_key,
)
from repro.minicuda.interpreter import (
    _MATH_IMPL,
    KernelHang,
    _c_div,
    _c_mod,
    _truthy,
    read_indexed,
    write_indexed,
)
from repro.minicuda.semantic import BARRIER_BUILTINS, ProgramInfo
from repro.minicuda.srcgen import (
    CompiledSrcKernel,
    _arith_kind,
    _BUILTIN_IDX,
    _FLOAT_MATH,
    _INT_MATH,
    _addr_of,
    _artifact_for,
    _c_eq,
    _c_ne,
    _ctype_kinds,
    _md_oob,
    _resolve_atomic,
    _stmt_contains_barrier,
)
from repro.minicuda.srcgen import compile_kernel as _srcgen_compile
from repro.minicuda.values import (
    NULL,
    MemoryFault,
    coerce,
    dtype_for,
    f32,
    sizeof_ctype,
)

#: Bump when SIMD lowering semantics change; part of the memo key so
#: stale fallback verdicts are never recalled across upgrades.
SIMD_VERSION = 1

_I64 = np.int64
_F64 = np.float64
_F32 = np.float32
_I64DT = np.dtype(np.int64)
_F64DT = np.dtype(np.float64)
_EMPTY = np.empty(0, dtype=np.intp)

_COMPARISONS = ("<", "<=", ">", ">=")
_INT_LIKE = ("int", "bool")

_ATOMIC_METHODS = {
    "atomicAdd": ThreadContext.atomic_add,
    "atomicSub": ThreadContext.atomic_add,  # add of the negation
    "atomicMax": ThreadContext.atomic_max,
    "atomicMin": ThreadContext.atomic_min,
    "atomicExch": ThreadContext.atomic_exch,
    "atomicCAS": ThreadContext.atomic_cas,
}


class _SimdUnsupported(Exception):
    """Kernel uses a construct the SIMD tier cannot lower; fall back."""


def _is_numeric(kind: Any) -> bool:
    return kind in ("int", "float")


def _carrier_for(kind: str) -> Any:
    return _F64 if kind == "float" else _I64


def _merge(parts: list) -> np.ndarray:
    parts = [p for p in parts if len(p)]
    if not parts:
        return _EMPTY
    if len(parts) == 1:
        return parts[0]
    return np.sort(np.concatenate(parts))


# -- vectorized C arithmetic -------------------------------------------------
#
# Each helper reproduces the exact semantics (and fault messages) of
# the interpreter's scalar ``_c_div`` / ``_c_mod``; helpers are only
# reached when at least one operand is an ndarray.

def _trunc_div(a: Any, b: Any) -> np.ndarray:
    q = np.floor_divide(a, b)
    r = a - q * b
    return np.where((r != 0) & ((a < 0) != (b < 0)), q + 1, q)


def _v_idiv(a: Any, b: Any) -> np.ndarray:
    if np.any(b == 0):
        raise MemoryFault("integer division by zero")
    return _trunc_div(a, b)


def _v_imod(a: Any, b: Any) -> np.ndarray:
    if np.any(b == 0):
        raise MemoryFault("integer modulo by zero")
    return a - _trunc_div(a, b) * b


def _v_fdiv(a: Any, b: Any) -> np.ndarray:
    with np.errstate(divide="ignore", invalid="ignore"):
        out = np.true_divide(a, b)
    bz = np.asarray(b == 0)
    if bz.any():
        # _c_div decides the infinity sign from the numerator alone
        a_arr = np.asarray(a, dtype=_F64)
        fix = np.where(a_arr > 0, np.inf,
                       np.where(a_arr < 0, -np.inf, np.nan))
        out = np.where(bz, fix, out)
    return out


def _v_fmod(a: Any, b: Any) -> np.ndarray:
    if np.any(b == 0):
        math.fmod(1.0, 0.0)  # raises the oracle's exact ValueError
    return np.fmod(a, b)


def _as_int_vals(v: Any) -> Any:
    """C int conversion (trunc toward zero) for scalar-or-array."""
    if isinstance(v, np.ndarray):
        return v if v.dtype == _I64DT else v.astype(_I64)
    return int(v)


def _co_vec(cokind: str, v: Any) -> Any:
    """Apply a declared-type coercion to a scalar or lane vector.

    The scalar arms are exactly ``values.coerce``; the vector arms are
    the provably bit-identical numpy casts (``f32`` round-trips
    through binary32 either way)."""
    if isinstance(v, np.ndarray):
        if cokind == "int":
            return v if v.dtype == _I64DT else v.astype(_I64)
        if cokind == "f32":
            return v.astype(_F32).astype(_F64)
        if cokind == "f64":
            return v if v.dtype == _F64DT else v.astype(_F64)
        return (v != 0).astype(_I64)  # bool
    if cokind == "int":
        return int(v)
    if cokind == "f32":
        return f32(v)
    if cokind == "f64":
        return float(v)
    return bool(v)


def _scalar_truthy(v: Any, numeric: bool) -> bool:
    return (v != 0) if numeric else _truthy(v)


# -- uniformity analysis -----------------------------------------------------

def _body_signals(body: ast.Stmt) -> tuple[bool, bool]:
    """(has break, has continue) bound to the enclosing loop — the
    same scan the codegen emitter uses (nested loops capture their
    own; a break inside switch binds to the switch)."""
    has_break = has_continue = False

    def scan(node: ast.Stmt, in_switch: bool) -> None:
        nonlocal has_break, has_continue
        cls = type(node)
        if cls is ast.Break:
            if not in_switch:
                has_break = True
        elif cls is ast.Continue:
            has_continue = True
        elif cls is ast.Block:
            for inner in node.statements:
                scan(inner, in_switch)
        elif cls is ast.If:
            scan(node.then, in_switch)
            if node.otherwise is not None:
                scan(node.otherwise, in_switch)
        elif cls is ast.Switch:
            for case in node.cases:
                for inner in case.statements:
                    scan(inner, True)

    scan(body, False)
    return has_break, has_continue


def _stmt_contains_return(stmt: ast.Stmt) -> bool:
    for node in ast.walk(stmt):
        if isinstance(node, ast.Return):
            return True
    return False


#: Sentinel governing condition meaning "always lane-varying" (loop
#: bodies with break/continue/return diverge regardless of the cond).
_ALWAYS_VARYING = True


def _analyze_varying(fn: ast.FuncDef, info: ProgramInfo) -> set[str]:
    """Fixpoint analysis: names of params/locals that may hold
    different values across the lanes of one warp.

    A name becomes varying when it is assigned (a) a lane-dependent
    value — anything touching ``threadIdx``, memory loads, derefs,
    atomics, OpenCL index functions, device calls, or other varying
    names — or (b) any value under lane-divergent control flow (an
    enclosing condition that is itself varying, or a loop body with
    break/continue/return). Name-level and conservative: shadowed
    declarations share one verdict."""
    varying: set[str] = set()
    device_fns = info.device_functions
    # (target name, governing conds, rhs expr or None)
    records: list[tuple[str, tuple, Any]] = []

    def collect_expr(e: ast.Expr | None, conds: tuple) -> None:
        if e is None:
            return
        for node in ast.walk(e):
            cls = type(node)
            if cls is ast.Assign and isinstance(node.target, ast.Ident):
                records.append((node.target.name, conds, node.value))
            elif cls is ast.IncDec and isinstance(node.operand, ast.Ident):
                records.append((node.operand.name, conds, None))

    def scan_stmt(s: ast.Stmt, conds: tuple) -> None:
        cls = type(s)
        if cls is ast.DeclStmt:
            for d in s.declarators:
                collect_expr(d.init, conds)
                for a in d.ctor_args:
                    collect_expr(a, conds)
                if d.init is not None:
                    records.append((d.name, conds, d.init))
        elif cls is ast.ExprStmt:
            collect_expr(s.expr, conds)
        elif cls is ast.Block:
            for inner in s.statements:
                scan_stmt(inner, conds)
        elif cls is ast.If:
            collect_expr(s.cond, conds)
            inner = conds + (s.cond,)
            scan_stmt(s.then, inner)
            if s.otherwise is not None:
                scan_stmt(s.otherwise, inner)
        elif cls is ast.While or cls is ast.DoWhile:
            collect_expr(s.cond, conds)
            inner = conds + (s.cond,)
            if any(_body_signals(s.body)) or _stmt_contains_return(s.body):
                inner = inner + (_ALWAYS_VARYING,)
            scan_stmt(s.body, inner)
        elif cls is ast.For:
            if s.init is not None:
                scan_stmt(s.init, conds)
            collect_expr(s.cond, conds)
            inner = conds + ((s.cond,) if s.cond is not None else ())
            if any(_body_signals(s.body)) or _stmt_contains_return(s.body):
                inner = inner + (_ALWAYS_VARYING,)
            scan_stmt(s.body, inner)
            collect_expr(s.step, inner)
        elif cls is ast.Switch:
            collect_expr(s.subject, conds)
            inner = conds + (s.subject,)
            for case in s.cases:
                for st2 in case.statements:
                    scan_stmt(st2, inner)
        elif cls is ast.Return:
            collect_expr(s.value, conds)
        # Break/Continue/Empty: nothing to record

    scan_stmt(fn.body, ())

    def expr_varying(e: Any) -> bool:
        if e is _ALWAYS_VARYING:
            return True
        for node in ast.walk(e):
            cls = type(node)
            if cls is ast.Ident:
                if node.name in varying or node.name == "threadIdx":
                    return True
            elif cls is ast.Index:
                return True  # all memory loads are lane-varying
            elif cls is ast.Unary:
                if node.op == "*":
                    return True
            elif cls is ast.Call:
                name = node.name
                if (name.startswith("atomic")
                        or name in _OPENCL_INDEX_FNS
                        or name in device_fns):
                    return True
        return False

    changed = True
    while changed:
        changed = False
        for name, conds, rhs in records:
            if name in varying:
                continue
            if any(expr_varying(c) for c in conds) or \
                    (rhs is not None and expr_varying(rhs)):
                varying.add(name)
                changed = True
    return varying


# -- per-warp execution state ------------------------------------------------

class _WarpLineStats:
    """Warp-level stand-in for the block ``KernelStats`` under line
    profiling: ``instructions`` charges forward to the real stats and
    the delta is also attributed to the profiled block's per-line
    instruction ledger at the warp's current source line."""

    __slots__ = ("_st", "_real")

    def __init__(self, st: "_WarpSt", real: Any):
        self._st = st
        self._real = real

    @property
    def instructions(self) -> int:
        return self._real.instructions

    @instructions.setter
    def instructions(self, value: int) -> None:
        real = self._real
        delta = value - real.instructions
        real.instructions = value
        st = self._st
        il = st.prof.instr_lines
        ln = st.line
        il[ln] = il.get(ln, 0) + delta


class _WarpSt:
    """Runtime state for one warp's vectorized execution."""

    __slots__ = ("ctxs", "n", "interp", "frame", "stats", "block", "warp",
                 "seqs", "_tid", "ops", "slots", "idx_all", "md_ok",
                 "prof", "line", "bseqs")

    def __init__(self, ctxs: list, interp: Any, frame_size: int):
        self.ctxs = ctxs
        self.n = len(ctxs)
        self.interp = interp
        self.frame: list[Any] = [None] * frame_size
        c0 = ctxs[0]
        self.block = c0._block
        self.stats = c0._stats
        self.warp = c0._warp
        # per-lane access sequence numbers; kept as one Python int
        # while every access so far has been full-mask (the hot case),
        # materialized to an int64 array on the first partial-mask op
        self.seqs: Any = 0
        self._tid: dict[str, np.ndarray] = {}
        self.ops = 0    # lane-occupancy numerator
        self.slots = 0  # lane-occupancy denominator
        self.idx_all = np.arange(self.n, dtype=np.intp)
        # (axis, limit) pairs whose full tid lane vector was verified
        # in range — tid vectors are warp constants, so one positive
        # verdict covers every later (masked or full) access
        self.md_ok: set = set()
        # line-profiled blocks expose themselves via .prof; profiled
        # closures keep ``line`` at the innermost enclosing statement
        # and ``bseqs`` tracks per-lane branch sequence numbers
        prof = self.block.prof
        self.prof = prof
        if prof is not None:
            self.line = 0
            self.bseqs = np.zeros(self.n, dtype=np.int64)
            self.stats = _WarpLineStats(self, self.stats)

    def tid_axis(self, axis: str) -> np.ndarray:
        arr = self._tid.get(axis)
        if arr is None:
            arr = np.fromiter(
                (getattr(c.threadIdx, axis) for c in self.ctxs),
                dtype=np.int64, count=self.n)
            self._tid[axis] = arr
        return arr

    def next_seq(self, idx: np.ndarray, k: int) -> Any:
        """Sequence keys for one whole-mask-or-masked access; bumps
        the per-lane counters. Returns a scalar while the warp has
        never diverged (broadcast by ``_packed_rows``)."""
        seqs = self.seqs
        if type(seqs) is int:
            if k == self.n:
                self.seqs = seqs + 1
                return seqs
            seqs = np.full(self.n, seqs, dtype=np.int64)
            self.seqs = seqs
        keys = seqs[idx]
        seqs[idx] += 1
        return keys

    def seq_array(self) -> np.ndarray:
        if type(self.seqs) is int:
            self.seqs = np.full(self.n, self.seqs, dtype=np.int64)
        return self.seqs

    def add_steps(self, k: int, pos: Any) -> None:
        interp = self.interp
        interp.steps += k
        if interp.steps > interp.max_steps:
            raise KernelHang(_HANG_MSG, pos)

    def lane_read(self, idx: np.ndarray, base: Any, ind: Any,
                  pos: Any) -> Any:
        """Per-lane fallback for non-DevicePtr bases (NULL, host
        pointers): routes through the thread context so the fault type
        and message match the scalar engines exactly."""
        seqs = self.seq_array()
        ctxs = self.ctxs
        prof = self.prof is not None
        out = []
        ind_arr = isinstance(ind, np.ndarray)
        for j, lane in enumerate(idx.tolist()):
            c = ctxs[lane]
            c._seq = int(seqs[lane])
            if prof:
                c.line = self.line
            out.append(read_indexed(base, ind[j] if ind_arr else ind,
                                    c, pos))
            seqs[lane] = c._seq
        return np.asarray(out)

    def lane_write(self, idx: np.ndarray, base: Any, ind: Any,
                   values: Any, pos: Any) -> None:
        seqs = self.seq_array()
        ctxs = self.ctxs
        prof = self.prof is not None
        ind_arr = isinstance(ind, np.ndarray)
        val_arr = isinstance(values, np.ndarray)
        for j, lane in enumerate(idx.tolist()):
            c = ctxs[lane]
            c._seq = int(seqs[lane])
            if prof:
                c.line = self.line
            write_indexed(base, ind[j] if ind_arr else ind,
                          values[j] if val_arr else values, c, pos)
            seqs[lane] = c._seq


# -- the lowerer -------------------------------------------------------------

import operator as _op

_CMP_OPS = {"<": _op.lt, "<=": _op.le, ">": _op.gt, ">=": _op.ge,
            "==": _op.eq, "!=": _op.ne}
_ARITH_OPS = {"+": _op.add, "-": _op.sub, "*": _op.mul}
_BIT_OPS = {"<<": _op.lshift, ">>": _op.rshift, "&": _op.and_,
            "|": _op.or_, "^": _op.xor}

_PTR_ELEM = {"float": "float", "double": "float", "int": "int",
             "unsigned": "int", "unsigned int": "int", "long": "int",
             "char": "int", "unsigned char": "int", "short": "int",
             "size_t": "int", "bool": "int"}


def _int_like_val(v: Any) -> bool:
    if isinstance(v, np.ndarray):
        return v.dtype.kind in "bui"
    return isinstance(v, (int, np.integer))


def _v_div(a: Any, b: Any) -> np.ndarray:
    """Vector ``/`` with ``_c_div``'s value dispatch (int iff both
    operands are integer-valued at runtime)."""
    if _int_like_val(a) and _int_like_val(b):
        return _v_idiv(a, b)
    return _v_fdiv(a, b)


def _v_mod(a: Any, b: Any) -> np.ndarray:
    if _int_like_val(a) and _int_like_val(b):
        return _v_imod(a, b)
    return _v_fmod(a, b)


def _is_ptr_kind(kind: Any) -> bool:
    return isinstance(kind, tuple) and kind[0] == "ptr"


class _Slot:
    __slots__ = ("slot", "kind", "cokind", "vary")

    def __init__(self, slot: int, kind: Any, cokind: Any, vary: bool):
        self.slot = slot
        self.kind = kind
        self.cokind = cokind
        self.vary = vary


class _Lowerer:
    """Compiles one kernel AST to warp-vectorized closures.

    Expression closures follow the protocol ``fn(st, idx) -> value``
    where ``idx`` is the active-lane index array: a compile-time
    *uniform* expression returns a plain Python value, a *varying* one
    an ndarray aligned with ``idx``. Statement closures return the
    surviving lane set. Every srcgen charge point becomes
    ``stats.instructions += len(idx)``."""

    def __init__(self, info: ProgramInfo, global_names: frozenset,
                 fn: ast.FuncDef, gen_ok: bool, profile: bool = False):
        self.info = info
        self.global_names = global_names
        self.fn = fn
        self.gen_ok = gen_ok
        self.profile = profile
        self.varying_names = _analyze_varying(fn, info)
        self.scopes: list[dict[str, _Slot]] = [{}]
        self.nslots = 0
        self.loop_depth = 0

    # -- line profiling helpers ------------------------------------------------

    @staticmethod
    def _pin(f: Callable, ln: int) -> Callable:
        """Wrap an expression closure so it re-points the warp's
        current line first — loop condition/step charges attribute to
        the loop statement's own line, matching the scalar engines."""
        def pinned(st, idx):
            st.line = ln
            return f(st, idx)
        return pinned

    def _record_if_cond(self, condf: Callable, cuni: bool,
                        line: int) -> Callable:
        """Wrap an ``if`` condition closure to log one branch outcome
        per active lane (after evaluation, before either arm runs),
        keyed by per-lane branch sequence numbers so finalize detects
        intra-warp divergence exactly like per-thread recording."""
        if not self.profile:
            return condf
        if cuni:
            def recording(st, idx):
                st.line = line
                cv = condf(st, idx)
                keys = st.bseqs[idx].copy()
                st.bseqs[idx] += 1
                st.prof.branch_chunks.append(
                    (len(idx), st.warp, keys, line, 1 if cv else 0))
                return cv
            return recording

        def recording(st, idx):
            st.line = line
            t = condf(st, idx)
            keys = st.bseqs[idx].copy()
            st.bseqs[idx] += 1
            st.prof.branch_chunks.append(
                (len(idx), st.warp, keys, line, t.astype(np.int64)))
            return t
        return recording

    # -- scopes ---------------------------------------------------------------

    def push(self) -> None:
        self.scopes.append({})

    def pop(self) -> None:
        self.scopes.pop()

    def declare(self, name: str, kind: Any, cokind: Any) -> _Slot:
        vary = (name in self.varying_names and kind in ("int", "float"))
        if name in self.varying_names and kind not in ("int", "float") \
                and not (isinstance(kind, tuple)
                         and kind[0] in ("shared", "shared_md",
                                         "local", "local_md")):
            # a pointer/dim3/unknown local taking lane-divergent values
            # has no vector representation
            raise _SimdUnsupported(f"varying non-numeric local {name!r}")
        rec = _Slot(self.nslots, kind, cokind, vary)
        self.nslots += 1
        self.scopes[-1][name] = rec
        return rec

    def lookup(self, name: str) -> _Slot | None:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        return None

    def kinds_of(self, ctype: ast.CType | None) -> tuple[Any, Any]:
        """(simd kind, coercion kind) for a declared type; the "bool"
        value kind folds to "int" (identical numeric behaviour, the
        cokind still coerces through bool)."""
        if ctype is not None and ctype.is_pointer:
            return ("ptr", _PTR_ELEM.get(ctype.base)), None
        vkind, cokind = _ctype_kinds(ctype)
        if vkind == "bool":
            vkind = "int"
        return vkind, cokind

    # -- expressions ----------------------------------------------------------

    def expr(self, e: ast.Expr) -> tuple[Callable, Any, bool]:
        cls = type(e)
        if cls is ast.IntLit:
            v = e.value
            return (lambda st, idx: v), "int", True
        if cls is ast.FloatLit:
            v = e.value
            return (lambda st, idx: v), "float", True
        if cls is ast.BoolLit:
            v = e.value
            return (lambda st, idx: v), "int", True
        if cls is ast.NullLit:
            return (lambda st, idx: NULL), "null", True
        if cls is ast.Ident:
            return self._ident(e)
        if cls is ast.Member:
            return self._member(e)
        if cls is ast.Index:
            return self._index_read(e)
        if cls is ast.Binary:
            return self._binary(e)
        if cls is ast.Assign:
            return self._assign(e, want_value=True)
        if cls is ast.IncDec:
            return self._incdec(e, want_value=True)
        if cls is ast.Unary:
            return self._unary(e)
        if cls is ast.Conditional:
            return self._conditional(e)
        if cls is ast.Cast:
            return self._cast(e)
        if cls is ast.SizeOf:
            size = sizeof_ctype(e.type)
            return (lambda st, idx: size), "int", True
        if cls is ast.Call:
            return self._call(e)
        raise _SimdUnsupported(f"expression {cls.__name__}")

    def _ident(self, e: ast.Ident) -> tuple[Callable, Any, bool]:
        rec = self.lookup(e.name)
        if rec is not None:
            slot = rec.slot
            if rec.vary:
                return (lambda st, idx: st.frame[slot][idx]), rec.kind, False
            return (lambda st, idx: st.frame[slot]), rec.kind, True
        name = e.name
        if name in self.global_names:
            return (lambda st, idx: st.interp.globals.get(name)), None, True
        if name == "threadIdx":
            raise _SimdUnsupported("bare threadIdx value")
        if name in _BUILTIN_IDX:
            return (lambda st, idx: getattr(st.ctxs[0], name)), "dim3", True
        if name == "warpSize":
            return (lambda st, idx:
                    st.block.device.spec.warp_size), "int", True
        if name in bi.DEVICE_CONSTANTS:
            value = bi.DEVICE_CONSTANTS[name]
            kind = ("int" if isinstance(value, int) else
                    "float" if isinstance(value, float) else None)
            return (lambda st, idx: value), kind, True
        raise _SimdUnsupported(f"identifier {name!r}")

    def _member(self, e: ast.Member) -> tuple[Callable, Any, bool]:
        obj, field = e.obj, e.field_name
        if isinstance(obj, ast.Ident) and field in ("x", "y", "z") \
                and obj.name in _BUILTIN_IDX \
                and self.lookup(obj.name) is None \
                and obj.name not in self.global_names:
            if obj.name == "threadIdx":
                # full-mask fast path returns the cached per-warp lane
                # vector itself; downstream ops never mutate operands
                return (lambda st, idx:
                        st.tid_axis(field) if idx is st.idx_all
                        else st.tid_axis(field)[idx]), "int", False
            bname = obj.name
            return (lambda st, idx:
                    getattr(getattr(st.ctxs[0], bname), field)), "int", True
        ofn, okind, ouni = self.expr(obj)
        if okind == "dim3" and ouni and field in ("x", "y", "z"):
            return (lambda st, idx:
                    getattr(ofn(st, idx), field)), "int", True
        raise _SimdUnsupported(f"member access .{field}")

    def _tid_axis_of(self, node: Any) -> str | None:
        """The axis name when ``node`` is a plain ``threadIdx.<axis>``
        read (not shadowed by a local or a global) — such index
        vectors are warp constants, so a bounds verdict can be cached
        per warp instead of re-reduced on every access."""
        if (isinstance(node, ast.Member)
                and node.field_name in ("x", "y", "z")
                and isinstance(node.obj, ast.Ident)
                and node.obj.name == "threadIdx"
                and self.lookup(node.obj.name) is None
                and node.obj.name not in self.global_names):
            return node.field_name
        return None

    def _as_int(self, fn: Callable, kind: Any,
                uni: bool) -> Callable:
        """srcgen ``as_int``: C int conversion unless already int-kind."""
        if kind == "int":
            return fn
        if uni:
            return lambda st, idx: int(fn(st, idx))
        return lambda st, idx: _as_int_vals(fn(st, idx))

    def _binary(self, e: ast.Binary) -> tuple[Callable, Any, bool]:
        op = e.op
        if op in ("&&", "||"):
            return self._logical(e)
        lf, lk, lu = self.expr(e.left)
        rf, rk, ru = self.expr(e.right)
        uni = lu and ru
        numeric = _is_numeric(lk) and _is_numeric(rk)
        if op in _COMPARISONS or op in ("==", "!="):
            opf = _CMP_OPS[op]
            if numeric:
                if uni:
                    def fn(st, idx):
                        l, r = lf(st, idx), rf(st, idx)
                        st.stats.instructions += len(idx)
                        return 1 if opf(l, r) else 0
                else:
                    def fn(st, idx):
                        l, r = lf(st, idx), rf(st, idx)
                        st.stats.instructions += len(idx)
                        return opf(l, r).astype(_I64)
                return fn, "int", uni
            if not uni:
                raise _SimdUnsupported("varying non-numeric comparison")
            if op == "==" or op == "!=":
                eqf = _c_eq if op == "==" else _c_ne

                def fn(st, idx):
                    l, r = lf(st, idx), rf(st, idx)
                    st.stats.instructions += len(idx)
                    return eqf(l, r)
            else:
                def fn(st, idx):
                    l, r = lf(st, idx), rf(st, idx)
                    st.stats.instructions += len(idx)
                    return int(opf(l, r))
            return fn, "int", True
        if op in ("+", "-", "*"):
            kind = _arith_kind(lk, rk)
            opf = _ARITH_OPS[op]
            if kind is None:
                # pointer arithmetic: uniform base ± uniform offset
                # (DevicePtr/HostPtr dunders int() the operand, so the
                # plain operator matches srcgen)
                ptr_kind = (lk if _is_ptr_kind(lk)
                            else rk if op == "+" and _is_ptr_kind(rk)
                            else None)
                if ptr_kind is None or not uni:
                    raise _SimdUnsupported(f"binary {op} on {lk}/{rk}")

                def fn(st, idx):
                    l, r = lf(st, idx), rf(st, idx)
                    st.stats.instructions += len(idx)
                    return opf(l, r)
                return fn, ptr_kind, True

            def fn(st, idx):
                l, r = lf(st, idx), rf(st, idx)
                st.stats.instructions += len(idx)
                return opf(l, r)
            return fn, kind, uni
        if op == "/" or op == "%":
            if not numeric:
                raise _SimdUnsupported(f"{op} on {lk}/{rk}")
            kind = "int" if lk == "int" and rk == "int" else "float"
            if uni:
                sfn = _c_div if op == "/" else _c_mod

                def fn(st, idx):
                    l, r = lf(st, idx), rf(st, idx)
                    st.stats.instructions += len(idx)
                    return sfn(l, r)
            else:
                vfn = _v_div if op == "/" else _v_mod

                def fn(st, idx):
                    l, r = lf(st, idx), rf(st, idx)
                    st.stats.instructions += len(idx)
                    return vfn(l, r)
            return fn, kind, uni
        if op in _BIT_OPS:
            opf = _BIT_OPS[op]
            li = self._as_int(lf, lk, lu) if lk != "int" else lf
            ri = self._as_int(rf, rk, ru) if rk != "int" else rf
            if not (_is_numeric(lk) and _is_numeric(rk)):
                raise _SimdUnsupported(f"bitwise {op} on {lk}/{rk}")

            def fn(st, idx):
                l, r = li(st, idx), ri(st, idx)
                st.stats.instructions += len(idx)
                return opf(l, r)
            return fn, "int", uni
        raise _SimdUnsupported(f"binary operator {op!r}")

    def _logical(self, e: ast.Binary) -> tuple[Callable, Any, bool]:
        lf, lk, lu = self.expr(e.left)
        rf, rk, ru = self.expr(e.right)
        if not (_is_numeric(lk) and _is_numeric(rk)):
            raise _SimdUnsupported("non-numeric logical operand")
        is_and = e.op == "&&"
        if lu and ru:
            def fn(st, idx):
                lv = lf(st, idx)
                if is_and:
                    if not lv:
                        return 0
                    return 1 if rf(st, idx) else 0
                if lv:
                    return 1
                return 1 if rf(st, idx) else 0
            return fn, "int", True

        def fn(st, idx):
            lv = lf(st, idx)
            k = len(idx)
            if not isinstance(lv, np.ndarray):
                # uniform lhs short-circuit: the rhs (and its charges)
                # runs for every lane or for none
                taken = bool(lv) if is_and else not lv
                if not taken:
                    return (np.zeros(k, _I64) if is_and
                            else np.ones(k, _I64))
                rv = rf(st, idx)
                if isinstance(rv, np.ndarray):
                    return (rv != 0).astype(_I64)
                return (np.ones(k, _I64) if rv else np.zeros(k, _I64))
            t = lv != 0
            out = np.zeros(k, _I64)
            if not is_and:
                out[t] = 1
            sub = idx[t] if is_and else idx[~t]
            if len(sub):
                rv = rf(st, sub)
                bit = ((rv != 0).astype(_I64)
                       if isinstance(rv, np.ndarray)
                       else (1 if rv else 0))
                if is_and:
                    out[t] = bit
                else:
                    out[~t] = bit
            return out
        return fn, "int", False

    def _conditional(self, e: ast.Conditional) -> tuple[Callable, Any, bool]:
        cf, ck, cu = self.expr(e.cond)
        tf, tk, tu = self.expr(e.then)
        ef, ek, eu = self.expr(e.otherwise)
        if not _is_numeric(ck):
            if not cu:
                raise _SimdUnsupported("varying non-numeric ternary cond")
            cf0 = cf
            cf = lambda st, idx: _truthy(cf0(st, idx))  # noqa: E731
        kind = tk if tk == ek else None
        if cu:
            def fn(st, idx):
                return tf(st, idx) if cf(st, idx) else ef(st, idx)
            return fn, kind, tu and eu
        if kind not in ("int", "float"):
            raise _SimdUnsupported("varying ternary on non-numeric arms")
        carrier = _carrier_for(kind)

        def fn(st, idx):
            cv = cf(st, idx)
            t = cv != 0
            out = np.empty(len(idx), carrier)
            a = idx[t]
            b = idx[~t]
            if len(a):
                out[t] = tf(st, a)
            if len(b):
                out[~t] = ef(st, b)
            return out
        return fn, kind, False

    def _unary(self, e: ast.Unary) -> tuple[Callable, Any, bool]:
        op = e.op
        if op == "&":
            return self._addressof(e.operand)
        vf, vk, vu = self.expr(e.operand)
        if op == "*":
            if not vu:
                raise _SimdUnsupported("deref of varying pointer")
            ekind = vk[1] if _is_ptr_kind(vk) else None
            pos = e.pos

            def fn(st, idx):
                ptr = vf(st, idx)
                st.stats.instructions += len(idx)  # the deref op itself
                return _global_load(st, idx, ptr, 0, pos)
            return fn, ekind, False
        if op == "-":
            if not _is_numeric(vk):
                raise _SimdUnsupported("unary - on non-numeric")

            def fn(st, idx):
                v = vf(st, idx)
                st.stats.instructions += len(idx)
                return -v
            return fn, vk, vu
        if op == "+":
            def fn(st, idx):
                v = vf(st, idx)
                st.stats.instructions += len(idx)
                return v
            return fn, vk, vu
        if op == "!":
            if not _is_numeric(vk):
                if not vu:
                    raise _SimdUnsupported("varying non-numeric !")

                def fn(st, idx):
                    v = vf(st, idx)
                    st.stats.instructions += len(idx)
                    return int(not _truthy(v))
                return fn, "int", True
            if vu:
                def fn(st, idx):
                    v = vf(st, idx)
                    st.stats.instructions += len(idx)
                    return 0 if v else 1
            else:
                def fn(st, idx):
                    v = vf(st, idx)
                    st.stats.instructions += len(idx)
                    return (v == 0).astype(_I64)
            return fn, "int", vu
        if op == "~":
            if not _is_numeric(vk):
                raise _SimdUnsupported("unary ~ on non-numeric")
            vi = self._as_int(vf, vk, vu) if vk != "int" else vf

            def fn(st, idx):
                v = vi(st, idx)
                st.stats.instructions += len(idx)
                return ~v
            return fn, "int", vu
        raise _SimdUnsupported(f"unary {op!r}")

    def _addressof(self, operand: ast.Expr) -> tuple[Callable, Any, bool]:
        # only the atomic call path consumes addresses in device code;
        # general address-of falls back to the scalar tier
        raise _SimdUnsupported("address-of expression")

    def _cast(self, e: ast.Cast) -> tuple[Callable, Any, bool]:
        vf, vk, vu = self.expr(e.value)
        if e.type.is_pointer:
            raise _SimdUnsupported("pointer cast")
        kind, cokind = self.kinds_of(e.type)
        if cokind is None:
            return vf, vk, vu

        def fn(st, idx):
            return _co_vec(cokind, vf(st, idx))
        return fn, kind, vu

    # -- memory access plans --------------------------------------------------

    def _md_direct(self, e: ast.Index):
        """Recognise ``A[i][j]`` on a locally declared 2-D shared/local
        array (mirrors the srcgen fast path)."""
        inner = e.base
        if type(inner) is not ast.Index or type(inner.base) is not ast.Ident:
            return None
        rec = self.lookup(inner.base.name)
        if rec is None or not isinstance(rec.kind, tuple):
            return None
        if rec.kind[0] not in ("shared_md", "local_md"):
            return None
        dims = rec.kind[1]
        if len(dims) != 2:
            return None
        return rec.kind[0], rec, dims, inner.index, e.index

    def _index_plan(self, e: ast.Index):
        """(resolve, load, store, ekind) closures for an Index access.
        ``resolve`` evaluates base/index (and the md bounds check),
        ``load``/``store`` carry the access charge and trace recording
        exactly like the scalar context methods."""
        pos = e.pos
        md = self._md_direct(e)
        if md is not None:
            space, rec, (d0, d1), i_node, j_node = md
            f_i, ik, iu = self.expr(i_node)
            f_i = self._as_int(f_i, ik, iu)
            f_j, jk, ju = self.expr(j_node)
            f_j = self._as_int(f_j, jk, ju)
            slot = rec.slot
            i_axis = self._tid_axis_of(i_node)
            j_axis = self._tid_axis_of(j_node)

            def resolve(st, idx):
                i = f_i(st, idx)
                j = f_j(st, idx)
                if not (_md_fast_ok(st, i, i_axis, d0)
                        and _md_fast_ok(st, j, j_axis, d1)):
                    _md_check(i, j, d0, d1)
                return st.frame[slot], i * d1 + j
            if space == "shared_md":
                ekind = rec.kind[2]
                return (resolve,
                        lambda st, idx, rs: _shared_load_md(st, idx, *rs),
                        lambda st, idx, rs, v: _shared_store(
                            st, idx, rs[0], rs[1], v),
                        ekind)
            _sp, _dims, _size, ekind, aname = rec.kind
            return (resolve,
                    lambda st, idx, rs: _local_load(st, idx, rs[0], rs[1],
                                                    aname),
                    lambda st, idx, rs, v: _local_store(st, idx, rs[0],
                                                        rs[1], v, aname),
                    ekind)
        bf, bk, bu = self.expr(e.base)
        f_ind, ik, iu = self.expr(e.index)
        if isinstance(bk, tuple) and bk[0] == "shared":
            f_ind = self._as_int(f_ind, ik, iu)

            def resolve(st, idx):
                return bf(st, idx), f_ind(st, idx)
            return (resolve,
                    lambda st, idx, rs: _shared_load(st, idx, *rs),
                    lambda st, idx, rs, v: _shared_store(st, idx, rs[0],
                                                         rs[1], v),
                    bk[1])
        if isinstance(bk, tuple) and bk[0] == "local":
            f_ind = self._as_int(f_ind, ik, iu)
            _sp, _size, ekind, aname = bk

            def resolve(st, idx):
                return bf(st, idx), f_ind(st, idx)
            return (resolve,
                    lambda st, idx, rs: _local_load(st, idx, rs[0], rs[1],
                                                    aname),
                    lambda st, idx, rs, v: _local_store(st, idx, rs[0],
                                                        rs[1], v, aname),
                    ekind)
        if (bk is None or _is_ptr_kind(bk)) and bu:
            f_ind = self._as_int(f_ind, ik, iu)

            def resolve(st, idx):
                return bf(st, idx), f_ind(st, idx)
            return (resolve,
                    lambda st, idx, rs: _global_load(st, idx, rs[0], rs[1],
                                                     pos),
                    lambda st, idx, rs, v: _global_store(st, idx, rs[0],
                                                         rs[1], v, pos),
                    bk[1] if _is_ptr_kind(bk) else None)
        raise _SimdUnsupported(f"index on base of kind {bk!r}")

    def _index_read(self, e: ast.Index) -> tuple[Callable, Any, bool]:
        resolve, load, _store, ekind = self._index_plan(e)

        def fn(st, idx):
            rs = resolve(st, idx)
            return load(st, idx, rs)
        return fn, ekind, False
    # -- assignment & mutation ------------------------------------------------

    def _combine_fn(self, bop: str, uni: bool) -> Callable:
        """The operator applied by a compound assignment (srcgen
        ``_combine``); vector arms use runtime value dispatch so the
        int/float split matches ``_c_div``/``_c_mod`` exactly."""
        if bop in _ARITH_OPS:
            return _ARITH_OPS[bop]
        if bop == "/":
            return _c_div if uni else _v_div
        if bop == "%":
            return _c_mod if uni else _v_mod
        if bop in _BIT_OPS:
            opf = _BIT_OPS[bop]
            if uni:
                return lambda a, b: opf(int(a), int(b))
            return lambda a, b: opf(_as_int_vals(a), _as_int_vals(b))
        raise _SimdUnsupported(f"compound operator {bop}=")

    def _assign(self, e: ast.Assign,
                want_value: bool) -> tuple[Callable, Any, bool]:
        target = e.target
        bop = e.op[:-1] if e.op != "=" else None
        vf, vk, vu = self.expr(e.value)
        if isinstance(target, ast.Ident):
            rec = self.lookup(target.name)
            if rec is None:
                raise _SimdUnsupported(
                    f"assignment to global {target.name!r}")
            if isinstance(rec.kind, tuple) and rec.kind[0] in (
                    "shared", "shared_md", "local", "local_md"):
                raise _SimdUnsupported("assignment to an array local")
            slot, cokind = rec.slot, rec.cokind
            if rec.vary:
                comb = self._combine_fn(bop, False) if bop else None

                def fn(st, idx):
                    v = vf(st, idx)
                    arr = st.frame[slot]
                    if comb is not None:
                        v = comb(arr[idx], v)
                    st.stats.instructions += len(idx)
                    arr[idx] = _co_vec(cokind, v) if cokind else v
                    return v
                return fn, (vk if bop is None else None), False
            if not vu:
                # the varying analysis should have caught this
                raise _SimdUnsupported(
                    f"varying value into uniform slot {target.name!r}")
            comb = self._combine_fn(bop, True) if bop else None

            def fn(st, idx):
                v = vf(st, idx)
                if comb is not None:
                    v = comb(st.frame[slot], v)
                st.stats.instructions += len(idx)
                st.frame[slot] = _co_vec(cokind, v) if cokind else v
                return v
            return fn, (vk if bop is None else None), True
        if isinstance(target, ast.Index):
            resolve, load, store, _ekind = self._index_plan(target)
            comb = self._combine_fn(bop, False) if bop else None

            def fn(st, idx):
                rs = resolve(st, idx)
                v = vf(st, idx)
                if comb is not None:
                    v = comb(load(st, idx, rs), v)
                st.stats.instructions += len(idx)
                store(st, idx, rs, v)
                return v
            return fn, (vk if bop is None else None), False
        if isinstance(target, ast.Unary) and target.op == "*":
            pf, pk, pu = self.expr(target.operand)
            if not pu:
                raise _SimdUnsupported("store through varying pointer")
            pos = target.pos
            comb = self._combine_fn(bop, False) if bop else None

            def fn(st, idx):
                ptr = pf(st, idx)
                v = vf(st, idx)
                if comb is not None:
                    v = comb(_global_load(st, idx, ptr, 0, pos), v)
                st.stats.instructions += len(idx)
                _global_store(st, idx, ptr, 0, v, pos)
                return v
            return fn, (vk if bop is None else None), False
        raise _SimdUnsupported("assignment target")

    def _incdec(self, e: ast.IncDec,
                want_value: bool) -> tuple[Callable, Any, bool]:
        step = 1 if e.op == "++" else -1
        prefix = e.prefix
        target = e.operand
        if isinstance(target, ast.Ident):
            rec = self.lookup(target.name)
            if rec is None:
                raise _SimdUnsupported(
                    f"increment of global {target.name!r}")
            if isinstance(rec.kind, tuple) and rec.kind[0] in (
                    "shared", "shared_md", "local", "local_md"):
                raise _SimdUnsupported("increment of an array local")
            slot, cokind = rec.slot, rec.cokind
            if rec.vary:
                def fn(st, idx):
                    arr = st.frame[slot]
                    old = arr[idx]  # fancy indexing copies
                    new = old + step
                    st.stats.instructions += len(idx)
                    arr[idx] = _co_vec(cokind, new) if cokind else new
                    return new if prefix else old
                return fn, rec.kind, False

            def fn(st, idx):
                old = st.frame[slot]
                new = old + step
                st.stats.instructions += len(idx)
                st.frame[slot] = _co_vec(cokind, new) if cokind else new
                return new if prefix else old
            return fn, rec.kind, True
        if isinstance(target, ast.Index):
            resolve, load, store, _ekind = self._index_plan(target)

            def fn(st, idx):
                rs = resolve(st, idx)
                old = load(st, idx, rs)
                new = old + step
                st.stats.instructions += len(idx)
                store(st, idx, rs, new)
                return new if prefix else old
            return fn, None, False
        if isinstance(target, ast.Unary) and target.op == "*":
            pf, pk, pu = self.expr(target.operand)
            if not pu:
                raise _SimdUnsupported("increment through varying pointer")
            pos = target.pos

            def fn(st, idx):
                ptr = pf(st, idx)
                old = _global_load(st, idx, ptr, 0, pos)
                new = old + step
                st.stats.instructions += len(idx)
                _global_store(st, idx, ptr, 0, new, pos)
                return new if prefix else old
            return fn, None, False
        raise _SimdUnsupported("increment target")

    # -- calls ----------------------------------------------------------------

    def _call(self, e: ast.Call) -> tuple[Callable, Any, bool]:
        name = e.name
        if name in BARRIER_BUILTINS:
            raise _SimdUnsupported("barrier in expression")
        if name.startswith("atomic"):
            return self._atomic(e)
        if name in bi.MATH_BUILTINS:
            return self._math(e)
        if name in _OPENCL_INDEX_FNS:
            return self._opencl(e)
        # dim3(...), printf, device functions: scalar tiers only
        raise _SimdUnsupported(f"call to {name!r}")

    def _math(self, e: ast.Call) -> tuple[Callable, Any, bool]:
        name = e.name
        impl = _MATH_IMPL.get(name)
        if impl is None:
            raise _SimdUnsupported(f"math builtin {name!r}")
        args = [self.expr(a) for a in e.args]
        kind = ("float" if name in _FLOAT_MATH
                else "int" if name in _INT_MATH else None)
        uni = all(u for _f, _k, u in args)
        if kind is None and not uni:
            # min/max/abs-family: srcgen dispatches on runtime values;
            # identical-kind numeric args make that decidable here
            kinds = {k for _f, k, _u in args}
            if len(kinds) == 1 and _is_numeric(next(iter(kinds))):
                kind = next(iter(kinds))
            else:
                raise _SimdUnsupported(f"varying polymorphic {name}()")
        fns = [f for f, _k, _u in args]
        if uni:
            def fn(st, idx):
                vals = [f(st, idx) for f in fns]
                st.stats.instructions += len(idx)
                return impl(*vals)
            return fn, kind, True
        ufunc = np.frompyfunc(impl, len(fns), 1)
        carrier = _carrier_for(kind)

        def fn(st, idx):
            vals = [f(st, idx) for f in fns]
            st.stats.instructions += len(idx)
            return ufunc(*vals).astype(carrier)
        return fn, kind, False

    def _opencl(self, e: ast.Call) -> tuple[Callable, Any, bool]:
        name = e.name
        df, dk, du = self.expr(e.args[0])
        df = self._as_int(df, dk, du)
        if not du:
            raise _SimdUnsupported("varying OpenCL index dimension")
        # no charge, exactly like srcgen's _opencl_index emission
        if name in ("get_local_id", "get_global_id"):
            glob = name == "get_global_id"

            def fn(st, idx):
                d = df(st, idx)
                axis = "xyz"[d] if 0 <= d < 3 else "x"
                tid = st.tid_axis(axis)[idx]
                if not glob:
                    return tid
                c0 = st.ctxs[0]
                return (getattr(c0.blockIdx, axis)
                        * getattr(c0.blockDim, axis) + tid)
            return fn, "int", False

        def fn(st, idx):
            d = df(st, idx)
            axis = "xyz"[d] if 0 <= d < 3 else "x"
            c0 = st.ctxs[0]
            if name == "get_group_id":
                return getattr(c0.blockIdx, axis)
            if name == "get_local_size":
                return getattr(c0.blockDim, axis)
            if name == "get_num_groups":
                return getattr(c0.gridDim, axis)
            return (getattr(c0.gridDim, axis)
                    * getattr(c0.blockDim, axis))  # get_global_size
        return fn, "int", True

    def _atomic(self, e: ast.Call) -> tuple[Callable, Any, bool]:
        name = e.name
        method = _ATOMIC_METHODS.get(name)
        nvals = 2 if name == "atomicCAS" else 1
        if method is None or len(e.args) != 1 + nvals:
            raise _SimdUnsupported(f"atomic {name!r}")
        negate = name == "atomicSub"
        resolve, ekind = self._atomic_target(e.args[0], e.pos)
        if not _is_numeric(ekind):
            raise _SimdUnsupported("atomic on untyped storage")
        val_fns = [self.expr(a)[0] for a in e.args[1:]]
        carrier = _carrier_for(ekind)

        profile = self.profile

        def fn(st, idx):
            target, ind = resolve(st, idx)
            vals = [f(st, idx) for f in val_fns]
            if negate:
                vals[0] = -vals[0]
            seqs = st.seq_array()
            ctxs = st.ctxs
            out = np.empty(len(idx), carrier)
            ind_arr = isinstance(ind, np.ndarray)
            val_arr = [isinstance(v, np.ndarray) for v in vals]
            for j, lane in enumerate(idx.tolist()):
                c = ctxs[lane]
                c._seq = int(seqs[lane])
                if profile:
                    c.line = st.line
                i_j = int(ind[j]) if ind_arr else ind
                a_j = [v[j] if va else v for v, va in zip(vals, val_arr)]
                out[j] = method(c, target, i_j, *a_j)
                seqs[lane] = c._seq
            return out
        return fn, ekind, False

    def _atomic_target(self, ref: ast.Expr,
                       pos: Any) -> tuple[Callable, Any]:
        """(resolve(st, idx) -> (target, index), element kind) for an
        atomic's destination; faults match ``_resolve_atomic``."""
        if isinstance(ref, ast.Unary) and ref.op == "&" \
                and isinstance(ref.operand, ast.Index):
            e = ref.operand
            md = self._md_direct(e)
            if md is not None:
                space, rec, (d0, d1), i_node, j_node = md
                f_i, ik, iu = self.expr(i_node)
                f_i = self._as_int(f_i, ik, iu)
                f_j, jk, ju = self.expr(j_node)
                f_j = self._as_int(f_j, jk, ju)
                slot = rec.slot
                local = space == "local_md"
                ekind = rec.kind[3] if local else rec.kind[2]
                if not _is_numeric(ekind):
                    raise _SimdUnsupported("atomic on untyped storage")

                def resolve(st, idx):
                    i = f_i(st, idx)
                    j = f_j(st, idx)
                    _md_check(i, j, d0, d1)
                    if local:
                        raise MemoryFault(
                            "atomics require device or shared memory")
                    return st.frame[slot], i * d1 + j
                return resolve, ekind
            bf, bk, bu = self.expr(e.base)
            f_ind, ik, iu = self.expr(e.index)
            f_ind = self._as_int(f_ind, ik, iu)
            if isinstance(bk, tuple) and bk[0] == "shared":
                def resolve(st, idx):
                    return bf(st, idx), f_ind(st, idx)
                return resolve, bk[1]
            if isinstance(bk, tuple) and bk[0] == "local":
                def resolve(st, idx):
                    bf(st, idx)
                    f_ind(st, idx)
                    raise MemoryFault(
                        "atomics require device or shared memory")
                return resolve, bk[2]
            if (bk is None or _is_ptr_kind(bk)) and bu:
                ekind = bk[1] if _is_ptr_kind(bk) else None
                if not _is_numeric(ekind):
                    raise _SimdUnsupported("atomic on untyped pointer")

                def resolve(st, idx):
                    base = bf(st, idx)
                    ind = f_ind(st, idx)
                    if type(base) is DevicePtr:
                        if isinstance(ind, np.ndarray):
                            return base.buffer, base.offset + ind
                        return base.buffer, base.offset + int(ind)
                    # non-device base: reproduce the scalar fault chain
                    i0 = (int(ind[0]) if isinstance(ind, np.ndarray)
                          else int(ind))
                    return _resolve_atomic(_addr_of(base, i0, pos), pos)
                return resolve, ekind
            raise _SimdUnsupported("atomic address target")
        # bare reference: atomicAdd(p, v) / atomicAdd(shared_name, v)
        rf, rk, ru = self.expr(ref)
        if not ru:
            raise _SimdUnsupported("varying atomic reference")
        ekind = (rk[1] if isinstance(rk, tuple)
                 and rk[0] in ("ptr", "shared") else None)
        if not _is_numeric(ekind):
            raise _SimdUnsupported("atomic on untyped reference")

        def resolve(st, idx):
            return _resolve_atomic(rf(st, idx), pos)
        return resolve, ekind

    # -- conditions ------------------------------------------------------------

    def _cond(self, e: ast.Expr) -> tuple[Callable, bool]:
        """srcgen ``cond()``: a charged raw comparison, else expression
        truthiness. Varying closures return a bool lane vector."""
        if type(e) is ast.Binary and e.op in _CMP_OPS:
            lf, lk, lu = self.expr(e.left)
            rf, rk, ru = self.expr(e.right)
            opf = _CMP_OPS[e.op]
            uni = lu and ru
            if _is_numeric(lk) and _is_numeric(rk):
                if uni:
                    def fn(st, idx):
                        l, r = lf(st, idx), rf(st, idx)
                        st.stats.instructions += len(idx)
                        return opf(l, r)
                    return fn, True

                def fn(st, idx):
                    l, r = lf(st, idx), rf(st, idx)
                    st.stats.instructions += len(idx)
                    return np.asarray(opf(l, r))
                return fn, False
            if not uni:
                raise _SimdUnsupported("varying non-numeric condition")
            if e.op in ("==", "!="):
                eqf = _c_eq if e.op == "==" else _c_ne

                def fn(st, idx):
                    l, r = lf(st, idx), rf(st, idx)
                    st.stats.instructions += len(idx)
                    return bool(eqf(l, r))
                return fn, True

            def fn(st, idx):
                l, r = lf(st, idx), rf(st, idx)
                st.stats.instructions += len(idx)
                return opf(l, r)
            return fn, True
        vf, vk, vu = self.expr(e)
        if vu:
            numeric = _is_numeric(vk)

            def fn(st, idx):
                return _scalar_truthy(vf(st, idx), numeric)
            return fn, True
        if not _is_numeric(vk):
            raise _SimdUnsupported("varying non-numeric condition")

        def fn(st, idx):
            return np.asarray(vf(st, idx) != 0)
        return fn, False
    # -- statements ------------------------------------------------------------
    #
    # Statement closures follow ``sfn(st, idx, fr) -> surviving idx``
    # where ``fr = (break_parts, return_parts)`` collects the lanes
    # that left via break (innermost loop) or return (whole kernel).

    def stmt(self, s: ast.Stmt) -> Callable:
        sfn = self._stmt_dispatch(s)
        if not self.profile:
            return sfn
        cls = type(s)
        if cls is ast.Block or cls is ast.Empty:
            return sfn
        ln = s.pos.line

        def stmt_at_line(st, idx, fr):
            st.line = ln
            return sfn(st, idx, fr)
        return stmt_at_line

    def _stmt_dispatch(self, s: ast.Stmt) -> Callable:
        cls = type(s)
        if cls is ast.Block:
            return self._block(s)
        if cls is ast.DeclStmt:
            return self._decl(s)
        if cls is ast.ExprStmt:
            return self._expr_stmt(s)
        if cls is ast.If:
            return self._if(s)
        if cls is ast.While:
            return self._while(s)
        if cls is ast.DoWhile:
            return self._dowhile(s)
        if cls is ast.For:
            return self._for(s)
        if cls is ast.Return:
            return self._return(s)
        if cls is ast.Break:
            if self.loop_depth == 0:
                raise _SimdUnsupported("break outside loop")

            def sfn(st, idx, fr):
                fr[0].append(idx)
                return _EMPTY
            return sfn
        if cls is ast.Continue:
            if self.loop_depth == 0:
                raise _SimdUnsupported("continue outside loop")
            return lambda st, idx, fr: _EMPTY
        if cls is ast.Empty:
            return lambda st, idx, fr: idx
        raise _SimdUnsupported(f"statement {cls.__name__}")

    def _block(self, s: ast.Block) -> Callable:
        self.push()
        fns = [self.stmt(x) for x in s.statements]
        self.pop()

        def sfn(st, idx, fr):
            for f in fns:
                if not len(idx):
                    return idx
                idx = f(st, idx, fr)
            return idx
        return sfn

    def _expr_stmt(self, s: ast.ExprStmt) -> Callable:
        e = s.expr
        cls = type(e)
        if cls is ast.Call and e.name in BARRIER_BUILTINS:
            # barriers are legal only on the uniform spine
            raise _SimdUnsupported("barrier under lane-divergent control")
        if cls is ast.Assign:
            fn = self._assign(e, want_value=False)[0]
        elif cls is ast.IncDec:
            fn = self._incdec(e, want_value=False)[0]
        elif cls in (ast.Ident, ast.IntLit, ast.FloatLit, ast.BoolLit,
                     ast.NullLit):
            # srcgen skips bare identifier/literal statements entirely
            return lambda st, idx, fr: idx
        else:
            fn = self.expr(e)[0]

        def sfn(st, idx, fr):
            fn(st, idx)
            return idx
        return sfn

    def _return(self, s: ast.Return) -> Callable:
        if s.value is not None:
            raise _SimdUnsupported("return with a value")

        def sfn(st, idx, fr):
            fr[1].append(idx)
            return _EMPTY
        return sfn

    def _if(self, s: ast.If) -> Callable:
        condf, cuni = self._cond(s.cond)
        condf = self._record_if_cond(condf, cuni, s.pos.line)
        self.push()
        tf = self.stmt(s.then)
        self.pop()
        ef = None
        if s.otherwise is not None:
            self.push()
            ef = self.stmt(s.otherwise)
            self.pop()
        if cuni:
            def sfn(st, idx, fr):
                if condf(st, idx):
                    return tf(st, idx, fr)
                if ef is not None:
                    return ef(st, idx, fr)
                return idx
            return sfn

        def sfn(st, idx, fr):
            t = condf(st, idx)
            t_idx = idx[t]
            f_idx = idx[~t]
            parts = []
            if len(t_idx):
                st.ops += len(t_idx)
                st.slots += st.n
                parts.append(tf(st, t_idx, fr))
            if ef is None:
                parts.append(f_idx)
            elif len(f_idx):
                st.ops += len(f_idx)
                st.slots += st.n
                parts.append(ef(st, f_idx, fr))
            return _merge(parts)
        return sfn

    def _compile_loop_parts(self, body: ast.Stmt):
        self.loop_depth += 1
        self.push()
        bodyf = self.stmt(body)
        self.pop()
        self.loop_depth -= 1
        return bodyf

    def _while(self, s: ast.While) -> Callable:
        pos = s.pos
        condf, cuni = self._cond(s.cond)
        if self.profile:
            condf = self._pin(condf, pos.line)
        bodyf = self._compile_loop_parts(s.body)

        def sfn(st, idx, fr):
            active = idx
            ret = fr[1]
            r0 = len(ret)
            while len(active):
                # every active lane charges a step, including the one
                # whose condition check fails (srcgen places _steps at
                # the top of the while body)
                st.add_steps(len(active), pos)
                cv = condf(st, active)
                if cuni:
                    if not cv:
                        break
                    live = active
                else:
                    live = active[cv]
                    if not len(live):
                        break
                st.ops += len(live)
                st.slots += st.n
                brk: list = []
                nr0 = len(ret)
                bodyf(st, live, (brk, ret))
                if brk or len(ret) > nr0:
                    gone = _merge(brk + ret[nr0:])
                    active = np.setdiff1d(live, gone, assume_unique=True)
                else:
                    active = live
            if len(fr[1]) > r0:
                gone = _merge(fr[1][r0:])
                return np.setdiff1d(idx, gone, assume_unique=True)
            return idx
        return sfn

    def _dowhile(self, s: ast.DoWhile) -> Callable:
        pos = s.pos
        condf, cuni = self._cond(s.cond)
        if self.profile:
            condf = self._pin(condf, pos.line)
        bodyf = self._compile_loop_parts(s.body)

        def sfn(st, idx, fr):
            active = idx
            ret = fr[1]
            r0 = len(ret)
            while len(active):
                st.add_steps(len(active), pos)
                st.ops += len(active)
                st.slots += st.n
                brk: list = []
                nr0 = len(ret)
                bodyf(st, active, (brk, ret))
                cand = active
                if brk or len(ret) > nr0:
                    gone = _merge(brk + ret[nr0:])
                    cand = np.setdiff1d(active, gone, assume_unique=True)
                if not len(cand):
                    break
                cv = condf(st, cand)
                if cuni:
                    if not cv:
                        break
                    active = cand
                else:
                    active = cand[cv]
            if len(fr[1]) > r0:
                gone = _merge(fr[1][r0:])
                return np.setdiff1d(idx, gone, assume_unique=True)
            return idx
        return sfn

    def _for(self, s: ast.For) -> Callable:
        pos = s.pos
        self.push()  # for-scope: holds init declarations
        initf = self.stmt(s.init) if s.init is not None else None
        condf, cuni = (self._cond(s.cond) if s.cond is not None
                       else (None, True))
        stepf = None
        if s.step is not None:
            se = s.step
            if type(se) is ast.Assign:
                stepf = self._assign(se, want_value=False)[0]
            elif type(se) is ast.IncDec:
                stepf = self._incdec(se, want_value=False)[0]
            else:
                stepf = self.expr(se)[0]
        if self.profile:
            if condf is not None:
                condf = self._pin(condf, pos.line)
            if stepf is not None:
                stepf = self._pin(stepf, pos.line)
        bodyf = self._compile_loop_parts(s.body)
        self.pop()

        def sfn(st, idx, fr):
            if initf is not None:
                initf(st, idx, fr)
            active = idx
            ret = fr[1]
            r0 = len(ret)
            while len(active):
                if condf is not None:
                    cv = condf(st, active)
                    if cuni:
                        if not cv:
                            break
                        live = active
                    else:
                        live = active[cv]
                        # a lane whose check fails exits before the
                        # bottom-of-loop step charge (srcgen _for)
                        if not len(live):
                            break
                else:
                    live = active
                st.ops += len(live)
                st.slots += st.n
                brk: list = []
                nr0 = len(ret)
                bodyf(st, live, (brk, ret))
                comp = live
                if brk or len(ret) > nr0:
                    gone = _merge(brk + ret[nr0:])
                    comp = np.setdiff1d(live, gone, assume_unique=True)
                if len(comp):
                    if stepf is not None:
                        stepf(st, comp)
                    st.add_steps(len(comp), pos)
                active = comp
            if len(fr[1]) > r0:
                gone = _merge(fr[1][r0:])
                return np.setdiff1d(idx, gone, assume_unique=True)
            return idx
        return sfn

    # -- declarations ----------------------------------------------------------

    def _decl(self, s: ast.DeclStmt) -> Callable:
        fns = [self._declarator(s, d) for d in s.declarators]
        if len(fns) == 1:
            f0 = fns[0]

            def sfn(st, idx, fr):
                f0(st, idx)
                return idx
            return sfn

        def sfn(st, idx, fr):
            for f in fns:
                f(st, idx)
            return idx
        return sfn

    def _declarator(self, s: ast.DeclStmt, d: ast.Declarator) -> Callable:
        ctype = d.type
        name = d.name
        if d.ctor_args:
            raise _SimdUnsupported("dim3 constructor declaration")
        if s.shared:
            dims = tuple(ctype.array_dims) or (1,)
            total = 1
            for dd in dims:
                total *= dd
            base = ctype.base
            ek = _PTR_ELEM.get(base)
            kind = (("shared_md", dims, ek) if len(dims) > 1
                    else ("shared", ek))
            slot = self.declare(name, kind, None).slot

            def dfn(st, idx):
                # get-or-allocate on the block (no charge); the shared
                # memory limit fault comes from ThreadContext.shared
                st.frame[slot] = st.ctxs[0].shared(name, total, base)
            return dfn
        if ctype.array_dims:
            if d.init is not None:
                raise _SimdUnsupported("local array initializer")
            dims = tuple(ctype.array_dims)
            total = 1
            for dd in dims:
                total *= dd
            base = ctype.base
            ek = _PTR_ELEM.get(base)
            dtype = dtype_for(base)
            kind = (("local_md", dims, total, ek, name) if len(dims) > 1
                    else ("local", total, ek, name))
            slot = self.declare(name, kind, None).slot

            def dfn(st, idx):
                # one row per lane; zero-filled like LocalArray
                st.frame[slot] = np.zeros((st.n, total), dtype=dtype)
            return dfn
        vkind, cokind = self.kinds_of(ctype)
        if vkind == "dim3":
            raise _SimdUnsupported("dim3 local")
        if d.init is not None:
            inf, ik, iu = self.expr(d.init)
            kind = vkind if cokind else (vkind or ik)
            rec = self.declare(name, kind, cokind)
            slot = rec.slot
            if rec.vary:
                carrier = _carrier_for(kind)

                def dfn(st, idx):
                    v = inf(st, idx)
                    if cokind:
                        v = _co_vec(cokind, v)
                    arr = st.frame[slot]
                    if not isinstance(arr, np.ndarray) \
                            or arr.dtype != carrier:
                        arr = np.zeros(st.n, carrier)
                        st.frame[slot] = arr
                    arr[idx] = v
                return dfn

            def dfn(st, idx):
                v = inf(st, idx)
                st.frame[slot] = _co_vec(cokind, v) if cokind else v
            return dfn
        rec = self.declare(name, vkind, cokind)
        slot = rec.slot
        default = NULL if (ctype.is_pointer or vkind == "null") \
            else coerce(0, ctype)
        if rec.vary:
            carrier = _carrier_for(vkind)

            def dfn(st, idx):
                arr = st.frame[slot]
                if not isinstance(arr, np.ndarray) or arr.dtype != carrier:
                    arr = np.zeros(st.n, carrier)
                    st.frame[slot] = arr
                else:
                    arr[idx] = 0
            return dfn

        def dfn(st, idx):
            st.frame[slot] = default
        return dfn

    # -- the barrier spine (generator kernels) ---------------------------------

    def spine_stmt(self, s: ast.Stmt):
        """Compile one statement of a barrier kernel into a spine node.
        Statements not containing a barrier become ordinary masked
        statement closures run on the full warp; barrier-bearing
        control flow must be warp-uniform."""
        if not _stmt_contains_barrier(s):
            return ("s", self.stmt(s))
        cls = type(s)
        if cls is ast.ExprStmt:
            e = s.expr
            if type(e) is ast.Call and e.name in BARRIER_BUILTINS:
                argfs = [self.expr(a)[0] for a in e.args]
                if self.profile:
                    argfs = [self._pin(f, s.pos.line) for f in argfs]
                return ("sync", argfs)
            raise _SimdUnsupported("barrier inside expression statement")
        if cls is ast.Block:
            self.push()
            nodes = [self.spine_stmt(x) for x in s.statements]
            self.pop()
            return ("blk", nodes)
        if cls is ast.If:
            condf, cuni = self._cond(s.cond)
            if not cuni:
                raise _SimdUnsupported("barrier under divergent if")
            condf = self._record_if_cond(condf, cuni, s.pos.line)
            self.push()
            tn = self.spine_stmt(s.then)
            self.pop()
            en = None
            if s.otherwise is not None:
                self.push()
                en = self.spine_stmt(s.otherwise)
                self.pop()
            return ("if", condf, tn, en)
        if cls in (ast.While, ast.DoWhile):
            br, co = _body_signals(s.body)
            if br or co:
                raise _SimdUnsupported("break/continue across a barrier")
            condf, cuni = self._cond(s.cond)
            if not cuni:
                raise _SimdUnsupported("barrier in divergent loop")
            if self.profile:
                condf = self._pin(condf, s.pos.line)
            self.push()
            bn = self.spine_stmt(s.body)
            self.pop()
            tag = "while" if cls is ast.While else "dowhile"
            return (tag, s.pos, condf, bn)
        if cls is ast.For:
            br, co = _body_signals(s.body)
            if br or co:
                raise _SimdUnsupported("break/continue across a barrier")
            self.push()
            initf = self.stmt(s.init) if s.init is not None else None
            condf, cuni = (self._cond(s.cond) if s.cond is not None
                           else (None, True))
            if not cuni:
                raise _SimdUnsupported("barrier in divergent loop")
            stepf = None
            if s.step is not None:
                se = s.step
                if type(se) is ast.Assign:
                    stepf = self._assign(se, want_value=False)[0]
                elif type(se) is ast.IncDec:
                    stepf = self._incdec(se, want_value=False)[0]
                else:
                    stepf = self.expr(se)[0]
            if self.profile:
                if condf is not None:
                    condf = self._pin(condf, s.pos.line)
                if stepf is not None:
                    stepf = self._pin(stepf, s.pos.line)
            bn = self.spine_stmt(s.body)
            self.pop()
            return ("for", s.pos, initf, condf, stepf, bn)
        raise _SimdUnsupported("barrier in unsupported construct")


# -- vectorized memory access -------------------------------------------------
#
# Each helper reproduces one ThreadContext access method for a whole
# warp at once: identical charge counts, identical trace rows (as
# chunks), identical fault types and messages on the first offending
# lane. Global accesses read/write storage before recording the trace;
# shared accesses record first — the same order the scalar methods use.

def _lanes_in_range(v: np.ndarray, limit: int) -> bool:
    """True when every lane of ``v`` is in ``[0, limit)``. One
    unsigned-max reduction on the int64 carrier (negatives wrap to
    huge values), so the in-bounds hot path pays a single pass."""
    if len(v) == 0:
        return True
    if v.dtype == np.int64:
        return int(v.view(np.uint64).max()) < limit
    return bool(((v >= 0) & (v < limit)).all())


def _md_fast_ok(st: _WarpSt, v: Any, axis: str | None,
                limit: int) -> bool:
    """Cheap positive-only bounds screen for one md index operand.
    Scalars get a Python compare; ``threadIdx`` lane vectors get a
    once-per-warp verdict cached in ``st.md_ok``. False means
    "unscreened", not "out of bounds" — the caller then runs the full
    :func:`_md_check` for the exact fault."""
    if isinstance(v, np.ndarray):
        if axis is None:
            return False
        key = (axis, limit)
        if key in st.md_ok:
            return True
        if _lanes_in_range(st.tid_axis(axis), limit):
            st.md_ok.add(key)
            return True
        return False
    return 0 <= v < limit


def _md_check(i: Any, j: Any, d0: int, d1: int) -> None:
    iv = isinstance(i, np.ndarray)
    jv = isinstance(j, np.ndarray)
    if not iv and not jv:
        if not (0 <= i < d0 and 0 <= j < d1):
            _md_oob(int(i), d0, int(j), d1)
        return
    i_ok = _lanes_in_range(i, d0) if iv else 0 <= i < d0
    j_ok = _lanes_in_range(j, d1) if jv else 0 <= j < d1
    if i_ok and j_ok:
        return
    bad = ((np.asarray(i) < 0) | (np.asarray(i) >= d0)
           | (np.asarray(j) < 0) | (np.asarray(j) >= d1))
    k = int(np.argmax(bad))
    _md_oob(int(i[k]) if iv else int(i),
            d0, int(j[k]) if jv else int(j), d1)


def _global_load(st: _WarpSt, idx: np.ndarray, base: Any, ind: Any,
                 pos: Any) -> np.ndarray:
    k = len(idx)
    if type(base) is DevicePtr:
        buf = base.buffer
        nb = buf._itemsize
        carrier = _F64 if buf.dtype.kind == "f" else _I64
        if isinstance(ind, np.ndarray):
            i = base.offset + ind
            vals = buf.gather(i)  # bounds-checks before the trace
            keys = st.next_seq(idx, k)
            st.block.load_chunks.append(
                (k, st.warp, keys, buf._base + i * nb, nb) if st.prof is None
                else (k, st.warp, keys, buf._base + i * nb, nb, st.line))
            st.stats.instructions += k
            return vals.astype(carrier)
        i = base.offset + int(ind)
        val = buf.read(i)
        keys = st.next_seq(idx, k)
        st.block.load_chunks.append(
            (k, st.warp, keys, buf._base + i * nb, nb) if st.prof is None
            else (k, st.warp, keys, buf._base + i * nb, nb, st.line))
        st.stats.instructions += k
        return np.full(k, val, carrier)
    return st.lane_read(idx, base, ind, pos)


def _global_store(st: _WarpSt, idx: np.ndarray, base: Any, ind: Any,
                  values: Any, pos: Any) -> None:
    k = len(idx)
    if type(base) is DevicePtr:
        buf = base.buffer
        nb = buf._itemsize
        if isinstance(ind, np.ndarray):
            i = base.offset + ind
            buf.scatter(i, values)
            keys = st.next_seq(idx, k)
            st.block.store_chunks.append(
                (k, st.warp, keys, buf._base + i * nb, nb) if st.prof is None
                else (k, st.warp, keys, buf._base + i * nb, nb, st.line))
            st.stats.instructions += k
            return
        i = base.offset + int(ind)
        v = values[-1] if isinstance(values, np.ndarray) else values
        buf.write(i, v)
        keys = st.next_seq(idx, k)
        st.block.store_chunks.append(
            (k, st.warp, keys, buf._base + i * nb, nb) if st.prof is None
            else (k, st.warp, keys, buf._base + i * nb, nb, st.line))
        st.stats.instructions += k
        return
    st.lane_write(idx, base, ind, values, pos)


def _shared_load_md(st: _WarpSt, idx: np.ndarray, arr: Any,
                    ind: Any) -> np.ndarray:
    """Shared load whose flat index was already validated by
    :func:`_md_check` (row/col each in range implies the flattened
    index is), so the per-array bounds check is skipped."""
    k = len(idx)
    its = arr._itemsize
    carrier = _F64 if arr.dtype.kind == "f" else _I64
    if isinstance(ind, np.ndarray):
        words = ind if its == 4 else ind * its // 4
        keys = st.next_seq(idx, k)
        st.block.shared_chunks.append(
            (k, st.warp, keys, 0, words) if st.prof is None
            else (k, st.warp, keys, 0, words, st.line))
        st.stats.instructions += k
        return arr.data[ind].astype(carrier)
    i = int(ind)
    word = i * its // 4
    keys = st.next_seq(idx, k)
    st.block.shared_chunks.append(
        (k, st.warp, keys, 0, word) if st.prof is None
        else (k, st.warp, keys, 0, word, st.line))
    st.stats.instructions += k
    return np.full(k, arr._cache[i], carrier)


def _shared_load(st: _WarpSt, idx: np.ndarray, arr: Any,
                 ind: Any) -> np.ndarray:
    k = len(idx)
    its = arr._itemsize
    carrier = _F64 if arr.dtype.kind == "f" else _I64
    if isinstance(ind, np.ndarray):
        words = ind if its == 4 else ind * its // 4
        keys = st.next_seq(idx, k)
        st.block.shared_chunks.append(
            (k, st.warp, keys, 0, words) if st.prof is None
            else (k, st.warp, keys, 0, words, st.line))
        st.stats.instructions += k
        return arr.read_lanes(ind).astype(carrier)
    i = int(ind)
    word = i * its // 4
    keys = st.next_seq(idx, k)
    st.block.shared_chunks.append(
        (k, st.warp, keys, 0, word) if st.prof is None
        else (k, st.warp, keys, 0, word, st.line))
    st.stats.instructions += k
    return np.full(k, arr.read(i), carrier)


def _shared_store(st: _WarpSt, idx: np.ndarray, arr: Any, ind: Any,
                  values: Any) -> None:
    k = len(idx)
    its = arr._itemsize
    if isinstance(ind, np.ndarray):
        words = ind if its == 4 else ind * its // 4
        keys = st.next_seq(idx, k)
        st.block.shared_chunks.append(
            (k, st.warp, keys, 0, words) if st.prof is None
            else (k, st.warp, keys, 0, words, st.line))
        st.stats.instructions += k
        arr.write_lanes(ind, values)
        return
    i = int(ind)
    word = i * its // 4
    keys = st.next_seq(idx, k)
    st.block.shared_chunks.append(
        (k, st.warp, keys, 0, word) if st.prof is None
        else (k, st.warp, keys, 0, word, st.line))
    st.stats.instructions += k
    arr.write(i, values[-1] if isinstance(values, np.ndarray) else values)


def _local_oob(ind: Any, size: int, name: str) -> None:
    if isinstance(ind, np.ndarray):
        bad = (ind < 0) | (ind >= size)
        if not bad.any():
            return
        i = int(ind[int(np.argmax(bad))])
    else:
        i = int(ind)
        if 0 <= i < size:
            return
    raise MemoryFault(
        f"index {i} out of bounds for local array {name} [{size}]")


def _local_load(st: _WarpSt, idx: np.ndarray, rows: np.ndarray,
                ind: Any, name: str) -> np.ndarray:
    # srcgen charges local-array reads explicitly (LocalArray.read
    # records no trace)
    st.stats.instructions += len(idx)
    _local_oob(ind, rows.shape[1], name)
    carrier = _F64 if rows.dtype.kind == "f" else _I64
    return rows[idx, ind].astype(carrier)


def _local_store(st: _WarpSt, idx: np.ndarray, rows: np.ndarray,
                 ind: Any, values: Any, name: str) -> None:
    st.stats.instructions += len(idx)
    _local_oob(ind, rows.shape[1], name)
    rows[idx, ind] = values


# -- spine execution (barrier kernels) ----------------------------------------

def _spine_exec(node: tuple, st: _WarpSt, fr: tuple):
    """Recursive generator driving one warp down the uniform spine,
    yielding SYNC at each barrier. Step charges sit exactly where the
    scalar emitters place them."""
    tag = node[0]
    if tag == "s":
        node[1](st, st.idx_all, fr)
    elif tag == "sync":
        for argf in node[1]:
            argf(st, st.idx_all)
        yield SYNC
    elif tag == "blk":
        for child in node[1]:
            yield from _spine_exec(child, st, fr)
    elif tag == "if":
        _t, condf, tn, en = node
        if condf(st, st.idx_all):
            yield from _spine_exec(tn, st, fr)
        elif en is not None:
            yield from _spine_exec(en, st, fr)
    elif tag == "while":
        _t, pos, condf, bn = node
        while True:
            st.add_steps(st.n, pos)
            if not condf(st, st.idx_all):
                break
            yield from _spine_exec(bn, st, fr)
    elif tag == "dowhile":
        _t, pos, condf, bn = node
        while True:
            st.add_steps(st.n, pos)
            yield from _spine_exec(bn, st, fr)
            if not condf(st, st.idx_all):
                break
    else:  # "for"
        _t, pos, initf, condf, stepf, bn = node
        if initf is not None:
            initf(st, st.idx_all, fr)
        while True:
            if condf is not None and not condf(st, st.idx_all):
                break
            yield from _spine_exec(bn, st, fr)
            if stepf is not None:
                stepf(st, st.idx_all)
            st.add_steps(st.n, pos)


# -- compiled kernel object ---------------------------------------------------

class CompiledSimdKernel:
    """A kernel lowered to warp-SIMD closures.

    Binding delegates to the scalar codegen kernel (so per-thread
    fallback paths and generator-ness stay intact) and attaches the
    warp executor the scheduler prefers: ``vector_run`` for plain
    kernels, ``warp_run`` for barrier kernels."""

    __slots__ = ("name", "src", "param_plan", "nslots", "body_fns",
                 "spine", "entry_pos", "lane_occupancy")

    def __init__(self, name: str, src: CompiledSrcKernel,
                 param_plan: list, nslots: int,
                 body_fns: list | None, spine: list | None,
                 entry_pos: Any):
        self.name = name
        self.src = src
        self.param_plan = param_plan
        self.nslots = nslots
        self.body_fns = body_fns
        self.spine = spine
        self.entry_pos = entry_pos
        # cumulative [active-lane ops, warp-width slots] across launches
        self.lane_occupancy = [0, 0]

    def bind(self, interp: Any, args: tuple[Any, ...]) -> Callable:
        thread_fn = self.src.bind(interp, args)
        args2 = tuple(a if co is None else co(a)
                      for co, a in zip(self.src.coercers, args))
        plan = self.param_plan
        nslots = self.nslots
        entry_pos = self.entry_pos
        occ = self.lane_occupancy

        def _enter(ctxs: list) -> _WarpSt:
            n = len(ctxs)
            interp.steps += n
            if interp.steps > interp.max_steps:
                raise KernelHang(_HANG_MSG, entry_pos)
            st = _WarpSt(ctxs, interp, nslots)
            frame = st.frame
            for (slot, carrier), arg in zip(plan, args2):
                frame[slot] = (np.full(n, arg, carrier)
                               if carrier is not None else arg)
            st.ops += n
            st.slots += n
            return st

        if self.spine is None:
            body_fns = self.body_fns

            def vector_run(ctxs: list) -> None:
                st = _enter(ctxs)
                fr: tuple = ([], [])
                idx = st.idx_all
                for f in body_fns:
                    if not len(idx):
                        break
                    idx = f(st, idx, fr)
                occ[0] += st.ops
                occ[1] += st.slots
            thread_fn.vector_run = vector_run
        else:
            spine = self.spine

            def warp_run(ctxs: list):
                st = _enter(ctxs)
                fr: tuple = ([], [])
                for node in spine:
                    yield from _spine_exec(node, st, fr)
                occ[0] += st.ops
                occ[1] += st.slots
            thread_fn.warp_run = warp_run
        thread_fn.lane_occupancy = occ
        return thread_fn


# -- memoized program → kernel compilation ------------------------------------

def _compile_simd(info: ProgramInfo, fn: ast.FuncDef,
                  global_names: frozenset,
                  src: CompiledSrcKernel,
                  profile: bool = False) -> CompiledSimdKernel:
    lw = _Lowerer(info, global_names, fn, gen_ok=src.is_gen,
                  profile=profile)
    lw.push()
    param_plan = []
    for i, p in enumerate(fn.params):
        vkind, cokind = lw.kinds_of(p.type)
        rec = lw.declare(p.name or f"_unnamed{i}", vkind, cokind)
        param_plan.append((rec.slot,
                           _carrier_for(vkind) if rec.vary else None))
    lw.push()
    if src.is_gen:
        if _stmt_contains_return(fn.body):
            raise _SimdUnsupported("return in barrier kernel")
        spine = [lw.spine_stmt(s) for s in fn.body.statements]
        body_fns = None
    else:
        spine = None
        body_fns = [lw.stmt(s) for s in fn.body.statements]
    return CompiledSimdKernel(fn.name, src, param_plan, lw.nslots,
                              body_fns, spine, fn.pos)


def _kernel_for(info: ProgramInfo, name: str, profile: bool = False):
    attr = "_simd_kernels_prof" if profile else "_simd_kernels"
    cache = getattr(info, attr, None)
    if cache is None:
        cache = {}
        setattr(info, attr, cache)
    if name in cache:
        return cache[name]
    src = _srcgen_compile(info, name, profile=profile)
    compiled = None
    if src is not None:
        try:
            compiled = _compile_simd(info, info.kernels[name],
                                     _artifact_for(
                                         info, profile).global_names,
                                     src, profile=profile)
        except _SimdUnsupported:
            # memoized fallback verdict: the scalar codegen kernel
            # runs this kernel; never an error
            compiled = src
    cache[name] = compiled
    return compiled


def compile_kernel(info: ProgramInfo, name: str, profile: bool = False):
    """Compile kernel ``name`` for the warp-SIMD tier.

    Returns a :class:`CompiledSimdKernel` when the kernel is eligible,
    the scalar :class:`CompiledSrcKernel` when the SIMD lowering hit an
    unsupported construct (the fallback ladder: simd → codegen →
    tree-walker), or None when even the source emitter declined. All
    three verdicts are memoized — per program object and, when a
    fingerprint is available, in the shared ``KERNEL_CACHE`` under a
    versioned ``simd`` key. ``profile`` compiles the line-profiled
    variant (separately memoized): closures pin the warp's current
    source line, ``if`` conditions log per-lane branch outcomes, and
    access chunks carry the charging line as a sixth column."""
    if info.fingerprint:
        key = memo_key("simd-prof" if profile else "simd", SIMD_VERSION,
                       info.fingerprint, name)
        value, _ = KERNEL_CACHE.get_or_compute(
            key, lambda: _kernel_for(info, name, profile))
        return value
    return _kernel_for(info, name, profile)
