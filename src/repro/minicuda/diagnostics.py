"""Source positions and compile-time diagnostics."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SourcePos:
    """Line/column position in the (preprocessed) source, 1-based."""

    line: int = 0
    column: int = 0

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"


@dataclass(frozen=True)
class Diagnostic:
    """One compiler message."""

    message: str
    pos: SourcePos = SourcePos()
    severity: str = "error"

    def __str__(self) -> str:
        return f"{self.severity}: {self.pos}: {self.message}"


class CompileError(Exception):
    """Compilation failed; carries all accumulated diagnostics.

    The worker relays ``str(error)`` to the student, mirroring how
    WebGPU shows nvcc's error output in the code view.
    """

    def __init__(self, diagnostics: list[Diagnostic] | str,
                 pos: SourcePos | None = None):
        if isinstance(diagnostics, str):
            diagnostics = [Diagnostic(diagnostics, pos or SourcePos())]
        self.diagnostics = diagnostics
        super().__init__("\n".join(str(d) for d in diagnostics))
