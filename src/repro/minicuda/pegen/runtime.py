"""Runtime support for generated packrat parsers.

The generated parser (:mod:`repro.minicuda.parser_gen`) contains only
grammar-derived control flow; everything stateful lives here:

* the token cursor and terminal matchers (soft matchers return
  :data:`FAIL`; *forced* matchers raise the same committed
  ``CompileError`` diagnostics as the legacy recursive-descent parser);
* the packrat memo table with the :func:`memoize` and
  :func:`memoize_left_rec` decorators (seed-growing left recursion,
  pegen-style) and hit/miss counters for telemetry;
* AST assembly helpers that replicate the legacy parser's node
  construction — including its position conventions and its semantic
  validations (constant array dims, switch-label rules, OpenACC
  annotation targets) — so both parsers produce byte-identical ASTs
  and diagnostics.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.minicuda import ast_nodes as ast
from repro.minicuda.diagnostics import CompileError, SourcePos
from repro.minicuda.lexer import Token, TokenKind
from repro.minicuda.parser import (
    DEFAULT_TYPEDEFS,
    FUNCTION_QUALIFIERS,
    _fold,
)

#: Unique soft-failure sentinel. ``None`` is a valid rule result (e.g.
#: an absent for-loop condition), so failure needs its own identity.
FAIL: Any = object()

_PUNCT = TokenKind.PUNCT
_KEYWORD = TokenKind.KEYWORD
_IDENT = TokenKind.IDENT
_EOF = TokenKind.EOF


def nfail(value: Any) -> Any:
    """Map FAIL to None — the value of an absent optional item."""
    return None if value is FAIL else value


def memoize(method: Callable) -> Callable:
    """Packrat memoization for a plain (non-left-recursive) rule."""
    name = method.__name__

    def wrapper(self: "ParserBase") -> Any:
        key = (self._i, name)
        memo = self._memo
        entry = memo.get(key)
        if entry is not None:
            self.memo_hits += 1
            self._i = entry[1]
            return entry[0]
        self.memo_misses += 1
        result = method(self)
        memo[key] = (result, self._i)
        return result

    wrapper.__name__ = name
    wrapper.__wrapped__ = method  # type: ignore[attr-defined]
    return wrapper


def memoize_left_rec(method: Callable) -> Callable:
    """Seed-growing memoization for the leader of a left-recursive
    cycle: plant a failure seed, re-run the alternatives until the
    parse stops growing, keep the longest result."""
    name = method.__name__

    def wrapper(self: "ParserBase") -> Any:
        key = (self._i, name)
        memo = self._memo
        entry = memo.get(key)
        if entry is not None:
            self.memo_hits += 1
            self._i = entry[1]
            return entry[0]
        self.memo_misses += 1
        mark = self._i
        # seed: the left-recursive alternatives see a failure first
        memo[key] = (FAIL, mark)
        last_result, last_mark = FAIL, mark
        while True:
            self._i = mark
            result = method(self)
            end = self._i
            if result is FAIL:
                break
            if end <= last_mark and last_result is not FAIL:
                break
            memo[key] = (result, end)
            last_result, last_mark = result, end
        self._i = last_mark
        return last_result

    wrapper.__name__ = name
    wrapper.__wrapped__ = method  # type: ignore[attr-defined]
    return wrapper


class ParserBase:
    """Token cursor + matchers + AST assembly for generated parsers."""

    #: Name of the generated start-rule method (grammar ``@start``).
    START_RULE = "start"

    def __init__(self, tokens: list[Token],
                 typedef_names: Iterable[str] = DEFAULT_TYPEDEFS):
        self._tokens = tokens
        self._i = 0
        self.typedefs = set(typedef_names)
        self._memo: dict[tuple[int, str], tuple[Any, int]] = {}
        self.memo_hits = 0
        self.memo_misses = 0

    # -- entry point -------------------------------------------------------

    def parse_translation_unit(self) -> ast.TranslationUnit:
        unit = getattr(self, self.START_RULE)()
        if unit is FAIL:  # pragma: no cover - start never soft-fails
            raise CompileError("parse failed", self.tok.pos)
        return unit

    # -- cursor ------------------------------------------------------------

    @property
    def tok(self) -> Token:
        return self._tokens[self._i]

    def pos_at(self, mark: int) -> SourcePos:
        return self._tokens[mark].pos

    # -- soft terminal matchers (FAIL on mismatch) -------------------------

    def punct(self, text: str) -> Any:
        t = self._tokens[self._i]
        if t.kind is _PUNCT and t.text == text:
            self._i += 1
            return t
        return FAIL

    def punct_in(self, texts: frozenset) -> Any:
        t = self._tokens[self._i]
        if t.kind is _PUNCT and t.text in texts:
            self._i += 1
            return t
        return FAIL

    def keyword(self, text: str) -> Any:
        t = self._tokens[self._i]
        if t.kind is _KEYWORD and t.text == text:
            self._i += 1
            return t
        return FAIL

    def keyword_in(self, texts: frozenset) -> Any:
        t = self._tokens[self._i]
        if t.kind is _KEYWORD and t.text in texts:
            self._i += 1
            return t
        return FAIL

    def match_ident(self) -> Any:
        t = self._tokens[self._i]
        if t.kind is _IDENT:
            self._i += 1
            return t
        return FAIL

    def match_kind(self, kind: TokenKind) -> Any:
        t = self._tokens[self._i]
        if t.kind is kind:
            self._i += 1
            return t
        return FAIL

    def match_eof(self) -> Any:
        t = self._tokens[self._i]
        return t if t.kind is _EOF else FAIL

    def typedef_name(self) -> Any:
        t = self._tokens[self._i]
        if t.kind is _IDENT and t.text in self.typedefs:
            self._i += 1
            return t
        return FAIL

    # -- lookaheads --------------------------------------------------------

    def pos_la(self, rule: Callable) -> bool:
        mark = self._i
        ok = rule() is not FAIL
        self._i = mark
        return ok

    def neg_la(self, rule: Callable) -> bool:
        mark = self._i
        ok = rule() is FAIL
        self._i = mark
        return ok

    def la_punct(self, text: str) -> bool:
        t = self._tokens[self._i]
        return t.kind is _PUNCT and t.text == text

    def nla_punct(self, text: str) -> bool:
        t = self._tokens[self._i]
        return not (t.kind is _PUNCT and t.text == text)

    def la_kw(self, text: str) -> bool:
        t = self._tokens[self._i]
        return t.kind is _KEYWORD and t.text == text

    def nla_kw(self, text: str) -> bool:
        t = self._tokens[self._i]
        return not (t.kind is _KEYWORD and t.text == text)

    def la_eof(self) -> bool:
        return self._tokens[self._i].kind is _EOF

    def nla_eof(self) -> bool:
        return self._tokens[self._i].kind is not _EOF

    # -- forced matchers (commit: match or raise, legacy messages) --------

    def expect_punct(self, text: str) -> Token:
        t = self._tokens[self._i]
        if t.kind is _PUNCT and t.text == text:
            self._i += 1
            return t
        raise CompileError(f"expected {text!r}, found {t.text!r}", t.pos)

    def expect_ident(self) -> Token:
        t = self._tokens[self._i]
        if t.kind is _IDENT:
            self._i += 1
            return t
        raise CompileError(f"expected identifier, found {t.text!r}", t.pos)

    def expect_keyword(self, text: str) -> Token:
        t = self._tokens[self._i]
        if t.kind is _KEYWORD and t.text == text:
            self._i += 1
            return t
        raise CompileError(f"expected {text!r}, found {t.text!r}", t.pos)

    # -- committed failures ------------------------------------------------

    def fail(self, message: str) -> Any:
        raise CompileError(message, self.tok.pos)

    def fail_unexpected(self) -> Any:
        t = self.tok
        raise CompileError(f"unexpected token {t.text!r}", t.pos)

    def fail_expected_type(self) -> Any:
        t = self.tok
        raise CompileError(f"expected type, found {t.text!r}", t.pos)

    # -- constant folding --------------------------------------------------

    def fold_dim(self, expr: ast.Expr) -> int:
        value = _fold(expr)
        if value is None:
            raise CompileError("array dimension must be an integer constant",
                               expr.pos)
        return value

    def fold_case(self, case_tok: Token, expr: ast.Expr) -> tuple:
        folded = _fold(expr)
        if folded is None:
            raise CompileError("case label must be an integer constant",
                               case_tok.pos)
        return ("case", folded)

    # -- type assembly -----------------------------------------------------

    def make_ctype(self, pre_const: list, base: str, post_const: list,
                   pointer_groups: list) -> ast.CType:
        return ast.CType(base, len(pointer_groups), (),
                         bool(pre_const or post_const))

    def spec_signed(self, sign_tok: Token, inner: Token | None) -> str:
        base = "unsigned" if sign_tok.text == "unsigned" else "int"
        if (inner is not None and sign_tok.text == "unsigned"
                and inner.text == "char"):
            base = "unsigned char"
        return base

    # -- declarations ------------------------------------------------------

    def _finish_declarator(self, dtype: ast.CType, name: str,
                           suffix: tuple) -> ast.Declarator:
        dims, init_spec = suffix
        if dims:
            dtype = ast.CType(dtype.base, dtype.pointers, tuple(dims),
                              dtype.const)
        init = None
        ctor_args: list[ast.Expr] = []
        if init_spec is not None:
            tag, value = init_spec
            if tag == "=":
                init = value
            else:
                ctor_args = value
        return ast.Declarator(name=name, type=dtype, init=init,
                              ctor_args=ctor_args)

    def make_decl_stmt(self, base: ast.CType, first_name: str,
                       first_suffix: tuple, rest: list) -> ast.DeclStmt:
        declarators = [self._finish_declarator(base, first_name,
                                               first_suffix)]
        for stars, name_tok, suffix in rest:
            # '*' binds to each declarator, not the base type
            elem = ast.CType(base.base, len(stars), (), base.const)
            declarators.append(self._finish_declarator(elem, name_tok.text,
                                                       suffix))
        return ast.DeclStmt(declarators=declarators,
                            pos=declarators[0].init.pos
                            if declarators[0].init else SourcePos())

    def make_declaration(self, pos: SourcePos, quals: list,
                         base: ast.CType, name_tok: Token,
                         tail: tuple) -> ast.DeclStmt:
        first_suffix, rest = tail
        decl = self.make_decl_stmt(base, name_tok.text, first_suffix, rest)
        texts = {t.text for t in quals}
        decl.shared = bool(texts & {"__shared__", "__local"})
        decl.constant = "__constant__" in texts
        decl.pos = pos
        return decl

    def make_init_list(self, brace_tok: Token, items: list) -> ast.Call:
        return ast.Call(name="__init_list__", args=items, pos=brace_tok.pos)

    # -- top level ---------------------------------------------------------

    def make_unit(self, decls: list) -> ast.TranslationUnit:
        functions: list[ast.FuncDef] = []
        globals_: list[ast.GlobalVar] = []
        for entry in decls:
            if entry is None:
                continue
            tag, node = entry
            if tag == "func":
                functions.append(node)
            else:
                globals_.append(node)
        return ast.TranslationUnit(functions=functions, globals=globals_)

    def make_external(self, pos: SourcePos, quals: list, rtype: ast.CType,
                      name_tok: Token, tail: tuple) -> tuple:
        tag, payload = tail
        texts = [t.text for t in quals]
        if tag == "func":
            params, body = payload
            prototype = body is None
            if prototype:
                body = ast.Block(statements=[], pos=pos)
            qualifiers = frozenset(t for t in texts
                                   if t in FUNCTION_QUALIFIERS)
            return ("func", ast.FuncDef(
                name=name_tok.text, return_type=rtype, params=params,
                body=body, qualifiers=qualifiers, pos=pos,
                prototype=prototype))
        decl = self.make_decl_stmt(rtype, name_tok.text, *payload)
        decl.constant = "__constant__" in texts
        decl.shared = "__shared__" in texts
        return ("var", ast.GlobalVar(decl=decl, pos=pos))

    def make_param(self, oquals: list, ptype: ast.CType,
                   name_tok: Token | None, dims: list) -> ast.Param:
        pointers = ptype.pointers
        dim_values = []
        for d in dims:
            if d is None:
                pointers += 1
            else:
                dim_values.append(d)
        if dim_values:
            pointers += 1
        if pointers != ptype.pointers:
            ptype = ast.CType(ptype.base, pointers, (), ptype.const)
        return ast.Param(name=name_tok.text if name_tok is not None else "",
                         type=ptype,
                         opencl_global=any(t.text == "__global"
                                           for t in oquals))

    def filter_params(self, params: list) -> list:
        return [p for p in params if p is not None]

    # -- statements --------------------------------------------------------

    def make_pragma(self, token: Token, stmt: ast.Stmt) -> ast.Stmt:
        directive = str(token.value or "")
        is_acc_loop = directive.startswith("acc") and (
            "loop" in directive or "kernels" in directive)
        if is_acc_loop:
            target = stmt
            # "#pragma acc kernels" may annotate a block holding the loop
            if isinstance(target, ast.Block) and len(target.statements) == 1:
                target = target.statements[0]
            if not isinstance(target, ast.For):
                raise CompileError(
                    "an OpenACC loop directive must annotate a for loop",
                    token.pos)
            return ast.AccParallelLoop(directive=directive, loop=target,
                                       pos=token.pos)
        # unsupported / irrelevant pragma: plain annotation, no effect
        return stmt

    def make_switch(self, switch_tok: Token, subject: ast.Expr,
                    items: list) -> ast.Switch:
        cases: list[ast.SwitchCase] = []
        current: ast.SwitchCase | None = None
        seen_default = False
        for item in items:
            tag = item[0]
            if tag == "case":
                current = ast.SwitchCase(value=item[1], statements=[])
                cases.append(current)
            elif tag == "default":
                if seen_default:
                    raise CompileError("duplicate default label", item[1])
                seen_default = True
                current = ast.SwitchCase(value=None, statements=[])
                cases.append(current)
            else:
                if current is None:
                    raise CompileError(
                        "statement before the first case label", item[2])
                current.statements.append(item[1])
        values = [c.value for c in cases if c.value is not None]
        if len(values) != len(set(values)):
            raise CompileError("duplicate case label", switch_tok.pos)
        return ast.Switch(subject=subject, cases=cases, pos=switch_tok.pos)

    # -- expressions -------------------------------------------------------

    def make_assign(self, target: ast.Expr, rest: tuple | None) -> ast.Expr:
        if rest is None:
            return target
        op_tok, value = rest
        return ast.Assign(op=op_tok.text, target=target, value=value,
                          pos=target.pos)

    def make_conditional(self, cond: ast.Expr,
                         rest: tuple | None) -> ast.Expr:
        if rest is None:
            return cond
        then, otherwise = rest
        return ast.Conditional(cond=cond, then=then, otherwise=otherwise,
                               pos=cond.pos)

    def apply_postfix(self, base: ast.Expr, op: tuple) -> ast.Expr:
        tag, tok, operand = op
        if tag == "[":
            return ast.Index(base=base, index=operand, pos=tok.pos)
        if tag == ".":
            return ast.Member(obj=base, field_name=operand.text, pos=tok.pos)
        if tag == "->":
            return self.make_arrow(base, tok, operand)
        return ast.IncDec(op=tok.text, operand=base, prefix=False,
                          pos=tok.pos)

    def fold_binary(self, first: ast.Expr, rest: list) -> ast.Expr:
        left = first
        for op_tok, right in rest:
            left = ast.Binary(op=op_tok.text, left=left, right=right,
                              pos=left.pos)
        return left

    def make_arrow(self, obj: ast.Expr, arrow_tok: Token,
                   field_tok: Token) -> ast.Member:
        return ast.Member(obj=ast.Unary(op="*", operand=obj,
                                        pos=arrow_tok.pos),
                          field_name=field_tok.text, pos=arrow_tok.pos)

    def make_primary(self, name_tok: Token, tail: Any) -> ast.Expr:
        if tail is None:
            return ast.Ident(name=name_tok.text, pos=name_tok.pos)
        if tail[0] == "launch":
            _, grid, block, shared, args = tail
            return ast.KernelLaunch(name=name_tok.text, grid=grid,
                                    block=block, shared=shared, args=args,
                                    pos=name_tok.pos)
        return ast.Call(name=name_tok.text, args=tail[1], pos=name_tok.pos)
