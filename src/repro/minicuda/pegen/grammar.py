"""Grammar model for the pegen-style parser generator.

A grammar is an ordered set of :class:`Rule`\\ s, each holding ordered
:class:`Alt`\\ ernatives of :class:`NamedItem`\\ s. The model also owns
the static analyses the generator needs:

* **nullable** computation (can a rule succeed consuming no tokens?),
  iterated to a fixpoint exactly like pegen's visitor;
* **initial names** (which rules can appear at the *leftmost* edge of
  a rule, taking nullable prefixes into account);
* **left-recursion detection** over the initial-names graph, marking
  every rule on a cycle and electing one **leader** per strongly
  connected component (the first rule of the SCC in grammar order).
  Leaders are generated with ``@memoize_left_rec`` (the seed-growing
  fixpoint); non-leader cycle members are generated plain, and plain
  rules flagged ``(memo)`` get ``@memoize``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator


class GrammarError(Exception):
    """A malformed grammar file or an inconsistent rule set."""


# ------------------------------------------------------------------ items

class Item:
    """Base class for everything that can appear in an alternative."""

    def initial_names(self, grammar: "Grammar") -> set[str]:
        """Rule names reachable at the leftmost edge of this item."""
        return set()

    def nullable(self, grammar: "Grammar") -> bool:
        return False


@dataclass(frozen=True)
class StringLeaf(Item):
    """A punctuation terminal: ``';'`` in the grammar."""

    value: str

    def __str__(self) -> str:
        return f"'{self.value}'"


@dataclass(frozen=True)
class KeywordLeaf(Item):
    """A keyword terminal: ``"if"`` in the grammar."""

    value: str

    def __str__(self) -> str:
        return f'"{self.value}"'


@dataclass(frozen=True)
class TokenLeaf(Item):
    """A token-kind terminal: ``IDENT``, ``INT``, ``PRAGMA``, ``EOF``,
    or the typedef-sensitive ``TYPEDEF``."""

    kind: str

    def __str__(self) -> str:
        return self.kind


@dataclass(frozen=True)
class RuleRef(Item):
    """A reference to another rule by name."""

    name: str

    def initial_names(self, grammar: "Grammar") -> set[str]:
        return {self.name}

    def nullable(self, grammar: "Grammar") -> bool:
        rule = grammar.rules.get(self.name)
        return rule.nullable if rule is not None else False

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Opt(Item):
    """``item?`` — always succeeds, value may be None."""

    item: Item

    def initial_names(self, grammar: "Grammar") -> set[str]:
        return self.item.initial_names(grammar)

    def nullable(self, grammar: "Grammar") -> bool:
        return True

    def __str__(self) -> str:
        return f"{self.item}?"


@dataclass(frozen=True)
class Repeat(Item):
    """``item*`` (min=0, always succeeds) or ``item+`` (min=1)."""

    item: Item
    min: int = 0

    def initial_names(self, grammar: "Grammar") -> set[str]:
        return self.item.initial_names(grammar)

    def nullable(self, grammar: "Grammar") -> bool:
        return self.min == 0

    def __str__(self) -> str:
        return f"{self.item}{'*' if self.min == 0 else '+'}"


@dataclass(frozen=True)
class Gather(Item):
    """``sep.item+`` — one or more ``item`` separated by ``sep``."""

    separator: Item
    item: Item

    def initial_names(self, grammar: "Grammar") -> set[str]:
        return self.item.initial_names(grammar)

    def __str__(self) -> str:
        return f"{self.separator}.{self.item}+"


@dataclass(frozen=True)
class Lookahead(Item):
    """``&item`` (positive) / ``!item`` (negative): match, consume
    nothing."""

    item: Item
    positive: bool

    def initial_names(self, grammar: "Grammar") -> set[str]:
        return self.item.initial_names(grammar) if self.positive else set()

    def nullable(self, grammar: "Grammar") -> bool:
        return True

    def __str__(self) -> str:
        return f"{'&' if self.positive else '!'}{self.item}"


@dataclass(frozen=True)
class Forced(Item):
    """``&&item`` — commit: match ``item`` or raise the committed
    CompileError (``expected X, found Y``) instead of soft-failing."""

    item: Item

    def initial_names(self, grammar: "Grammar") -> set[str]:
        return self.item.initial_names(grammar)

    def __str__(self) -> str:
        return f"&&{self.item}"


@dataclass(frozen=True)
class Group(Item):
    """A parenthesized group of alternatives."""

    alts: tuple["Alt", ...]

    def initial_names(self, grammar: "Grammar") -> set[str]:
        names: set[str] = set()
        for alt in self.alts:
            names |= alt.initial_names(grammar)
        return names

    def nullable(self, grammar: "Grammar") -> bool:
        return any(alt.is_nullable(grammar) for alt in self.alts)

    def __str__(self) -> str:
        return "(" + " | ".join(str(a) for a in self.alts) + ")"


@dataclass(frozen=True)
class NamedItem:
    """``name=item`` or a bare item (name None)."""

    name: str | None
    item: Item

    def __str__(self) -> str:
        return f"{self.name}={self.item}" if self.name else str(self.item)


@dataclass(frozen=True)
class Alt:
    """One alternative: a sequence of items plus an optional action.

    An alternative with no items and an action is an *action-only*
    alternative: it always "matches" by evaluating the action (the
    action usually raises a committed diagnostic — the analogue of
    pegen's ``invalid_`` rules).
    """

    items: tuple[NamedItem, ...]
    action: str | None = None

    def initial_names(self, grammar: "Grammar") -> set[str]:
        names: set[str] = set()
        for named in self.items:
            names |= named.item.initial_names(grammar)
            if not named.item.nullable(grammar):
                break
        return names

    def is_nullable(self, grammar: "Grammar") -> bool:
        return all(named.item.nullable(grammar) for named in self.items)

    def __str__(self) -> str:
        body = " ".join(str(i) for i in self.items)
        if self.action is not None:
            body = f"{body} {{ {self.action} }}".strip()
        return body


@dataclass
class Rule:
    name: str
    alts: tuple[Alt, ...]
    memo: bool = False
    # filled in by Grammar.analyze():
    nullable: bool = False
    left_recursive: bool = False
    leader: bool = False

    def __str__(self) -> str:
        flags = " (memo)" if self.memo else ""
        body = "\n    | ".join(str(a) for a in self.alts)
        return f"{self.name}{flags}:\n    | {body}"


# ---------------------------------------------------------------- grammar

#: Token kinds a grammar may reference directly.
TOKEN_KINDS = frozenset({
    "IDENT", "INT", "FLOAT", "STRING", "CHAR", "PRAGMA", "EOF", "TYPEDEF",
})


class Grammar:
    """An ordered rule set with the generator's static analyses run."""

    def __init__(self, rules: list[Rule], start: str = "start",
                 class_name: str = "GeneratedParser"):
        self.rules: dict[str, Rule] = {}
        for rule in rules:
            if rule.name in self.rules:
                raise GrammarError(f"duplicate rule {rule.name!r}")
            self.rules[rule.name] = rule
        self.start = start
        self.class_name = class_name
        if start not in self.rules:
            raise GrammarError(f"missing start rule {start!r}")
        self._validate_refs()
        self._compute_nullable()
        self._compute_left_recursion()

    # -- validation --------------------------------------------------------

    def _validate_refs(self) -> None:
        for rule in self.rules.values():
            for ref in _iter_rule_refs(rule):
                if ref.name not in self.rules:
                    raise GrammarError(
                        f"rule {rule.name!r} references undefined rule "
                        f"{ref.name!r}")

    # -- nullable fixpoint -------------------------------------------------

    def _compute_nullable(self) -> None:
        changed = True
        while changed:
            changed = False
            for rule in self.rules.values():
                if rule.nullable:
                    continue
                if any(alt.is_nullable(self) for alt in rule.alts):
                    rule.nullable = True
                    changed = True

    # -- left recursion ----------------------------------------------------

    def initial_names(self, rule: Rule) -> set[str]:
        names: set[str] = set()
        for alt in rule.alts:
            names |= alt.initial_names(self)
        return names

    def _compute_left_recursion(self) -> None:
        """Mark rules on leftmost-position cycles; elect SCC leaders."""
        graph = {name: sorted(self.initial_names(rule) & self.rules.keys())
                 for name, rule in self.rules.items()}
        order = list(self.rules)
        for scc in _strongly_connected_components(order, graph):
            if len(scc) > 1 or scc[0] in graph[scc[0]]:
                members = sorted(scc, key=order.index)
                for name in members:
                    self.rules[name].left_recursive = True
                self.rules[members[0]].leader = True

    def __str__(self) -> str:
        return "\n\n".join(str(rule) for rule in self.rules.values())


def _iter_items(item: Item) -> Iterator[Item]:
    yield item
    if isinstance(item, (Opt, Repeat, Lookahead, Forced)):
        yield from _iter_items(item.item)
    elif isinstance(item, Gather):
        yield from _iter_items(item.separator)
        yield from _iter_items(item.item)
    elif isinstance(item, Group):
        for alt in item.alts:
            for named in alt.items:
                yield from _iter_items(named.item)


def _iter_rule_refs(rule: Rule) -> Iterator[RuleRef]:
    for alt in rule.alts:
        for named in alt.items:
            for item in _iter_items(named.item):
                if isinstance(item, RuleRef):
                    yield item


def _strongly_connected_components(
        order: list[str], graph: dict[str, list[str]]) -> list[list[str]]:
    """Tarjan's SCC algorithm, iterative, deterministic in rule order."""
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = 0

    for root in order:
        if root in index:
            continue
        work: list[tuple[str, int]] = [(root, 0)]
        while work:
            node, child_i = work.pop()
            if child_i == 0:
                index[node] = lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            recurse = False
            children = graph[node]
            while child_i < len(children):
                child = children[child_i]
                child_i += 1
                if child not in index:
                    work.append((node, child_i))
                    work.append((child, 0))
                    recurse = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index[child])
            if recurse:
                continue
            if lowlink[node] == index[node]:
                scc: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member == node:
                        break
                sccs.append(scc)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return sccs
