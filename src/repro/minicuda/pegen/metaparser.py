"""Parser for ``.gram`` grammar files.

The grammar-file dialect (a compact cousin of pegen's):

```
@class MiniCudaParser
@start start

# one rule; flags in parens after the name; alts may span lines when
# they start with '|'
statement (memo):
    | t="if" &&'(' c=expression &&')' s=statement { self.make_if(t, c, s) }
    | e=expression &&';' { ast.ExprStmt(expr=e, pos=e.pos) }

items:      'punct'  "keyword"  IDENT INT FLOAT STRING CHAR PRAGMA EOF
            TYPEDEF  rule_name  name=item  (group | alts)  item? item*
            item+    ','.item+ (gather)  &item  !item  &&item (forced)
actions:    { any python expression, balanced braces }
```

The metaparser itself is a small hand-written recursive descent over a
regex token stream — the one component of the pipeline that must be
bootstrapped by hand, exactly as pegen bootstraps its own metagrammar.
"""

from __future__ import annotations

import re

from repro.minicuda.pegen.grammar import (
    Alt,
    Forced,
    Gather,
    Grammar,
    GrammarError,
    Group,
    Item,
    KeywordLeaf,
    Lookahead,
    NamedItem,
    Opt,
    Repeat,
    Rule,
    RuleRef,
    StringLeaf,
    TokenLeaf,
    TOKEN_KINDS,
)

_TOKEN_RE = re.compile(r"""
    (?P<comment>\#[^\n]*)
  | (?P<newline>\n)
  | (?P<ws>[ \t\r]+)
  | (?P<meta>@[A-Za-z_]\w*)
  | (?P<string>'(?:[^'\\]|\\.)*')
  | (?P<keyword>"(?:[^"\\]|\\.)*")
  | (?P<name>[A-Za-z_]\w*)
  | (?P<action>\{)
  | (?P<op>\(|\)|\||\?|\*|\+|=|:|&&|&|!|\.)
""", re.VERBOSE)


class _Tok:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind: str, text: str, line: int):
        self.kind = kind
        self.text = text
        self.line = line

    def __repr__(self) -> str:
        return f"{self.kind}({self.text!r})@{self.line}"


def _tokenize(text: str) -> list[_Tok]:
    toks: list[_Tok] = []
    i, n, line = 0, len(text), 1
    while i < n:
        m = _TOKEN_RE.match(text, i)
        if not m:
            raise GrammarError(
                f"grammar line {line}: unexpected character {text[i]!r}")
        kind = m.lastgroup or ""
        value = m.group(0)
        if kind == "action":
            # balanced-brace scan, honoring quotes inside the action
            depth, j = 1, i + 1
            while j < n and depth:
                c = text[j]
                if c in "'\"":
                    quote = c
                    j += 1
                    while j < n and text[j] != quote:
                        j += 2 if text[j] == "\\" else 1
                elif c == "{":
                    depth += 1
                elif c == "}":
                    depth -= 1
                j += 1
            if depth:
                raise GrammarError(f"grammar line {line}: unbalanced action")
            value = text[i:j]
            toks.append(_Tok("action", value[1:-1].strip(), line))
            line += value.count("\n")
            i = j
            continue
        if kind == "newline":
            line += 1
            toks.append(_Tok("newline", value, line - 1))
        elif kind not in ("ws", "comment"):
            toks.append(_Tok(kind, value, line))
        i += len(value)
    toks.append(_Tok("end", "", line))
    return toks


class MetaParser:
    """Recursive descent over the grammar-file token stream."""

    def __init__(self, text: str):
        self.toks = _tokenize(text)
        self.i = 0

    # -- stream helpers ----------------------------------------------------

    @property
    def tok(self) -> _Tok:
        return self.toks[self.i]

    def _skip_newlines(self) -> None:
        while self.tok.kind == "newline":
            self.i += 1

    def _at_continuation(self) -> bool:
        """True when the next non-newline token continues the current
        rule (a '|' line)."""
        j = self.i
        while self.toks[j].kind == "newline":
            j += 1
        return self.toks[j].kind == "op" and self.toks[j].text == "|"

    def _advance(self) -> _Tok:
        t = self.tok
        if t.kind != "end":
            self.i += 1
        return t

    def _expect(self, kind: str, text: str | None = None) -> _Tok:
        t = self.tok
        if t.kind != kind or (text is not None and t.text != text):
            want = text if text is not None else kind
            raise GrammarError(
                f"grammar line {t.line}: expected {want!r}, "
                f"found {t.text!r}")
        return self._advance()

    # -- grammar file ------------------------------------------------------

    def parse(self) -> Grammar:
        class_name = "GeneratedParser"
        start = "start"
        rules: list[Rule] = []
        self._skip_newlines()
        while self.tok.kind != "end":
            if self.tok.kind == "meta":
                meta = self._advance().text
                value = self._expect("name").text
                if meta == "@class":
                    class_name = value
                elif meta == "@start":
                    start = value
                else:
                    raise GrammarError(
                        f"grammar line {self.tok.line}: unknown directive "
                        f"{meta!r}")
            else:
                rules.append(self._rule())
            self._skip_newlines()
        return Grammar(rules, start=start, class_name=class_name)

    def _rule(self) -> Rule:
        name = self._expect("name").text
        memo = False
        if self.tok.kind == "op" and self.tok.text == "(":
            self._advance()
            flag = self._expect("name").text
            if flag != "memo":
                raise GrammarError(
                    f"grammar line {self.tok.line}: unknown rule flag "
                    f"{flag!r}")
            memo = True
            self._expect("op", ")")
        self._expect("op", ":")
        alts = self._alts(top_level=True)
        if not alts:
            raise GrammarError(f"rule {name!r} has no alternatives")
        return Rule(name, tuple(alts), memo=memo)

    def _alts(self, top_level: bool) -> list[Alt]:
        alts: list[Alt] = []
        if top_level:
            # alternatives may start on the same line or on '|' lines
            if self.tok.kind not in ("newline", "end"):
                if self.tok.kind == "op" and self.tok.text == "|":
                    self._advance()
                alts.append(self._alt())
            while self._at_continuation():
                self._skip_newlines()
                self._expect("op", "|")
                alts.append(self._alt())
        else:
            alts.append(self._alt())
            while self.tok.kind == "op" and self.tok.text == "|":
                self._advance()
                alts.append(self._alt())
        return alts

    def _alt(self) -> Alt:
        items: list[NamedItem] = []
        action: str | None = None
        while True:
            t = self.tok
            if t.kind == "action":
                action = self._advance().text
                break
            if (t.kind in ("newline", "end")
                    or (t.kind == "op" and t.text in ("|", ")"))):
                break
            items.append(self._named_item())
        if not items and action is None:
            raise GrammarError(
                f"grammar line {self.tok.line}: empty alternative")
        return Alt(tuple(items), action)

    def _named_item(self) -> NamedItem:
        t = self.tok
        if (t.kind == "name"
                and self.toks[self.i + 1].kind == "op"
                and self.toks[self.i + 1].text == "="):
            name = self._advance().text
            self._advance()  # '='
            return NamedItem(name, self._item())
        return NamedItem(None, self._item())

    def _item(self) -> Item:
        t = self.tok
        if t.kind == "op" and t.text in ("&", "!", "&&"):
            self._advance()
            inner = self._atom_with_suffix()
            if t.text == "&&":
                return Forced(inner)
            return Lookahead(inner, positive=(t.text == "&"))
        return self._atom_with_suffix()

    def _atom_with_suffix(self) -> Item:
        # gather:  sep '.' item '+'
        save = self.i
        atom = self._atom()
        if self.tok.kind == "op" and self.tok.text == ".":
            self._advance()
            item = self._atom()
            self._expect("op", "+")
            return Gather(atom, item)
        del save
        while self.tok.kind == "op" and self.tok.text in ("?", "*", "+"):
            suffix = self._advance().text
            if suffix == "?":
                atom = Opt(atom)
            elif suffix == "*":
                atom = Repeat(atom, min=0)
            else:
                atom = Repeat(atom, min=1)
        return atom

    def _atom(self) -> Item:
        t = self.tok
        if t.kind == "string":
            self._advance()
            return StringLeaf(_unquote(t.text))
        if t.kind == "keyword":
            self._advance()
            return KeywordLeaf(_unquote(t.text))
        if t.kind == "name":
            self._advance()
            if t.text in TOKEN_KINDS:
                return TokenLeaf(t.text)
            if t.text.isupper():
                raise GrammarError(
                    f"grammar line {t.line}: unknown token kind {t.text!r}")
            return RuleRef(t.text)
        if t.kind == "op" and t.text == "(":
            self._advance()
            alts = self._alts(top_level=False)
            self._expect("op", ")")
            return Group(tuple(alts))
        raise GrammarError(
            f"grammar line {t.line}: expected an item, found {t.text!r}")


def _unquote(text: str) -> str:
    return text[1:-1].replace("\\\\", "\\").replace("\\'", "'") \
        .replace('\\"', '"')


def parse_grammar(text: str) -> Grammar:
    """Parse grammar-file text into an analyzed :class:`Grammar`."""
    return MetaParser(text).parse()
