"""pegen-style parser generator for the minicuda frontend.

Pipeline: ``minicuda.gram`` (PEG grammar) -> :mod:`metaparser` (grammar
file parser) -> :mod:`grammar` (model + nullable/left-recursion
analyses) -> :mod:`generator` (emits ``parser_gen.py``) ->
:mod:`runtime` (ParserBase, packrat memoization, AST assembly).

``python -m repro.minicuda.pegen`` regenerates the checked-in
``parser_gen.py``; ``--check`` verifies it is fresh (used by CI).
"""

from repro.minicuda.pegen.generator import generate_parser_source
from repro.minicuda.pegen.grammar import Grammar, GrammarError
from repro.minicuda.pegen.metaparser import parse_grammar
from repro.minicuda.pegen.runtime import (
    FAIL,
    ParserBase,
    memoize,
    memoize_left_rec,
)

__all__ = [
    "FAIL",
    "Grammar",
    "GrammarError",
    "ParserBase",
    "generate_parser_source",
    "memoize",
    "memoize_left_rec",
    "parse_grammar",
]
