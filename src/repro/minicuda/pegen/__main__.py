"""Regenerate (or verify) the checked-in generated parser.

    python -m repro.minicuda.pegen            # rewrite parser_gen.py
    python -m repro.minicuda.pegen --check    # exit 1 if stale
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.minicuda.pegen.generator import generate_parser_source

_PKG_DIR = Path(__file__).resolve().parent.parent
GRAMMAR_PATH = _PKG_DIR / "minicuda.gram"
OUTPUT_PATH = _PKG_DIR / "parser_gen.py"


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.minicuda.pegen",
        description="Regenerate parser_gen.py from minicuda.gram.")
    ap.add_argument("--check", action="store_true",
                    help="verify the checked-in parser_gen.py is fresh "
                         "instead of rewriting it")
    args = ap.parse_args(argv)

    source = generate_parser_source(GRAMMAR_PATH.read_text())
    if args.check:
        current = OUTPUT_PATH.read_text() if OUTPUT_PATH.exists() else ""
        if current != source:
            print("parser_gen.py is STALE: regenerate with "
                  "'python -m repro.minicuda.pegen' and commit the diff",
                  file=sys.stderr)
            return 1
        print("parser_gen.py is up to date")
        return 0
    OUTPUT_PATH.write_text(source)
    print(f"wrote {OUTPUT_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
