"""Compiler facade: source text -> checked, runnable program."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.cache import CacheStats, EvictionPolicy, LRUPolicy, MemoTable
from repro.cache.keys import hash_text
from repro.gpusim.host import GpuRuntime
from repro.minicuda.diagnostics import CompileError
from repro.minicuda.hostapi import ExitProgram, HostEnv
from repro.minicuda.interpreter import Interpreter
from repro.minicuda.parser import DEFAULT_TYPEDEFS, parse
from repro.minicuda.preprocessor import preprocess
from repro.minicuda.semantic import ProgramInfo, analyze

#: Extra handle types beyond the parser defaults.
EXTRA_TYPEDEFS = frozenset({"cudaDeviceProp", "MPI_Status"})

#: Synthetic nvcc cost model: fixed front-end cost plus per-byte cost.
COMPILE_BASE_SECONDS = 0.8
COMPILE_SECONDS_PER_CHAR = 2e-5


@dataclass
class HostRunResult:
    """Outcome of running a program's ``main``."""

    exit_code: int
    host_env: HostEnv
    interpreter: Interpreter


class CompiledProgram:
    """A parsed + semantically-checked translation unit."""

    def __init__(self, source: str, preprocessed: str, info: ProgramInfo,
                 cache_hit: bool = False):
        self.source = source
        self.preprocessed = preprocessed
        self.info = info
        #: True when the front end was skipped (served from CompileCache).
        self.cache_hit = cache_hit

    @property
    def kernel_names(self) -> tuple[str, ...]:
        return tuple(self.info.kernels)

    @property
    def full_compile_seconds(self) -> float:
        """The cost model ignoring any cache (what a miss would pay)."""
        return COMPILE_BASE_SECONDS + len(self.source) * COMPILE_SECONDS_PER_CHAR

    @property
    def estimated_compile_seconds(self) -> float:
        """Synthetic wall-clock cost of the 'nvcc' invocation.

        A cache hit skipped lexing/parsing/semantic analysis, so it
        charges zero synthetic nvcc cost.
        """
        return 0.0 if self.cache_hit else self.full_compile_seconds

    def run_main(self, runtime: GpuRuntime | None = None,
                 host_env: HostEnv | None = None,
                 max_steps: int = 50_000_000,
                 engine: str | None = None,
                 profile: bool = False) -> HostRunResult:
        """Execute ``main`` (the usual lab entry point).

        ``engine`` picks the kernel execution engine (``"closure"``,
        ``"codegen"``, ``"simd"`` or ``"ast"``); None defers to
        ``WEBGPU_KERNEL_ENGINE`` / default. ``profile`` enables the
        per-source-line kernel profiler: each launch's ``KernelStats``
        carries a :class:`repro.profiler.LineProfile` ledger.
        """
        if not self.info.has_main:
            raise CompileError("program has no main() function")
        runtime = runtime or GpuRuntime()
        host_env = host_env or HostEnv()
        interp = Interpreter(self.info, runtime, host_env,
                             max_steps=max_steps, engine=engine,
                             profile=profile)
        main = self.info.host_functions["main"]
        args: tuple[Any, ...] = ()
        if len(main.params) >= 2:
            from repro.minicuda.values import NULL
            args = (len(host_env.argv), NULL)
        try:
            code = interp.run_host_function("main", args)
        except ExitProgram as exc:
            code = exc.code
        return HostRunResult(exit_code=int(code or 0), host_env=host_env,
                             interpreter=interp)

    def launch(self, runtime: GpuRuntime, kernel: str, grid: Any, block: Any,
               *args: Any, host_env: HostEnv | None = None,
               max_steps: int = 50_000_000, engine: str | None = None,
               profile: bool = False) -> Any:
        """Directly launch a single kernel (kernel-only labs: OpenCL)."""
        interp = Interpreter(self.info, runtime, host_env,
                             max_steps=max_steps, engine=engine,
                             profile=profile)
        return interp.launch_kernel(kernel, grid, block, tuple(args))


def compile_source(source: str,
                   headers: Mapping[str, str] | None = None,
                   defines: Mapping[str, str] | None = None,
                   cache: "CompileCache | None" = None,
                   telemetry: Any = None) -> CompiledProgram:
    """Preprocess, parse, and check a CUDA-C source file.

    Raises :class:`CompileError` carrying every diagnostic on failure,
    mirroring how WebGPU's worker relays nvcc output to the student.
    When a :class:`CompileCache` is supplied, the front end (lexing,
    parsing, semantic analysis) only runs for sources whose
    preprocessed form has not been seen before.
    """
    if cache is not None:
        return cache.compile(source, headers=headers, defines=defines,
                             telemetry=telemetry)
    preprocessed = preprocess(source, headers=headers, predefined=defines)
    unit = parse(preprocessed,
                 typedef_names=frozenset(DEFAULT_TYPEDEFS) | EXTRA_TYPEDEFS,
                 telemetry=telemetry)
    info = analyze(unit)
    info.fingerprint = hash_text(preprocessed)
    return CompiledProgram(source=source, preprocessed=preprocessed, info=info)


class CompileCache:
    """Memoizes front-end results by preprocessed-source hash.

    The preprocessor always runs (it is cheap and its output *is* the
    cache key — ``#include``/``#define`` changes produce new keys), but
    a hit skips lexing, parsing, and semantic analysis entirely and the
    resulting :class:`CompiledProgram` charges zero synthetic nvcc
    cost. Compile *errors* are memoized too: a storm of resubmissions
    of the same broken file diagnoses once.

    The table is single-flight (:class:`repro.cache.MemoTable`), so
    N workers compiling the same source pay for one compile.
    """

    def __init__(self, max_entries: int = 512,
                 policy: EvictionPolicy | None = None,
                 stats: CacheStats | None = None,
                 clock: Any = None):
        self.stats = stats if stats is not None else CacheStats()
        self.memo = MemoTable(
            policy=policy if policy is not None else LRUPolicy(max_entries),
            stats=self.stats, clock=clock, memoize_errors=True,
            weigh=lambda value: (len(value.preprocessed)
                                 if isinstance(value, CompiledProgram)
                                 else len(str(value))))

    @property
    def compile_count(self) -> int:
        """How many times the front end actually ran."""
        return self.memo.compute_count

    def key_for(self, preprocessed: str) -> str:
        return hash_text(preprocessed)

    def compile(self, source: str,
                headers: Mapping[str, str] | None = None,
                defines: Mapping[str, str] | None = None,
                telemetry: Any = None) -> CompiledProgram:
        preprocessed = preprocess(source, headers=headers, predefined=defines)
        key = self.key_for(preprocessed)

        def front_end() -> CompiledProgram:
            unit = parse(preprocessed, typedef_names=(
                frozenset(DEFAULT_TYPEDEFS) | EXTRA_TYPEDEFS),
                telemetry=telemetry)
            info = analyze(unit)
            info.fingerprint = key
            return CompiledProgram(source=source, preprocessed=preprocessed,
                                   info=info)

        program, hit = self.memo.get_or_compute(key, front_end)
        if not hit:
            return program
        # fresh wrapper: callers may submit whitespace-variant sources
        # that preprocess identically, and the hit must charge zero
        self.stats.seconds_saved += program.full_compile_seconds
        return CompiledProgram(source=source, preprocessed=preprocessed,
                               info=program.info, cache_hit=True)

    def snapshot(self) -> dict[str, float]:
        return self.stats.snapshot()
