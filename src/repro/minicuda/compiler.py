"""Compiler facade: source text -> checked, runnable program."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.gpusim.host import GpuRuntime
from repro.minicuda.diagnostics import CompileError
from repro.minicuda.hostapi import ExitProgram, HostEnv
from repro.minicuda.interpreter import Interpreter
from repro.minicuda.parser import DEFAULT_TYPEDEFS, parse
from repro.minicuda.preprocessor import preprocess
from repro.minicuda.semantic import ProgramInfo, analyze

#: Extra handle types beyond the parser defaults.
EXTRA_TYPEDEFS = frozenset({"cudaDeviceProp", "MPI_Status"})

#: Synthetic nvcc cost model: fixed front-end cost plus per-byte cost.
COMPILE_BASE_SECONDS = 0.8
COMPILE_SECONDS_PER_CHAR = 2e-5


@dataclass
class HostRunResult:
    """Outcome of running a program's ``main``."""

    exit_code: int
    host_env: HostEnv
    interpreter: Interpreter


class CompiledProgram:
    """A parsed + semantically-checked translation unit."""

    def __init__(self, source: str, preprocessed: str, info: ProgramInfo):
        self.source = source
        self.preprocessed = preprocessed
        self.info = info

    @property
    def kernel_names(self) -> tuple[str, ...]:
        return tuple(self.info.kernels)

    @property
    def estimated_compile_seconds(self) -> float:
        """Synthetic wall-clock cost of the 'nvcc' invocation."""
        return COMPILE_BASE_SECONDS + len(self.source) * COMPILE_SECONDS_PER_CHAR

    def run_main(self, runtime: GpuRuntime | None = None,
                 host_env: HostEnv | None = None,
                 max_steps: int = 50_000_000) -> HostRunResult:
        """Execute ``main`` (the usual lab entry point)."""
        if not self.info.has_main:
            raise CompileError("program has no main() function")
        runtime = runtime or GpuRuntime()
        host_env = host_env or HostEnv()
        interp = Interpreter(self.info, runtime, host_env,
                             max_steps=max_steps)
        main = self.info.host_functions["main"]
        args: tuple[Any, ...] = ()
        if len(main.params) >= 2:
            from repro.minicuda.values import NULL
            args = (len(host_env.argv), NULL)
        try:
            code = interp.run_host_function("main", args)
        except ExitProgram as exc:
            code = exc.code
        return HostRunResult(exit_code=int(code or 0), host_env=host_env,
                             interpreter=interp)

    def launch(self, runtime: GpuRuntime, kernel: str, grid: Any, block: Any,
               *args: Any, host_env: HostEnv | None = None,
               max_steps: int = 50_000_000) -> Any:
        """Directly launch a single kernel (kernel-only labs: OpenCL)."""
        interp = Interpreter(self.info, runtime, host_env,
                             max_steps=max_steps)
        return interp.launch_kernel(kernel, grid, block, tuple(args))


def compile_source(source: str,
                   headers: Mapping[str, str] | None = None,
                   defines: Mapping[str, str] | None = None) -> CompiledProgram:
    """Preprocess, parse, and check a CUDA-C source file.

    Raises :class:`CompileError` carrying every diagnostic on failure,
    mirroring how WebGPU's worker relays nvcc output to the student.
    """
    preprocessed = preprocess(source, headers=headers, predefined=defines)
    unit = parse(preprocessed,
                 typedef_names=frozenset(DEFAULT_TYPEDEFS) | EXTRA_TYPEDEFS)
    info = analyze(unit)
    return CompiledProgram(source=source, preprocessed=preprocessed, info=info)
