"""Parser front end for the CUDA-C subset.

Two interchangeable backends produce identical :mod:`ast_nodes` trees
and identical :class:`CompileError` diagnostics:

* ``pegen`` (default) — the packrat parser generated from
  ``minicuda.gram`` by :mod:`repro.minicuda.pegen` (checked in as
  ``parser_gen.py``; regenerate with ``python -m repro.minicuda.pegen``).
* ``legacy`` — the hand-written recursive-descent :class:`Parser` below,
  kept as the differential-testing oracle.

Select with the ``WEBGPU_PARSER`` environment variable or the
``backend=`` argument to :func:`parse`.
"""

from __future__ import annotations

import os
import time
from typing import Any, Iterable

from repro.minicuda import ast_nodes as ast
from repro.minicuda.diagnostics import CompileError, SourcePos
from repro.minicuda.lexer import Token, TokenKind, tokenize

#: Scalar base types recognised directly.
BASE_TYPES = frozenset({
    "void", "int", "float", "double", "char", "bool", "long", "short",
    "unsigned", "signed", "size_t", "dim3",
})

#: Runtime-provided handle types usable as declaration bases.
DEFAULT_TYPEDEFS = frozenset({
    "wbArg_t", "cudaError_t", "cudaEvent_t", "FILE",
})

FUNCTION_QUALIFIERS = frozenset({
    "__global__", "__device__", "__host__", "__kernel", "static", "extern",
})

_BINARY_LEVELS: tuple[tuple[str, ...], ...] = (
    ("||",),
    ("&&",),
    ("|",),
    ("^",),
    ("&",),
    ("==", "!="),
    ("<", "<=", ">", ">="),
    ("<<", ">>"),
    ("+", "-"),
    ("*", "/", "%"),
)

_ASSIGN_OPS = ("=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
               "<<=", ">>=")


class Parser:
    def __init__(self, tokens: list[Token],
                 typedef_names: Iterable[str] = DEFAULT_TYPEDEFS):
        self.tokens = tokens
        self.i = 0
        self.typedefs = set(typedef_names)

    # -- token helpers -----------------------------------------------------

    @property
    def tok(self) -> Token:
        return self.tokens[self.i]

    def peek(self, offset: int = 1) -> Token:
        j = min(self.i + offset, len(self.tokens) - 1)
        return self.tokens[j]

    def advance(self) -> Token:
        t = self.tok
        if t.kind is not TokenKind.EOF:
            self.i += 1
        return t

    def expect_punct(self, text: str) -> Token:
        if not self.tok.is_punct(text):
            raise CompileError(f"expected {text!r}, found {self.tok.text!r}",
                               self.tok.pos)
        return self.advance()

    def expect_ident(self) -> Token:
        if self.tok.kind is not TokenKind.IDENT:
            raise CompileError(f"expected identifier, found {self.tok.text!r}",
                               self.tok.pos)
        return self.advance()

    def error(self, message: str) -> CompileError:
        return CompileError(message, self.tok.pos)

    # -- type recognition ----------------------------------------------------

    def at_type(self) -> bool:
        t = self.tok
        if t.is_keyword("const"):
            return True
        if t.kind is TokenKind.KEYWORD and t.text in BASE_TYPES:
            return True
        return t.kind is TokenKind.IDENT and t.text in self.typedefs

    def parse_type(self) -> ast.CType:
        const = False
        while self.tok.is_keyword("const"):
            const = True
            self.advance()
        t = self.tok
        if t.is_keyword("unsigned", "signed"):
            signedness = t.text
            self.advance()
            base = "unsigned" if signedness == "unsigned" else "int"
            if self.tok.is_keyword("int", "char", "long", "short"):
                inner = self.advance().text
                if signedness == "unsigned" and inner == "char":
                    base = "unsigned char"
        elif t.kind is TokenKind.KEYWORD and t.text in BASE_TYPES:
            base = self.advance().text
            if base == "long" and self.tok.is_keyword("long", "int"):
                self.advance()
            if base == "short" and self.tok.is_keyword("int"):
                self.advance()
            if base in ("short", "size_t"):
                base = "int" if base == "short" else "size_t"
        elif t.kind is TokenKind.IDENT and t.text in self.typedefs:
            base = self.advance().text
        else:
            raise self.error(f"expected type, found {t.text!r}")
        while self.tok.is_keyword("const"):
            const = True
            self.advance()
        pointers = 0
        while self.tok.is_punct("*"):
            pointers += 1
            self.advance()
            while self.tok.is_keyword("const", "__restrict__"):
                self.advance()
        return ast.CType(base, pointers, (), const)

    # -- translation unit -----------------------------------------------------

    def parse_translation_unit(self) -> ast.TranslationUnit:
        functions: list[ast.FuncDef] = []
        globals_: list[ast.GlobalVar] = []
        while self.tok.kind is not TokenKind.EOF:
            if self.tok.is_punct(";"):
                self.advance()
                continue
            if self.tok.kind is TokenKind.PRAGMA:
                self.advance()  # file-scope pragmas carry no meaning here
                continue
            qualifiers: set[str] = set()
            constant = False
            shared = False
            pos = self.tok.pos
            while True:
                if self.tok.is_keyword(*FUNCTION_QUALIFIERS):
                    qualifiers.add(self.advance().text)
                elif self.tok.is_keyword("__constant__"):
                    constant = True
                    self.advance()
                elif self.tok.is_keyword("__shared__"):
                    shared = True
                    self.advance()
                else:
                    break
            rtype = self.parse_type()
            name = self.expect_ident().text
            if self.tok.is_punct("(") and not self._is_ctor_decl():
                functions.append(self._parse_function(
                    name, rtype, frozenset(qualifiers), pos))
            else:
                decl = self._parse_declarators_after_name(rtype, name)
                decl.constant = constant
                decl.shared = shared
                self.expect_punct(";")
                globals_.append(ast.GlobalVar(decl=decl, pos=pos))
        return ast.TranslationUnit(functions=functions, globals=globals_)

    def _is_ctor_decl(self) -> bool:
        """Disambiguate ``dim3 g(2, 3);`` (ctor) — never at file scope
        for functions whose next token opens a parameter list with a
        type; a ctor argument list starts with an expression."""
        return False  # at file scope, '(' after name is always a function

    def _parse_function(self, name: str, rtype: ast.CType,
                        qualifiers: frozenset[str],
                        pos: SourcePos) -> ast.FuncDef:
        self.expect_punct("(")
        params: list[ast.Param] = []
        if not self.tok.is_punct(")"):
            while True:
                if self.tok.is_keyword("void") and self.peek().is_punct(")"):
                    self.advance()
                    break
                opencl_global = False
                while self.tok.is_keyword("__global", "__local", "__restrict__"):
                    if self.tok.text == "__global":
                        opencl_global = True
                    self.advance()
                ptype = self.parse_type()
                pname = ""
                if self.tok.kind is TokenKind.IDENT:
                    pname = self.advance().text
                dims: list[int] = []
                while self.tok.is_punct("["):
                    self.advance()
                    if not self.tok.is_punct("]"):
                        dims.append(self._const_int(self.parse_assignment()))
                    else:
                        ptype = ast.CType(ptype.base, ptype.pointers + 1,
                                          (), ptype.const)
                    self.expect_punct("]")
                if dims:
                    ptype = ast.CType(ptype.base, ptype.pointers + 1,
                                      (), ptype.const)
                params.append(ast.Param(name=pname, type=ptype,
                                        opencl_global=opencl_global))
                if self.tok.is_punct(","):
                    self.advance()
                    continue
                break
        self.expect_punct(")")
        prototype = False
        if self.tok.is_punct(";"):  # prototype: record as empty body
            self.advance()
            body = ast.Block(statements=[], pos=pos)
            prototype = True
        else:
            body = self.parse_block()
        return ast.FuncDef(name=name, return_type=rtype, params=params,
                           body=body, qualifiers=qualifiers, pos=pos,
                           prototype=prototype)

    # -- statements ---------------------------------------------------------

    def parse_block(self) -> ast.Block:
        pos = self.tok.pos
        self.expect_punct("{")
        statements: list[ast.Stmt] = []
        while not self.tok.is_punct("}"):
            if self.tok.kind is TokenKind.EOF:
                raise self.error("unexpected end of file inside block")
            statements.append(self.parse_statement())
        self.advance()
        return ast.Block(statements=statements, pos=pos)

    def parse_statement(self) -> ast.Stmt:
        t = self.tok
        pos = t.pos
        if t.kind is TokenKind.PRAGMA:
            return self._parse_pragma_statement()
        if t.is_punct("{"):
            return self.parse_block()
        if t.is_punct(";"):
            self.advance()
            return ast.Empty(pos=pos)
        if t.is_keyword("if"):
            return self._parse_if()
        if t.is_keyword("while"):
            return self._parse_while()
        if t.is_keyword("do"):
            return self._parse_do_while()
        if t.is_keyword("for"):
            return self._parse_for()
        if t.is_keyword("switch"):
            return self._parse_switch()
        if t.is_keyword("return"):
            self.advance()
            value = None if self.tok.is_punct(";") else self.parse_expression()
            self.expect_punct(";")
            return ast.Return(value=value, pos=pos)
        if t.is_keyword("break"):
            self.advance()
            self.expect_punct(";")
            return ast.Break(pos=pos)
        if t.is_keyword("continue"):
            self.advance()
            self.expect_punct(";")
            return ast.Continue(pos=pos)
        if t.is_keyword("__shared__", "__local", "__constant__") or self.at_type():
            return self._parse_declaration()
        expr = self.parse_expression()
        self.expect_punct(";")
        return ast.ExprStmt(expr=expr, pos=pos)

    def _parse_pragma_statement(self) -> ast.Stmt:
        token = self.advance()
        directive = str(token.value or "")
        is_acc_loop = directive.startswith("acc") and (
            "loop" in directive or "kernels" in directive)
        stmt = self.parse_statement()
        if is_acc_loop:
            target = stmt
            # "#pragma acc kernels" may annotate a block holding the loop
            if isinstance(target, ast.Block) and len(target.statements) == 1:
                target = target.statements[0]
            if not isinstance(target, ast.For):
                raise CompileError(
                    "an OpenACC loop directive must annotate a for loop",
                    token.pos)
            return ast.AccParallelLoop(directive=directive, loop=target,
                                       pos=token.pos)
        # unsupported / irrelevant pragma: plain annotation, no effect
        return stmt

    def _parse_declaration(self) -> ast.DeclStmt:
        pos = self.tok.pos
        shared = False
        constant = False
        while self.tok.is_keyword("__shared__", "__local", "__constant__",
                                  "static"):
            if self.tok.text in ("__shared__", "__local"):
                shared = True
            elif self.tok.text == "__constant__":
                constant = True
            self.advance()
        base = self.parse_type()
        name = self.expect_ident().text
        decl = self._parse_declarators_after_name(base, name)
        decl.shared = shared
        decl.constant = constant
        decl.pos = pos
        self.expect_punct(";")
        return decl

    def _parse_declarators_after_name(self, base: ast.CType,
                                      first_name: str) -> ast.DeclStmt:
        declarators = [self._finish_declarator(base, first_name)]
        while self.tok.is_punct(","):
            self.advance()
            # in C the '*' binds to each declarator, not the base type:
            # "float *a, *b, c" declares two pointers and one scalar
            stars = 0
            while self.tok.is_punct("*"):
                stars += 1
                self.advance()
            name = self.expect_ident().text
            elem = ast.CType(base.base, stars, (), base.const)
            declarators.append(self._finish_declarator(elem, name))
        return ast.DeclStmt(declarators=declarators, pos=declarators[0].init.pos
                            if declarators[0].init else SourcePos())

    def _finish_declarator(self, dtype: ast.CType, name: str) -> ast.Declarator:
        dims: list[int] = []
        while self.tok.is_punct("["):
            self.advance()
            dims.append(self._const_int(self.parse_conditional()))
            self.expect_punct("]")
        if dims:
            dtype = ast.CType(dtype.base, dtype.pointers, tuple(dims),
                              dtype.const)
        init = None
        ctor_args: list[ast.Expr] = []
        if self.tok.is_punct("="):
            self.advance()
            if self.tok.is_punct("{"):
                init = self._parse_initializer_list()
            else:
                init = self.parse_assignment()
        elif self.tok.is_punct("("):
            self.advance()
            if not self.tok.is_punct(")"):
                while True:
                    ctor_args.append(self.parse_assignment())
                    if self.tok.is_punct(","):
                        self.advance()
                        continue
                    break
            self.expect_punct(")")
        return ast.Declarator(name=name, type=dtype, init=init,
                              ctor_args=ctor_args)

    def _parse_initializer_list(self) -> ast.Expr:
        """``{1, 2, 3}`` array initializers, parsed into a Call node
        on the reserved name ``__init_list__``."""
        pos = self.tok.pos
        self.expect_punct("{")
        items: list[ast.Expr] = []
        while not self.tok.is_punct("}"):
            if self.tok.is_punct("{"):
                items.append(self._parse_initializer_list())
            else:
                items.append(self.parse_assignment())
            if self.tok.is_punct(","):
                self.advance()
        self.expect_punct("}")
        return ast.Call(name="__init_list__", args=items, pos=pos)

    def _parse_if(self) -> ast.If:
        pos = self.advance().pos
        self.expect_punct("(")
        cond = self.parse_expression()
        self.expect_punct(")")
        then = self.parse_statement()
        otherwise = None
        if self.tok.is_keyword("else"):
            self.advance()
            otherwise = self.parse_statement()
        return ast.If(cond=cond, then=then, otherwise=otherwise, pos=pos)

    def _parse_while(self) -> ast.While:
        pos = self.advance().pos
        self.expect_punct("(")
        cond = self.parse_expression()
        self.expect_punct(")")
        return ast.While(cond=cond, body=self.parse_statement(), pos=pos)

    def _parse_do_while(self) -> ast.DoWhile:
        pos = self.advance().pos
        body = self.parse_statement()
        if not self.tok.is_keyword("while"):
            raise self.error("expected 'while' after do-body")
        self.advance()
        self.expect_punct("(")
        cond = self.parse_expression()
        self.expect_punct(")")
        self.expect_punct(";")
        return ast.DoWhile(body=body, cond=cond, pos=pos)

    def _parse_switch(self) -> ast.Switch:
        pos = self.advance().pos
        self.expect_punct("(")
        subject = self.parse_expression()
        self.expect_punct(")")
        self.expect_punct("{")
        cases: list[ast.SwitchCase] = []
        current: ast.SwitchCase | None = None
        seen_default = False
        while not self.tok.is_punct("}"):
            if self.tok.kind is TokenKind.EOF:
                raise self.error("unexpected end of file inside switch")
            if self.tok.is_keyword("case"):
                case_pos = self.advance().pos
                value = self.parse_conditional()
                folded = _fold(value)
                if folded is None:
                    raise CompileError(
                        "case label must be an integer constant", case_pos)
                self.expect_punct(":")
                current = ast.SwitchCase(value=folded, statements=[])
                cases.append(current)
                continue
            if self.tok.is_keyword("default"):
                default_pos = self.advance().pos
                if seen_default:
                    raise CompileError("duplicate default label",
                                       default_pos)
                seen_default = True
                self.expect_punct(":")
                current = ast.SwitchCase(value=None, statements=[])
                cases.append(current)
                continue
            if current is None:
                raise self.error("statement before the first case label")
            current.statements.append(self.parse_statement())
        self.advance()
        values = [c.value for c in cases if c.value is not None]
        if len(values) != len(set(values)):
            raise CompileError("duplicate case label", pos)
        return ast.Switch(subject=subject, cases=cases, pos=pos)

    def _parse_for(self) -> ast.For:
        pos = self.advance().pos
        self.expect_punct("(")
        init: ast.Stmt | None = None
        if not self.tok.is_punct(";"):
            if self.at_type():
                init = self._parse_declaration()  # consumes ';'
            else:
                expr = self.parse_expression()
                self.expect_punct(";")
                init = ast.ExprStmt(expr=expr, pos=expr.pos)
        else:
            self.advance()
        cond = None
        if not self.tok.is_punct(";"):
            cond = self.parse_expression()
        self.expect_punct(";")
        step = None
        if not self.tok.is_punct(")"):
            step = self.parse_expression()
        self.expect_punct(")")
        return ast.For(init=init, cond=cond, step=step,
                       body=self.parse_statement(), pos=pos)

    # -- expressions -----------------------------------------------------------

    def parse_expression(self) -> ast.Expr:
        return self.parse_assignment()

    def parse_assignment(self) -> ast.Expr:
        left = self.parse_conditional()
        if self.tok.kind is TokenKind.PUNCT and self.tok.text in _ASSIGN_OPS:
            op = self.advance().text
            right = self.parse_assignment()
            return ast.Assign(op=op, target=left, value=right, pos=left.pos)
        return left

    def parse_conditional(self) -> ast.Expr:
        cond = self._parse_binary(0)
        if self.tok.is_punct("?"):
            self.advance()
            then = self.parse_assignment()
            self.expect_punct(":")
            otherwise = self.parse_conditional()
            return ast.Conditional(cond=cond, then=then, otherwise=otherwise,
                                   pos=cond.pos)
        return cond

    def _parse_binary(self, level: int) -> ast.Expr:
        if level >= len(_BINARY_LEVELS):
            return self.parse_unary()
        ops = _BINARY_LEVELS[level]
        left = self._parse_binary(level + 1)
        while self.tok.kind is TokenKind.PUNCT and self.tok.text in ops:
            op = self.advance().text
            right = self._parse_binary(level + 1)
            left = ast.Binary(op=op, left=left, right=right, pos=left.pos)
        return left

    def parse_unary(self) -> ast.Expr:
        t = self.tok
        if t.is_punct("++", "--"):
            self.advance()
            operand = self.parse_unary()
            return ast.IncDec(op=t.text, operand=operand, prefix=True,
                              pos=t.pos)
        if t.is_punct("-", "+", "!", "~", "*", "&"):
            self.advance()
            operand = self.parse_unary()
            return ast.Unary(op=t.text, operand=operand, pos=t.pos)
        if t.is_keyword("sizeof"):
            self.advance()
            self.expect_punct("(")
            stype = self.parse_type()
            self.expect_punct(")")
            return ast.SizeOf(type=stype, pos=t.pos)
        if t.is_punct("(") and self._peek_is_type_after_paren():
            self.advance()
            ctype = self.parse_type()
            self.expect_punct(")")
            value = self.parse_unary()
            return ast.Cast(type=ctype, value=value, pos=t.pos)
        return self.parse_postfix()

    def _peek_is_type_after_paren(self) -> bool:
        nxt = self.peek()
        if nxt.is_keyword("const", "unsigned", "signed") or (
                nxt.kind is TokenKind.KEYWORD and nxt.text in BASE_TYPES):
            return True
        return nxt.kind is TokenKind.IDENT and nxt.text in self.typedefs

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_primary()
        while True:
            t = self.tok
            if t.is_punct("["):
                self.advance()
                index = self.parse_expression()
                self.expect_punct("]")
                expr = ast.Index(base=expr, index=index, pos=t.pos)
            elif t.is_punct("."):
                self.advance()
                field = self.expect_ident().text
                expr = ast.Member(obj=expr, field_name=field, pos=t.pos)
            elif t.is_punct("->"):
                self.advance()
                field = self.expect_ident().text
                expr = ast.Member(obj=ast.Unary(op="*", operand=expr,
                                                pos=t.pos),
                                  field_name=field, pos=t.pos)
            elif t.is_punct("++", "--"):
                self.advance()
                expr = ast.IncDec(op=t.text, operand=expr, prefix=False,
                                  pos=t.pos)
            else:
                break
        return expr

    def parse_primary(self) -> ast.Expr:
        t = self.tok
        if t.kind is TokenKind.INT:
            self.advance()
            return ast.IntLit(value=t.value, pos=t.pos)
        if t.kind is TokenKind.FLOAT:
            self.advance()
            return ast.FloatLit(value=t.value, pos=t.pos)
        if t.kind is TokenKind.STRING:
            self.advance()
            return ast.StrLit(value=t.value, pos=t.pos)
        if t.kind is TokenKind.CHAR:
            self.advance()
            return ast.IntLit(value=t.value, pos=t.pos)
        if t.is_keyword("true", "false"):
            self.advance()
            return ast.BoolLit(value=(t.text == "true"), pos=t.pos)
        if t.is_keyword("NULL"):
            self.advance()
            return ast.NullLit(pos=t.pos)
        if t.is_keyword("dim3"):
            # dim3(x, y, z) used as an expression (temporary)
            self.advance()
            self.expect_punct("(")
            args: list[ast.Expr] = []
            if not self.tok.is_punct(")"):
                while True:
                    args.append(self.parse_assignment())
                    if self.tok.is_punct(","):
                        self.advance()
                        continue
                    break
            self.expect_punct(")")
            return ast.Call(name="dim3", args=args, pos=t.pos)
        if t.is_punct("("):
            self.advance()
            expr = self.parse_expression()
            self.expect_punct(")")
            return expr
        if t.kind is TokenKind.IDENT:
            self.advance()
            name = t.text
            if self.tok.is_punct("<<<"):
                return self._parse_launch(name, t.pos)
            if self.tok.is_punct("("):
                self.advance()
                args = []
                if not self.tok.is_punct(")"):
                    while True:
                        args.append(self.parse_assignment())
                        if self.tok.is_punct(","):
                            self.advance()
                            continue
                        break
                self.expect_punct(")")
                return ast.Call(name=name, args=args, pos=t.pos)
            return ast.Ident(name=name, pos=t.pos)
        raise self.error(f"unexpected token {t.text!r}")

    def _parse_launch(self, name: str, pos: SourcePos) -> ast.KernelLaunch:
        self.expect_punct("<<<")
        grid = self.parse_assignment()
        self.expect_punct(",")
        block = self.parse_assignment()
        shared = None
        if self.tok.is_punct(","):
            self.advance()
            shared = self.parse_assignment()
            if self.tok.is_punct(","):  # optional stream argument: ignored
                self.advance()
                self.parse_assignment()
        self.expect_punct(">>>")
        self.expect_punct("(")
        args: list[ast.Expr] = []
        if not self.tok.is_punct(")"):
            while True:
                args.append(self.parse_assignment())
                if self.tok.is_punct(","):
                    self.advance()
                    continue
                break
        self.expect_punct(")")
        return ast.KernelLaunch(name=name, grid=grid, block=block,
                                shared=shared, args=args, pos=pos)

    # -- constant folding ---------------------------------------------------

    def _const_int(self, expr: ast.Expr) -> int:
        value = _fold(expr)
        if value is None:
            raise CompileError("array dimension must be an integer constant",
                               expr.pos)
        return value


def _fold(expr: ast.Expr) -> int | None:
    if isinstance(expr, ast.IntLit):
        return expr.value
    if isinstance(expr, ast.Unary) and expr.op == "-":
        inner = _fold(expr.operand)
        return None if inner is None else -inner
    if isinstance(expr, ast.Binary):
        left, right = _fold(expr.left), _fold(expr.right)
        if left is None or right is None:
            return None
        try:
            return {
                "+": lambda: left + right,
                "-": lambda: left - right,
                "*": lambda: left * right,
                "/": lambda: left // right,
                "%": lambda: left % right,
                "<<": lambda: left << right,
                ">>": lambda: left >> right,
            }[expr.op]()
        except (KeyError, ZeroDivisionError):
            return None
    return None


#: Parser backends: ``pegen`` (generated packrat parser, default) and
#: ``legacy`` (the hand-written descent oracle above).
BACKENDS = ("pegen", "legacy")


def resolve_backend(backend: str | None = None) -> str:
    """Resolve a parser choice: explicit argument, then the
    ``WEBGPU_PARSER`` environment variable, then ``pegen``."""
    if backend is None:
        backend = os.environ.get("WEBGPU_PARSER") or "pegen"
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown parser backend {backend!r} (expected one of {BACKENDS})")
    return backend


def parse(source: str,
          typedef_names: Iterable[str] = DEFAULT_TYPEDEFS,
          backend: str | None = None,
          telemetry: Any = None) -> ast.TranslationUnit:
    """Tokenize and parse preprocessed source.

    ``backend`` picks the parser (``"pegen"`` or ``"legacy"``); None
    defers to ``WEBGPU_PARSER`` / default. When a
    :class:`repro.telemetry.Telemetry` bundle is passed, the parse is
    timed into ``webgpu_parse_seconds{backend=}`` and the packrat memo
    hit/miss counts land in ``webgpu_parser_memo_total``.
    """
    backend = resolve_backend(backend)
    tokens = tokenize(source)
    if backend == "legacy":
        parser: Any = Parser(tokens, typedef_names)
    else:
        from repro.minicuda.parser_gen import MiniCudaParser
        parser = MiniCudaParser(tokens, typedef_names)
    start = time.perf_counter()
    unit = parser.parse_translation_unit()
    if telemetry is not None:
        telemetry.record_parse(
            backend, time.perf_counter() - start,
            memo_hits=getattr(parser, "memo_hits", 0),
            memo_misses=getattr(parser, "memo_misses", 0))
    return unit
