"""Closure-compilation execution engine for minicuda kernels.

The tree-walking interpreter pays per-node ``isinstance`` dispatch on
every statement and expression of every thread of every launch. This
module lowers a kernel's *checked* AST once into nested Python
closures — statement → closure, expression → closure — so per-thread
execution is plain closure calls over a flat frame list, with no AST
in sight:

* locals get compile-time **slot numbers** in a frame list (``f[0]``
  is the :class:`ThreadContext`, ``f[1]`` the interpreter, ``f[2]``
  the block's KernelStats; locals start at slot 3), replacing chained
  ``Env`` dict lookups;
* barrier-free kernels compile to **plain functions**, which the
  scheduler runs as direct calls (no generator machinery); kernels
  with a top-level ``__syncthreads()``/``barrier()`` statement compile
  to generators that ``yield SYNC`` exactly like the tree-walker;
* instruction counting, coalescing-trace order, coercion semantics
  and error messages mirror the tree-walker exactly — KernelStats are
  bit-identical between engines;
* compiled kernels are memoized per ``(program, kernel)`` via the
  existing :class:`repro.cache.MemoTable` keyed on the program's
  preprocessed-source fingerprint, so repeated launches and repeated
  grading of the same submission pay compilation zero times.

Constructs the compiler does not support — taking the address of a
scalar local, a barrier call in expression position, calling a device
function that may itself barrier, OpenACC statements — raise
:class:`UnsupportedConstruct` at compile time; the caller
(:meth:`Interpreter.make_kernel`) then falls back to the tree-walking
reference engine for that kernel, and the failure is memoized so the
fallback decision is also paid once.

Step accounting is deliberately coarser than the tree-walker's: the
closure engine charges the shared step budget per kernel/device-call
entry and per loop iteration (rather than per AST node), which still
bounds every non-terminating program while keeping the hot loop free
of per-node bookkeeping. ``KernelHang`` carries the same message.
"""

from __future__ import annotations

from operator import attrgetter
from typing import Any, Callable

from repro.cache import LRUPolicy, MemoTable
from repro.gpusim.grid import Dim3
from repro.gpusim.memory import DevicePtr, SharedArray
from repro.gpusim.scheduler import SYNC, ThreadContext
from repro.minicuda import ast_nodes as ast
from repro.minicuda import builtins as bi
from repro.minicuda.interpreter import (
    _BINOPS,
    _MATH_IMPL,
    InterpreterError,
    KernelHang,
    _make_dim3,
    _opencl_index,
    _truthy,
    c_format,
    member_value,
    read_indexed,
    write_indexed,
)
from repro.minicuda.semantic import BARRIER_BUILTINS, ProgramInfo
from repro.minicuda.values import (
    NULL,
    ElemRef,
    HostPtr,
    LocalArray,
    MDView,
    MemoryFault,
    NullPtr,
    VarRef,
    _INT_BASES,
    coerce,
    f32,
    sizeof_ctype,
)


class UnsupportedConstruct(Exception):
    """The closure compiler cannot lower this AST; use the tree-walker."""


# Frame layout: fixed header slots, then compile-time-numbered locals.
_CTX = 0
_INTERP = 1
_STATS = 2
_FIRST_SLOT = 3

_HANG_MSG = "execution step budget exhausted (possible infinite loop)"

#: Control-flow signals returned (not raised) by statement closures.
_BREAK = object()
_CONTINUE = object()


class _Ret:
    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value


_RET_NONE = _Ret(None)

_OPENCL_INDEX_FNS = frozenset({
    "get_global_id", "get_local_id", "get_group_id",
    "get_local_size", "get_num_groups", "get_global_size",
})

_ATOMIC_FNS = {
    "atomicAdd": ThreadContext.atomic_add,
    "atomicMax": ThreadContext.atomic_max,
    "atomicMin": ThreadContext.atomic_min,
    "atomicExch": ThreadContext.atomic_exch,
}


# -- baked coercers (mirror values.coerce branch for branch) ---------------

_NUMS = (bool, int, float)


def _coerce_int(v: Any) -> Any:
    return int(v) if isinstance(v, _NUMS) else v


def _coerce_f32(v: Any) -> Any:
    return f32(v) if isinstance(v, _NUMS) else v


def _coerce_f64(v: Any) -> Any:
    return float(v) if isinstance(v, _NUMS) else v


def _coerce_bool(v: Any) -> Any:
    return bool(v) if isinstance(v, _NUMS) else v


def _make_coercer(ctype: ast.CType | None) -> Callable[[Any], Any] | None:
    """A specialized equivalent of ``coerce(value, ctype)`` (None means
    identity — pointers, arrays, and unknown bases pass through)."""
    if ctype is None or ctype.is_pointer or ctype.is_array:
        return None
    base = ctype.base
    if base in _INT_BASES:
        return _coerce_int
    if base == "float":
        return _coerce_f32
    if base == "double":
        return _coerce_f64
    if base == "bool":
        return _coerce_bool
    return None


def _flatten_init_exprs(expr: ast.Expr) -> list[ast.Expr]:
    if isinstance(expr, ast.Call) and expr.name == "__init_list__":
        out: list[ast.Expr] = []
        for item in expr.args:
            out.extend(_flatten_init_exprs(item))
        return out
    return [expr]


class CompiledKernel:
    """A kernel lowered to closures, bindable to any interpreter."""

    __slots__ = ("name", "run", "is_gen", "frame_size", "param_setup",
                 "entry_pos", "profiled")

    def __init__(self, name: str, run: Callable[..., Any], is_gen: bool,
                 frame_size: int, param_setup: list, entry_pos: Any,
                 profiled: bool = False):
        self.name = name
        self.run = run
        self.is_gen = is_gen
        self.frame_size = frame_size
        self.param_setup = param_setup
        self.entry_pos = entry_pos
        self.profiled = profiled

    def bind(self, interp: Any, args: tuple[Any, ...]) -> Callable:
        """Produce the per-thread callable for one launch. Barrier-free
        kernels come back as plain functions (the scheduler fast path);
        barrier kernels as generator functions yielding SYNC.

        Profiled kernels put the thread's line-attributing stats proxy
        in the ``_STATS`` frame slot — every bare ``instructions +=``
        charge then lands on the per-line ledger too — and carry the
        ``profiled`` marker the scheduler dispatches on.
        """
        frame_size = self.frame_size
        setup = self.param_setup
        run = self.run
        entry_pos = self.entry_pos
        profiled = self.profiled

        if not self.is_gen:
            def kernel_thread(ctx: ThreadContext) -> None:
                f = [None] * frame_size
                f[_CTX] = ctx
                f[_INTERP] = interp
                f[_STATS] = ctx.stats_proxy if profiled else ctx._block.stats
                for (slot, co), arg in zip(setup, args):
                    f[slot] = arg if co is None else co(arg)
                interp.steps += 1
                if interp.steps > interp.max_steps:
                    raise KernelHang(_HANG_MSG, entry_pos)
                run(f)
            if profiled:
                kernel_thread.profiled = True
            return kernel_thread

        def kernel_thread_gen(ctx: ThreadContext):
            f = [None] * frame_size
            f[_CTX] = ctx
            f[_INTERP] = interp
            f[_STATS] = ctx.stats_proxy if profiled else ctx._block.stats
            for (slot, co), arg in zip(setup, args):
                f[slot] = arg if co is None else co(arg)
            interp.steps += 1
            if interp.steps > interp.max_steps:
                raise KernelHang(_HANG_MSG, entry_pos)
            yield from run(f)
        if profiled:
            kernel_thread_gen.profiled = True
        return kernel_thread_gen


class _ProgramArtifact:
    """Per-program compilation workspace: kernel + device-fn closures.

    Profiled programs get their own artifact: the closures differ
    (line pre-setters, branch recording), so profiled and unprofiled
    kernels never share compiled bodies.
    """

    def __init__(self, info: ProgramInfo, profile: bool = False):
        self.info = info
        self.profile = bool(profile)
        names = set()
        for gvar in info.unit.globals:
            for decl in gvar.decl.declarators:
                names.add(decl.name)
        self.global_names = frozenset(names)
        self.kernels: dict[str, CompiledKernel | None] = {}
        self.device_entries: dict[str, dict] = {}
        self._phase_added: list[str] | None = None

    def get_kernel(self, name: str) -> CompiledKernel | None:
        """Compile (or recall) one kernel; None means unsupported."""
        if name in self.kernels:
            return self.kernels[name]
        fn = self.info.kernels.get(name)
        compiled: CompiledKernel | None = None
        if fn is not None:
            self._phase_added = []
            try:
                gen_ok = name in self.info.barrier_functions
                compiled = _FunctionCompiler(self, gen_ok).compile_kernel(fn)
            except UnsupportedConstruct:
                # a device entry compiled during this failed phase may
                # reference another entry that never completed — drop
                # everything the phase added so a later kernel recompiles
                for added in self._phase_added:
                    self.device_entries.pop(added, None)
                compiled = None
            finally:
                self._phase_added = None
        self.kernels[name] = compiled
        return compiled

    def device_entry(self, name: str) -> dict:
        """The (possibly in-progress) compiled entry for a device
        function; the ``run`` key is filled when its body finishes
        compiling, which lets recursive calls resolve through the dict."""
        entry = self.device_entries.get(name)
        if entry is not None:
            return entry
        fn = self.info.device_functions[name]
        entry = {"run": None}
        self.device_entries[name] = entry
        if self._phase_added is not None:
            self._phase_added.append(name)
        entry["run"] = _FunctionCompiler(self, gen_ok=False) \
            .compile_device_function(fn)
        return entry


class _FunctionCompiler:
    """Lowers one function body; owns its slot table and scope chain."""

    def __init__(self, art: _ProgramArtifact, gen_ok: bool):
        self.art = art
        self.gen_ok = gen_ok
        self.profile = art.profile
        self.scopes: list[dict[str, tuple[int, Any]]] = [{}]
        self.frame_size = _FIRST_SLOT

    # -- scopes / slots ---------------------------------------------------

    def _push(self) -> None:
        self.scopes.append({})

    def _pop(self) -> None:
        self.scopes.pop()

    def _alloc(self, name: str, co: Callable | None) -> int:
        slot = self.frame_size
        self.frame_size += 1
        self.scopes[-1][name] = (slot, co)
        return slot

    def _lookup(self, name: str) -> tuple[int, Any] | None:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        return None

    @staticmethod
    def _raiser(message: str, pos: Any) -> Callable:
        def raise_(f):
            raise InterpreterError(message, pos)
        return raise_

    # -- entry points -----------------------------------------------------

    def compile_kernel(self, fn: ast.FuncDef) -> CompiledKernel:
        setup = self._bind_params(fn)
        body, is_gen = self._compile_body(fn)
        return CompiledKernel(fn.name, body, is_gen, self.frame_size,
                              setup, fn.pos, profiled=self.profile)

    def compile_device_function(self, fn: ast.FuncDef) -> Callable:
        setup = self._bind_params(fn)
        body, is_gen = self._compile_body(fn)
        if is_gen:  # pragma: no cover - barrier fns are refused earlier
            raise UnsupportedConstruct("barrier inside device function")
        frame_size = self.frame_size
        fn_pos = fn.pos
        profiled = self.profile

        def run(ctx, interp, args):
            f = [None] * frame_size
            f[_CTX] = ctx
            f[_INTERP] = interp
            f[_STATS] = ctx.stats_proxy if profiled else ctx._block.stats
            for (slot, co), arg in zip(setup, args):
                f[slot] = arg if co is None else co(arg)
            interp.steps += 1
            if interp.steps > interp.max_steps:
                raise KernelHang(_HANG_MSG, fn_pos)
            sig = body(f)
            if type(sig) is _Ret:
                return sig.value
            return None
        return run

    def _bind_params(self, fn: ast.FuncDef) -> list:
        setup = []
        self._push()
        for param in fn.params:
            co = _make_coercer(param.type)
            slot = self._alloc(param.name or "_", co)
            setup.append((slot, co))
        self._push()
        return setup

    def _compile_body(self, fn: ast.FuncDef):
        items = [self.stmt(s) for s in fn.body.statements]
        return self._seq(items)

    # -- statement sequencing ---------------------------------------------

    @staticmethod
    def _seq(items: list):
        """Combine (closure, is_gen) statements into one runner."""
        if not items:
            return (lambda f: None), False
        if len(items) == 1:
            return items[0]
        if not any(g for _, g in items):
            closures = [c for c, _ in items]

            def run_plain(f):
                for c in closures:
                    sig = c(f)
                    if sig is not None:
                        return sig
                return None
            return run_plain, False

        steps = list(items)

        def run_gen(f):
            for c, g in steps:
                sig = (yield from c(f)) if g else c(f)
                if sig is not None:
                    return sig
            return None
        return run_gen, True

    # -- statements -------------------------------------------------------

    def stmt(self, s: ast.Stmt):
        pair = self._stmt_dispatch(s)
        if not self.profile:
            return pair
        cls = type(s)
        if cls is ast.Block or cls is ast.Empty:
            # blocks only delegate; inner statements pin their own lines
            return pair
        c, g = pair
        ln = s.pos.line
        if g:
            def stmt_at_line_gen(f):
                f[_CTX].line = ln
                return (yield from c(f))
            return stmt_at_line_gen, True

        def stmt_at_line(f):
            f[_CTX].line = ln
            return c(f)
        return stmt_at_line, False

    @staticmethod
    def _at_line(c: Callable, ln: int) -> Callable:
        """Re-pin the attribution line before evaluating ``c`` — loop
        conditions and steps re-run after the body moved the line."""
        def eval_at_line(f):
            f[_CTX].line = ln
            return c(f)
        return eval_at_line

    def _stmt_dispatch(self, s: ast.Stmt):
        cls = type(s)
        if cls is ast.ExprStmt:
            return self._compile_expr_stmt(s)
        if cls is ast.DeclStmt:
            return self._compile_decl(s)
        if cls is ast.If:
            return self._compile_if(s)
        if cls is ast.While:
            return self._compile_while(s)
        if cls is ast.DoWhile:
            return self._compile_dowhile(s)
        if cls is ast.For:
            return self._compile_for(s)
        if cls is ast.Return:
            if s.value is None:
                return (lambda f: _RET_NONE), False
            value_c = self.expr(s.value)

            def ret_stmt(f):
                return _Ret(value_c(f))
            return ret_stmt, False
        if cls is ast.Break:
            return (lambda f: _BREAK), False
        if cls is ast.Continue:
            return (lambda f: _CONTINUE), False
        if cls is ast.Switch:
            return self._compile_switch(s)
        if cls is ast.Block:
            self._push()
            items = [self.stmt(inner) for inner in s.statements]
            self._pop()
            return self._seq(items)
        if cls is ast.Empty:
            return (lambda f: None), False
        raise UnsupportedConstruct(f"statement {cls.__name__}")

    def _compile_expr_stmt(self, s: ast.ExprStmt):
        expr = s.expr
        if isinstance(expr, ast.Call) and expr.name in BARRIER_BUILTINS:
            if not self.gen_ok:
                raise UnsupportedConstruct("barrier outside a gen context")
            arg_cs = [self.expr(a) for a in expr.args]
            if not arg_cs:
                def sync0(f):
                    yield SYNC
                return sync0, True

            def sync_stmt(f):
                for c in arg_cs:
                    c(f)
                yield SYNC
            return sync_stmt, True
        c = self.expr(expr)

        def expr_stmt(f):
            c(f)
        return expr_stmt, False

    def _compile_decl(self, s: ast.DeclStmt):
        actions = [self._compile_declarator(decl, s) for decl in s.declarators]
        if len(actions) == 1:
            return actions[0], False

        def decl_stmt(f):
            for a in actions:
                a(f)
        return decl_stmt, False

    def _compile_declarator(self, decl: ast.Declarator,
                            s: ast.DeclStmt) -> Callable:
        ctype = decl.type
        name = decl.name
        if s.shared:
            dims = tuple(ctype.array_dims or (1,))
            total = 1
            for d in dims:
                total *= d
            base = ctype.base
            md_dims = tuple(ctype.array_dims) \
                if len(ctype.array_dims) > 1 else None
            slot = self._alloc(name, _make_coercer(ctype))
            if md_dims is not None:
                def decl_shared_md(f):
                    f[slot] = MDView(f[_CTX].shared(name, total, base),
                                     md_dims)
                return decl_shared_md

            def decl_shared(f):
                f[slot] = f[_CTX].shared(name, total, base)
            return decl_shared
        if ctype.is_array:
            total = 1
            for d in ctype.array_dims:
                total *= d
            base = ctype.base
            md_dims = tuple(ctype.array_dims) \
                if len(ctype.array_dims) > 1 else None
            init_cs = None
            if decl.init is not None:
                init_cs = [self.expr(e)
                           for e in _flatten_init_exprs(decl.init)]
            slot = self._alloc(name, _make_coercer(ctype))

            def decl_array(f):
                arr = LocalArray(name, total, base)
                if init_cs is not None:
                    values = [c(f) for c in init_cs]
                    for i, item in enumerate(values[:total]):
                        arr.write(i, item)
                f[slot] = MDView(arr, md_dims) if md_dims is not None else arr
            return decl_array
        if ctype.base == "dim3" and not ctype.is_pointer:
            pos = s.pos
            if decl.ctor_args:
                part_cs = [self.expr(a) for a in decl.ctor_args]
                slot = self._alloc(name, _make_coercer(ctype))

                def decl_dim3_ctor(f):
                    f[slot] = _make_dim3([c(f) for c in part_cs], pos)
                return decl_dim3_ctor
            if decl.init is not None:
                init_c = self.expr(decl.init)
                slot = self._alloc(name, _make_coercer(ctype))

                def decl_dim3_init(f):
                    f[slot] = init_c(f)
                return decl_dim3_init
            slot = self._alloc(name, _make_coercer(ctype))
            default_dim3 = Dim3(1, 1, 1)

            def decl_dim3(f):
                f[slot] = default_dim3
            return decl_dim3
        if decl.init is not None:
            init_c = self.expr(decl.init)
            co = _make_coercer(ctype)
            slot = self._alloc(name, co)
            if co is None:
                def decl_init(f):
                    f[slot] = init_c(f)
                return decl_init

            def decl_init_co(f):
                f[slot] = co(init_c(f))
            return decl_init_co
        default = NULL if ctype.is_pointer else coerce(0, ctype)
        slot = self._alloc(name, _make_coercer(ctype))

        def decl_default(f):
            f[slot] = default
        return decl_default

    def _compile_if(self, s: ast.If):
        cond_c = self.expr(s.cond)
        if self.profile:
            raw_cond = cond_c
            branch_line = s.pos.line

            def cond_c(f):
                taken = _truthy(raw_cond(f))
                f[_CTX].record_branch(branch_line, taken)
                return taken
        self._push()
        then_c, then_gen = self.stmt(s.then)
        self._pop()
        else_c, else_gen = None, False
        if s.otherwise is not None:
            self._push()
            else_c, else_gen = self.stmt(s.otherwise)
            self._pop()
        if not (then_gen or else_gen):
            if else_c is None:
                def if_plain(f):
                    if _truthy(cond_c(f)):
                        return then_c(f)
                    return None
                return if_plain, False

            def if_else_plain(f):
                if _truthy(cond_c(f)):
                    return then_c(f)
                return else_c(f)
            return if_else_plain, False

        def if_gen(f):
            if _truthy(cond_c(f)):
                if then_gen:
                    return (yield from then_c(f))
                return then_c(f)
            if else_c is not None:
                if else_gen:
                    return (yield from else_c(f))
                return else_c(f)
            return None
        return if_gen, True

    def _compile_while(self, s: ast.While):
        cond_c = self.expr(s.cond)
        if self.profile:
            cond_c = self._at_line(cond_c, s.pos.line)
        self._push()
        body_c, body_gen = self.stmt(s.body)
        self._pop()
        pos = s.pos
        if not body_gen:
            def while_plain(f):
                interp = f[_INTERP]
                while True:
                    interp.steps += 1
                    if interp.steps > interp.max_steps:
                        raise KernelHang(_HANG_MSG, pos)
                    if not _truthy(cond_c(f)):
                        return None
                    sig = body_c(f)
                    if sig is not None:
                        if sig is _BREAK:
                            return None
                        if sig is not _CONTINUE:
                            return sig
            return while_plain, False

        def while_gen(f):
            interp = f[_INTERP]
            while True:
                interp.steps += 1
                if interp.steps > interp.max_steps:
                    raise KernelHang(_HANG_MSG, pos)
                if not _truthy(cond_c(f)):
                    return None
                sig = yield from body_c(f)
                if sig is not None:
                    if sig is _BREAK:
                        return None
                    if sig is not _CONTINUE:
                        return sig
        return while_gen, True

    def _compile_dowhile(self, s: ast.DoWhile):
        self._push()
        body_c, body_gen = self.stmt(s.body)
        self._pop()
        cond_c = self.expr(s.cond)
        if self.profile:
            cond_c = self._at_line(cond_c, s.pos.line)
        pos = s.pos
        if not body_gen:
            def dowhile_plain(f):
                interp = f[_INTERP]
                while True:
                    interp.steps += 1
                    if interp.steps > interp.max_steps:
                        raise KernelHang(_HANG_MSG, pos)
                    sig = body_c(f)
                    if sig is not None:
                        if sig is _BREAK:
                            return None
                        if sig is not _CONTINUE:
                            return sig
                    if not _truthy(cond_c(f)):
                        return None
            return dowhile_plain, False

        def dowhile_gen(f):
            interp = f[_INTERP]
            while True:
                interp.steps += 1
                if interp.steps > interp.max_steps:
                    raise KernelHang(_HANG_MSG, pos)
                sig = yield from body_c(f)
                if sig is not None:
                    if sig is _BREAK:
                        return None
                    if sig is not _CONTINUE:
                        return sig
                if not _truthy(cond_c(f)):
                    return None
        return dowhile_gen, True

    def _compile_for(self, s: ast.For):
        self._push()
        init_c = None
        if s.init is not None:
            init_c, init_gen = self.stmt(s.init)
            if init_gen:
                self._pop()
                raise UnsupportedConstruct("barrier in for-init")
        cond_c = self.expr(s.cond) if s.cond is not None else None
        step_c = self.expr(s.step) if s.step is not None else None
        if self.profile:
            if cond_c is not None:
                cond_c = self._at_line(cond_c, s.pos.line)
            if step_c is not None:
                step_c = self._at_line(step_c, s.pos.line)
        self._push()
        body_c, body_gen = self.stmt(s.body)
        self._pop()
        self._pop()
        pos = s.pos
        if not body_gen:
            def for_plain(f):
                interp = f[_INTERP]
                if init_c is not None:
                    init_c(f)
                while True:
                    if cond_c is not None and not _truthy(cond_c(f)):
                        return None
                    sig = body_c(f)
                    if sig is not None and sig is not _CONTINUE:
                        if sig is _BREAK:
                            return None
                        return sig
                    if step_c is not None:
                        step_c(f)
                    interp.steps += 1
                    if interp.steps > interp.max_steps:
                        raise KernelHang(_HANG_MSG, pos)
            return for_plain, False

        def for_gen(f):
            interp = f[_INTERP]
            if init_c is not None:
                init_c(f)
            while True:
                if cond_c is not None and not _truthy(cond_c(f)):
                    return None
                sig = yield from body_c(f)
                if sig is not None and sig is not _CONTINUE:
                    if sig is _BREAK:
                        return None
                    return sig
                if step_c is not None:
                    step_c(f)
                interp.steps += 1
                if interp.steps > interp.max_steps:
                    raise KernelHang(_HANG_MSG, pos)
        return for_gen, True

    def _compile_switch(self, s: ast.Switch):
        subject_c = self.expr(s.subject)
        case_values = []
        starts = []
        flat = []
        for case in s.cases:
            starts.append(len(flat))
            self._push()
            for inner in case.statements:
                flat.append(self.stmt(inner))
            self._pop()
            case_values.append(case.value)

        def find_start(subject: int) -> int | None:
            for i, v in enumerate(case_values):
                if v is not None and v == subject:
                    return starts[i]
            for i, v in enumerate(case_values):
                if v is None:
                    return starts[i]
            return None

        if not any(g for _, g in flat):
            closures = [c for c, _ in flat]

            def switch_plain(f):
                start = find_start(int(subject_c(f)))
                if start is None:
                    return None
                for c in closures[start:]:
                    sig = c(f)
                    if sig is not None:
                        if sig is _BREAK:
                            return None
                        return sig
                return None
            return switch_plain, False

        def switch_gen(f):
            start = find_start(int(subject_c(f)))
            if start is None:
                return None
            for c, g in flat[start:]:
                sig = (yield from c(f)) if g else c(f)
                if sig is not None:
                    if sig is _BREAK:
                        return None
                    return sig
            return None
        return switch_gen, True

    # -- expressions ------------------------------------------------------

    def expr(self, e: ast.Expr) -> Callable:
        cls = type(e)
        if cls is ast.IntLit or cls is ast.FloatLit or cls is ast.BoolLit \
                or cls is ast.StrLit:
            value = e.value
            return lambda f: value
        if cls is ast.NullLit:
            return lambda f: NULL
        if cls is ast.Ident:
            return self._compile_ident(e.name, e.pos)
        if cls is ast.Member:
            return self._compile_member(e)
        if cls is ast.Index:
            return self._compile_index(e)
        if cls is ast.Binary:
            return self._compile_binary(e)
        if cls is ast.Assign:
            return self._compile_assign(e)
        if cls is ast.Unary:
            return self._compile_unary(e)
        if cls is ast.IncDec:
            return self._compile_incdec(e)
        if cls is ast.Conditional:
            cond_c = self.expr(e.cond)
            then_c = self.expr(e.then)
            else_c = self.expr(e.otherwise)
            return lambda f: then_c(f) if _truthy(cond_c(f)) else else_c(f)
        if cls is ast.Cast:
            return self._compile_cast(e)
        if cls is ast.SizeOf:
            size = sizeof_ctype(e.type)
            return lambda f: size
        if cls is ast.Call:
            return self._compile_call(e)
        if cls is ast.KernelLaunch:
            return self._raiser("dynamic parallelism is not supported",
                                e.pos)
        raise UnsupportedConstruct(f"expression {cls.__name__}")

    def _compile_ident(self, name: str, pos: Any) -> Callable:
        hit = self._lookup(name)
        if hit is not None:
            slot = hit[0]
            return lambda f: f[slot]
        if name in self.art.global_names:
            return lambda f: f[_INTERP].globals.get(name)
        if name == "threadIdx":
            return lambda f: f[_CTX].threadIdx
        if name == "blockIdx":
            return lambda f: f[_CTX].blockIdx
        if name == "blockDim":
            return lambda f: f[_CTX].blockDim
        if name == "gridDim":
            return lambda f: f[_CTX].gridDim
        if name == "warpSize":
            return lambda f: f[_CTX]._block.device.spec.warp_size
        if name in bi.DEVICE_CONSTANTS:
            const = bi.DEVICE_CONSTANTS[name]
            return lambda f: const
        return self._raiser(f"undefined identifier {name!r}", pos)

    def _compile_member(self, e: ast.Member) -> Callable:
        obj, field = e.obj, e.field_name
        if isinstance(obj, ast.Ident) and field in ("x", "y", "z") \
                and obj.name in ("threadIdx", "blockIdx",
                                 "blockDim", "gridDim") \
                and self._lookup(obj.name) is None \
                and obj.name not in self.art.global_names:
            getter = attrgetter(f"{obj.name}.{field}")
            return lambda f: getter(f[_CTX])
        obj_c = self.expr(obj)
        pos = e.pos
        return lambda f: member_value(obj_c(f), field, pos)

    def _compile_index(self, e: ast.Index) -> Callable:
        base_c = self.expr(e.base)
        index_c = self.expr(e.index)
        pos = e.pos

        def index_read(f):
            base = base_c(f)
            index = index_c(f)
            if type(base) is DevicePtr:
                return f[_CTX].load(base, int(index))
            return read_indexed(base, index, f[_CTX], pos)
        return index_read

    def _compile_binary(self, e: ast.Binary) -> Callable:
        op = e.op
        left_c = self.expr(e.left)
        right_c = self.expr(e.right)
        if op == "&&":
            def land(f):
                if not _truthy(left_c(f)):
                    return 0
                return int(_truthy(right_c(f)))
            return land
        if op == "||":
            def lor(f):
                if _truthy(left_c(f)):
                    return 1
                return int(_truthy(right_c(f)))
            return lor
        opfn = _BINOPS[op]
        pos = e.pos
        if op == "+":
            def add(f):
                left = left_c(f)
                right = right_c(f)
                f[_STATS].instructions += 1
                if isinstance(left, (DevicePtr, HostPtr)):
                    return left + int(right)
                if isinstance(right, (DevicePtr, HostPtr)):
                    return right + int(left)
                try:
                    return left + right
                except TypeError:
                    raise InterpreterError(
                        f"invalid operands to '+': {type(left).__name__} "
                        f"and {type(right).__name__}", pos) from None
            return add
        if op == "-":
            def sub(f):
                left = left_c(f)
                right = right_c(f)
                f[_STATS].instructions += 1
                if isinstance(left, (DevicePtr, HostPtr)):
                    return left - int(right)
                try:
                    return left - right
                except TypeError:
                    raise InterpreterError(
                        f"invalid operands to '-': {type(left).__name__} "
                        f"and {type(right).__name__}", pos) from None
            return sub
        if op in ("==", "!="):
            want_eq = op == "=="

            def ptr_cmp(f):
                left = left_c(f)
                right = right_c(f)
                f[_STATS].instructions += 1
                if isinstance(left, NullPtr) or isinstance(right, NullPtr):
                    same = (left is NULL) == (right is NULL)
                    return int(same if want_eq else not same)
                try:
                    return opfn(left, right)
                except TypeError:
                    raise InterpreterError(
                        f"invalid operands to {op!r}: {type(left).__name__} "
                        f"and {type(right).__name__}", pos) from None
            return ptr_cmp

        def binop(f):
            left = left_c(f)
            right = right_c(f)
            f[_STATS].instructions += 1
            try:
                return opfn(left, right)
            except TypeError:
                raise InterpreterError(
                    f"invalid operands to {op!r}: {type(left).__name__} "
                    f"and {type(right).__name__}", pos) from None
        return binop

    def _compile_assign(self, e: ast.Assign) -> Callable:
        compound = e.op != "="
        bop = e.op[:-1] if compound else None
        bfn = _BINOPS[bop] if compound else None
        ptr_arith = compound and bop in ("+", "-")
        target = e.target
        value_c = self.expr(e.value)

        def combine(current, value):
            if ptr_arith and isinstance(current, (DevicePtr, HostPtr)):
                return current + int(value) if bop == "+" \
                    else current - int(value)
            return bfn(current, value)

        if isinstance(target, ast.Ident):
            name = target.name
            hit = self._lookup(name)
            if hit is not None:
                slot, co = hit
                if not compound:
                    if co is None:
                        def assign_slot(f):
                            value = value_c(f)
                            f[_STATS].instructions += 1
                            f[slot] = value
                            return value
                        return assign_slot

                    def assign_slot_co(f):
                        value = value_c(f)
                        f[_STATS].instructions += 1
                        f[slot] = co(value)
                        return value
                    return assign_slot_co

                def cassign_slot(f):
                    value = value_c(f)
                    value = combine(f[slot], value)
                    f[_STATS].instructions += 1
                    f[slot] = value if co is None else co(value)
                    return value
                return cassign_slot
            if name in self.art.global_names:
                if not compound:
                    def assign_global(f):
                        value = value_c(f)
                        f[_STATS].instructions += 1
                        f[_INTERP].globals.assign(name, value)
                        return value
                    return assign_global

                def cassign_global(f):
                    value = value_c(f)
                    value = combine(f[_INTERP].globals.get(name), value)
                    f[_STATS].instructions += 1
                    f[_INTERP].globals.assign(name, value)
                    return value
                return cassign_global
            return self._raiser(
                f"assignment to undefined variable {name!r}", target.pos)
        if isinstance(target, ast.Index):
            base_c = self.expr(target.base)
            index_c = self.expr(target.index)
            tpos = target.pos
            if not compound:
                def assign_index(f):
                    base = base_c(f)
                    index = index_c(f)
                    value = value_c(f)
                    f[_STATS].instructions += 1
                    if type(base) is DevicePtr:
                        f[_CTX].store(base, int(index), value)
                    else:
                        write_indexed(base, index, value, f[_CTX], tpos)
                    return value
                return assign_index

            def cassign_index(f):
                base = base_c(f)
                index = index_c(f)
                value = value_c(f)
                if type(base) is DevicePtr:
                    current = f[_CTX].load(base, int(index))
                else:
                    current = read_indexed(base, index, f[_CTX], tpos)
                value = combine(current, value)
                f[_STATS].instructions += 1
                if type(base) is DevicePtr:
                    f[_CTX].store(base, int(index), value)
                else:
                    write_indexed(base, index, value, f[_CTX], tpos)
                return value
            return cassign_index
        if isinstance(target, ast.Unary) and target.op == "*":
            ptr_c = self.expr(target.operand)
            tpos = target.pos
            if not compound:
                def assign_deref(f):
                    ptr = ptr_c(f)
                    value = value_c(f)
                    f[_STATS].instructions += 1
                    if type(ptr) is DevicePtr:
                        f[_CTX].store(ptr, 0, value)
                    else:
                        write_indexed(ptr, 0, value, f[_CTX], tpos)
                    return value
                return assign_deref

            def cassign_deref(f):
                ptr = ptr_c(f)
                value = value_c(f)
                if type(ptr) is DevicePtr:
                    current = f[_CTX].load(ptr, 0)
                else:
                    current = read_indexed(ptr, 0, f[_CTX], tpos)
                value = combine(current, value)
                f[_STATS].instructions += 1
                if type(ptr) is DevicePtr:
                    f[_CTX].store(ptr, 0, value)
                else:
                    write_indexed(ptr, 0, value, f[_CTX], tpos)
                return value
            return cassign_deref
        return self._raiser("expression is not assignable", target.pos)

    def _compile_unary(self, e: ast.Unary) -> Callable:
        op = e.op
        if op == "&":
            return self._compile_addressof(e.operand)
        operand_c = self.expr(e.operand)
        pos = e.pos
        if op == "*":
            def deref(f):
                ptr = operand_c(f)
                f[_STATS].instructions += 1
                if type(ptr) is DevicePtr:
                    return f[_CTX].load(ptr, 0)
                return read_indexed(ptr, 0, f[_CTX], pos)
            return deref
        if op == "-":
            def neg(f):
                value = operand_c(f)
                f[_STATS].instructions += 1
                return -value
            return neg
        if op == "+":
            def pos_(f):
                value = operand_c(f)
                f[_STATS].instructions += 1
                return value
            return pos_
        if op == "!":
            def not_(f):
                value = operand_c(f)
                f[_STATS].instructions += 1
                return int(not _truthy(value))
            return not_
        if op == "~":
            def inv(f):
                value = operand_c(f)
                f[_STATS].instructions += 1
                return ~int(value)
            return inv
        return self._raiser(f"unsupported unary {op!r}", pos)

    def _compile_addressof(self, operand: ast.Expr) -> Callable:
        if isinstance(operand, ast.Ident):
            name = operand.name
            if self._lookup(name) is not None:
                # no Env exists for slot-allocated locals, so &local
                # cannot produce a VarRef — tree-walker territory
                raise UnsupportedConstruct(
                    "address of a slot-allocated local")
            if name in self.art.global_names:
                return lambda f: VarRef(f[_INTERP].globals, name)
            return self._raiser(f"cannot take address of {name!r}",
                                operand.pos)
        if isinstance(operand, ast.Index):
            base_c = self.expr(operand.base)
            index_c = self.expr(operand.index)
            pos = operand.pos

            def addr_index(f):
                base = base_c(f)
                index = index_c(f)
                if isinstance(base, (DevicePtr, HostPtr)):
                    return base + int(index)
                if isinstance(base, (SharedArray, LocalArray)):
                    return ElemRef(base, int(index))
                if isinstance(base, MDView) and base.is_scalar_level:
                    return ElemRef(base.storage, base.flat_index(int(index)))
                raise InterpreterError(
                    "cannot take the address of this element", pos)
            return addr_index
        return self._raiser("cannot take the address of this expression",
                            operand.pos)

    def _compile_incdec(self, e: ast.IncDec) -> Callable:
        inc = e.op == "++"
        prefix = e.prefix
        target = e.operand
        if isinstance(target, ast.Ident):
            name = target.name
            hit = self._lookup(name)
            if hit is not None:
                slot, co = hit

                def incdec_slot(f):
                    old = f[slot]
                    new = old + 1 if inc else old - 1
                    f[_STATS].instructions += 1
                    f[slot] = new if co is None else co(new)
                    return new if prefix else old
                return incdec_slot
            if name in self.art.global_names:
                def incdec_global(f):
                    old = f[_INTERP].globals.get(name)
                    new = old + 1 if inc else old - 1
                    f[_STATS].instructions += 1
                    f[_INTERP].globals.assign(name, new)
                    return new if prefix else old
                return incdec_global
            return self._raiser(
                f"assignment to undefined variable {name!r}", target.pos)
        if isinstance(target, ast.Index):
            base_c = self.expr(target.base)
            index_c = self.expr(target.index)
            tpos = target.pos

            def incdec_index(f):
                base = base_c(f)
                index = index_c(f)
                if type(base) is DevicePtr:
                    old = f[_CTX].load(base, int(index))
                else:
                    old = read_indexed(base, index, f[_CTX], tpos)
                new = old + 1 if inc else old - 1
                f[_STATS].instructions += 1
                if type(base) is DevicePtr:
                    f[_CTX].store(base, int(index), new)
                else:
                    write_indexed(base, index, new, f[_CTX], tpos)
                return new if prefix else old
            return incdec_index
        if isinstance(target, ast.Unary) and target.op == "*":
            ptr_c = self.expr(target.operand)
            tpos = target.pos

            def incdec_deref(f):
                ptr = ptr_c(f)
                if type(ptr) is DevicePtr:
                    old = f[_CTX].load(ptr, 0)
                else:
                    old = read_indexed(ptr, 0, f[_CTX], tpos)
                new = old + 1 if inc else old - 1
                f[_STATS].instructions += 1
                if type(ptr) is DevicePtr:
                    f[_CTX].store(ptr, 0, new)
                else:
                    write_indexed(ptr, 0, new, f[_CTX], tpos)
                return new if prefix else old
            return incdec_deref
        return self._raiser("expression is not assignable", target.pos)

    def _compile_cast(self, e: ast.Cast) -> Callable:
        value_c = self.expr(e.value)
        ctype = e.type
        pos = e.pos
        if ctype.is_pointer:
            base = ctype.base

            def cast_ptr(f):
                value = value_c(f)
                if isinstance(value, HostPtr):
                    return value.retyped(base)
                if isinstance(value, (DevicePtr, NullPtr)):
                    return value
                if isinstance(value, VarRef):
                    return value
                if isinstance(value, int) and value == 0:
                    return NULL
                raise InterpreterError(
                    f"unsupported pointer cast of {type(value).__name__}",
                    pos)
            return cast_ptr
        co = _make_coercer(ctype)
        if co is None:
            return value_c
        return lambda f: co(value_c(f))

    # -- calls ------------------------------------------------------------

    def _compile_call(self, e: ast.Call) -> Callable:
        name = e.name
        pos = e.pos
        if name == "dim3":
            part_cs = [self.expr(a) for a in e.args]

            def dim3_call(f):
                return _make_dim3([c(f) for c in part_cs], pos)
            return dim3_call
        if name in BARRIER_BUILTINS:
            raise UnsupportedConstruct("barrier call in expression position")
        if name.startswith("atomic"):
            return self._compile_atomic(e)
        if name in bi.MATH_BUILTINS:
            impl = _MATH_IMPL[name]
            arg_cs = [self.expr(a) for a in e.args]
            if len(arg_cs) == 1:
                a0 = arg_cs[0]

                def math1(f):
                    v = a0(f)
                    f[_STATS].instructions += 1
                    return impl(v)
                return math1
            if len(arg_cs) == 2:
                a0, a1 = arg_cs

                def math2(f):
                    v0 = a0(f)
                    v1 = a1(f)
                    f[_STATS].instructions += 1
                    return impl(v0, v1)
                return math2

            def mathn(f):
                values = [c(f) for c in arg_cs]
                f[_STATS].instructions += 1
                return impl(*values)
            return mathn
        if name == "printf":
            arg_cs = [self.expr(a) for a in e.args]
            if not arg_cs:
                return lambda f: 0
            fmt_c = arg_cs[0]
            rest = arg_cs[1:]

            def printf_call(f):
                fmt = fmt_c(f)
                values = tuple(c(f) for c in rest)
                f[_CTX].printf(c_format(str(fmt), values))
                return 0
            return printf_call
        if name in _OPENCL_INDEX_FNS:
            dim_c = self.expr(e.args[0])

            def opencl_call(f):
                return _opencl_index(name, int(dim_c(f)), f[_CTX])
            return opencl_call
        fn = self.art.info.device_functions.get(name)
        if fn is not None:
            if name in self.art.info.barrier_functions:
                raise UnsupportedConstruct(
                    f"call to barrier device function {name!r}")
            entry = self.art.device_entry(name)
            arg_cs = [self.expr(a) for a in e.args]

            if self.profile:
                # callee statements pin their own lines; everything the
                # caller charges after the call belongs to the call site
                def user_call_prof(f):
                    values = tuple(c(f) for c in arg_cs)
                    f[_STATS].instructions += 1
                    ctx = f[_CTX]
                    saved_line = ctx.line
                    result = entry["run"](ctx, f[_INTERP], values)
                    ctx.line = saved_line
                    return result
                return user_call_prof

            def user_call(f):
                values = tuple(c(f) for c in arg_cs)
                f[_STATS].instructions += 1
                return entry["run"](f[_CTX], f[_INTERP], values)
            return user_call
        return self._raiser(f"unknown device function {name!r}", pos)

    def _compile_atomic(self, e: ast.Call) -> Callable:
        name = e.name
        pos = e.pos
        if name not in ("atomicAdd", "atomicSub", "atomicMax", "atomicMin",
                        "atomicExch", "atomicCAS"):
            return self._raiser(f"unknown atomic {name!r}", pos)
        target_expr = e.args[0]
        if isinstance(target_expr, ast.Unary) and target_expr.op == "&":
            target_c = self._compile_addressof(target_expr.operand)
        else:
            target_c = self.expr(target_expr)
        val_cs = [self.expr(a) for a in e.args[1:]]

        def resolve(ref):
            if isinstance(ref, (DevicePtr, HostPtr)):
                target, index = ref, 0
            elif isinstance(ref, ElemRef):
                target, index = ref.target, ref.index
            elif isinstance(ref, SharedArray):
                target, index = ref, 0
            else:
                raise InterpreterError(
                    f"atomic target must be a memory location, got "
                    f"{type(ref).__name__}", pos)
            if isinstance(target, (HostPtr, LocalArray)):
                raise MemoryFault("atomics require device or shared memory")
            return target, index

        if name == "atomicSub":
            v_c = val_cs[0]

            def atomic_sub(f):
                ref = target_c(f)
                value = v_c(f)
                target, index = resolve(ref)
                return f[_CTX].atomic_add(target, index, -value)
            return atomic_sub
        if name == "atomicCAS":
            cmp_c, v_c = val_cs

            def atomic_cas(f):
                ref = target_c(f)
                compare = cmp_c(f)
                value = v_c(f)
                target, index = resolve(ref)
                return f[_CTX].atomic_cas(target, index, compare, value)
            return atomic_cas
        method = _ATOMIC_FNS[name]
        v_c = val_cs[0]

        def atomic_call(f):
            ref = target_c(f)
            value = v_c(f)
            target, index = resolve(ref)
            return method(f[_CTX], target, index, value)
        return atomic_call


# -- memoized program → kernel compilation ---------------------------------

#: Cross-program memo table: (engine, codegen version, program
#: fingerprint, kernel name) → compiled kernel (or None for memoized
#: unsupported-construct verdicts). Shared by the closure and codegen
#: engines under distinct :func:`memo_key` prefixes.
KERNEL_CACHE = MemoTable(policy=LRUPolicy(1024))

#: Bump when the closure engine's lowering or supported-construct set
#: changes. The version is part of the memo key, so a table that
#: outlives an engine upgrade (long-running worker, persisted CAS)
#: can never replay a stale artifact or — worse — a stale ``None``
#: unsupported verdict from the previous compiler.
CLOSURE_CODEGEN_VERSION = 2


def memo_key(engine: str, version: int, fingerprint: str,
             name: str) -> str:
    """Cross-program kernel memo key, namespaced by engine + codegen
    version so verdicts from one engine generation never leak into
    another (regression: the key used to be
    ``kernelcode:{fingerprint}:{name}``, which pinned pre-upgrade
    unsupported verdicts forever)."""
    return f"kernelcode:{engine}:v{version}:{fingerprint}:{name}"


def _artifact_for(info: ProgramInfo,
                  profile: bool = False) -> _ProgramArtifact:
    attr = "_codegen_artifact_prof" if profile else "_codegen_artifact"
    art = getattr(info, attr, None)
    if art is None:
        art = _ProgramArtifact(info, profile=profile)
        setattr(info, attr, art)
    return art


def compile_kernel(info: ProgramInfo, name: str,
                   profile: bool = False) -> CompiledKernel | None:
    """Compile kernel ``name`` of a checked program into closures.

    Returns None when the kernel uses a construct the closure engine
    does not support (the caller falls back to the tree-walker). Both
    outcomes are memoized: on the program's attached artifact, and —
    when the program has a preprocessed-source fingerprint — in the
    module-level single-flight :data:`KERNEL_CACHE`, so grading storms
    of identical submissions compile each kernel exactly once.
    Profiled compilation is memoized under its own engine tag: the
    closures differ, and ledger-bearing and plain kernels must never
    be served interchangeably.
    """
    art = _artifact_for(info, profile=profile)
    if info.fingerprint:
        key = memo_key("closure-prof" if profile else "closure",
                       CLOSURE_CODEGEN_VERSION, info.fingerprint, name)
        value, _ = KERNEL_CACHE.get_or_compute(
            key, lambda: art.get_kernel(name))
        return value
    return art.get_kernel(name)
