"""The WebGPU (v1) facade: Figure 2 wired together.

A web-server holds the course logic and a connection pool to the
database, pushes compile/run/grade jobs to the GPU worker pool, evicts
unhealthy workers, and relays results to students. The six student
actions of Section IV-A are this class's public API.
"""

from __future__ import annotations

from typing import Callable

from repro.cluster import (
    DispatchError,
    GpuWorker,
    HealthMonitor,
    ManualClock,
    PushDispatcher,
    WorkerConfig,
    WorkerPool,
)
from repro.cluster.job import Job, JobKind, JobResult
from repro.cluster.node import Clock
from repro.cluster.result_cache import PlatformCaches
from repro.core.course import Course, CourseOffering
from repro.core.feedback import Feedback, FeedbackEngine, HintService
from repro.core.gradebook import GradeBook, GradeEntry
from repro.core.grading import Grader
from repro.core.history import Revision, RevisionStore
from repro.core.instructor import InstructorTools
from repro.core.peer_review import PeerReviewEngine
from repro.core.submission import Attempt, AttemptStore, SubmissionKind
from repro.core.users import User, UserStore
from repro.db import ConnectionPool, Database
from repro.labs import get_lab
from repro.sandbox import SubmissionRateLimiter
from repro.telemetry import NULL_SPAN, Telemetry, requirement_tag


class PlatformError(Exception):
    """User-visible platform errors (not enrolled, no such lab, ...)."""


class RateLimited(PlatformError):
    """The per-user submission rate limit fired (Section III-C)."""


class WebGPU:
    """The original WebGPU platform (paper Figure 2)."""

    def __init__(self, clock: Clock | None = None, num_workers: int = 2,
                 worker_config: WorkerConfig | None = None,
                 db: Database | None = None,
                 grade_exporter: Callable[[GradeEntry], None] | None = None,
                 rate_per_minute: float = 6.0,
                 connection_pool_size: int = 10,
                 caches: "PlatformCaches | None" = None,
                 telemetry: "Telemetry | None" = None):
        self.clock = clock or ManualClock()
        # metrics registry + tracer bundle shared by every component;
        # the default traces nothing (NullTracer) but still counts
        self.telemetry = (telemetry if telemetry is not None
                          else Telemetry(clock=self.clock))
        self.db = db or Database("webgpu")
        self.db_pool = ConnectionPool(self.db, capacity=connection_pool_size)

        # content-addressed compile/grading caches (repro.cache); None
        # preserves the original recompile-everything behaviour
        self.caches = caches
        if caches is not None:
            caches.attach_telemetry(self.telemetry)

        # stores
        self.users = UserStore(self.db)
        self.revisions = RevisionStore(self.db)
        self.attempts = AttemptStore(self.db)
        self.gradebook = GradeBook(self.db, exporter=grade_exporter)
        self.grader = Grader(memo=caches.grades if caches else None)
        self.peer_review = PeerReviewEngine(self.db)
        self.instructor_tools = InstructorTools(
            self.db, self.users, self.attempts, self.revisions,
            self.gradebook)

        # worker fleet (push dispatch)
        self.worker_pool = WorkerPool()
        self.dispatcher = PushDispatcher(self.worker_pool)
        self.health = HealthMonitor(self.clock, telemetry=self.telemetry)
        self._worker_config = worker_config or WorkerConfig()
        for _ in range(num_workers):
            self.add_worker()

        self.rate_limiter = SubmissionRateLimiter(
            rate_per_minute=rate_per_minute)
        self.courses: dict[str, Course] = {}

        # automated feedback + on-demand hints (the paper's future work)
        self.feedback_engine = FeedbackEngine()
        self.hints = HintService(self.db)
        self._last_results: dict[tuple[int, str], JobResult] = {}
        #: root span of the most recent _run_job (lets grading attach
        #: its span to the same trace in this synchronous pipeline)
        self._last_root = NULL_SPAN

    # -- infrastructure operations ------------------------------------------

    def add_worker(self, config: WorkerConfig | None = None,
                   zone: str = "us-east-1a") -> GpuWorker:
        worker = GpuWorker(
            config or self._worker_config, clock=self.clock, zone=zone,
            compile_cache=self.caches.compile if self.caches else None,
            result_cache=self.caches.results if self.caches else None,
            telemetry=self.telemetry)
        self.worker_pool.register(worker)
        self.health.record(worker.name, self.clock.now())
        return worker

    def remove_worker(self, name: str) -> bool:
        removed = self.worker_pool.evict(name)
        if removed:
            self.health.forget(name)
        return removed

    def tick_health(self) -> list[str]:
        """Collect heartbeats and evict overdue workers.

        Eviction is routed through :meth:`remove_worker` (not straight
        to the pool) so subclasses tear down *all* their bookkeeping —
        v2 also stops the evicted node's pull driver, otherwise a
        zombie driver would keep polling the broker.
        """
        self.health.poll_workers(self.worker_pool.workers)
        return self.health.evict_overdue(self.worker_pool,
                                         evict=self.remove_worker)

    # -- course management ---------------------------------------------------------

    def create_course(self, offering: CourseOffering,
                      lab_slugs: list[str]) -> Course:
        labs = [get_lab(slug) for slug in lab_slugs]
        course = Course(self.db, offering, labs)
        self.courses[offering.key] = course
        return course

    def course(self, key: str) -> Course:
        try:
            return self.courses[key]
        except KeyError:
            raise PlatformError(f"no course {key!r}") from None

    def _lab_for(self, course_key: str, lab_slug: str):
        return self.course(course_key).lab(lab_slug)

    def _require_enrolled(self, course_key: str, user: User) -> None:
        if not self.course(course_key).is_enrolled(user.user_id):
            raise PlatformError(
                f"{user.email} is not enrolled in {course_key}")

    # -- the six student actions (Section IV-A) ----------------------------------------

    # 1. edit code (the editor autosaves through this)
    def save_code(self, course_key: str, user: User, lab_slug: str,
                  source: str, reason: str = "autosave") -> Revision:
        self._require_enrolled(course_key, user)
        self._lab_for(course_key, lab_slug)  # validates the slug
        return self.revisions.save(user.user_id, lab_slug, source,
                                   self.clock.now(), reason=reason)

    # 2. compile
    def compile_code(self, course_key: str, user: User,
                     lab_slug: str) -> Attempt:
        attempt, _result = self._run_job(course_key, user, lab_slug,
                                         JobKind.COMPILE_ONLY, 0)
        return attempt

    # 3. run against a chosen dataset
    def run_attempt(self, course_key: str, user: User, lab_slug: str,
                    dataset_index: int = 0) -> Attempt:
        attempt, _result = self._run_job(course_key, user, lab_slug,
                                         JobKind.RUN_DATASET, dataset_index)
        return attempt

    # 4. short-form answers
    def answer_question(self, course_key: str, user: User, lab_slug: str,
                        question_index: int, answer: str) -> None:
        self._require_enrolled(course_key, user)
        lab = self._lab_for(course_key, lab_slug)
        if not (0 <= question_index < len(lab.questions)):
            raise PlatformError(
                f"lab {lab_slug!r} has {len(lab.questions)} question(s)")
        self.attempts.save_answer(user.user_id, lab_slug, question_index,
                                  answer, self.clock.now())

    # 5. submit for grading
    def submit_for_grading(self, course_key: str, user: User,
                           lab_slug: str) -> tuple[Attempt, GradeEntry]:
        attempt, result = self._run_job(course_key, user, lab_slug,
                                        JobKind.FULL_GRADING, 0)
        lab = self._lab_for(course_key, lab_slug)
        answers = self.attempts.answers(user.user_id, lab_slug)
        tracer = self.telemetry.tracer
        graded_at = max(self.clock.now(), result.finished_at)
        span = NULL_SPAN
        if tracer.enabled:
            span = tracer.start_span("grade", parent=self._last_root,
                                     time=graded_at, lab=lab_slug,
                                     user=user.email)
        breakdown = self.grader.grade(lab, result, answers)
        entry = self.gradebook.record(user.user_id, breakdown,
                                      self.clock.now())
        span.end(time=graded_at, points=breakdown.total)
        tag = "+".join(sorted(lab.requirements)) or "untagged"
        # grading and result relay are instantaneous in simulated time;
        # the stages still appear in the breakdown (honest zeros)
        self.telemetry.record_stage("grade", 0.0, tag=tag)
        self.telemetry.record_stage("report", 0.0, tag=tag)
        return attempt, entry

    # automated feedback on the latest attempt (paper §IV-D future work)
    def get_feedback(self, course_key: str, user: User,
                     lab_slug: str) -> list[Feedback]:
        """Rule-based advice derived from the user's latest attempt."""
        self._require_enrolled(course_key, user)
        lab = self._lab_for(course_key, lab_slug)
        result = self._last_results.get((user.user_id, lab_slug))
        if result is None:
            return [Feedback("info", "No attempts yet — compile or run "
                                     "your code first.")]
        return self.feedback_engine.analyze(lab, result)

    def get_line_profile(self, course_key: str, user: User, lab_slug: str,
                         dataset_index: int = 0):
        """The per-line kernel ledger for the user's latest code:
        ``(source, LineProfile | None, budget violations)``.

        Prefers the ledger the worker attached to the latest attempt
        (when the fleet runs with ``line_profile`` on); otherwise
        recomputes it on demand from the latest revision — exact, not
        an approximation, because the ledger is engine-invariant. A
        revision that no longer compiles or runs yields ``None``.
        """
        from repro.labs.base import execute_lab_source
        from repro.profiler import LineProfile, check_line_budgets

        self._require_enrolled(course_key, user)
        lab = self._lab_for(course_key, lab_slug)
        revision = self.revisions.latest(user.user_id, lab_slug)
        source = revision.source if revision else lab.skeleton
        result = self._last_results.get((user.user_id, lab_slug))
        if result is not None:
            ledgers = [d.line_profile for d in result.datasets
                       if d.line_profile is not None]
            if ledgers:
                merged = LineProfile()
                for ledger in ledgers:
                    merged.merge(ledger)
                violations = tuple(v for d in result.datasets
                                   for v in d.budget_violations)
                return source, merged, violations
        if revision is None:
            return source, None, ()
        try:
            execution = execute_lab_source(
                lab, source, lab.dataset(dataset_index), profile=True)
        except Exception:
            return source, None, ()
        profile = execution.line_profile
        violations = (tuple(check_line_budgets(lab.line_budgets, profile,
                                               source))
                      if profile is not None and lab.line_budgets else ())
        return source, profile, violations

    # on-demand help during development (paper §VIII future work)
    def request_hint(self, course_key: str, user: User,
                     lab_slug: str) -> str | None:
        self._require_enrolled(course_key, user)
        lab = self._lab_for(course_key, lab_slug)
        return self.hints.next_hint(user.user_id, lab)

    # 6. view history / attempts
    def code_history(self, course_key: str, user: User,
                     lab_slug: str) -> list[Revision]:
        self._require_enrolled(course_key, user)
        return self.revisions.history(user.user_id, lab_slug)

    def attempt_history(self, course_key: str, user: User,
                        lab_slug: str) -> list[Attempt]:
        self._require_enrolled(course_key, user)
        return self.attempts.for_user_lab(user.user_id, lab_slug)

    # -- job plumbing ----------------------------------------------------------------------

    @staticmethod
    def _validate_dataset_index(lab, kind: JobKind,
                                dataset_index: int) -> None:
        """Reject out-of-range dataset indexes at the platform boundary
        — a negative index would otherwise reach Python's negative
        indexing in the worker and be recorded on the attempt."""
        if kind is not JobKind.RUN_DATASET:
            return
        count = len(lab.dataset_sizes)
        if not 0 <= dataset_index < count:
            raise PlatformError(
                f"dataset_index {dataset_index} out of range for lab "
                f"{lab.slug!r} ({count} dataset(s))")

    def _run_job(self, course_key: str, user: User, lab_slug: str,
                 kind: JobKind,
                 dataset_index: int) -> tuple[Attempt, JobResult]:
        self._require_enrolled(course_key, user)
        lab = self._lab_for(course_key, lab_slug)
        self._validate_dataset_index(lab, kind, dataset_index)
        now = self.clock.now()
        if not self.rate_limiter.try_submit(user.email, now):
            raise RateLimited(
                f"{user.email} is submitting too fast; try again shortly")

        # the editor state is what gets submitted
        revision = self.revisions.latest(user.user_id, lab_slug)
        if revision is None:
            raise PlatformError("no code saved for this lab yet")

        conn = self.db_pool.acquire()
        tracer = self.telemetry.tracer
        root = NULL_SPAN
        try:
            job = Job(lab=lab, source=revision.source, kind=kind,
                      dataset_index=dataset_index, user=user.email,
                      submitted_at=now)
            if tracer.enabled:
                root = tracer.start_trace("submit", time=now,
                                          job_id=job.job_id,
                                          user=user.email, lab=lab_slug,
                                          kind=kind.value)
                job.trace = root.context
            self._last_root = root
            try:
                result = self.dispatcher.dispatch(job)
            except DispatchError as exc:
                # no worker satisfies the job: surface it as a failed
                # attempt rather than a crash (matches the v2 behaviour)
                from repro.cluster.job import JobStatus
                result = JobResult(job_id=job.job_id,
                                   status=JobStatus.FAILED, error=str(exc))
            root.end(time=max(now, result.finished_at),
                     status=result.status.value)
            self.telemetry.record_stage(
                "queue_wait", 0.0, tag=requirement_tag(job))
            attempt = self.attempts.record(
                user.user_id, lab_slug, self._kind_for(kind),
                revision.revision_id, dataset_index, now, result)
            self._last_results[(user.user_id, lab_slug)] = result
            return attempt, result
        finally:
            conn.release()

    @staticmethod
    def _kind_for(kind: JobKind) -> SubmissionKind:
        return {JobKind.COMPILE_ONLY: SubmissionKind.COMPILE,
                JobKind.RUN_DATASET: SubmissionKind.RUN,
                JobKind.FULL_GRADING: SubmissionKind.GRADE}[kind]
