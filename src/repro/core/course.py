"""Courses, offerings, enrollment, and per-lab deadlines."""

from __future__ import annotations

from dataclasses import dataclass

from repro.db import Column, ColumnType, Database, Schema
from repro.labs.base import LabDefinition

ENROLLMENTS_SCHEMA = Schema(columns=[
    Column("user_id", ColumnType.INT),
    Column("course", ColumnType.TEXT),
    Column("enrolled_at", ColumnType.FLOAT, default=0.0),
    Column("completed", ColumnType.BOOL, default=False),
    Column("certificate", ColumnType.BOOL, default=False),
    Column("dropped_at", ColumnType.FLOAT, nullable=True),
], unique=[("user_id", "course")], indexes=[("course",)])


@dataclass(frozen=True)
class Enrollment:
    user_id: int
    course: str
    enrolled_at: float
    completed: bool = False
    certificate: bool = False


@dataclass
class CourseOffering:
    """One run of a course (e.g. HPP 2015) with its lab deadlines."""

    code: str                     # "HPP", "408", "598", "PUMPS"
    year: int
    start_time: float = 0.0
    #: lab slug -> submission deadline (seconds since epoch/sim start)
    deadlines: dict[str, float] | None = None

    @property
    def key(self) -> str:
        return f"{self.code}-{self.year}"

    def deadline_for(self, slug: str) -> float | None:
        return (self.deadlines or {}).get(slug)


class Course:
    """A course with its lab list and enrollment records."""

    def __init__(self, db: Database, offering: CourseOffering,
                 labs: list[LabDefinition]):
        self.db = db
        self.offering = offering
        self.labs = {lab.slug: lab for lab in labs}
        if not db.has_table("enrollments"):
            db.create_table("enrollments", ENROLLMENTS_SCHEMA)

    def lab(self, slug: str) -> LabDefinition:
        try:
            return self.labs[slug]
        except KeyError:
            raise KeyError(f"course {self.offering.key} has no lab "
                           f"{slug!r}") from None

    def enroll(self, user_id: int, now: float = 0.0) -> int:
        return self.db.insert("enrollments", user_id=user_id,
                              course=self.offering.key, enrolled_at=now)

    def is_enrolled(self, user_id: int) -> bool:
        return self.db.find_one("enrollments", user_id=user_id,
                                course=self.offering.key) is not None

    def enrollment_count(self) -> int:
        return len(self.db.find("enrollments", course=self.offering.key))

    def mark_completed(self, user_id: int, certificate: bool = False) -> None:
        row = self.db.find_one("enrollments", user_id=user_id,
                               course=self.offering.key)
        if row is None:
            raise KeyError(f"user {user_id} is not enrolled in "
                           f"{self.offering.key}")
        self.db.update("enrollments", row["id"], completed=True,
                       certificate=certificate)

    def mark_dropped(self, user_id: int, now: float) -> None:
        row = self.db.find_one("enrollments", user_id=user_id,
                               course=self.offering.key)
        if row is not None:
            self.db.update("enrollments", row["id"], dropped_at=now)

    def completion_stats(self) -> dict[str, int | float]:
        """Registered / completed / certificates — the Table I columns."""
        rows = self.db.find("enrollments", course=self.offering.key)
        registered = len(rows)
        completed = sum(1 for r in rows if r["completed"])
        certificates = sum(1 for r in rows if r["certificate"])
        return {
            "registered": registered,
            "completed": completed,
            "completion_rate": completed / registered if registered else 0.0,
            "certificates": certificates,
        }
