"""Code revision history (paper Sections III-A and IV-A).

"It automatically saves all student code, and their compilation and
execution status, and previous attempts so that a user can backtrack
to earlier versions of their code."
"""

from __future__ import annotations

from dataclasses import dataclass
from difflib import unified_diff

from repro.db import Column, ColumnType, Database, Schema

REVISIONS_SCHEMA = Schema(columns=[
    Column("user_id", ColumnType.INT),
    Column("lab", ColumnType.TEXT),
    Column("source", ColumnType.TEXT),
    Column("saved_at", ColumnType.FLOAT),
    Column("reason", ColumnType.TEXT, default="autosave"),
], indexes=[("user_id", "lab")])


@dataclass(frozen=True)
class Revision:
    revision_id: int
    user_id: int
    lab: str
    source: str
    saved_at: float
    reason: str


class RevisionStore:
    """Every edit is kept; students can inspect and compare versions."""

    def __init__(self, db: Database):
        self.db = db
        if not db.has_table("code_revisions"):
            db.create_table("code_revisions", REVISIONS_SCHEMA)

    def save(self, user_id: int, lab: str, source: str, now: float,
             reason: str = "autosave") -> Revision:
        """Record a new revision (no-op dedup: identical consecutive
        saves are collapsed so autosave doesn't flood the history)."""
        latest = self.latest(user_id, lab)
        if latest is not None and latest.source == source:
            return latest
        rev_id = self.db.insert("code_revisions", user_id=user_id, lab=lab,
                                source=source, saved_at=now, reason=reason)
        return self._to_revision(self.db.get("code_revisions", rev_id))

    def latest(self, user_id: int, lab: str) -> Revision | None:
        rows = self.db.find("code_revisions", user_id=user_id, lab=lab)
        if not rows:
            return None
        row = max(rows, key=lambda r: (r["saved_at"], r["id"]))
        return self._to_revision(row)

    def history(self, user_id: int, lab: str) -> list[Revision]:
        """All revisions, newest first (the History view's order)."""
        rows = self.db.find("code_revisions", user_id=user_id, lab=lab)
        rows.sort(key=lambda r: (r["saved_at"], r["id"]), reverse=True)
        return [self._to_revision(r) for r in rows]

    def get(self, revision_id: int) -> Revision:
        return self._to_revision(self.db.get("code_revisions", revision_id))

    def diff(self, older_id: int, newer_id: int) -> str:
        """Unified diff between two revisions ("students can inspect
        and compare to previous codes")."""
        older = self.get(older_id)
        newer = self.get(newer_id)
        return "".join(unified_diff(
            older.source.splitlines(keepends=True),
            newer.source.splitlines(keepends=True),
            fromfile=f"revision {older_id}", tofile=f"revision {newer_id}"))

    @staticmethod
    def _to_revision(row: dict) -> Revision:
        return Revision(revision_id=row["id"], user_id=row["user_id"],
                        lab=row["lab"], source=row["source"],
                        saved_at=row["saved_at"], reason=row["reason"])
