"""Grade storage with external-gradebook export and overrides.

"After students complete a submission, the system assigns a grade
automatically and records it in the grade book (storing the grade in
Coursera, for example). Instructors are provided an interface to
override a grade." (Section IV-F)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.grading import GradeBreakdown
from repro.db import Column, ColumnType, Database, Schema

GRADES_SCHEMA = Schema(columns=[
    Column("user_id", ColumnType.INT),
    Column("lab", ColumnType.TEXT),
    Column("program_points", ColumnType.FLOAT, default=0.0),
    Column("question_points", ColumnType.FLOAT, default=0.0),
    Column("total_points", ColumnType.FLOAT, default=0.0),
    Column("graded_at", ColumnType.FLOAT, default=0.0),
    Column("overridden", ColumnType.BOOL, default=False),
    Column("override_reason", ColumnType.TEXT, default=""),
], unique=[("user_id", "lab")])


@dataclass(frozen=True)
class GradeEntry:
    user_id: int
    lab: str
    program_points: float
    question_points: float
    total_points: float
    graded_at: float
    overridden: bool = False
    override_reason: str = ""


class GradeBook:
    """The canonical grade store, with export hooks to e.g. Coursera."""

    def __init__(self, db: Database,
                 exporter: Callable[[GradeEntry], None] | None = None):
        self.db = db
        self.exporter = exporter
        self.exports = 0
        if not db.has_table("grades"):
            db.create_table("grades", GRADES_SCHEMA)

    def record(self, user_id: int, breakdown: GradeBreakdown,
               now: float) -> GradeEntry:
        """Record an automatic grade. Re-grading keeps the best score
        (students may resubmit); an instructor override is never
        replaced automatically."""
        program = breakdown.compile_points + breakdown.dataset_points
        existing = self.db.find_one("grades", user_id=user_id,
                                    lab=breakdown.lab)
        if existing is not None:
            if existing["overridden"] or existing["total_points"] >= \
                    breakdown.total:
                return self._to_entry(existing)
            self.db.update("grades", existing["id"],
                           program_points=program,
                           question_points=breakdown.question_points,
                           total_points=breakdown.total, graded_at=now)
            entry = self._to_entry(self.db.get("grades", existing["id"]))
        else:
            grade_id = self.db.insert(
                "grades", user_id=user_id, lab=breakdown.lab,
                program_points=program,
                question_points=breakdown.question_points,
                total_points=breakdown.total, graded_at=now)
            entry = self._to_entry(self.db.get("grades", grade_id))
        self._export(entry)
        return entry

    def override(self, user_id: int, lab: str, total_points: float,
                 reason: str, now: float) -> GradeEntry:
        """Instructor override (always wins over automatic grading)."""
        existing = self.db.find_one("grades", user_id=user_id, lab=lab)
        if existing is None:
            grade_id = self.db.insert(
                "grades", user_id=user_id, lab=lab,
                program_points=total_points, question_points=0.0,
                total_points=total_points, graded_at=now, overridden=True,
                override_reason=reason)
        else:
            self.db.update("grades", existing["id"],
                           total_points=total_points, graded_at=now,
                           overridden=True, override_reason=reason)
            grade_id = existing["id"]
        entry = self._to_entry(self.db.get("grades", grade_id))
        self._export(entry)
        return entry

    def get(self, user_id: int, lab: str) -> GradeEntry | None:
        row = self.db.find_one("grades", user_id=user_id, lab=lab)
        return self._to_entry(row) if row else None

    def for_lab(self, lab: str) -> list[GradeEntry]:
        return [self._to_entry(r) for r in self.db.find("grades", lab=lab)]

    def user_total(self, user_id: int) -> float:
        return sum(r["total_points"]
                   for r in self.db.find("grades", user_id=user_id))

    def _export(self, entry: GradeEntry) -> None:
        if self.exporter is not None:
            self.exporter(entry)
            self.exports += 1

    @staticmethod
    def _to_entry(row: dict) -> GradeEntry:
        return GradeEntry(
            user_id=row["user_id"], lab=row["lab"],
            program_points=row["program_points"],
            question_points=row["question_points"],
            total_points=row["total_points"], graded_at=row["graded_at"],
            overridden=row["overridden"],
            override_reason=row["override_reason"])
