"""Automatic grading against the lab rubric (paper Section IV-F).

"Points are arbitrarily divided among datasets, short-answer questions,
presence of keywords, and successful compilation." Dataset points are
split evenly across the lab's datasets; question points are awarded
for *answering* (there is "no system for automatic grading of
questions" — instructors adjust by override).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache import MemoTable
from repro.cache.keys import compose_key
from repro.cluster.job import JobResult
from repro.labs.base import LabDefinition


@dataclass(frozen=True)
class GradeBreakdown:
    """One graded submission's points."""

    lab: str
    compile_points: float
    dataset_points: float
    question_points: float
    datasets_passed: int
    datasets_total: int

    @property
    def total(self) -> float:
        return self.compile_points + self.dataset_points + self.question_points


class Grader:
    """Turns a grading-job result plus answers into a rubric grade.

    With a memo table (``repro.cache``), rubric computation is
    memoized by the content that determines it — rubric points,
    compile outcome, per-dataset correctness, answered-question count —
    so a storm of identical resubmissions grades once. Since
    :class:`GradeBreakdown` is frozen, the memoized value is shared
    safely.
    """

    def __init__(self, memo: MemoTable | None = None):
        self._memo = memo

    @staticmethod
    def grade_key(lab: LabDefinition, result: JobResult,
                  answers: dict[int, str] | None = None) -> str:
        """Content key for one rubric computation."""
        answered = sum(1 for a in (answers or {}).values() if a.strip())
        return compose_key(
            "grade", lab.slug, lab.rubric.dataset_points,
            lab.rubric.compile_points, lab.rubric.question_points,
            len(lab.dataset_sizes), len(lab.questions),
            result.compile_ok,
            tuple(sorted((d.dataset_index, d.correct)
                         for d in result.datasets)),
            answered)

    def grade(self, lab: LabDefinition, result: JobResult,
              answers: dict[int, str] | None = None) -> GradeBreakdown:
        if self._memo is None:
            return self._grade(lab, result, answers)
        key = self.grade_key(lab, result, answers)
        breakdown, _hit = self._memo.get_or_compute(
            key, lambda: self._grade(lab, result, answers))
        return breakdown

    def _grade(self, lab: LabDefinition, result: JobResult,
               answers: dict[int, str] | None = None) -> GradeBreakdown:
        rubric = lab.rubric
        compile_points = rubric.compile_points if result.compile_ok else 0.0

        total_datasets = len(lab.dataset_sizes)
        passed = sum(1 for d in result.datasets if d.correct)
        if total_datasets > 0:
            dataset_points = rubric.dataset_points * passed / total_datasets
        else:
            dataset_points = rubric.dataset_points if result.compile_ok else 0.0

        answered = sum(1 for a in (answers or {}).values() if a.strip())
        if lab.questions:
            question_points = (rubric.question_points * answered
                               / len(lab.questions))
        else:
            question_points = 0.0

        return GradeBreakdown(
            lab=lab.slug,
            compile_points=float(compile_points),
            dataset_points=float(dataset_points),
            question_points=float(min(question_points,
                                      rubric.question_points)),
            datasets_passed=passed,
            datasets_total=total_datasets)
