"""External gradebook export (the Coursera side of Section IV-F).

"After students complete a submission, the system assigns a grade
automatically and records it in the grade book (storing the grade in
Coursera, for example)."

The external service is modelled with realistic failure behaviour
(requests can fail transiently), and :class:`ReliableExporter` gives
the platform at-least-once delivery with an in-memory retry queue —
the operational glue an actual Coursera integration needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.gradebook import GradeEntry


class ExportRejected(Exception):
    """The external gradebook refused or dropped the request."""


@dataclass
class CourseraGradebook:
    """A stand-in for Coursera's gradebook API.

    ``fail_every`` injects a transient failure on every n-th request
    (0 = never fail). Successful pushes are idempotent per
    (user, lab): the latest grade wins.
    """

    fail_every: int = 0
    grades: dict[tuple[int, str], float] = field(default_factory=dict)
    requests: int = 0
    failures: int = 0

    def push(self, entry: GradeEntry) -> None:
        self.requests += 1
        if self.fail_every and self.requests % self.fail_every == 0:
            self.failures += 1
            raise ExportRejected(
                f"503 from external gradebook (request {self.requests})")
        self.grades[(entry.user_id, entry.lab)] = entry.total_points

    def grade_of(self, user_id: int, lab: str) -> float | None:
        return self.grades.get((user_id, lab))


class ReliableExporter:
    """At-least-once delivery of grade entries to an external service.

    Use as the platform's ``grade_exporter``: failed pushes are queued
    and retried by :meth:`flush` (which an operator cron or the health
    loop calls). Ordering per (user, lab) is preserved because only the
    newest entry for a key stays queued.
    """

    def __init__(self, service: CourseraGradebook):
        self.service = service
        self._pending: dict[tuple[int, str], GradeEntry] = {}
        self.delivered = 0
        self.deferred = 0

    def __call__(self, entry: GradeEntry) -> None:
        try:
            self.service.push(entry)
            self.delivered += 1
        except ExportRejected:
            self._pending[(entry.user_id, entry.lab)] = entry
            self.deferred += 1

    @property
    def pending(self) -> int:
        return len(self._pending)

    def flush(self, max_attempts: int = 3) -> int:
        """Retry everything queued; returns entries delivered."""
        delivered = 0
        for key in list(self._pending):
            entry = self._pending[key]
            for _ in range(max_attempts):
                try:
                    self.service.push(entry)
                except ExportRejected:
                    continue
                del self._pending[key]
                self.delivered += 1
                delivered += 1
                break
        return delivered
