"""Automated feedback and on-demand hints (the paper's future work).

Section IV-D: "We are exploring an automated feedback approach for
future offerings of the course." Section VIII: "Future work on WebGPU
includes automated feedback to students and on-demand help/hints
during development."

Two mechanisms:

* :class:`FeedbackEngine` — rule-based diagnosis of a failed (or
  inefficient) attempt: compile diagnostics, sandbox outcomes, runtime
  faults, mismatch patterns, and the kernel profile counters are
  mapped to targeted, student-readable advice.
* :class:`HintService` — staged per-lab hints a student can request;
  usage is recorded so instructors can see who needed how many.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.cluster.job import DatasetOutcome, JobResult
from repro.db import Column, ColumnType, Database, Schema
from repro.labs.base import LabDefinition

HINTS_SCHEMA = Schema(columns=[
    Column("user_id", ColumnType.INT),
    Column("lab", ColumnType.TEXT),
    Column("hints_taken", ColumnType.INT, default=0),
], unique=[("user_id", "lab")])

#: Per-lab staged hints; generic defaults apply to unlisted labs.
LAB_HINTS: dict[str, tuple[str, ...]] = {
    "vector-add": (
        "Compute one global index per thread from blockIdx, blockDim, "
        "and threadIdx.",
        "The grid is rounded up to whole blocks — guard with "
        "`if (i < len)`.",
        "Device memory is separate: allocate with cudaMalloc and move "
        "data with cudaMemcpy in both directions.",
    ),
    "tiled-matmul": (
        "Each thread loads exactly one element of each tile per phase.",
        "Zero-fill tile entries that fall outside the matrices instead "
        "of skipping the store.",
        "Keep both __syncthreads() calls outside any divergent branch.",
    ),
    "reduction-scan": (
        "Kogge-Stone needs a barrier between reading a neighbour and "
        "overwriting your own slot.",
        "The last thread of each block owns writing the block total "
        "into the auxiliary array.",
        "The add-aux kernel must skip block 0.",
    ),
    "image-equalization": (
        "Build the histogram in __shared__ memory first, then merge "
        "into the global histogram once per block.",
        "Cast the pixel to int before using it as a bin index.",
    ),
    "bfs-queuing": (
        "atomicCAS(levels + v, -1, depth) returns -1 only for the "
        "thread that discovered v — only that thread may enqueue it.",
        "Reserve a queue slot with atomicAdd on the tail counter.",
    ),
}

GENERIC_HINTS: tuple[str, ...] = (
    "Re-read the lab description: the dataset shapes and grading "
    "rubric constrain the kernel signature.",
    "Test against the smallest dataset first; its mismatch report "
    "names exact indices.",
    "Check every global access against the allocation's extent.",
)


@dataclass(frozen=True)
class Feedback:
    """One piece of automated advice."""

    category: str      # compile | security | runtime | correctness | perf
    message: str

    def __str__(self) -> str:
        return f"[{self.category}] {self.message}"


class FeedbackEngine:
    """Maps a graded attempt to targeted advice (no humans involved —
    the paper's point is exactly that staff does not scale)."""

    def analyze(self, lab: LabDefinition, result: JobResult) -> list[Feedback]:
        feedback: list[Feedback] = []
        if not result.compile_ok:
            feedback.extend(self._compile_feedback(result.compile_message))
            return feedback
        for outcome in result.datasets:
            feedback.extend(self._dataset_feedback(lab, outcome))
        return _dedup(feedback)

    # -- compile-stage rules ------------------------------------------------

    def _compile_feedback(self, message: str) -> list[Feedback]:
        out: list[Feedback] = []
        if "blacklisted" in message:
            out.append(Feedback(
                "security",
                "Your code contains a construct WebGPU refuses at compile "
                "time (e.g. inline assembly or process control). Remove it "
                "— it is never needed for the labs, even in comments."))
            return out
        if "undeclared identifier" in message:
            name = _first_quoted(message)
            out.append(Feedback(
                "compile",
                f"'{name}' is used before any declaration — check the "
                "spelling and that the declaration is in scope."))
        if "expects" in message and "argument" in message:
            out.append(Feedback(
                "compile",
                "An argument count does not match the function's "
                "signature — compare your call against the skeleton's "
                "declaration."))
        if "kernels are launched with" in message:
            out.append(Feedback(
                "compile",
                "Kernels are not called like functions: use the "
                "name<<<grid, block>>>(args) launch syntax."))
        if "__shared__" in message:
            out.append(Feedback(
                "compile",
                "__shared__ memory only exists inside device code — "
                "declare the array inside the kernel."))
        if not out:
            out.append(Feedback(
                "compile",
                "Fix the compiler diagnostics top-down; later errors are "
                "often cascades of the first one. The line:column numbers "
                "refer to your preprocessed source."))
        return out

    # -- run-stage rules ----------------------------------------------------------

    def _dataset_feedback(self, lab: LabDefinition,
                          outcome: DatasetOutcome) -> list[Feedback]:
        out: list[Feedback] = []
        report = outcome.report
        if outcome.outcome == "syscall_killed":
            out.append(Feedback(
                "security",
                "Your program invoked a system call outside the lab's "
                "whitelist (file or network access); the sandbox killed "
                "it. Labs never require I/O beyond wb* functions."))
            return out
        if outcome.outcome == "run_timeout":
            out.append(Feedback(
                "runtime",
                "Execution exceeded the lab's time limit. Look for a loop "
                "whose condition never becomes false — commonly a stride "
                "that is zero or an index that is never advanced."))
            return out
        if outcome.outcome == "runtime_error":
            if "out of bounds" in report:
                out.append(Feedback(
                    "runtime",
                    "A memory access fell outside its allocation "
                    f"({_first_sentence(report)}). The usual cause is a "
                    "missing boundary check for the last, partial block."))
            elif "__syncthreads" in report or "barrier" in report.lower():
                out.append(Feedback(
                    "runtime",
                    "Threads of one block disagreed about reaching "
                    "__syncthreads(). Barriers must be executed by every "
                    "thread of the block: move them out of `if` bodies "
                    "that depend on the thread index."))
            elif "device pointer" in report:
                out.append(Feedback(
                    "runtime",
                    "Host code dereferenced a device pointer. Device "
                    "memory is only reachable from kernels; copy results "
                    "back with cudaMemcpy(..., cudaMemcpyDeviceToHost)."))
            elif "host pointer" in report:
                out.append(Feedback(
                    "runtime",
                    "A kernel received a host pointer. Allocate a device "
                    "buffer with cudaMalloc and pass that instead."))
            else:
                out.append(Feedback(
                    "runtime", f"The program crashed: "
                               f"{_first_sentence(report)}"))
            return out
        if outcome.outcome == "ok" and not outcome.correct:
            out.append(self._mismatch_feedback(report))
        if outcome.correct:
            out.extend(self._performance_feedback(outcome.profile))
            out.extend(self._line_feedback(outcome))
        return out

    def _mismatch_feedback(self, report: str) -> Feedback:
        if "No solution was recorded" in report:
            return Feedback(
                "correctness",
                "The program never called wbSolution() — keep the final "
                "call from the skeleton so grading can see your output.")
        match = re.search(r"\((\d+)/(\d+) elements differ\)", report)
        fraction = None
        if match:
            fraction = int(match.group(1)) / int(match.group(2))
        if fraction is not None and fraction > 0.9:
            return Feedback(
                "correctness",
                "Nearly every element is wrong — the kernel's core "
                "computation (or the data movement around it) is off, "
                "not just an edge case. Verify the indexing formula on "
                "paper for a 2x2 example.")
        return Feedback(
            "correctness",
            "Only some elements mismatch — this is the signature of a "
            "boundary problem: the first/last elements, the last partial "
            "block or tile, or halo cells. The report's indices tell you "
            "which region to look at: " + _first_sentence(report))

    def _performance_feedback(self, profile: dict[str, float]) -> list[Feedback]:
        out: list[Feedback] = []
        if not profile:
            return out
        if profile.get("load_efficiency", 1.0) < 0.30 \
                and profile.get("load_transactions", 0) > 16:
            out.append(Feedback(
                "perf",
                "Global loads are badly uncoalesced (efficiency "
                f"{profile['load_efficiency']:.0%}). Make consecutive "
                "threads read consecutive addresses — swap the roles of "
                "threadIdx.x and threadIdx.y in the index if needed."))
        if profile.get("bank_conflicts", 0) > \
                0.25 * max(1.0, profile.get("shared_accesses", 0)) \
                and profile.get("shared_accesses", 0) > 64:
            out.append(Feedback(
                "perf",
                "Shared-memory bank conflicts are serialising your warps "
                "— pad the tile's inner dimension by one element."))
        if profile.get("max_atomic_contention", 0) > 64:
            out.append(Feedback(
                "perf",
                "Many threads hit the same address with atomics "
                f"(contention {profile['max_atomic_contention']:.0f}). "
                "Privatize the accumulator in shared memory and merge "
                "once per block."))
        return out

    def _line_feedback(self, outcome: DatasetOutcome) -> list[Feedback]:
        """Profile-guided advice naming the exact source line — the
        whole-kernel rules above say *what* is slow; the line ledger
        says *where*."""
        out: list[Feedback] = []
        for violation in outcome.budget_violations:
            out.append(Feedback(
                "perf", "Line budget exceeded — " + violation.describe()))
        profile = outcome.line_profile
        if profile is None:
            return out
        total_instr = max(1, profile.total_instructions)
        for line, counters in profile.top_lines(3):
            if counters.bank_conflicts > 32:
                out.append(Feedback(
                    "perf",
                    f"Line {line} causes {counters.bank_conflicts} "
                    "shared-memory bank-conflict replays — pad the "
                    "tile's inner dimension by one element."))
            if counters.divergent_branches > 32:
                out.append(Feedback(
                    "perf",
                    f"The branch on line {line} diverged "
                    f"{counters.divergent_branches} times within warps "
                    "— both arms execute for every mixed warp. Sort "
                    "the work or restructure the condition so whole "
                    "warps take the same arm."))
            loads = counters.global_load_transactions
            if loads and counters.instructions \
                    and loads * 64 > total_instr:
                out.append(Feedback(
                    "perf",
                    f"Line {line} issues {loads} global-load "
                    "transactions — a hot loop body reading global "
                    "memory every iteration. Stage the data in "
                    "__shared__ or a register outside the loop."))
        return _dedup(out)


class HintService:
    """On-demand, staged hints with per-student usage tracking."""

    def __init__(self, db: Database):
        self.db = db
        if not db.has_table("hints_taken"):
            db.create_table("hints_taken", HINTS_SCHEMA)

    def hints_for(self, lab: LabDefinition) -> tuple[str, ...]:
        return LAB_HINTS.get(lab.slug, GENERIC_HINTS)

    def next_hint(self, user_id: int, lab: LabDefinition) -> str | None:
        """Reveal the next hint (None when exhausted)."""
        hints = self.hints_for(lab)
        row = self.db.find_one("hints_taken", user_id=user_id, lab=lab.slug)
        taken = row["hints_taken"] if row else 0
        if taken >= len(hints):
            return None
        if row:
            self.db.update("hints_taken", row["id"], hints_taken=taken + 1)
        else:
            self.db.insert("hints_taken", user_id=user_id, lab=lab.slug,
                           hints_taken=1)
        return hints[taken]

    def hints_taken(self, user_id: int, lab_slug: str) -> int:
        row = self.db.find_one("hints_taken", user_id=user_id, lab=lab_slug)
        return row["hints_taken"] if row else 0


def _first_quoted(message: str) -> str:
    match = re.search(r"'([^']+)'", message)
    return match.group(1) if match else "?"


def _first_sentence(text: str) -> str:
    line = text.splitlines()[0] if text else ""
    return line[:160]


def _dedup(items: list[Feedback]) -> list[Feedback]:
    seen: set[str] = set()
    out: list[Feedback] = []
    for item in items:
        if item.message not in seen:
            seen.add(item.message)
            out.append(item)
    return out
