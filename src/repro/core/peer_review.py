"""Peer review with random assignment (paper Section IV-D).

"Each student was assigned three other random students' labs with 10%
of the lab's grade given to the completion of the peer reviews. ...
Due to the random assignments, many students were offering reviews
without receiving them. The high drop rate at the beginning of the
course caused low probability of an active student being assigned an
active peer reviewer."

The engine reproduces both the mechanism and the failure mode: the
starvation analysis that justified the 10% -> 5% -> phase-out is
measured in the peer-review benchmark.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.db import Column, ColumnType, Database, Schema

REVIEWS_SCHEMA = Schema(columns=[
    Column("lab", ColumnType.TEXT),
    Column("reviewer_id", ColumnType.INT),
    Column("author_id", ColumnType.INT),
    Column("completed", ColumnType.BOOL, default=False),
    Column("comments", ColumnType.TEXT, default=""),
], indexes=[("lab", "reviewer_id"), ("lab", "author_id")])


@dataclass(frozen=True)
class ReviewAssignment:
    assignment_id: int
    lab: str
    reviewer_id: int
    author_id: int
    completed: bool = False
    comments: str = ""


@dataclass
class StarvationReport:
    """How many active students actually received reviews."""

    lab: str
    active_students: int
    reviews_assigned: int
    reviews_completed: int
    active_receiving_review: int

    @property
    def starvation_rate(self) -> float:
        """Fraction of active students who got no completed review."""
        if self.active_students == 0:
            return 0.0
        return 1.0 - self.active_receiving_review / self.active_students


class PeerReviewEngine:
    """Random assignment, completion credit, starvation measurement."""

    def __init__(self, db: Database, reviews_per_student: int = 3,
                 grade_weight: float = 0.10, seed: int = 0):
        self.db = db
        self.reviews_per_student = reviews_per_student
        self.grade_weight = grade_weight
        self._rng = random.Random(seed)
        if not db.has_table("peer_reviews"):
            db.create_table("peer_reviews", REVIEWS_SCHEMA)

    def assign(self, lab: str, submitters: list[int]) -> list[ReviewAssignment]:
        """Assign each submitter ``reviews_per_student`` random peers.

        Assignment is over everyone who *submitted* — exactly the
        paper's design, which is why later drop-out starves actives.
        """
        assignments: list[ReviewAssignment] = []
        for reviewer in submitters:
            peers = [s for s in submitters if s != reviewer]
            if not peers:
                continue
            count = min(self.reviews_per_student, len(peers))
            for author in self._rng.sample(peers, count):
                row_id = self.db.insert("peer_reviews", lab=lab,
                                        reviewer_id=reviewer,
                                        author_id=author)
                assignments.append(self._to_assignment(
                    self.db.get("peer_reviews", row_id)))
        return assignments

    def complete(self, assignment_id: int, comments: str = "") -> None:
        """Mark a review done. "Points were assigned for completing the
        peer review and did not impact student's grade." """
        self.db.update("peer_reviews", assignment_id, completed=True,
                       comments=comments)

    def assignments_for(self, lab: str, reviewer_id: int) -> list[ReviewAssignment]:
        return [self._to_assignment(r) for r in self.db.find(
            "peer_reviews", lab=lab, reviewer_id=reviewer_id)]

    def reviews_received(self, lab: str, author_id: int) -> list[ReviewAssignment]:
        return [self._to_assignment(r) for r in self.db.find(
            "peer_reviews", lab=lab, author_id=author_id)]

    def completion_credit(self, lab: str, reviewer_id: int) -> float:
        """Fraction of assigned reviews this student completed (the
        grade_weight multiplier applies to this)."""
        assigned = self.assignments_for(lab, reviewer_id)
        if not assigned:
            return 0.0
        return sum(1 for a in assigned if a.completed) / len(assigned)

    def simulate_completion(self, lab: str,
                            active_students: set[int]) -> None:
        """Active reviewers complete their reviews; dropped ones don't —
        the mechanism behind starvation."""
        for row in self.db.find("peer_reviews", lab=lab):
            if row["reviewer_id"] in active_students and not row["completed"]:
                self.db.update("peer_reviews", row["id"], completed=True,
                               comments="(review)")

    def starvation(self, lab: str,
                   active_students: set[int]) -> StarvationReport:
        """Measure how many active students received a completed review."""
        rows = self.db.find("peer_reviews", lab=lab)
        completed = [r for r in rows if r["completed"]]
        received = {r["author_id"] for r in completed}
        return StarvationReport(
            lab=lab,
            active_students=len(active_students),
            reviews_assigned=len(rows),
            reviews_completed=len(completed),
            active_receiving_review=len(active_students & received))

    @staticmethod
    def _to_assignment(row: dict) -> ReviewAssignment:
        return ReviewAssignment(
            assignment_id=row["id"], lab=row["lab"],
            reviewer_id=row["reviewer_id"], author_id=row["author_id"],
            completed=row["completed"], comments=row["comments"])
