"""Instructor tools: roster, comments, grade overrides (Section IV-F).

"Figure 5 shows the class roster view. This shows all students with a
submission attempt for the Lab. Through the Roster interface, the
instructor navigates to a student submission and reviews their code
history, submission history, grades, and short-answer submissions. The
instructor is able to comment on student's code and questions."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.gradebook import GradeBook
from repro.core.history import RevisionStore
from repro.core.submission import AttemptStore, SubmissionKind
from repro.core.users import User, UserStore
from repro.db import Column, ColumnType, Database, Schema

COMMENTS_SCHEMA = Schema(columns=[
    Column("instructor_id", ColumnType.INT),
    Column("user_id", ColumnType.INT),
    Column("lab", ColumnType.TEXT),
    Column("target", ColumnType.TEXT, default="code"),  # code | question
    Column("text", ColumnType.TEXT),
    Column("created_at", ColumnType.FLOAT),
], indexes=[("user_id", "lab")])


@dataclass(frozen=True)
class RosterRow:
    """One roster line (Figure 5's columns)."""

    user_id: int
    name: str
    email: str
    attempts: int
    last_submission_at: float | None
    program_grade: float | None
    question_grade: float | None
    total_grade: float | None


class InstructorTools:
    """Everything the teaching staff does through a browser."""

    def __init__(self, db: Database, users: UserStore,
                 attempts: AttemptStore, revisions: RevisionStore,
                 gradebook: GradeBook):
        self.db = db
        self.users = users
        self.attempts = attempts
        self.revisions = revisions
        self.gradebook = gradebook
        if not db.has_table("comments"):
            db.create_table("comments", COMMENTS_SCHEMA)

    def _require_staff(self, user: User) -> None:
        if not user.is_staff:
            raise PermissionError(
                f"{user.email} is not on the teaching staff")

    def roster(self, instructor: User, lab: str) -> list[RosterRow]:
        """All students with a submission attempt for the lab."""
        self._require_staff(instructor)
        by_user: dict[int, list] = {}
        for attempt in self.attempts.for_lab(lab):
            by_user.setdefault(attempt.user_id, []).append(attempt)
        rows = []
        for user_id, user_attempts in sorted(by_user.items()):
            student = self.users.get(user_id)
            grade = self.gradebook.get(user_id, lab)
            submissions = [a for a in user_attempts
                           if a.kind is SubmissionKind.GRADE]
            rows.append(RosterRow(
                user_id=user_id, name=student.name, email=student.email,
                attempts=len(user_attempts),
                last_submission_at=max(
                    (a.submitted_at for a in submissions), default=None),
                program_grade=grade.program_points if grade else None,
                question_grade=grade.question_points if grade else None,
                total_grade=grade.total_points if grade else None))
        return rows

    def student_detail(self, instructor: User, user_id: int,
                       lab: str) -> dict:
        """Drill-down: code history, attempts, grade, answers."""
        self._require_staff(instructor)
        return {
            "user": self.users.get(user_id),
            "revisions": self.revisions.history(user_id, lab),
            "attempts": self.attempts.for_user_lab(user_id, lab),
            "grade": self.gradebook.get(user_id, lab),
            "answers": self.attempts.answers(user_id, lab),
            "comments": self.comments_for(user_id, lab),
        }

    def comment(self, instructor: User, user_id: int, lab: str, text: str,
                now: float, target: str = "code") -> int:
        self._require_staff(instructor)
        if target not in ("code", "question"):
            raise ValueError(f"invalid comment target {target!r}")
        return self.db.insert(
            "comments", instructor_id=instructor.user_id, user_id=user_id,
            lab=lab, target=target, text=text, created_at=now)

    def comments_for(self, user_id: int, lab: str) -> list[dict]:
        return self.db.find("comments", user_id=user_id, lab=lab)

    def override_grade(self, instructor: User, user_id: int, lab: str,
                       total_points: float, reason: str, now: float):
        self._require_staff(instructor)
        return self.gradebook.override(user_id, lab, total_points, reason,
                                       now)
