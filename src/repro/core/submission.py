"""Attempts and submissions (the Attempts view's data).

An *attempt* is any compile/run/grade the student triggered; every one
is stored with its result so the Attempts view can show "the result of
every time the code has been run against one of the test data sets"
including what the code looked like at that moment.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.cluster.job import JobResult
from repro.db import Column, ColumnType, Database, Schema


class SubmissionKind(enum.Enum):
    COMPILE = "compile"
    RUN = "run"
    GRADE = "grade"


ATTEMPTS_SCHEMA = Schema(columns=[
    Column("user_id", ColumnType.INT),
    Column("lab", ColumnType.TEXT),
    Column("kind", ColumnType.TEXT),
    Column("revision_id", ColumnType.INT),
    Column("dataset_index", ColumnType.INT, default=0),
    Column("submitted_at", ColumnType.FLOAT),
    Column("status", ColumnType.TEXT, default=""),
    Column("compile_ok", ColumnType.BOOL, default=False),
    Column("correct", ColumnType.BOOL, default=False),
    Column("report", ColumnType.TEXT, default=""),
    Column("worker", ColumnType.TEXT, default=""),
    Column("service_seconds", ColumnType.FLOAT, default=0.0),
    Column("redeliveries", ColumnType.INT, default=0),
    Column("shared_publicly", ColumnType.BOOL, default=False),
], indexes=[("user_id", "lab"), ("lab",)])

ANSWERS_SCHEMA = Schema(columns=[
    Column("user_id", ColumnType.INT),
    Column("lab", ColumnType.TEXT),
    Column("question_index", ColumnType.INT),
    Column("answer", ColumnType.TEXT),
    Column("answered_at", ColumnType.FLOAT),
], unique=[("user_id", "lab", "question_index")])


@dataclass(frozen=True)
class Attempt:
    attempt_id: int
    user_id: int
    lab: str
    kind: SubmissionKind
    revision_id: int
    dataset_index: int
    submitted_at: float
    status: str
    compile_ok: bool
    correct: bool
    report: str
    worker: str = ""
    service_seconds: float = 0.0
    #: broker deliveries beyond the first (worker crashed mid-job and
    #: the at-least-once queue redelivered the job elsewhere)
    redeliveries: int = 0
    shared_publicly: bool = False


class AttemptStore:
    """Persistence for attempts and short-answer responses."""

    def __init__(self, db: Database):
        self.db = db
        if not db.has_table("attempts"):
            db.create_table("attempts", ATTEMPTS_SCHEMA)
        if not db.has_table("answers"):
            db.create_table("answers", ANSWERS_SCHEMA)

    def record(self, user_id: int, lab: str, kind: SubmissionKind,
               revision_id: int, dataset_index: int, now: float,
               result: JobResult) -> Attempt:
        report_parts = []
        if not result.compile_ok:
            report_parts.append(result.compile_message)
        for d in result.datasets:
            report_parts.append(f"[dataset {d.dataset_index}] "
                                f"{d.outcome}: {d.report}")
        attempt_id = self.db.insert(
            "attempts", user_id=user_id, lab=lab, kind=kind.value,
            revision_id=revision_id, dataset_index=dataset_index,
            submitted_at=now, status=result.status.value,
            compile_ok=result.compile_ok,
            correct=result.all_correct if kind is not SubmissionKind.COMPILE
            else result.compile_ok,
            report="\n".join(p for p in report_parts if p),
            worker=result.worker_name,
            service_seconds=result.service_seconds,
            redeliveries=int(result.extra.get("redeliveries", 0)))
        return self.get(attempt_id)

    def get(self, attempt_id: int) -> Attempt:
        return self._to_attempt(self.db.get("attempts", attempt_id))

    def for_user_lab(self, user_id: int, lab: str) -> list[Attempt]:
        """Newest first, as the Attempts view lists them."""
        rows = self.db.find("attempts", user_id=user_id, lab=lab)
        rows.sort(key=lambda r: (r["submitted_at"], r["id"]), reverse=True)
        return [self._to_attempt(r) for r in rows]

    def for_lab(self, lab: str) -> list[Attempt]:
        return [self._to_attempt(r) for r in self.db.find("attempts", lab=lab)]

    def share_publicly(self, attempt_id: int, deadline: float | None,
                       now: float) -> str:
        """Generate a public link — allowed only after the deadline
        ("A student can generate a public link to their attempt once
        the lab deadline has passed")."""
        if deadline is not None and now < deadline:
            raise PermissionError(
                "attempts cannot be shared before the lab deadline")
        self.db.update("attempts", attempt_id, shared_publicly=True)
        return f"/shared/attempt/{attempt_id}"

    # -- short-answer questions -----------------------------------------

    def save_answer(self, user_id: int, lab: str, question_index: int,
                    answer: str, now: float) -> None:
        existing = self.db.find_one("answers", user_id=user_id, lab=lab,
                                    question_index=question_index)
        if existing is not None:
            self.db.update("answers", existing["id"], answer=answer,
                           answered_at=now)
        else:
            self.db.insert("answers", user_id=user_id, lab=lab,
                           question_index=question_index, answer=answer,
                           answered_at=now)

    def answers(self, user_id: int, lab: str) -> dict[int, str]:
        return {r["question_index"]: r["answer"]
                for r in self.db.find("answers", user_id=user_id, lab=lab)}

    @staticmethod
    def _to_attempt(row: dict) -> Attempt:
        return Attempt(
            attempt_id=row["id"], user_id=row["user_id"], lab=row["lab"],
            kind=SubmissionKind(row["kind"]), revision_id=row["revision_id"],
            dataset_index=row["dataset_index"],
            submitted_at=row["submitted_at"], status=row["status"],
            compile_ok=row["compile_ok"], correct=row["correct"],
            report=row["report"], worker=row["worker"],
            service_seconds=row["service_seconds"],
            redeliveries=row["redeliveries"],
            shared_publicly=row["shared_publicly"])
