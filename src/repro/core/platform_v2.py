"""The WebGPU 2.0 facade: Figure 6 wired together.

Same course/grading/student logic as v1, but the job path is the new
architecture: the (OpenEdx-style) frontend publishes jobs to a
zone-replicated message broker; tag-matched worker drivers *pull* jobs,
run them in pooled containers, and report metrics to a replicated
database; lab datasets live in an S3-style object store accessible to
both the instructor tooling and the workers.
"""

from __future__ import annotations

import io
from typing import Callable

import numpy as np

from repro.broker import (
    ConfigServer,
    ContainerPool,
    Dashboard,
    DeliveryPolicy,
    MessageBroker,
    WorkerDriver,
)
from repro.broker.containers import (
    CUDA_IMAGE,
    OPENACC_IMAGE,
    OPENCL_IMAGE,
    ContainerImage,
)
from repro.cluster import GpuWorker, WorkerConfig
from repro.cluster.job import Job, JobKind, JobResult, JobStatus
from repro.cluster.node import Clock, ManualClock
from repro.cluster.result_cache import PlatformCaches
from repro.core.gradebook import GradeEntry
from repro.core.platform import PlatformError, WebGPU
from repro.core.users import User
from repro.db import Database, ReplicatedDatabase
from repro.fabric import BrokerFabric, FabricConfig
from repro.storage import ObjectStore
from repro.telemetry import NULL_SPAN, Telemetry, requirement_tag

#: Images every v2 worker carries unless configured otherwise.
DEFAULT_IMAGES: tuple[ContainerImage, ...] = (CUDA_IMAGE, OPENCL_IMAGE)


class WebGPU2(WebGPU):
    """WebGPU 2.0: broker + pull workers + object store (Figure 6)."""

    def __init__(self, clock: Clock | None = None, num_workers: int = 2,
                 worker_config: WorkerConfig | None = None,
                 db: Database | None = None,
                 grade_exporter: Callable[[GradeEntry], None] | None = None,
                 rate_per_minute: float = 6.0,
                 zones: tuple[str, ...] = ("us-east-1a", "us-east-1b"),
                 images: tuple[ContainerImage, ...] = DEFAULT_IMAGES,
                 caches: "PlatformCaches | None" = None,
                 delivery: DeliveryPolicy | None = None,
                 telemetry: "Telemetry | None" = None,
                 fabric: FabricConfig | None = None):
        self.zones = zones
        self.images = images
        # resolve clock + telemetry before the broker: the broker (and
        # every driver it hands jobs to) shares the platform's bundle
        clock = clock or ManualClock()
        telemetry = (telemetry if telemetry is not None
                     else Telemetry(clock=clock))
        self.fabric_config = fabric
        if fabric is not None:
            # sharded fabric: consistent-hash shards with replica
            # failover, batched delivery I/O, and deadline-aware
            # admission replacing the single zone-replicated queue
            self.broker = BrokerFabric.from_config(
                fabric, policy=delivery, telemetry=telemetry)
            self._batch_size = fabric.batch_size
        else:
            self.broker = MessageBroker(zones=zones, policy=delivery,
                                        telemetry=telemetry)
            self._batch_size = 1
        self.config_server = ConfigServer()
        self.metrics = ReplicatedDatabase("metrics")
        for zone in zones:
            self.metrics.add_replica(zone)
        self.object_store = ObjectStore()
        self.dataset_bucket = self.object_store.create_bucket("webgpu-datasets")
        self.drivers: list[WorkerDriver] = []
        # base __init__ calls add_worker(), which we override to create
        # drivers, so broker/config/metrics must exist first (above)
        super().__init__(clock=clock, num_workers=num_workers,
                         worker_config=worker_config, db=db,
                         grade_exporter=grade_exporter,
                         rate_per_minute=rate_per_minute, caches=caches,
                         telemetry=telemetry)
        self.dashboard = Dashboard(self.metrics.primary, self.broker,
                                   caches=self.caches,
                                   telemetry=self.telemetry)

    # -- fleet ------------------------------------------------------------------

    def add_worker(self, config: WorkerConfig | None = None,
                   zone: str | None = None) -> GpuWorker:
        """v2 workers are drivers pulling from the broker. Each node
        carries only the container images its tags call for (the point
        of tag matching: no node needs "the highest common multiple of
        the system requirements of the labs")."""
        cfg = config or self._worker_config
        zone = zone or self.zones[len(self.drivers) % len(self.zones)]
        # the driver consults the grading cache *before* acquiring a
        # container slot, so the worker itself only gets the compile
        # cache (a result-cache hit never reaches it)
        worker = GpuWorker(
            cfg, clock=self.clock, zone=zone,
            compile_cache=self.caches.compile if self.caches else None)
        images = [CUDA_IMAGE]
        if "opencl" in cfg.tags:
            images.append(OPENCL_IMAGE)
        if "openacc" in cfg.tags:
            images.append(OPENACC_IMAGE)
        containers = ContainerPool(images, num_gpus=cfg.num_gpus)
        driver = WorkerDriver(
            worker, self.broker, containers,
            self.config_server, self.metrics.primary,
            clock=self.clock, zone=zone,
            result_cache=self.caches.results if self.caches else None)
        self.drivers.append(driver)
        # the v1 pool/health bookkeeping still tracks fleet membership
        self.worker_pool.register(worker)
        self.health.record(worker.name, self.clock.now())
        return worker

    def remove_worker(self, name: str) -> bool:
        self.drivers = [d for d in self.drivers if d.worker.name != name]
        return super().remove_worker(name)

    def pump(self, max_steps: int = 1000) -> list[JobResult]:
        """Run driver pull loops until the queue drains (or step cap).

        When no driver can make progress but deliveries are still
        pending — leases held by crashed nodes, redeliveries waiting
        out their backoff — simulated time is advanced to the next
        delivery event so redelivery completes within one pump.
        """
        results: list[JobResult] = []
        batched = self._batch_size > 1 and hasattr(self.broker,
                                                   "poll_batch")
        steps = 0
        while steps < max_steps:
            progressed = False
            for driver in self.drivers:
                if batched:
                    batch = driver.step_batch(max_jobs=self._batch_size)
                    steps += 1
                    if batch:
                        results.extend(batch)
                        progressed = True
                else:
                    result = driver.step()
                    steps += 1
                    if result is not None:
                        results.append(result)
                        progressed = True
            if not progressed and not self._advance_delivery():
                break
        return results

    def _advance_delivery(self) -> bool:
        """Drive lease expiry and redelivery backoffs; True if delivery
        state changed (the pump should keep polling)."""
        now = self.clock.now()
        changed = bool(self.broker.expire_leases(now))
        wake = self.broker.next_wakeup(now)
        if wake is not None and hasattr(self.clock, "set"):
            self.clock.set(max(now, wake))
            self.broker.expire_leases(self.clock.now())
            return True
        return changed

    # -- lab authoring through the object store -----------------------------------

    def deploy_lab(self, lab) -> list[str]:
        """Instructor tooling: write the full lab bundle (config.json,
        description, skeleton, solution, datasets) to the S3 bucket —
        the paper's §IV-E deployment artifacts on Figure 6's storage."""
        from repro.labs.config import deploy_lab as _deploy
        return _deploy(self.dataset_bucket, lab)

    def install_lab(self, course_key: str, slug: str):
        """Load a deployed lab bundle from the bucket into a course —
        what makes a lab available to students without code changes."""
        from repro.labs.config import load_lab
        lab = load_lab(self.dataset_bucket, slug)
        self.course(course_key).labs[lab.slug] = lab
        return lab

    # -- dataset authoring through the object store -----------------------------------

    def upload_dataset(self, lab_slug: str, index: int,
                       inputs: dict[str, np.ndarray],
                       expected: np.ndarray) -> list[str]:
        """Instructor tooling writes lab datasets to the S3 bucket
        (Figure 6 item 5: "Lab datasets are stored on an Amazon S3
        Bucket which is accessible by both the OpenEdx instructor and
        the worker nodes")."""
        keys = []
        for name, array in list(inputs.items()) + [("expected", expected)]:
            buffer = io.BytesIO()
            np.save(buffer, array)
            key = f"{lab_slug}/{index}/{name}.npy"
            self.dataset_bucket.put(key, buffer.getvalue())
            keys.append(key)
        return keys

    def fetch_dataset_arrays(self, lab_slug: str,
                             index: int) -> dict[str, np.ndarray]:
        """What a worker does to obtain dataset files."""
        out: dict[str, np.ndarray] = {}
        prefix = f"{lab_slug}/{index}/"
        for key in self.dataset_bucket.list(prefix):
            name = key[len(prefix):-len(".npy")]
            out[name] = np.load(io.BytesIO(self.dataset_bucket.get(key)))
        return out

    # -- job plumbing override: publish + pull instead of push -----------------------------

    def _run_job(self, course_key: str, user: User, lab_slug: str,
                 kind: JobKind, dataset_index: int):
        from repro.core.platform import RateLimited

        self._require_enrolled(course_key, user)
        lab = self._lab_for(course_key, lab_slug)
        self._validate_dataset_index(lab, kind, dataset_index)
        now = self.clock.now()
        if not self.rate_limiter.try_submit(user.email, now):
            raise RateLimited(
                f"{user.email} is submitting too fast; try again shortly")
        revision = self.revisions.latest(user.user_id, lab_slug)
        if revision is None:
            raise PlatformError("no code saved for this lab yet")

        job = Job(lab=lab, source=revision.source, kind=kind,
                  dataset_index=dataset_index, user=user.email,
                  course=course_key, submitted_at=now)
        tracer = self.telemetry.tracer
        root = NULL_SPAN
        if tracer.enabled:
            root = tracer.start_trace("submit", time=now,
                                      job_id=job.job_id, user=user.email,
                                      lab=lab_slug, kind=kind.value)
            job.trace = root.context
        self._last_root = root
        delay_s = 0.0
        if hasattr(self.broker, "admit"):
            decision = self.broker.admit(job, now)
            if decision.action == "shed":
                # admission shed (never a grading job): an honest
                # REJECTED attempt, no broker round-trip spent on it
                root.end(time=now, status=JobStatus.REJECTED.value)
                result = JobResult(
                    job_id=job.job_id, status=JobStatus.REJECTED,
                    error=f"shed by admission control: {decision.reason}")
                result.extra["admission"] = decision.reason
                attempt = self.attempts.record(
                    user.user_id, lab_slug, self._kind_for(kind),
                    revision.revision_id, dataset_index, now, result)
                self._last_results[(user.user_id, lab_slug)] = result
                return attempt, result
            delay_s = decision.delay_s
            self.broker.publish(job, now, delay_s=delay_s)
        else:
            self.broker.publish(job, now)
        results = self.pump()
        result = next((r for r in results if r.job_id == job.job_id), None)
        if result is None:
            dead = self.broker.dead_letter(job.job_id)
            if dead is not None:
                # poison job: every delivery attempt crashed a node —
                # surface an honest FAILED attempt with the history
                history = "; ".join(
                    f"attempt {f['attempt']}: {f['reason']}"
                    for f in job.delivery.failures)
                result = JobResult(
                    job_id=job.job_id, status=JobStatus.FAILED,
                    error=f"dead-lettered after {job.delivery.attempts} "
                          f"delivery attempt(s): {history}")
                result.extra["dead_lettered"] = True
                result.extra["attempts"] = job.delivery.attempts
                result.extra["redeliveries"] = job.delivery.redeliveries
            else:
                # no matching worker: cancel the job so a capable
                # worker added later does not grade an orphan nobody
                # is waiting for
                self.broker.cancel(job.job_id)
                suffix = (f" after {job.delivery.attempts} failed delivery "
                          "attempt(s)" if job.delivery.attempts else "")
                result = JobResult(
                    job_id=job.job_id, status=JobStatus.FAILED,
                    error="no worker in the fleet can satisfy this job's "
                          f"requirements ({sorted(job.requirements)})"
                          f"{suffix}")
        root.end(time=max(self.clock.now(), result.finished_at),
                 status=result.status.value)
        attempt = self.attempts.record(
            user.user_id, lab_slug, self._kind_for(kind),
            revision.revision_id, dataset_index, now, result)
        self._last_results[(user.user_id, lab_slug)] = result
        return attempt, result
