"""The WebGPU platform core: courses, students, labs, grading.

This is the paper's "web-server" logic (Sections III-A, IV): the six
student actions (edit, compile, run-against-dataset, answer questions,
submit for grading, view history), automatic grading against the
instructor rubric, the gradebook with external export, peer review,
and the instructor tools.

Two facades assemble the platform:

* :class:`repro.core.platform.WebGPU` — the original architecture
  (Figure 2): the web-server pushes jobs to a worker pool and tracks
  worker health itself.
* :class:`repro.core.platform_v2.WebGPU2` — the 2.0 architecture
  (Figure 6): jobs go to a replicated message broker; tag-matched
  worker drivers pull them; datasets live in an object store.
"""

from repro.core.users import Role, User, UserStore
from repro.core.course import Course, CourseOffering, Enrollment
from repro.core.history import RevisionStore
from repro.core.submission import Attempt, AttemptStore, SubmissionKind
from repro.core.grading import GradeBreakdown, Grader
from repro.core.feedback import Feedback, FeedbackEngine, HintService
from repro.core.gradebook import GradeBook, GradeEntry
from repro.core.peer_review import PeerReviewEngine, ReviewAssignment
from repro.core.instructor import InstructorTools, RosterRow
from repro.core.platform import PlatformError, RateLimited, WebGPU
from repro.core.platform_v2 import WebGPU2

__all__ = [
    "Attempt",
    "AttemptStore",
    "Course",
    "CourseOffering",
    "Enrollment",
    "Feedback",
    "FeedbackEngine",
    "HintService",
    "GradeBook",
    "GradeBreakdown",
    "GradeEntry",
    "Grader",
    "InstructorTools",
    "PeerReviewEngine",
    "PlatformError",
    "RateLimited",
    "ReviewAssignment",
    "RevisionStore",
    "Role",
    "RosterRow",
    "SubmissionKind",
    "User",
    "UserStore",
    "WebGPU",
    "WebGPU2",
]
