"""User accounts and roles, backed by the database substrate."""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass

from repro.db import Column, ColumnType, Database, DuplicateKeyError, Schema


class Role(enum.Enum):
    STUDENT = "student"
    INSTRUCTOR = "instructor"
    ADMIN = "admin"


USERS_SCHEMA = Schema(columns=[
    Column("email", ColumnType.TEXT),
    Column("name", ColumnType.TEXT),
    Column("role", ColumnType.TEXT, default=Role.STUDENT.value),
    Column("password_hash", ColumnType.TEXT),
    Column("registered_at", ColumnType.FLOAT, default=0.0),
    Column("device_class", ColumnType.TEXT, default="desktop"),
    Column("active", ColumnType.BOOL, default=True),
], unique=[("email",)])


@dataclass(frozen=True)
class User:
    """A platform account."""

    user_id: int
    email: str
    name: str
    role: Role
    registered_at: float = 0.0
    device_class: str = "desktop"

    @property
    def is_staff(self) -> bool:
        return self.role in (Role.INSTRUCTOR, Role.ADMIN)


def _hash_password(password: str) -> str:
    return hashlib.sha256(("webgpu:" + password).encode()).hexdigest()


class UserStore:
    """Registration and lookup; the paper's open sign-up model."""

    def __init__(self, db: Database):
        self.db = db
        if not db.has_table("users"):
            db.create_table("users", USERS_SCHEMA)

    def register(self, email: str, name: str, password: str,
                 role: Role = Role.STUDENT, now: float = 0.0,
                 device_class: str = "desktop") -> User:
        """Create an account. Anyone may sign up (Section III: 'allowing
        anyone to sign up for the course without verification')."""
        if "@" not in email:
            raise ValueError(f"invalid email {email!r}")
        try:
            user_id = self.db.insert(
                "users", email=email, name=name,
                role=role.value, password_hash=_hash_password(password),
                registered_at=now, device_class=device_class)
        except DuplicateKeyError:
            raise ValueError(f"email {email!r} is already registered") from None
        return self.get(user_id)

    def get(self, user_id: int) -> User:
        row = self.db.get("users", user_id)
        return self._to_user(row)

    def by_email(self, email: str) -> User | None:
        row = self.db.find_one("users", email=email)
        return self._to_user(row) if row else None

    def authenticate(self, email: str, password: str) -> User | None:
        row = self.db.find_one("users", email=email)
        if row is None or row["password_hash"] != _hash_password(password):
            return None
        return self._to_user(row)

    def count(self) -> int:
        return self.db.count("users")

    @staticmethod
    def _to_user(row: dict) -> User:
        return User(user_id=row["id"], email=row["email"], name=row["name"],
                    role=Role(row["role"]),
                    registered_at=row["registered_at"],
                    device_class=row["device_class"])
