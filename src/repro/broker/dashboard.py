"""Administrator dashboard (paper Section VI-A).

"An information dashboard is available to the system administrators to
track the system status." — aggregates the replicated metrics database
and broker state into a status snapshot and a text rendering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.broker.broker import MessageBroker
from repro.db import Database
from repro.telemetry import STAGES


@dataclass
class Dashboard:
    """Reads (possibly replicated) metrics and renders fleet status."""

    metrics_db: Database
    broker: MessageBroker
    #: optional repro.cluster.result_cache.PlatformCaches (or anything
    #: with a ``snapshot()``) for fleet-wide cache counters
    caches: Any = None
    #: optional repro.telemetry.Telemetry for the per-stage latency
    #: breakdown (the broker's bundle on a v2 platform)
    telemetry: Any = None

    def worker_summary(self) -> dict[str, dict[str, float]]:
        """Per-worker job counts, cache hits, service-time totals, and
        derived rates.

        A metrics row whose payload never arrived (``None`` — the
        insert raced a node death) is counted under ``malformed`` and
        contributes to no other field; a worker with only such rows
        reports explicit 0.0 rates rather than dividing by zero.
        """
        out: dict[str, dict[str, float]] = {}
        if not self.metrics_db.has_table("worker_metrics"):
            return out
        for row in self.metrics_db.find("worker_metrics", event="job"):
            entry = out.setdefault(row["worker"], {
                "jobs": 0, "correct": 0, "cache_hits": 0, "service_s": 0.0,
                "queue_wait_s": 0.0, "malformed": 0})
            payload = row["payload"]
            if payload is None:
                entry["malformed"] += 1
                continue
            entry["jobs"] += 1
            entry["correct"] += int(bool(payload.get("correct")))
            entry["cache_hits"] += int(bool(payload.get("cache_hit")))
            entry["service_s"] += float(payload.get("service_s", 0.0))
            entry["queue_wait_s"] += float(payload.get("queue_wait_s", 0.0))
        for entry in out.values():
            jobs = entry["jobs"]
            entry["correct_rate"] = entry["correct"] / jobs if jobs else 0.0
            entry["cache_hit_rate"] = (entry["cache_hits"] / jobs
                                       if jobs else 0.0)
            entry["mean_service_s"] = (entry["service_s"] / jobs
                                       if jobs else 0.0)
            entry["mean_queue_wait_s"] = (entry["queue_wait_s"] / jobs
                                          if jobs else 0.0)
        return out

    def cache_summary(self) -> dict[str, object]:
        """Per-worker grading-cache hit rates + subsystem counters."""
        per_worker = {
            worker: stats["cache_hit_rate"]
            for worker, stats in self.worker_summary().items()}
        summary: dict[str, object] = {"hit_rate_per_worker": per_worker}
        if self.caches is not None:
            summary["stats"] = self.caches.snapshot()
        return summary

    def latency_summary(self, by_tag: bool = False) -> dict[str, dict]:
        """p50/p95/p99 (plus count/mean/min/max) for every pipeline
        stage, optionally nested per requirement tag. Stages with no
        observations yet report an explicit all-zero summary so the
        breakdown always covers the whole pipeline."""
        observed = (self.telemetry.stage_summary(by_tag=by_tag)
                    if self.telemetry is not None else {})
        empty = {"count": 0, "sum": 0.0, "mean": 0.0, "min": 0.0,
                 "max": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}
        out: dict[str, dict] = {}
        for stage in STAGES:
            summary = observed.get(stage)
            out[stage] = dict(empty) if summary is None else summary
            if by_tag:
                out[stage].setdefault("tags", {})
        # a stage outside the fixed vocabulary still shows up
        for stage, summary in observed.items():
            out.setdefault(stage, summary)
        return out

    def health_summary(self) -> dict[str, float]:
        """Latest heartbeat per worker."""
        latest: dict[str, float] = {}
        if not self.metrics_db.has_table("worker_metrics"):
            return latest
        for row in self.metrics_db.find("worker_metrics", event="health"):
            latest[row["worker"]] = max(latest.get(row["worker"], 0.0),
                                        row["timestamp"])
        return latest

    def delivery_summary(self) -> dict[str, object]:
        """At-least-once delivery gauges: leases in flight, redelivered
        and dead-lettered jobs, lease expiries."""
        stats = self.broker.queue.stats
        return {
            "in_flight": self.broker.in_flight_count,
            "acked": stats.acked,
            "nacked": stats.nacked,
            "redelivered": stats.redelivered,
            "expired_leases": stats.expired_leases,
            "dead_lettered": stats.dead_lettered,
            "cancelled": stats.cancelled,
            "dead_letter_jobs": [d.job.job_id
                                 for d in self.broker.dead_letters()],
        }

    def fabric_summary(self) -> dict[str, object] | None:
        """Per-shard depth/lease/DLQ gauges plus batched-I/O savings —
        present only when the broker is a sharded fabric."""
        shard_summary = getattr(self.broker, "shard_summary", None)
        if shard_summary is None:
            return None
        return {
            "shards": shard_summary(),
            "io": self.broker.io_savings(),
        }

    def slo_summary(self) -> dict[str, object] | None:
        """Current SLO burn and the admission controller's posture
        (open / deferring / shedding with per-decision counts)."""
        meter = getattr(self.broker, "slo", None)
        admission = getattr(self.broker, "admission", None)
        if meter is None and admission is None:
            return None
        out: dict[str, object] = {}
        if meter is not None and meter.last is not None:
            out["burn"] = meter.last.burn
            out["p95_s"] = meter.last.p95_s
            out["slo_s"] = meter.policy.queue_wait_p95_slo_s
        if admission is not None:
            out["admission"] = admission.snapshot()
        return out

    def snapshot(self) -> dict[str, object]:
        queue_stats = self.broker.queue.stats
        snap: dict[str, object] = {
            "queue_depth": self.broker.depth(),
            "queue": queue_stats.snapshot(self.broker.depth(),
                                          self.broker.in_flight_count),
            "replicas": self.broker.replica_stats(),
            "delivery": self.delivery_summary(),
            "workers": self.worker_summary(),
            "cache": self.cache_summary(),
            "last_heartbeat": self.health_summary(),
            "latency": self.latency_summary(),
        }
        fabric = self.fabric_summary()
        if fabric is not None:
            snap["fabric"] = fabric
        slo = self.slo_summary()
        if slo is not None:
            snap["slo"] = slo
        return snap

    def render(self) -> str:
        snap = self.snapshot()
        lines = ["=== WebGPU 2.0 dashboard ===",
                 f"queue depth: {snap['queue_depth']} "
                 f"(peak {snap['queue']['peak_depth']}, "
                 f"served {snap['queue']['dequeued']})"]
        for zone, stats in snap["replicas"].items():
            state = "up" if stats["alive"] else "DOWN"
            lines.append(f"  broker[{zone}]: {state} "
                         f"pub={stats['publishes']} poll={stats['polls']}")
        fabric = snap.get("fabric")
        if fabric is not None:
            lines.append("  shards:")
            for name, shard in fabric["shards"].items():
                lines.append(
                    f"    {name} [{shard['replica']}]: "
                    f"depth={shard['depth']} "
                    f"leased={shard['in_flight']} dlq={shard['dead_letters']} "
                    f"failovers={shard['failovers']}")
            saved = sum(op["saved"] for op in fabric["io"].values())
            lines.append(f"  batched I/O: {saved} round-trips saved")
        slo = snap.get("slo")
        if slo is not None:
            if "burn" in slo:
                lines.append(
                    f"  slo: p95 queue wait {slo['p95_s']:.1f}s "
                    f"/ {slo['slo_s']:.0f}s target "
                    f"= {slo['burn']:.2f}x burn")
            admission = slo.get("admission")
            if admission:
                lines.append(
                    f"  admission: {admission['state'].upper()} "
                    f"(admitted={admission['admitted']} "
                    f"deferred={admission['deferred']} "
                    f"shed={admission['shed']})")
        delivery = snap["delivery"]
        lines.append(f"  delivery: {delivery['in_flight']} in-flight, "
                     f"{delivery['redelivered']} redelivered, "
                     f"{delivery['dead_lettered']} dead-lettered "
                     f"({delivery['expired_leases']} lease expiries)")
        lines.append("  stage latency (p50/p95/p99, seconds):")
        for stage, summary in snap["latency"].items():
            lines.append(
                f"    {stage:<18} {summary['p50']:.4f} / "
                f"{summary['p95']:.4f} / {summary['p99']:.4f} "
                f"(n={int(summary['count'])})")
        cache = snap["cache"]
        for worker, stats in sorted(snap["workers"].items()):
            jobs = int(stats["jobs"])
            ok = int(stats["correct"])
            mean_wait = stats["mean_queue_wait_s"]
            hit_rate = cache["hit_rate_per_worker"].get(worker, 0.0)
            lines.append(f"  {worker}: {jobs} job(s), {ok} correct, "
                         f"mean wait {mean_wait:.2f}s, "
                         f"cache hit-rate {hit_rate:.0%}")
        if "stats" in cache:
            results = cache["stats"].get("results", {})
            compiles = cache["stats"].get("compile", {})
            lines.append(
                f"  caches: grading {results.get('hit_rate', 0.0):.0%} hit "
                f"({int(results.get('entries', 0))} entries, "
                f"{int(results.get('cas_bytes', 0))} B), "
                f"compile {compiles.get('hit_rate', 0.0):.0%} hit, "
                f"{results.get('seconds_saved', 0.0):.1f}s saved")
        return "\n".join(lines)
