"""Remote configuration server (paper Figure 7, item 3).

"The worker node is also connected to a remote configuration system.
This allows all worker nodes to be remotely configured uniformly. A
change in the remote configuration triggers the worker node to restart
the main driver."
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any


@dataclass(frozen=True)
class WorkerRemoteConfig:
    """The uniform fleet configuration, versioned."""

    version: int = 1
    poll_interval_s: float = 1.0
    warm_containers_per_image: int = 1
    health_interval_s: float = 10.0
    max_jobs_before_recycle: int = 1000
    extra: tuple[tuple[str, Any], ...] = ()


class ConfigServer:
    """Versioned config store the whole fleet reads."""

    def __init__(self, initial: WorkerRemoteConfig | None = None):
        self._config = initial or WorkerRemoteConfig()
        self.history: list[WorkerRemoteConfig] = [self._config]

    @property
    def current(self) -> WorkerRemoteConfig:
        return self._config

    @property
    def version(self) -> int:
        return self._config.version

    def update(self, **changes: Any) -> WorkerRemoteConfig:
        """Publish a new config version with the given field changes."""
        self._config = replace(self._config,
                               version=self._config.version + 1, **changes)
        self.history.append(self._config)
        return self._config

    def fetch_if_newer(self, known_version: int) -> WorkerRemoteConfig | None:
        """What a worker's config poll does: new config or nothing."""
        if self._config.version > known_version:
            return self._config
        return None
