"""Automatic worker scaling for the v2 fleet (paper Section VI-A).

"The worker nodes are automatically scaled" — possible precisely
because workers *pull*: adding a node is just another poller, removing
one is letting it finish and stop polling. The :class:`FleetManager`
adds/retires drivers against min/max bounds with a cooldown, driven by
one of two control signals:

* **legacy depth mode** (default): broker queue depth and oldest-job
  age against fixed thresholds — reactive, but blind to whether the
  backlog is actually hurting students;
* **SLO-burn mode** (pass ``slo=SLOPolicy(...)``): the observed p95
  queue wait from the PR 4 telemetry divided by the SLO target,
  multiplicative-increase while the SLO burns (a deadline storm can
  double the fleet per cooldown, not inch up one node at a time) and
  additive-decrease once it recovers. The same burn sample feeds the
  optional admission controller, so scaling and load-shedding act on
  one consistent view of the storm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.broker.broker import MessageBroker
from repro.broker.driver import WorkerDriver
from repro.cluster.node import Clock
from repro.cluster.scaling import SLOBurnPolicy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.fabric.admission import AdmissionController
    from repro.fabric.slo import SLOPolicy


@dataclass
class ScaleEvent:
    timestamp: float
    action: str        # "add" | "remove"
    worker: str
    reason: str


class FleetManager:
    """Queue-driven automatic scaling of pull workers.

    Parameters
    ----------
    spawn:
        Factory creating (and registering) one new driver — the
        platform supplies this so new workers join its bookkeeping.
    retire:
        Callback removing a driver from service.
    """

    def __init__(self, broker: MessageBroker, clock: Clock,
                 spawn: Callable[[], WorkerDriver],
                 retire: Callable[[WorkerDriver], None],
                 min_workers: int = 1, max_workers: int = 16,
                 scale_up_depth: int = 4, scale_up_wait_s: float = 30.0,
                 idle_polls_before_retire: int = 50,
                 cooldown_s: float = 60.0,
                 slo: "SLOPolicy | None" = None,
                 burn_policy: SLOBurnPolicy | None = None,
                 admission: "AdmissionController | None" = None):
        if min_workers < 1 or max_workers < min_workers:
            raise ValueError("need 1 <= min_workers <= max_workers")
        self.broker = broker
        self.clock = clock
        self.spawn = spawn
        self.retire = retire
        self.min_workers = min_workers
        self.max_workers = max_workers
        self.scale_up_depth = scale_up_depth
        self.scale_up_wait_s = scale_up_wait_s
        self.idle_polls_before_retire = idle_polls_before_retire
        self.cooldown_s = cooldown_s
        self.drivers: list[WorkerDriver] = []
        self.events: list[ScaleEvent] = []
        self._last_change = float("-inf")
        self._idle_counts: dict[str, int] = {}
        #: SLO-burn mode: meter over the broker's telemetry + the
        #: MIMD sizing policy; None keeps the legacy depth thresholds
        self.meter = None
        self.burn_policy: SLOBurnPolicy | None = None
        self.admission = admission
        if slo is not None:
            from repro.fabric.slo import SLOBurnMeter
            self.meter = SLOBurnMeter(broker.telemetry, slo)
            self.burn_policy = burn_policy or SLOBurnPolicy(
                min_workers=min_workers, max_workers=max_workers,
                cooldown_s=cooldown_s)
            # admission control rides the same burn samples; prefer
            # the broker fabric's own controller when it has one
            if admission is None:
                self.admission = getattr(broker, "admission", None)

    @property
    def size(self) -> int:
        return len(self.drivers)

    def adopt(self, driver: WorkerDriver) -> None:
        """Track an externally-created driver."""
        self.drivers.append(driver)

    def evaluate(self) -> ScaleEvent | None:
        """One scaling decision; call periodically (the admin loop)."""
        if self.meter is not None:
            return self._evaluate_slo()
        now = self.clock.now()
        if now - self._last_change < self.cooldown_s:
            return None

        depth = self.broker.depth()
        oldest = self.broker.queue.oldest_wait(now)
        if (depth >= self.scale_up_depth or oldest >= self.scale_up_wait_s) \
                and self.size < self.max_workers:
            driver = self.spawn()
            self.drivers.append(driver)
            self._last_change = now
            event = ScaleEvent(now, "add", driver.worker.name,
                               f"depth={depth} oldest_wait={oldest:.0f}s")
            self.events.append(event)
            return event

        if depth == 0 and self.size > self.min_workers:
            # retire the driver that has been idle the longest
            idle = [(self._idle_counts.get(d.worker.name, 0), i, d)
                    for i, d in enumerate(self.drivers)]
            idle.sort(key=lambda t: (-t[0], t[1]))
            count, _, victim = idle[0]
            if count >= self.idle_polls_before_retire:
                self.drivers.remove(victim)
                self.retire(victim)
                self._last_change = now
                event = ScaleEvent(now, "remove", victim.worker.name,
                                   f"idle for {count} polls")
                self.events.append(event)
                return event
        return None

    def _evaluate_slo(self) -> ScaleEvent | None:
        """SLO-burn control step: sample the meter, feed admission,
        and move the fleet toward the policy's target size. Unlike the
        one-node-per-cooldown legacy path, a burning SLO may add
        several drivers in one decision."""
        now = self.clock.now()
        sample = self.meter.sample(
            now, stalled_wait_s=self.broker.queue.oldest_wait(now))
        if self.admission is not None:
            self.admission.observe_burn(sample.burn, now)
        decision = self.burn_policy.target_workers(now, sample.burn,
                                                   self.size)
        event: ScaleEvent | None = None
        while self.size < decision.target:
            driver = self.spawn()
            self.drivers.append(driver)
            event = ScaleEvent(now, "add", driver.worker.name,
                               decision.reason)
            self.events.append(event)
        if decision.target < self.size and self.broker.depth() == 0:
            # shrink one at a time, idlest driver first
            idle = sorted(self.drivers, key=lambda d: -self._idle_counts
                          .get(d.worker.name, 0))
            victim = idle[0]
            if self._idle_counts.get(victim.worker.name, 0) \
                    >= self.idle_polls_before_retire:
                self.drivers.remove(victim)
                self.retire(victim)
                event = ScaleEvent(now, "remove", victim.worker.name,
                                   decision.reason)
                self.events.append(event)
        if event is not None:
            self._last_change = now
        return event

    def pump(self) -> int:
        """Step every driver once, tracking idleness; returns jobs done."""
        done = 0
        for driver in list(self.drivers):
            result = driver.step()
            name = driver.worker.name
            if result is None:
                self._idle_counts[name] = self._idle_counts.get(name, 0) + 1
            else:
                self._idle_counts[name] = 0
                done += 1
        return done
