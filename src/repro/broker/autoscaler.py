"""Automatic worker scaling for the v2 fleet (paper Section VI-A).

"The worker nodes are automatically scaled" — possible precisely
because workers *pull*: adding a node is just another poller, removing
one is letting it finish and stop polling. The :class:`FleetManager`
watches broker queue depth and oldest-job age and adds/retires drivers
against min/max bounds with a cooldown.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.broker.broker import MessageBroker
from repro.broker.driver import WorkerDriver
from repro.cluster.node import Clock


@dataclass
class ScaleEvent:
    timestamp: float
    action: str        # "add" | "remove"
    worker: str
    reason: str


class FleetManager:
    """Queue-driven automatic scaling of pull workers.

    Parameters
    ----------
    spawn:
        Factory creating (and registering) one new driver — the
        platform supplies this so new workers join its bookkeeping.
    retire:
        Callback removing a driver from service.
    """

    def __init__(self, broker: MessageBroker, clock: Clock,
                 spawn: Callable[[], WorkerDriver],
                 retire: Callable[[WorkerDriver], None],
                 min_workers: int = 1, max_workers: int = 16,
                 scale_up_depth: int = 4, scale_up_wait_s: float = 30.0,
                 idle_polls_before_retire: int = 50,
                 cooldown_s: float = 60.0):
        if min_workers < 1 or max_workers < min_workers:
            raise ValueError("need 1 <= min_workers <= max_workers")
        self.broker = broker
        self.clock = clock
        self.spawn = spawn
        self.retire = retire
        self.min_workers = min_workers
        self.max_workers = max_workers
        self.scale_up_depth = scale_up_depth
        self.scale_up_wait_s = scale_up_wait_s
        self.idle_polls_before_retire = idle_polls_before_retire
        self.cooldown_s = cooldown_s
        self.drivers: list[WorkerDriver] = []
        self.events: list[ScaleEvent] = []
        self._last_change = float("-inf")
        self._idle_counts: dict[str, int] = {}

    @property
    def size(self) -> int:
        return len(self.drivers)

    def adopt(self, driver: WorkerDriver) -> None:
        """Track an externally-created driver."""
        self.drivers.append(driver)

    def evaluate(self) -> ScaleEvent | None:
        """One scaling decision; call periodically (the admin loop)."""
        now = self.clock.now()
        if now - self._last_change < self.cooldown_s:
            return None

        depth = self.broker.depth()
        oldest = self.broker.queue.oldest_wait(now)
        if (depth >= self.scale_up_depth or oldest >= self.scale_up_wait_s) \
                and self.size < self.max_workers:
            driver = self.spawn()
            self.drivers.append(driver)
            self._last_change = now
            event = ScaleEvent(now, "add", driver.worker.name,
                               f"depth={depth} oldest_wait={oldest:.0f}s")
            self.events.append(event)
            return event

        if depth == 0 and self.size > self.min_workers:
            # retire the driver that has been idle the longest
            idle = [(self._idle_counts.get(d.worker.name, 0), i, d)
                    for i, d in enumerate(self.drivers)]
            idle.sort(key=lambda t: (-t[0], t[1]))
            count, _, victim = idle[0]
            if count >= self.idle_polls_before_retire:
                self.drivers.remove(victim)
                self.retire(victim)
                self._last_change = now
                event = ScaleEvent(now, "remove", victim.worker.name,
                                   f"idle for {count} polls")
                self.events.append(event)
                return event
        return None

    def pump(self) -> int:
        """Step every driver once, tracking idleness; returns jobs done."""
        done = 0
        for driver in list(self.drivers):
            result = driver.step()
            name = driver.worker.name
            if result is None:
                self._idle_counts[name] = self._idle_counts.get(name, 0) + 1
            else:
                self._idle_counts[name] = 0
                done += 1
        return done
