"""The v2 worker driver: pull loop, containers, config, metrics.

Paper Figure 7: the main driver connects the job queue, the metrics/
logging database, and the configuration file server, and maintains the
container pool mapped onto the node's GPUs. "Whereas the web-server
pushed jobs to a worker node in the previous WebGPU architecture, the
current requires the worker node to request a job from the queue."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.broker.broker import MessageBroker
from repro.broker.config_server import ConfigServer, WorkerRemoteConfig
from repro.broker.containers import ContainerPool
from repro.cluster.job import JobResult, JobStatus
from repro.cluster.node import Clock, ManualClock
from repro.cluster.worker import GpuWorker
from repro.db import Column, ColumnType, Database, Schema
from repro.telemetry import Telemetry, requirement_tag

METRICS_SCHEMA = Schema(columns=[
    Column("worker", ColumnType.TEXT),
    Column("timestamp", ColumnType.FLOAT),
    Column("event", ColumnType.TEXT),
    Column("payload", ColumnType.JSON, nullable=True),
], indexes=[("worker",), ("event",)])


def ensure_metrics_table(db: Database) -> None:
    if not db.has_table("worker_metrics"):
        db.create_table("worker_metrics", METRICS_SCHEMA)


@dataclass
class DriverStats:
    polls: int = 0
    empty_polls: int = 0
    jobs: int = 0
    cache_hits: int = 0          # jobs answered without a container slot
    restarts: int = 0
    recycles: int = 0
    acks: int = 0                # deliveries completed and acknowledged
    nacks: int = 0               # deliveries handed back for redelivery
    crashes: int = 0             # jobs the node died holding (lease expires)
    wedged: int = 0              # jobs the node wedged holding (lease expires)
    batches: int = 0             # batched pump ticks that leased work
    renew_rpcs: int = 0          # batched lease-renew round-trips made
    renewed_leases: int = 0      # leases those round-trips covered
    container_seconds: float = 0.0
    queue_wait_total: float = 0.0


class WorkerDriver:
    """One node's driver process (Figure 7, item 4)."""

    def __init__(self, worker: GpuWorker, broker: MessageBroker,
                 containers: ContainerPool, config_server: ConfigServer,
                 metrics_db: Database, clock: Clock | None = None,
                 zone: str = "us-east-1a", result_cache: Any = None,
                 telemetry: Telemetry | None = None):
        self.worker = worker
        self.broker = broker
        self.containers = containers
        # drivers default onto the broker's bundle so the whole fleet
        # shares one metrics registry and one tracer
        self.telemetry = telemetry if telemetry is not None else broker.telemetry
        containers.telemetry = self.telemetry
        worker.telemetry = self.telemetry
        self.config_server = config_server
        self.metrics_db = metrics_db
        self.clock = clock or ManualClock()
        self.zone = zone
        self.config: WorkerRemoteConfig = config_server.current
        self.stats = DriverStats()
        #: optional fleet-shared GradingResultCache: hits are answered
        #: before a container slot is even acquired
        self.result_cache = result_cache
        self._jobs_since_recycle = 0
        #: leases this node currently holds (poll -> ack/nack window);
        #: renewed in one batched round-trip per pump tick
        self._held: dict[int, Any] = {}
        #: pump-cycle counter + the cycle that last renewed: coalesces
        #: renew_held_leases to at most one round-trip per cycle no
        #: matter how many call sites run in that cycle
        self._pump_tick = 0
        self._renewed_tick = -1
        ensure_metrics_table(metrics_db)
        containers.prestart()

    @property
    def capabilities(self) -> frozenset[str]:
        """What this node can serve: worker tags + container toolchains."""
        toolchains: set[str] = set()
        for image in self.containers.images.values():
            toolchains |= image.toolchains
        return frozenset(self.worker.config.tags) | frozenset(toolchains)

    def _metric(self, event: str, payload: dict[str, Any] | None = None) -> None:
        self.metrics_db.insert(
            "worker_metrics", worker=self.worker.name,
            timestamp=self.clock.now(), event=event, payload=payload or {})

    def check_config(self) -> bool:
        """Poll the config server; a new version restarts the driver."""
        newer = self.config_server.fetch_if_newer(self.config.version)
        if newer is None:
            return False
        self.config = newer
        self.containers.warm_per_image = newer.warm_containers_per_image
        self.containers.prestart()
        self.stats.restarts += 1
        self._metric("driver_restart", {"config_version": newer.version})
        return True

    def health_check(self) -> None:
        """The constant self-monitoring loop body (Figure 7 text)."""
        stamp = self.worker.heartbeat()
        self._metric("health", {
            "alive": self.worker.alive,
            "heartbeat": stamp,
            "containers": self.containers.stats(),
        })

    def renew_held_leases(self) -> int:
        """One batched renew round-trip covering every lease this node
        holds — instead of one round-trip per lease. The saved
        round-trips are counted so the batching claim has receipts.

        At most one renewal runs per pump cycle: both ``step`` and
        ``step_batch`` historically called this at the top of the
        cycle, where ``_held`` is always empty (leases are seated only
        after the poll), so the renewal covered nothing — and a second
        call site in the same cycle would double the RPC accounting.
        The tick guard coalesces duplicate sites; ``step_batch`` now
        renews right after seating its leases, when the batch is
        actually held."""
        if self._renewed_tick == self._pump_tick:
            return 0
        self._renewed_tick = self._pump_tick
        if not self._held:
            return 0
        held = list(self._held)
        renewed = self.broker.renew(held, self.clock.now())
        self.stats.renew_rpcs += 1
        self.stats.renewed_leases += renewed
        metrics = self.telemetry.metrics
        metrics.counter("webgpu_lease_renew_rpcs_total",
                        "batched renew round-trips").inc()
        metrics.counter("webgpu_lease_renewals_total",
                        "leases covered by batched renewals").inc(len(held))
        if len(held) > 1:
            metrics.counter(
                "webgpu_lease_renew_saved_round_trips_total",
                "per-lease round-trips avoided by batching").inc(
                    len(held) - 1)
        return renewed

    def step(self) -> JobResult | None:
        """One pull-loop iteration: config check, poll, run, ack, report.

        Returns the job result if a job was processed, else ``None``.
        A successful job acks its lease; an infrastructure failure with
        the node still up nacks it for redelivery; a node that dies (or
        wedges) holding a job acks nothing — the lease expires and the
        broker redelivers the job to another matching node.
        """
        if not self.worker.alive or self.worker.wedged:
            return None
        self._pump_tick += 1
        self.check_config()
        self.stats.polls += 1
        polled = self.broker.poll(self.capabilities,
                                  self.worker.config.num_gpus,
                                  self.clock.now(), zone=self.zone,
                                  consumer=self.worker.name)
        if polled is None:
            self.stats.empty_polls += 1
            return None
        job, queue_wait = polled
        self._held[job.job_id] = job
        outcome, result, reason = self._process_delivery(job, queue_wait)
        self._held.pop(job.job_id, None)
        if outcome == "ack":
            self.broker.ack(job.job_id,
                            now=max(self.clock.now(), result.finished_at))
            self.stats.acks += 1
            return result
        if outcome == "nack":
            self.stats.nacks += 1
            self.broker.nack(job.job_id, self.clock.now(), reason=reason)
        return None

    def step_batch(self, max_jobs: int = 8) -> list[JobResult]:
        """One *batched* pump tick: lease up to ``max_jobs`` jobs in a
        single poll round-trip, process them, then flush all the acks
        (and nacks) in one round-trip each — the chatty per-job I/O of
        :meth:`step` coalesced per tick.

        Crash semantics stay honest: a node that dies or wedges
        mid-batch reports nothing — its pending acks die with it, the
        held leases expire, and the broker redelivers (the grading
        result cache makes the re-runs cheap)."""
        if not self.worker.alive or self.worker.wedged:
            return []
        self._pump_tick += 1
        self.check_config()
        self.stats.polls += 1
        now = self.clock.now()
        if hasattr(self.broker, "poll_batch"):
            polled = self.broker.poll_batch(
                self.capabilities, self.worker.config.num_gpus, now,
                consumer=self.worker.name, max_jobs=max_jobs)
        else:
            polled = []
            while len(polled) < max_jobs:
                one = self.broker.poll(self.capabilities,
                                       self.worker.config.num_gpus,
                                       now, zone=self.zone,
                                       consumer=self.worker.name)
                if one is None:
                    break
                polled.append(one)
        if not polled:
            self.stats.empty_polls += 1
            return []
        self.stats.batches += 1
        for job, _ in polled:
            self._held[job.job_id] = job
        # renew once per cycle while the batch is actually held (the
        # old top-of-cycle call always saw an empty held set)
        self.renew_held_leases()
        acks: list[int] = []
        nacks: list[tuple[int, str]] = []
        results: list[JobResult] = []
        latest = now
        for job, queue_wait in polled:
            outcome, result, reason = self._process_delivery(job, queue_wait)
            if outcome == "ack":
                acks.append(job.job_id)
                results.append(result)
                latest = max(latest, result.finished_at)
            elif outcome == "nack":
                nacks.append((job.job_id, reason))
            else:
                # died/wedged holding this job: a dead process flushes
                # nothing — earlier completions in the batch are lost
                # too and will be redelivered (answered from the
                # result cache by whoever picks them up)
                self._held.clear()
                return []
        ack_time = max(self.clock.now(), latest)
        if acks:
            if hasattr(self.broker, "ack_batch"):
                self.broker.ack_batch(acks, now=ack_time)
            else:
                for job_id in acks:
                    self.broker.ack(job_id, now=ack_time)
            self.stats.acks += len(acks)
        if nacks:
            self.stats.nacks += len(nacks)
            if hasattr(self.broker, "nack_batch"):
                self.broker.nack_batch(nacks, self.clock.now())
            else:
                for job_id, reason in nacks:
                    self.broker.nack(job_id, self.clock.now(),
                                     reason=reason)
        self._held.clear()
        return results

    def _process_delivery(self, job, queue_wait: float,
                          ) -> tuple[str, JobResult | None, str]:
        """Run one leased job; returns ``(outcome, result, nack_reason)``
        with outcome ``"ack"`` (completed), ``"nack"`` (hand back for
        redelivery), or ``"lost"`` (node died/wedged — never ack)."""
        self.stats.queue_wait_total += queue_wait
        now = self.clock.now()
        tag = requirement_tag(job)
        self.telemetry.record_stage("queue_wait", queue_wait, tag=tag,
                                    trace=job.trace)
        tracer = self.telemetry.tracer

        if self.worker.wedge_mid_job:
            # fault injection: the node wedges holding the job — alive
            # but stuck, heartbeats stop, and it never acks. The lease
            # expires and the broker redelivers to another node.
            self.worker.wedge_mid_job = False
            self.worker.wedged = True
            self.worker.drop_health_checks = True
            self.stats.wedged += 1
            self._metric("job_wedged", {"job_id": job.job_id,
                                        "attempt": job.delivery.attempts})
            return "lost", None, ""

        cached = None
        if self.result_cache is not None:
            cached = self.result_cache.fetch(job, worker_name=self.worker.name,
                                             now=self.clock.now())
        if cached is not None:
            # answered from the grading cache: no container slot is
            # occupied and the node's recycle budget is untouched
            result = cached
            self.stats.jobs += 1
            self.stats.cache_hits += 1
            acquire_cost = release_cost = 0.0
            if tracer.enabled:
                tracer.log_event("cache.hit", time=now, parent=job.trace,
                                 cache="grading_results",
                                 job_id=job.job_id,
                                 worker=self.worker.name)
        else:
            container, acquire_cost = self.containers.acquire(job.lab.language)
            if tracer.enabled:
                tracer.start_span(
                    "container.acquire", parent=job.trace, time=now,
                    job_id=job.job_id, container=container.name,
                    cold=acquire_cost > 0.0).end(time=now + acquire_cost)
            self.telemetry.record_stage("container_acquire", acquire_cost,
                                        tag=tag, trace=job.trace)
            result = self.worker.process(job, started_at=now + acquire_cost)
            release_cost = self.containers.release(container)
            if not self.worker.alive:
                # the node died mid-job: a dead process acks nothing,
                # so the lease expires and the job is redelivered.
                # Abandon the result-cache flight the dead owner opened
                # so the redelivered job's worker becomes a fresh owner
                # instead of joining a computation that will never land.
                if self.result_cache is not None:
                    self.result_cache.abandon(job)
                self.stats.crashes += 1
                self._metric("job_crashed", {
                    "job_id": job.job_id,
                    "attempt": job.delivery.attempts})
                return "lost", None, ""
            if self.result_cache is not None:
                self.result_cache.complete(job, result)
            if result.status is JobStatus.FAILED:
                # infrastructure failure with the node still up: hand
                # the job back so another node gets a try
                self._metric("job_nacked", {
                    "job_id": job.job_id,
                    "attempt": job.delivery.attempts,
                    "error": result.error})
                return "nack", result, result.error or "worker failure"
            self.stats.container_seconds += acquire_cost + release_cost
            self.stats.jobs += 1

            self._jobs_since_recycle += 1
            if self._jobs_since_recycle >= self.config.max_jobs_before_recycle:
                self._recycle()

            result.extra["container"] = container.name
            result.extra["gpu_slot"] = container.gpu_slot

        result.extra["queue_wait_s"] = queue_wait
        result.extra["container_s"] = acquire_cost + release_cost
        result.extra["attempts"] = job.delivery.attempts
        result.extra["redeliveries"] = job.delivery.redeliveries
        self._metric("job", {
            "job_id": job.job_id,
            "lab": job.lab.slug,
            "status": result.status.value,
            "correct": result.all_correct,
            "cache_hit": bool(result.extra.get("cache_hit")),
            "redeliveries": job.delivery.redeliveries,
            "queue_wait_s": queue_wait,
            "service_s": result.service_seconds,
            "container_s": acquire_cost + release_cost,
        })
        return "ack", result, ""

    def _recycle(self) -> None:
        """Preventive hygiene: after max_jobs_before_recycle jobs, tear
        the warm pool down and rebuild it from clean images (part of
        the "validation of state" loop in Figure 7)."""
        self._jobs_since_recycle = 0
        self.stats.recycles += 1
        for warm in self.containers._warm.values():
            self.containers.deleted += len(warm)
            warm.clear()
        self.containers.prestart()
        self._metric("recycle", {"containers": self.containers.stats()})

    def drain(self, max_jobs: int | None = None) -> list[JobResult]:
        """Keep stepping until the queue has nothing for this node."""
        results: list[JobResult] = []
        while max_jobs is None or len(results) < max_jobs:
            result = self.step()
            if result is None:
                break
            results.append(result)
        return results
