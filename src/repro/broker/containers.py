"""Docker-like container images and the per-worker container pool.

Paper Section VI-B: "The driver maintains a pool of Docker containers
which are mapped onto a fixed number of GPUs. Each time a job is
accepted from the queue, the driver selects the appropriate Docker
container (the containers are configured to have the essential tools
required for the lab — a CUDA lab will not, for example, have the PGI
OpenACC tools) and runs the job in the container. ... Because we
maintain a pool of containers, we can delete a container after a job
completes and start a new container to replenish the pool."

Container starts cost time (image pull is amortised; cold start is
not), which is exactly what pooling hides — the container-overhead
benchmark measures the effect of pool size on job latency.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.telemetry import Telemetry

#: Seconds to start a container from a locally-cached image.
CONTAINER_START_S = 1.2
#: Seconds to tear a used container down.
CONTAINER_TEARDOWN_S = 0.2
#: Per-job execution overhead inside a container — previous work [18]
#: found Docker adds no measurable overhead for GPU code, so zero.
CONTAINER_RUNTIME_OVERHEAD_S = 0.0


@dataclass(frozen=True)
class ContainerImage:
    """A toolchain image: which lab languages it can serve."""

    name: str
    toolchains: frozenset[str]       # e.g. {"cuda"} or {"openacc"}
    size_mb: int = 2048

    def supports(self, language: str) -> bool:
        return language in self.toolchains


CUDA_IMAGE = ContainerImage("webgpu/cuda:8.0", frozenset({"cuda", "cuda-mpi"}))
OPENCL_IMAGE = ContainerImage("webgpu/opencl:1.2", frozenset({"opencl"}))
OPENACC_IMAGE = ContainerImage("webgpu/pgi-openacc:16", frozenset({"openacc"}))

_container_ids = itertools.count(1)


@dataclass
class Container:
    """One running container, bound to a GPU slot."""

    image: ContainerImage
    gpu_slot: int
    container_id: int = field(default_factory=lambda: next(_container_ids))
    jobs_run: int = 0
    dirty: bool = False

    @property
    def name(self) -> str:
        return f"{self.image.name.split('/')[-1]}-{self.container_id}"


class ContainerPool:
    """Pre-started containers per image, mapped onto GPU slots.

    ``acquire`` hands out a warm container when one exists (zero start
    cost) or cold-starts one. ``release`` deletes the used container
    and immediately starts a replacement so the pool stays warm.
    All costs are returned as seconds for the caller's clock.
    """

    def __init__(self, images: list[ContainerImage], num_gpus: int = 1,
                 warm_per_image: int = 1,
                 telemetry: Telemetry | None = None):
        if num_gpus < 1:
            raise ValueError("need at least one GPU slot")
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.images = {img.name: img for img in images}
        self.num_gpus = num_gpus
        self.warm_per_image = warm_per_image
        self._warm: dict[str, list[Container]] = {n: [] for n in self.images}
        self.cold_starts = 0
        self.warm_hits = 0
        self.replenishments = 0
        self.deleted = 0
        #: start-up work done off the job critical path (replenishment
        #: overlaps the next job's execution)
        self.background_start_seconds = 0.0
        self._next_slot = 0

    def prestart(self) -> float:
        """Fill every image's warm list; returns the setup seconds."""
        cost = 0.0
        for name in self.images:
            while len(self._warm[name]) < self.warm_per_image:
                self._warm[name].append(self._start(name))
                cost += CONTAINER_START_S
        return cost

    def _start(self, image_name: str) -> Container:
        slot = self._next_slot % self.num_gpus
        self._next_slot += 1
        return Container(image=self.images[image_name], gpu_slot=slot)

    def image_for(self, language: str) -> ContainerImage | None:
        for image in self.images.values():
            if image.supports(language):
                return image
        return None

    def acquire(self, language: str) -> tuple[Container, float]:
        """Get a container able to run ``language``.

        Returns ``(container, acquisition_seconds)`` — 0 for a warm
        hit, a cold start otherwise. Raises LookupError when no image
        on this worker supports the language (the v2 design avoids
        this by tag-matching at the queue, so hitting it means a
        config error).
        """
        image = self.image_for(language)
        if image is None:
            raise LookupError(
                f"no container image for language {language!r} on this "
                f"worker (images: {sorted(self.images)})")
        acquisitions = self.telemetry.metrics.counter(
            "webgpu_container_acquisitions_total",
            "container acquisitions by outcome")
        warm = self._warm[image.name]
        if warm:
            self.warm_hits += 1
            acquisitions.inc(outcome="warm_hit", image=image.name)
            return warm.pop(), 0.0
        self.cold_starts += 1
        acquisitions.inc(outcome="cold_start", image=image.name)
        return self._start(image.name), CONTAINER_START_S

    def release(self, container: Container) -> float:
        """Delete the used container and replenish the warm pool.

        Returns only the *critical-path* cost (teardown): the
        replacement container starts in the background while the next
        job already runs, which is exactly why the paper maintains a
        pool instead of starting containers per job.
        """
        container.dirty = True
        self.deleted += 1
        warm = self._warm[container.image.name]
        if len(warm) < self.warm_per_image:
            warm.append(self._start(container.image.name))
            self.replenishments += 1
            self.background_start_seconds += CONTAINER_START_S
        return CONTAINER_TEARDOWN_S

    def stats(self) -> dict[str, int]:
        return {
            "warm_hits": self.warm_hits,
            "cold_starts": self.cold_starts,
            "replenishments": self.replenishments,
            "deleted": self.deleted,
            "warm_available": sum(len(v) for v in self._warm.values()),
        }
