"""WebGPU 2.0 substrate: message broker, pull workers, containers.

Paper Section VI: the OpenEdx frontend publishes jobs to a *queue
message broker* "that can be replicated across Amazon availability
zones"; worker nodes "poll the queue, accepting a job if the node meets
the job requirements", which enables requirement tags (Multi-GPU, MPI,
OpenACC) and free automatic scaling. Each worker runs a main driver
that maintains a pool of Docker containers mapped onto physical GPUs,
consults a remote configuration server (a config change restarts the
driver), and reports metrics to a replicated database.

* :mod:`repro.broker.queue` — the job queue with tag matching and
  at-least-once delivery (leases, acks, redelivery, dead-letter queue);
* :mod:`repro.broker.broker` — zone-replicated broker;
* :mod:`repro.broker.containers` — container images and the pool
  (delete after each job, replenish from the image);
* :mod:`repro.broker.config_server` — remote config with restart
  triggers;
* :mod:`repro.broker.driver` — the v2 worker driver (pull loop);
* :mod:`repro.broker.dashboard` — the administrators' status view.
"""

from repro.broker.queue import (
    DeadLetter,
    DeliveryPolicy,
    JobQueue,
    Lease,
    QueueStats,
)
from repro.broker.broker import MessageBroker
from repro.broker.containers import Container, ContainerImage, ContainerPool
from repro.broker.config_server import ConfigServer, WorkerRemoteConfig
from repro.broker.driver import WorkerDriver
from repro.broker.dashboard import Dashboard
from repro.broker.autoscaler import FleetManager, ScaleEvent

__all__ = [
    "Container",
    "ContainerImage",
    "ContainerPool",
    "ConfigServer",
    "Dashboard",
    "DeadLetter",
    "DeliveryPolicy",
    "FleetManager",
    "Lease",
    "ScaleEvent",
    "JobQueue",
    "MessageBroker",
    "QueueStats",
    "WorkerDriver",
    "WorkerRemoteConfig",
]
