"""The job queue with requirement-tag matching (paper Section VI-A).

"Worker nodes poll the queue, accepting a job if the node meets the job
requirements. This allows us to tag a lab as requiring Multi-GPU
support or MPI support and dispatching jobs to the correct node. It
also means that we do not need to provision our worker nodes to have
the resources for the highest common multiple of the system
requirements of the labs."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.job import Job


@dataclass
class QueueStats:
    enqueued: int = 0
    dequeued: int = 0
    rejected_polls: int = 0     # polls that matched nothing
    peak_depth: int = 0

    def snapshot(self, depth: int) -> dict[str, int]:
        return {"enqueued": self.enqueued, "dequeued": self.dequeued,
                "rejected_polls": self.rejected_polls,
                "peak_depth": self.peak_depth, "depth": depth}


class JobQueue:
    """FIFO queue where consumers take the oldest job they can satisfy."""

    def __init__(self, name: str = "jobs"):
        self.name = name
        self._items: list[tuple[float, Job]] = []  # (enqueue_time, job)
        self.stats = QueueStats()

    def __len__(self) -> int:
        return len(self._items)

    def publish(self, job: Job, now: float) -> None:
        self._items.append((now, job))
        self.stats.enqueued += 1
        self.stats.peak_depth = max(self.stats.peak_depth, len(self._items))

    def poll(self, capabilities: frozenset[str], num_gpus: int,
             now: float) -> tuple[Job, float] | None:
        """Take the oldest job this consumer can run.

        Returns ``(job, queue_wait_seconds)`` or ``None``. Jobs the
        consumer cannot satisfy are skipped, not discarded — a
        less-capable worker never starves a tagged job, it just leaves
        it for a matching worker.
        """
        for i, (enqueued_at, job) in enumerate(self._items):
            needs = set(job.requirements)
            if "multi-gpu" in needs and num_gpus < 2:
                continue
            needs.discard("multi-gpu")
            if needs <= set(capabilities):
                del self._items[i]
                self.stats.dequeued += 1
                return job, now - enqueued_at
        self.stats.rejected_polls += 1
        return None

    def waiting(self) -> list[Job]:
        """Jobs currently queued (oldest first)."""
        return [job for _, job in self._items]

    def oldest_wait(self, now: float) -> float:
        """Age of the oldest queued job (0 when empty)."""
        if not self._items:
            return 0.0
        return now - self._items[0][0]
