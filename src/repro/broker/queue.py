"""The job queue with requirement-tag matching (paper Section VI-A).

"Worker nodes poll the queue, accepting a job if the node meets the job
requirements. This allows us to tag a lab as requiring Multi-GPU
support or MPI support and dispatching jobs to the correct node. It
also means that we do not need to provision our worker nodes to have
the resources for the highest common multiple of the system
requirements of the labs."

Delivery is **at-least-once**: a poll hands out a *lease* (the job
stays tracked in-flight under a visibility timeout) rather than
deleting the item. Consumers ``ack`` on completion, ``nack`` on
failure, or simply die — an expired lease is redelivered to the next
matching consumer with an exponential-backoff delay. A job whose
deliveries keep failing is moved to the dead-letter queue after
``max_attempts`` tries, with its full failure history, instead of
looping forever.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass
from typing import Any

from repro.cluster.job import Job
from repro.telemetry import QUEUE_WAIT_SECONDS, Telemetry, WARNING, job_class


@dataclass(frozen=True)
class DeliveryPolicy:
    """Lease / redelivery / dead-letter knobs for at-least-once delivery."""

    #: How long a consumer may hold a leased job before the broker
    #: assumes the consumer died and redelivers it.
    visibility_timeout_s: float = 30.0
    #: Total delivery attempts before a job is dead-lettered.
    max_attempts: int = 3
    #: First redelivery delay; doubles per failed attempt.
    backoff_base_s: float = 0.5
    #: Ceiling on the redelivery delay.
    backoff_cap_s: float = 30.0

    def backoff_for(self, attempt: int) -> float:
        """Redelivery delay after the ``attempt``-th failed delivery."""
        return min(self.backoff_cap_s,
                   self.backoff_base_s * (2.0 ** max(0, attempt - 1)))


@dataclass
class QueueStats:
    enqueued: int = 0
    dequeued: int = 0
    rejected_polls: int = 0     # polls that matched nothing
    peak_depth: int = 0
    acked: int = 0
    nacked: int = 0
    redelivered: int = 0
    expired_leases: int = 0
    dead_lettered: int = 0
    cancelled: int = 0
    renewed: int = 0            # lease deadlines extended
    restored: int = 0           # jobs re-seated by failover/rebalance

    def snapshot(self, depth: int, in_flight: int = 0) -> dict[str, int]:
        return {"enqueued": self.enqueued, "dequeued": self.dequeued,
                "rejected_polls": self.rejected_polls,
                "peak_depth": self.peak_depth, "depth": depth,
                "acked": self.acked, "nacked": self.nacked,
                "redelivered": self.redelivered,
                "expired_leases": self.expired_leases,
                "dead_lettered": self.dead_lettered,
                "cancelled": self.cancelled, "renewed": self.renewed,
                "restored": self.restored, "in_flight": in_flight}

    def add(self, other: "QueueStats") -> None:
        """Fold another queue's counters in (the fabric-wide view)."""
        for field_ in ("enqueued", "dequeued", "rejected_polls", "acked",
                       "nacked", "redelivered", "expired_leases",
                       "dead_lettered", "cancelled", "renewed", "restored"):
            setattr(self, field_,
                    getattr(self, field_) + getattr(other, field_))
        self.peak_depth = max(self.peak_depth, other.peak_depth)


@dataclass
class _Waiting:
    enqueued_at: float
    job: Job
    #: redelivered jobs wait out their backoff before becoming pollable
    not_before: float = 0.0


@dataclass
class Lease:
    """One in-flight delivery: who holds the job and until when."""

    job: Job
    consumer: str
    enqueued_at: float
    deadline: float
    #: telemetry span open for this delivery (poll -> ack/nack/expiry)
    span: Any = None


@dataclass
class DeadLetter:
    """A poison job parked after exhausting its delivery attempts."""

    job: Job
    dead_at: float
    reason: str

    @property
    def failures(self) -> list[dict]:
        """Full failure history (one entry per failed delivery)."""
        return list(self.job.delivery.failures)


class JobQueue:
    """FIFO queue where consumers lease the oldest job they can satisfy."""

    def __init__(self, name: str = "jobs",
                 policy: DeliveryPolicy | None = None,
                 at_least_once: bool = True,
                 telemetry: Telemetry | None = None):
        self.name = name
        self.policy = policy or DeliveryPolicy()
        #: False restores the pre-lease semantics (delete on poll) —
        #: kept for the delivery-faults ablation benchmark.
        self.at_least_once = at_least_once
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self._items: list[_Waiting] = []
        self._leases: dict[int, Lease] = {}
        self._dead: dict[int, DeadLetter] = {}
        self.stats = QueueStats()

    def _count(self, event: str, amount: int = 1) -> None:
        self.telemetry.metrics.counter(
            "webgpu_queue_events_total",
            "queue lifecycle events by type").inc(amount, event=event)

    def _gauge_depths(self) -> None:
        metrics = self.telemetry.metrics
        metrics.gauge("webgpu_queue_depth",
                      "jobs waiting in the queue").set(len(self._items))
        metrics.gauge("webgpu_queue_in_flight",
                      "jobs leased to a consumer").set(len(self._leases))

    def __len__(self) -> int:
        return len(self._items)

    @property
    def in_flight_count(self) -> int:
        return len(self._leases)

    def publish(self, job: Job, now: float, not_before: float = 0.0) -> None:
        """Accept a job. ``not_before`` delays its first delivery (the
        admission controller's deferral path); the queue wait the
        student sees still starts at ``now``."""
        self._items.append(_Waiting(now, job, not_before=not_before))
        self.stats.enqueued += 1
        self.stats.peak_depth = max(self.stats.peak_depth, len(self._items))
        self._count("enqueued")
        self._gauge_depths()
        tracer = self.telemetry.tracer
        if tracer.enabled:
            tracer.start_span("enqueue", parent=job.trace, time=now,
                              job_id=job.job_id, queue=self.name,
                              depth=len(self._items)).end(time=now)

    def poll(self, capabilities: frozenset[str], num_gpus: int,
             now: float, consumer: str = "") -> tuple[Job, float] | None:
        """Lease the oldest job this consumer can run.

        Returns ``(job, queue_wait_seconds)`` or ``None``. Jobs the
        consumer cannot satisfy are skipped, not discarded — a
        less-capable worker never starves a tagged job, it just leaves
        it for a matching worker. The job stays tracked in-flight until
        :meth:`ack`, :meth:`nack`, or lease expiry.
        """
        for i, item in enumerate(self._items):
            if item.not_before > now:
                continue  # redelivery still waiting out its backoff
            job = item.job
            needs = set(job.requirements)
            if "multi-gpu" in needs and num_gpus < 2:
                continue
            needs.discard("multi-gpu")
            if needs <= set(capabilities):
                del self._items[i]
                self.stats.dequeued += 1
                job.delivery.attempts += 1
                self._count("dequeued")
                # queue-level wait observation, sliced by admission
                # class — the SLO burn meter's input signal
                self.telemetry.metrics.histogram(
                    QUEUE_WAIT_SECONDS,
                    "queue wait per delivery by admission class").observe(
                        max(0.0, now - item.enqueued_at),
                        klass=job_class(job))
                span = None
                tracer = self.telemetry.tracer
                if tracer.enabled:
                    tracer.start_span(
                        "queue.wait", parent=job.trace,
                        time=item.enqueued_at, job_id=job.job_id,
                        consumer=consumer).end(time=now)
                    span = tracer.start_span(
                        "lease", parent=job.trace, time=now,
                        job_id=job.job_id, consumer=consumer,
                        attempt=job.delivery.attempts,
                        deadline=now + self.policy.visibility_timeout_s)
                if self.at_least_once:
                    self._leases[job.job_id] = Lease(
                        job=job, consumer=consumer,
                        enqueued_at=item.enqueued_at,
                        deadline=now + self.policy.visibility_timeout_s,
                        span=span)
                elif span is not None:
                    # legacy delete-on-poll: no ack will ever arrive,
                    # so the delivery span closes at hand-off
                    span.end(time=now, mode="at-most-once")
                self._gauge_depths()
                return job, now - item.enqueued_at
        self.stats.rejected_polls += 1
        self._count("rejected_polls")
        return None

    def poll_batch(self, capabilities: frozenset[str], num_gpus: int,
                   now: float, consumer: str = "",
                   max_jobs: int = 8) -> list[tuple[Job, float]]:
        """Lease up to ``max_jobs`` satisfiable jobs in one round-trip —
        the batched-I/O half of the deadline-storm fix (one RPC per
        pump tick instead of one per job)."""
        out: list[tuple[Job, float]] = []
        while len(out) < max_jobs:
            polled = self.poll(capabilities, num_gpus, now,
                               consumer=consumer)
            if polled is None:
                break
            out.append(polled)
        return out

    # -- lease lifecycle ---------------------------------------------------

    def ack(self, job_id: int, now: float | None = None) -> bool:
        """Consumer completed the job: retire the lease."""
        lease = self._leases.pop(job_id, None)
        if lease is None:
            return False
        self.stats.acked += 1
        self._count("acked")
        self._gauge_depths()
        if lease.span is not None:
            end = lease.span.start if now is None else now
            tracer = self.telemetry.tracer
            tracer.start_span("ack", parent=lease.span, time=end,
                              job_id=job_id).end(time=end)
            lease.span.end(time=end, outcome="acked")
        return True

    def nack(self, job_id: int, now: float,
             reason: str = "consumer nack") -> bool:
        """Consumer reports a failed delivery: redeliver (or dead-letter)."""
        lease = self._leases.pop(job_id, None)
        if lease is None:
            return False
        self.stats.nacked += 1
        self._count("nacked")
        if lease.span is not None:
            lease.span.event("nack", time=now, reason=reason)
            lease.span.end(time=now, outcome="nacked")
        self._redeliver(lease, now, reason)
        return True

    def ack_batch(self, job_ids: list[int],
                  now: float | None = None) -> int:
        """Retire many leases in one round-trip; returns acks landed."""
        return sum(1 for job_id in job_ids if self.ack(job_id, now=now))

    def nack_batch(self, failures: list[tuple[int, str]], now: float) -> int:
        """Report many failed deliveries in one round-trip."""
        return sum(1 for job_id, reason in failures
                   if self.nack(job_id, now, reason=reason))

    def renew(self, job_ids: list[int], now: float) -> int:
        """Extend the lease deadline for every listed job still held —
        one round-trip covering a consumer's whole working set. Unknown
        or already-expired leases are skipped (the consumer finds out
        at ack time, exactly as with a lost single renewal)."""
        renewed = 0
        for job_id in job_ids:
            lease = self._leases.get(job_id)
            if lease is None:
                continue
            lease.deadline = now + self.policy.visibility_timeout_s
            renewed += 1
        if renewed:
            self.stats.renewed += renewed
            self._count("renewed", renewed)
        return renewed

    def expire_leases(self, now: float) -> list[Job]:
        """Redeliver every job whose lease deadline has passed — the
        path a crashed consumer's jobs come back through."""
        expired = [lease for lease in self._leases.values()
                   if lease.deadline <= now]
        for lease in expired:
            del self._leases[lease.job.job_id]
            self.stats.expired_leases += 1
            self._count("expired_leases")
            if lease.span is not None:
                lease.span.event("lease.expired", time=now, level=WARNING,
                                 consumer=lease.consumer or "unknown")
                lease.span.end(time=now, outcome="expired")
            self._redeliver(lease, now, "lease expired (held by "
                            f"{lease.consumer or 'unknown'})")
        return [lease.job for lease in expired]

    def _redeliver(self, lease: Lease, now: float, reason: str) -> None:
        job = lease.job
        failure = {"time": now, "consumer": lease.consumer,
                   "attempt": job.delivery.attempts, "reason": reason}
        job.delivery.failures.append(failure)
        tracer = self.telemetry.tracer
        if job.delivery.attempts >= self.policy.max_attempts:
            failure["dead_lettered"] = True
            self.stats.dead_lettered += 1
            self._count("dead_lettered")
            if tracer.enabled:
                tracer.log_event("dlq.parked", time=now, level=WARNING,
                                 parent=job.trace, job_id=job.job_id,
                                 attempts=job.delivery.attempts,
                                 reason=reason)
            self._dead[job.job_id] = DeadLetter(job=job, dead_at=now,
                                                reason=reason)
            return
        delay = self.policy.backoff_for(job.delivery.attempts)
        failure["backoff_s"] = delay
        self.stats.redelivered += 1
        self._count("redelivered")
        if tracer.enabled:
            tracer.log_event("redelivery", time=now, parent=job.trace,
                             job_id=job.job_id, backoff_s=delay,
                             attempt=job.delivery.attempts, reason=reason)
        # the original enqueue time is kept so FIFO order and the
        # student-visible queue wait stay honest across redeliveries
        insort(self._items,
               _Waiting(lease.enqueued_at, job, not_before=now + delay),
               key=lambda w: w.enqueued_at)
        self.stats.peak_depth = max(self.stats.peak_depth, len(self._items))

    # -- fabric failover / rebalancing hooks -------------------------------

    def restore(self, job: Job, enqueued_at: float,
                not_before: float = 0.0) -> None:
        """Re-seat a job accepted by another (failed or resharded)
        queue instance, preserving its original enqueue time so FIFO
        order and the student-visible wait survive the move."""
        insort(self._items, _Waiting(enqueued_at, job,
                                     not_before=not_before),
               key=lambda w: w.enqueued_at)
        self.stats.enqueued += 1
        self.stats.restored += 1
        self.stats.peak_depth = max(self.stats.peak_depth, len(self._items))
        self._count("restored")
        self._gauge_depths()

    def restore_dead(self, dead: DeadLetter) -> None:
        """Re-park a dead letter carried over from a failed replica."""
        self._dead[dead.job.job_id] = dead

    def take(self, job_id: int) -> tuple[Job, float] | None:
        """Remove a *waiting* job for migration to another shard;
        returns ``(job, enqueued_at)`` or ``None`` (leased and dead
        jobs are not migratable — leases drain in place)."""
        for i, item in enumerate(self._items):
            if item.job.job_id == job_id:
                del self._items[i]
                self._gauge_depths()
                return item.job, item.enqueued_at
        return None

    def cancel(self, job_id: int) -> bool:
        """Remove a waiting job nobody should run (e.g. its submitter
        already received a failure for it)."""
        for i, item in enumerate(self._items):
            if item.job.job_id == job_id:
                del self._items[i]
                self.stats.cancelled += 1
                self._count("cancelled")
                self._gauge_depths()
                return True
        return False

    # -- introspection -----------------------------------------------------

    def waiting(self) -> list[Job]:
        """Jobs currently queued (oldest first)."""
        return [item.job for item in self._items]

    def in_flight(self) -> list[Job]:
        """Jobs currently leased to a consumer."""
        return [lease.job for lease in self._leases.values()]

    def dead_letters(self) -> list[DeadLetter]:
        return list(self._dead.values())

    def dead_letter(self, job_id: int) -> DeadLetter | None:
        return self._dead.get(job_id)

    def next_wakeup(self, now: float) -> float | None:
        """The next instant delivery state can change on its own: the
        earliest lease deadline or backoff expiry (None when neither
        is pending). Drives simulated-time pumps."""
        times = [lease.deadline for lease in self._leases.values()]
        times += [item.not_before for item in self._items
                  if item.not_before > now]
        return min(times, default=None)

    def oldest_wait(self, now: float) -> float:
        """Age of the oldest queued job (0 when empty)."""
        if not self._items:
            return 0.0
        return now - self._items[0].enqueued_at
