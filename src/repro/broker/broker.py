"""Zone-replicated message broker.

"OpenEdx communicates with a queue message broker server that can be
replicated across Amazon availability zones — offering resiliency
against faults and better response times for the students."

Replication model: one broker replica per zone, a single logical queue.
Publishes go to the publisher's local replica; all replicas share the
same backing queue state unless a replica is down, in which case its
publishes fail over to the next healthy zone. A zone failure therefore
loses no accepted jobs — the failure-handling benchmark verifies this.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.broker.queue import DeadLetter, DeliveryPolicy, JobQueue
from repro.cluster.job import Job
from repro.telemetry import Telemetry


@dataclass
class _Replica:
    zone: str
    alive: bool = True
    publishes: int = 0
    polls: int = 0


class MessageBroker:
    """A logically-single queue presented through per-zone replicas."""

    def __init__(self, zones: tuple[str, ...] = ("us-east-1a",),
                 policy: DeliveryPolicy | None = None,
                 at_least_once: bool = True,
                 telemetry: Telemetry | None = None):
        if not zones:
            raise ValueError("broker needs at least one zone")
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self._queue = JobQueue(policy=policy, at_least_once=at_least_once,
                               telemetry=self.telemetry)
        self._replicas = {zone: _Replica(zone) for zone in zones}
        self.failovers = 0

    @property
    def zones(self) -> tuple[str, ...]:
        return tuple(self._replicas)

    @property
    def queue(self) -> JobQueue:
        return self._queue

    def fail_zone(self, zone: str) -> None:
        self._replicas[zone].alive = False

    def restore_zone(self, zone: str) -> None:
        self._replicas[zone].alive = True

    def _healthy_replica(self, preferred: str) -> _Replica:
        replica = self._replicas.get(preferred)
        if replica is not None and replica.alive:
            return replica
        for other in self._replicas.values():
            if other.alive:
                # only a known-but-down preferred zone is a failover;
                # an unknown preferred zone is ordinary routing
                if replica is not None:
                    self.failovers += 1
                    self.telemetry.metrics.counter(
                        "webgpu_broker_failovers_total",
                        "publishes/polls rerouted around a down zone"
                    ).inc(from_zone=preferred, to_zone=other.zone)
                return other
        raise RuntimeError("all broker replicas are down")

    def publish(self, job: Job, now: float, zone: str | None = None) -> str:
        """Publish a job via the caller's zone replica; returns the zone
        that actually accepted it (differs on failover)."""
        replica = self._healthy_replica(zone or self.zones[0])
        replica.publishes += 1
        self.telemetry.metrics.counter(
            "webgpu_broker_publishes_total",
            "jobs accepted per zone replica").inc(zone=replica.zone)
        self._queue.publish(job, now)
        return replica.zone

    def poll(self, capabilities: frozenset[str], num_gpus: int, now: float,
             zone: str | None = None,
             consumer: str = "") -> tuple[Job, float] | None:
        """Worker poll through its zone replica (leases the job)."""
        replica = self._healthy_replica(zone or self.zones[0])
        replica.polls += 1
        return self._queue.poll(capabilities, num_gpus, now,
                                consumer=consumer)

    # -- at-least-once lease lifecycle (forwarded to the shared queue) -----

    def ack(self, job_id: int, now: float | None = None) -> bool:
        return self._queue.ack(job_id, now=now)

    def nack(self, job_id: int, now: float,
             reason: str = "consumer nack") -> bool:
        return self._queue.nack(job_id, now, reason=reason)

    def renew(self, job_ids: list[int], now: float) -> int:
        """Batch lease renewal (one round-trip for a consumer's whole
        held set); returns how many leases were extended."""
        return self._queue.renew(job_ids, now)

    def expire_leases(self, now: float) -> list[Job]:
        return self._queue.expire_leases(now)

    def cancel(self, job_id: int) -> bool:
        return self._queue.cancel(job_id)

    def dead_letters(self) -> list[DeadLetter]:
        return self._queue.dead_letters()

    def dead_letter(self, job_id: int) -> DeadLetter | None:
        return self._queue.dead_letter(job_id)

    def next_wakeup(self, now: float) -> float | None:
        return self._queue.next_wakeup(now)

    @property
    def in_flight_count(self) -> int:
        return self._queue.in_flight_count

    def depth(self) -> int:
        return len(self._queue)

    def replica_stats(self) -> dict[str, dict[str, int | bool]]:
        return {zone: {"alive": r.alive, "publishes": r.publishes,
                       "polls": r.polls}
                for zone, r in self._replicas.items()}
