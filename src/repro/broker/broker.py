"""Zone-replicated message broker.

"OpenEdx communicates with a queue message broker server that can be
replicated across Amazon availability zones — offering resiliency
against faults and better response times for the students."

Replication model: one broker replica per zone, a single logical queue.
Publishes go to the publisher's local replica; all replicas share the
same backing queue state unless a replica is down, in which case its
publishes fail over to the next healthy zone. A zone failure therefore
loses no accepted jobs — the failure-handling benchmark verifies this.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.broker.queue import JobQueue
from repro.cluster.job import Job


@dataclass
class _Replica:
    zone: str
    alive: bool = True
    publishes: int = 0
    polls: int = 0


class MessageBroker:
    """A logically-single queue presented through per-zone replicas."""

    def __init__(self, zones: tuple[str, ...] = ("us-east-1a",)):
        if not zones:
            raise ValueError("broker needs at least one zone")
        self._queue = JobQueue()
        self._replicas = {zone: _Replica(zone) for zone in zones}
        self.failovers = 0

    @property
    def zones(self) -> tuple[str, ...]:
        return tuple(self._replicas)

    @property
    def queue(self) -> JobQueue:
        return self._queue

    def fail_zone(self, zone: str) -> None:
        self._replicas[zone].alive = False

    def restore_zone(self, zone: str) -> None:
        self._replicas[zone].alive = True

    def _healthy_replica(self, preferred: str) -> _Replica:
        replica = self._replicas.get(preferred)
        if replica is not None and replica.alive:
            return replica
        for other in self._replicas.values():
            if other.alive:
                self.failovers += 1
                return other
        raise RuntimeError("all broker replicas are down")

    def publish(self, job: Job, now: float, zone: str | None = None) -> str:
        """Publish a job via the caller's zone replica; returns the zone
        that actually accepted it (differs on failover)."""
        replica = self._healthy_replica(zone or self.zones[0])
        replica.publishes += 1
        self._queue.publish(job, now)
        return replica.zone

    def poll(self, capabilities: frozenset[str], num_gpus: int, now: float,
             zone: str | None = None) -> tuple[Job, float] | None:
        """Worker poll through its zone replica."""
        replica = self._healthy_replica(zone or self.zones[0])
        replica.polls += 1
        return self._queue.poll(capabilities, num_gpus, now)

    def depth(self) -> int:
        return len(self._queue)

    def replica_stats(self) -> dict[str, dict[str, int | bool]]:
        return {zone: {"alive": r.alive, "publishes": r.publishes,
                       "polls": r.polls}
                for zone, r in self._replicas.items()}
