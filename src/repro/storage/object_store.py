"""Buckets, keys, etags, and version history."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterator, Mapping


class StorageError(Exception):
    """Base class for object-store errors."""


class NoSuchBucketError(StorageError):
    """The requested bucket does not exist."""


class NoSuchKeyError(StorageError):
    """The requested key does not exist in the bucket."""


@dataclass(frozen=True)
class ObjectMeta:
    """Metadata returned by head/put operations.

    ``etag`` stays md5 for S3 wire compatibility; ``sha256`` is the
    collision-resistant digest that content-addressed layers
    (:mod:`repro.cache.cas`) key on — md5 collisions would silently
    alias cache entries.
    """

    key: str
    size: int
    etag: str
    version: int
    metadata: Mapping[str, str] = field(default_factory=dict)
    sha256: str = ""


def _etag(data: bytes) -> str:
    return hashlib.md5(data).hexdigest()


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


@dataclass
class _Stored:
    data: bytes
    meta: ObjectMeta


class Bucket:
    """A flat namespace of keys -> byte objects with version history."""

    def __init__(self, name: str):
        self.name = name
        self._objects: dict[str, _Stored] = {}
        self._history: dict[str, list[_Stored]] = {}

    def put(self, key: str, data: bytes,
            metadata: Mapping[str, str] | None = None) -> ObjectMeta:
        """Store an object; supersedes any existing version under ``key``."""
        if not key:
            raise StorageError("object key must be non-empty")
        if not isinstance(data, (bytes, bytearray)):
            raise StorageError("object data must be bytes")
        data = bytes(data)
        version = len(self._history.get(key, [])) + 1
        meta = ObjectMeta(key=key, size=len(data), etag=_etag(data),
                          version=version, metadata=dict(metadata or {}),
                          sha256=_sha256(data))
        stored = _Stored(data=data, meta=meta)
        self._objects[key] = stored
        self._history.setdefault(key, []).append(stored)
        return meta

    def put_text(self, key: str, text: str,
                 metadata: Mapping[str, str] | None = None) -> ObjectMeta:
        """Convenience wrapper storing UTF-8 text."""
        return self.put(key, text.encode("utf-8"), metadata)

    def get(self, key: str, version: int | None = None) -> bytes:
        """Fetch object bytes (latest version unless ``version`` given)."""
        if version is not None:
            versions = self._history.get(key)
            if not versions or not (1 <= version <= len(versions)):
                raise NoSuchKeyError(f"{self.name}/{key} v{version}")
            return versions[version - 1].data
        try:
            return self._objects[key].data
        except KeyError:
            raise NoSuchKeyError(f"{self.name}/{key}") from None

    def get_text(self, key: str, version: int | None = None) -> str:
        return self.get(key, version).decode("utf-8")

    def head(self, key: str) -> ObjectMeta:
        """Metadata for the latest version of ``key``."""
        try:
            return self._objects[key].meta
        except KeyError:
            raise NoSuchKeyError(f"{self.name}/{key}") from None

    def exists(self, key: str) -> bool:
        return key in self._objects

    def delete(self, key: str) -> None:
        """Remove the current object (history is retained)."""
        if key not in self._objects:
            raise NoSuchKeyError(f"{self.name}/{key}")
        del self._objects[key]

    def list(self, prefix: str = "") -> list[str]:
        """Sorted keys with the given prefix."""
        return sorted(k for k in self._objects if k.startswith(prefix))

    def versions(self, key: str) -> list[ObjectMeta]:
        """Full version history for ``key`` (oldest first)."""
        return [s.meta for s in self._history.get(key, [])]

    def __len__(self) -> int:
        return len(self._objects)

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._objects))

    def total_bytes(self) -> int:
        return sum(s.meta.size for s in self._objects.values())


class ObjectStore:
    """A collection of named buckets (the 'S3' of the simulation)."""

    def __init__(self):
        self._buckets: dict[str, Bucket] = {}

    def create_bucket(self, name: str) -> Bucket:
        if name in self._buckets:
            raise StorageError(f"bucket {name!r} already exists")
        if not name or "/" in name:
            raise StorageError(f"invalid bucket name {name!r}")
        bucket = Bucket(name)
        self._buckets[name] = bucket
        return bucket

    def bucket(self, name: str) -> Bucket:
        try:
            return self._buckets[name]
        except KeyError:
            raise NoSuchBucketError(f"no such bucket {name!r}") from None

    def ensure_bucket(self, name: str) -> Bucket:
        """Get the bucket, creating it if absent."""
        if name not in self._buckets:
            return self.create_bucket(name)
        return self._buckets[name]

    @property
    def bucket_names(self) -> tuple[str, ...]:
        return tuple(sorted(self._buckets))
