"""S3-like object storage substrate.

WebGPU 2.0 stores lab datasets in an Amazon S3 bucket accessible by both
the OpenEdx instructor tooling and the worker nodes (paper Figure 6,
item 5). This package provides the equivalent: named buckets holding
byte objects under string keys, with etags, metadata, prefix listing,
and simple per-object version history.
"""

from repro.storage.object_store import (
    Bucket,
    NoSuchBucketError,
    NoSuchKeyError,
    ObjectMeta,
    ObjectStore,
    StorageError,
)

__all__ = [
    "Bucket",
    "NoSuchBucketError",
    "NoSuchKeyError",
    "ObjectMeta",
    "ObjectStore",
    "StorageError",
]
