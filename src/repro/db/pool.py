"""A bounded connection pool.

The paper (Section III-B): "The web-server maintains a connection pool
to the database and records user submission activity." We model
connections as lightweight handles with checkout accounting so that
benchmarks can measure pool pressure under submission storms.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.db.engine import Database
from repro.db.errors import DatabaseError, PoolExhaustedError


class PooledConnection:
    """A handle to the underlying database, valid while checked out."""

    def __init__(self, pool: "ConnectionPool", conn_id: int):
        self._pool = pool
        self.conn_id = conn_id
        self._open = True

    @property
    def is_open(self) -> bool:
        return self._open

    def _require_open(self) -> Database:
        if not self._open:
            raise DatabaseError(f"connection {self.conn_id} has been released")
        return self._pool.database

    # proxy the engine API
    def insert(self, table: str, **values: Any) -> int:
        return self._require_open().insert(table, **values)

    def update(self, table: str, row_id: int, **values: Any) -> dict[str, Any]:
        return self._require_open().update(table, row_id, **values)

    def delete(self, table: str, row_id: int) -> None:
        self._require_open().delete(table, row_id)

    def get(self, table: str, row_id: int) -> dict[str, Any]:
        return self._require_open().get(table, row_id)

    def find(self, table: str, **conditions: Any) -> list[dict[str, Any]]:
        return self._require_open().find(table, **conditions)

    def find_one(self, table: str, **conditions: Any) -> dict[str, Any] | None:
        return self._require_open().find_one(table, **conditions)

    def release(self) -> None:
        if self._open:
            self._open = False
            self._pool._checkin(self)

    def __enter__(self) -> "PooledConnection":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.release()


class ConnectionPool:
    """Fixed-capacity pool of connections to one database.

    ``acquire`` raises :class:`PoolExhaustedError` when all connections
    are checked out — deliberately non-blocking, since the simulated
    web-server must observe saturation rather than deadlock on it.
    """

    def __init__(self, database: Database, capacity: int = 10):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.database = database
        self.capacity = capacity
        self._lock = threading.Lock()
        self._in_use = 0
        self._next_conn_id = 1
        self.total_acquired = 0
        self.peak_in_use = 0
        self.exhaustion_events = 0

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def available(self) -> int:
        return self.capacity - self._in_use

    def acquire(self) -> PooledConnection:
        with self._lock:
            if self._in_use >= self.capacity:
                self.exhaustion_events += 1
                raise PoolExhaustedError(
                    f"all {self.capacity} connections are in use"
                )
            self._in_use += 1
            self.total_acquired += 1
            self.peak_in_use = max(self.peak_in_use, self._in_use)
            conn_id = self._next_conn_id
            self._next_conn_id += 1
        return PooledConnection(self, conn_id)

    def _checkin(self, conn: PooledConnection) -> None:
        with self._lock:
            self._in_use -= 1

    def stats(self) -> dict[str, int]:
        return {
            "capacity": self.capacity,
            "in_use": self._in_use,
            "total_acquired": self.total_acquired,
            "peak_in_use": self.peak_in_use,
            "exhaustion_events": self.exhaustion_events,
        }
