"""Exception hierarchy for the database substrate."""


class DatabaseError(Exception):
    """Base class for all database errors."""


class SchemaError(DatabaseError):
    """A row or table definition violates the declared schema."""


class IntegrityError(DatabaseError):
    """A constraint (NOT NULL, foreign key, unique) was violated."""


class DuplicateKeyError(IntegrityError):
    """An insert or update would duplicate a primary or unique key."""


class NoSuchTableError(DatabaseError):
    """The requested table does not exist."""


class NoSuchRowError(DatabaseError):
    """The requested row does not exist."""


class PoolExhaustedError(DatabaseError):
    """No connection is available and the pool is at capacity."""
