"""Table engine: rows, auto-increment primary keys, and indexes."""

from __future__ import annotations

from typing import Any, Iterator, Mapping

from repro.db.errors import DuplicateKeyError, NoSuchRowError, SchemaError
from repro.db.query import Query
from repro.db.schema import Schema


class _Index:
    """A (possibly unique) index over a tuple of columns."""

    def __init__(self, columns: tuple[str, ...], unique: bool):
        self.columns = columns
        self.unique = unique
        # key tuple -> set of row ids (singleton set when unique)
        self._map: dict[tuple[Any, ...], set[int]] = {}

    def key_for(self, row: Mapping[str, Any]) -> tuple[Any, ...]:
        return tuple(_hashable(row[c]) for c in self.columns)

    def add(self, row_id: int, row: Mapping[str, Any]) -> None:
        key = self.key_for(row)
        bucket = self._map.setdefault(key, set())
        if self.unique and bucket and row_id not in bucket:
            raise DuplicateKeyError(
                f"unique index on {self.columns} violated by key {key!r}"
            )
        bucket.add(row_id)

    def would_violate(self, row_id: int, row: Mapping[str, Any]) -> bool:
        if not self.unique:
            return False
        bucket = self._map.get(self.key_for(row), set())
        return bool(bucket - {row_id})

    def remove(self, row_id: int, row: Mapping[str, Any]) -> None:
        key = self.key_for(row)
        bucket = self._map.get(key)
        if bucket is not None:
            bucket.discard(row_id)
            if not bucket:
                del self._map[key]

    def lookup(self, key: tuple[Any, ...]) -> set[int]:
        return set(self._map.get(tuple(_hashable(k) for k in key), set()))


def _hashable(value: Any) -> Any:
    """Best-effort conversion of JSON-ish values to hashable index keys."""
    if isinstance(value, list):
        return tuple(_hashable(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _hashable(v)) for k, v in value.items()))
    if isinstance(value, bytearray):
        return bytes(value)
    return value


class Table:
    """A single table with schema validation and maintained indexes.

    Rows are stored as dicts keyed by their integer primary key; reads
    return copies so callers cannot corrupt internal state.
    """

    def __init__(self, name: str, schema: Schema):
        self.name = name
        self.schema = schema
        self._rows: dict[int, dict[str, Any]] = {}
        self._next_id = 1
        self._indexes: list[_Index] = []
        for group in schema.unique:
            self._indexes.append(_Index(tuple(group), unique=True))
        for group in schema.indexes:
            self._indexes.append(_Index(tuple(group), unique=False))

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[dict[str, Any]]:
        for row in self._rows.values():
            yield dict(row)

    def insert(self, **values: Any) -> int:
        """Insert a row; returns the assigned primary key."""
        row = self.schema.validate_insert(values)
        row_id = self._next_id
        # pre-check all unique indexes before mutating any of them
        for idx in self._indexes:
            if idx.would_violate(row_id, row):
                raise DuplicateKeyError(
                    f"unique index on {idx.columns} violated in table "
                    f"{self.name!r}"
                )
        self._next_id += 1
        stored = dict(row)
        stored[self.schema.primary_key] = row_id
        self._rows[row_id] = stored
        for idx in self._indexes:
            idx.add(row_id, stored)
        return row_id

    def get(self, row_id: int) -> dict[str, Any]:
        """Fetch a row by primary key; raises :class:`NoSuchRowError`."""
        try:
            return dict(self._rows[row_id])
        except KeyError:
            raise NoSuchRowError(f"{self.name}[{row_id}] does not exist") from None

    def exists(self, row_id: int) -> bool:
        return row_id in self._rows

    def update(self, row_id: int, **values: Any) -> dict[str, Any]:
        """Apply a partial update; returns the updated row."""
        if row_id not in self._rows:
            raise NoSuchRowError(f"{self.name}[{row_id}] does not exist")
        changes = self.schema.validate_update(values)
        current = self._rows[row_id]
        candidate = dict(current)
        candidate.update(changes)
        for idx in self._indexes:
            if idx.would_violate(row_id, candidate):
                raise DuplicateKeyError(
                    f"unique index on {idx.columns} violated in table "
                    f"{self.name!r}"
                )
        for idx in self._indexes:
            idx.remove(row_id, current)
            idx.add(row_id, candidate)
        self._rows[row_id] = candidate
        return dict(candidate)

    def delete(self, row_id: int) -> None:
        """Remove a row by primary key."""
        row = self._rows.pop(row_id, None)
        if row is None:
            raise NoSuchRowError(f"{self.name}[{row_id}] does not exist")
        for idx in self._indexes:
            idx.remove(row_id, row)

    def query(self) -> Query:
        """Start a query over a snapshot of the current rows."""
        return Query(list(self._rows.values()))

    def find(self, **conditions: Any) -> list[dict[str, Any]]:
        """Shorthand for ``query().where(**conditions).all()``.

        Uses a matching index when every indexed column is an equality
        condition, which keeps hot lookups O(1) instead of scanning.
        """
        eq_only = {
            k: v for k, v in conditions.items() if "__" not in k
        }
        for idx in self._indexes:
            if set(idx.columns) <= set(eq_only):
                ids = idx.lookup(tuple(eq_only[c] for c in idx.columns))
                rows = [self._rows[i] for i in sorted(ids)]
                return Query(rows).where(**conditions).all()
        return self.query().where(**conditions).all()

    def find_one(self, **conditions: Any) -> dict[str, Any] | None:
        """First matching row or ``None``."""
        rows = self.find(**conditions)
        return rows[0] if rows else None

    def snapshot(self) -> list[dict[str, Any]]:
        """Deep-ish copy of all rows (row dicts are copied)."""
        return [dict(r) for r in self._rows.values()]

    def restore(self, rows: list[dict[str, Any]], next_id: int) -> None:
        """Replace contents wholesale (used by replication)."""
        pk = self.schema.primary_key
        self._rows = {}
        for idx in self._indexes:
            idx._map.clear()
        for row in rows:
            if pk not in row:
                raise SchemaError(f"restored row missing primary key {pk!r}")
            stored = dict(row)
            self._rows[stored[pk]] = stored
            for idx in self._indexes:
                idx.add(stored[pk], stored)
        self._next_id = next_id
