"""In-memory relational database substrate.

The paper's WebGPU stores user records, program submissions, and grades in
a MySQL (later Amazon Aurora) database, accessed through a connection pool
maintained by the web-server (Section III-B), and WebGPU 2.0 records
metrics and logging information in a *replicated* database (Section VI-A).

This package provides the equivalent substrate: a schema-checked table
engine with primary keys and unique/secondary indexes, a small query layer,
primary -> replica log-shipping replication with configurable lag, and a
bounded connection pool.
"""

from repro.db.schema import Column, ColumnType, Schema
from repro.db.table import Table
from repro.db.engine import Database
from repro.db.query import Query, asc, desc
from repro.db.replication import ReplicatedDatabase, Replica
from repro.db.pool import ConnectionPool, PooledConnection
from repro.db.errors import (
    DatabaseError,
    DuplicateKeyError,
    IntegrityError,
    NoSuchRowError,
    NoSuchTableError,
    PoolExhaustedError,
    SchemaError,
)

__all__ = [
    "Column",
    "ColumnType",
    "ConnectionPool",
    "Database",
    "DatabaseError",
    "DuplicateKeyError",
    "IntegrityError",
    "NoSuchRowError",
    "NoSuchTableError",
    "PoolExhaustedError",
    "PooledConnection",
    "Query",
    "Replica",
    "ReplicatedDatabase",
    "Schema",
    "SchemaError",
    "Table",
    "asc",
    "desc",
]
