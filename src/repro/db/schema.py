"""Table schemas: column declarations and row validation."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.db.errors import SchemaError


class ColumnType(enum.Enum):
    """Supported column value types."""

    INT = "int"
    FLOAT = "float"
    TEXT = "text"
    BOOL = "bool"
    JSON = "json"  # any JSON-serialisable python structure
    BLOB = "blob"  # bytes

    def accepts(self, value: Any) -> bool:
        """Whether ``value`` is storable in a column of this type."""
        if self is ColumnType.INT:
            return isinstance(value, int) and not isinstance(value, bool)
        if self is ColumnType.FLOAT:
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        if self is ColumnType.TEXT:
            return isinstance(value, str)
        if self is ColumnType.BOOL:
            return isinstance(value, bool)
        if self is ColumnType.JSON:
            return _is_jsonable(value)
        if self is ColumnType.BLOB:
            return isinstance(value, (bytes, bytearray))
        raise AssertionError(f"unknown column type {self}")


def _is_jsonable(value: Any) -> bool:
    if value is None or isinstance(value, (bool, int, float, str)):
        return True
    if isinstance(value, (list, tuple)):
        return all(_is_jsonable(v) for v in value)
    if isinstance(value, dict):
        return all(isinstance(k, str) and _is_jsonable(v) for k, v in value.items())
    return False


@dataclass(frozen=True)
class Column:
    """A single column declaration.

    Parameters
    ----------
    name:
        Column name; must be a valid identifier.
    type:
        One of :class:`ColumnType`.
    nullable:
        Whether ``None`` is an accepted value.
    default:
        Value used when an insert omits the column. ``...`` (Ellipsis)
        means "no default": the column must be supplied unless nullable.
    """

    name: str
    type: ColumnType
    nullable: bool = False
    default: Any = ...

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise SchemaError(f"column name {self.name!r} is not an identifier")
        if self.default is not ... and self.default is not None:
            if not self.type.accepts(self.default):
                raise SchemaError(
                    f"default {self.default!r} invalid for {self.type.value} "
                    f"column {self.name!r}"
                )

    def check(self, value: Any) -> None:
        """Raise :class:`SchemaError` if ``value`` does not fit this column."""
        if value is None:
            if not self.nullable:
                raise SchemaError(f"column {self.name!r} is not nullable")
            return
        if not self.type.accepts(value):
            raise SchemaError(
                f"value {value!r} has wrong type for {self.type.value} "
                f"column {self.name!r}"
            )


@dataclass
class Schema:
    """An ordered collection of columns plus the primary-key column.

    The primary key is always an auto-assigned integer column named by
    ``primary_key`` (default ``"id"``); it must not appear in ``columns``.
    """

    columns: Sequence[Column]
    primary_key: str = "id"
    unique: Sequence[Sequence[str]] = field(default_factory=tuple)
    indexes: Sequence[Sequence[str]] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in {names}")
        if self.primary_key in names:
            raise SchemaError(
                f"primary key {self.primary_key!r} must not be declared "
                "as a regular column"
            )
        self._by_name = {c.name: c for c in self.columns}
        for group in list(self.unique) + list(self.indexes):
            for col in group:
                if col not in self._by_name:
                    raise SchemaError(f"index references unknown column {col!r}")

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    def column(self, name: str) -> Column:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(f"no such column {name!r}") from None

    def validate_insert(self, values: Mapping[str, Any]) -> dict[str, Any]:
        """Validate and complete a row for insertion (defaults applied).

        Returns a fresh dict with every declared column present. The
        primary key must not be supplied by the caller.
        """
        if self.primary_key in values:
            raise SchemaError(
                f"primary key {self.primary_key!r} is auto-assigned and "
                "may not be supplied"
            )
        unknown = set(values) - set(self._by_name)
        if unknown:
            raise SchemaError(f"unknown columns {sorted(unknown)}")
        row: dict[str, Any] = {}
        for col in self.columns:
            if col.name in values:
                value = values[col.name]
            elif col.default is not ...:
                value = col.default
            elif col.nullable:
                value = None
            else:
                raise SchemaError(f"missing required column {col.name!r}")
            col.check(value)
            row[col.name] = value
        return row

    def validate_update(self, values: Mapping[str, Any]) -> dict[str, Any]:
        """Validate a partial update; primary key may not be changed."""
        if self.primary_key in values:
            raise SchemaError(f"primary key {self.primary_key!r} is immutable")
        out: dict[str, Any] = {}
        for name, value in values.items():
            self.column(name).check(value)
            out[name] = value
        return out
