"""The database engine: a named collection of tables plus a write log.

Every mutation is appended to an ordered write log (a logical WAL) so
that :mod:`repro.db.replication` can ship it to replicas. Log sequence
numbers (LSNs) are monotonically increasing integers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.db.errors import NoSuchTableError, SchemaError
from repro.db.schema import Schema
from repro.db.table import Table


@dataclass(frozen=True)
class LogRecord:
    """One replicated mutation."""

    lsn: int
    op: str  # "insert" | "update" | "delete"
    table: str
    row_id: int
    values: dict[str, Any]  # column values for insert/update; {} for delete


class Database:
    """A collection of schema-checked tables with a replication log."""

    def __init__(self, name: str = "webgpu"):
        self.name = name
        self._tables: dict[str, Table] = {}
        self._log: list[LogRecord] = []
        self._observers: list[Callable[[LogRecord], None]] = []

    # -- schema management -------------------------------------------------

    def create_table(self, name: str, schema: Schema) -> Table:
        if name in self._tables:
            raise SchemaError(f"table {name!r} already exists")
        table = Table(name, schema)
        self._tables[name] = table
        return table

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise NoSuchTableError(f"no such table {name!r}") from None

    @property
    def table_names(self) -> tuple[str, ...]:
        return tuple(self._tables)

    def has_table(self, name: str) -> bool:
        return name in self._tables

    # -- logged mutations ---------------------------------------------------

    @property
    def lsn(self) -> int:
        """LSN of the most recent mutation (0 when empty)."""
        return self._log[-1].lsn if self._log else 0

    def insert(self, table: str, **values: Any) -> int:
        row_id = self.table(table).insert(**values)
        self._append("insert", table, row_id, self.table(table).get(row_id))
        return row_id

    def update(self, table: str, row_id: int, **values: Any) -> dict[str, Any]:
        row = self.table(table).update(row_id, **values)
        self._append("update", table, row_id, dict(values))
        return row

    def delete(self, table: str, row_id: int) -> None:
        self.table(table).delete(row_id)
        self._append("delete", table, row_id, {})

    def _append(self, op: str, table: str, row_id: int, values: dict[str, Any]) -> None:
        record = LogRecord(lsn=self.lsn + 1, op=op, table=table,
                           row_id=row_id, values=values)
        self._log.append(record)
        for observer in self._observers:
            observer(record)

    def log_since(self, lsn: int) -> list[LogRecord]:
        """All log records with LSN strictly greater than ``lsn``."""
        # LSNs are dense and 1-based, so slicing is exact.
        return self._log[lsn:]

    def subscribe(self, observer: Callable[[LogRecord], None]) -> None:
        """Register a callback invoked synchronously on every mutation."""
        self._observers.append(observer)

    # -- reads (not logged) --------------------------------------------------

    def get(self, table: str, row_id: int) -> dict[str, Any]:
        return self.table(table).get(row_id)

    def find(self, table: str, **conditions: Any) -> list[dict[str, Any]]:
        return self.table(table).find(**conditions)

    def find_one(self, table: str, **conditions: Any) -> dict[str, Any] | None:
        return self.table(table).find_one(**conditions)

    def count(self, table: str) -> int:
        return len(self.table(table))
