"""A tiny composable query layer over table rows.

Rows are plain dicts; a :class:`Query` is a chain of filter / order /
limit operations evaluated lazily against a row iterable. This mirrors
the handful of access patterns the WebGPU web-server needs (look up a
user, list a student's attempts newest-first, page a roster).
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

Row = Mapping[str, Any]

_OPS: dict[str, Callable[[Any, Any], bool]] = {
    "eq": operator.eq,
    "ne": operator.ne,
    "lt": operator.lt,
    "le": operator.le,
    "gt": operator.gt,
    "ge": operator.ge,
    "in": lambda a, b: a in b,
    "contains": lambda a, b: b in a,
}


@dataclass(frozen=True)
class _Order:
    key: str
    reverse: bool


def asc(key: str) -> _Order:
    """Sort ascending by ``key``."""
    return _Order(key, reverse=False)


def desc(key: str) -> _Order:
    """Sort descending by ``key``."""
    return _Order(key, reverse=True)


class Query:
    """Lazily-evaluated filter/order/limit pipeline over rows.

    Filter keyword syntax follows the Django-style double-underscore
    convention: ``where(points__ge=10, user_id=3)``. A bare key means
    equality.
    """

    def __init__(self, rows: Iterable[Row]):
        self._rows = rows
        self._predicates: list[Callable[[Row], bool]] = []
        self._orders: list[_Order] = []
        self._offset = 0
        self._limit: int | None = None

    def where(self, **conditions: Any) -> "Query":
        """Add equality / comparison predicates (ANDed together)."""
        for key, expected in conditions.items():
            name, _, op = key.partition("__")
            if not op:
                op = "eq"
            if op not in _OPS:
                raise ValueError(f"unknown query operator {op!r} in {key!r}")
            fn = _OPS[op]
            self._predicates.append(
                lambda row, n=name, f=fn, e=expected: n in row and f(row[n], e)
            )
        return self

    def filter(self, predicate: Callable[[Row], bool]) -> "Query":
        """Add an arbitrary row predicate."""
        self._predicates.append(predicate)
        return self

    def order_by(self, *orders: _Order | str) -> "Query":
        """Sort by one or more keys (strings mean ascending)."""
        for o in orders:
            self._orders.append(asc(o) if isinstance(o, str) else o)
        return self

    def offset(self, n: int) -> "Query":
        if n < 0:
            raise ValueError("offset must be non-negative")
        self._offset = n
        return self

    def limit(self, n: int) -> "Query":
        if n < 0:
            raise ValueError("limit must be non-negative")
        self._limit = n
        return self

    def __iter__(self) -> Iterator[Row]:
        rows: Iterable[Row] = (
            r for r in self._rows if all(p(r) for p in self._predicates)
        )
        if self._orders:
            rows = list(rows)
            # apply orders right-to-left for stable multi-key sort
            for o in reversed(self._orders):
                rows.sort(key=lambda r: r[o.key], reverse=o.reverse)
        it = iter(rows)
        for _ in range(self._offset):
            next(it, None)
        if self._limit is not None:
            for i, row in enumerate(it):
                if i >= self._limit:
                    return
                yield row
        else:
            yield from it

    def all(self) -> list[dict[str, Any]]:
        """Evaluate and return all matching rows as fresh dicts."""
        return [dict(r) for r in self]

    def first(self) -> dict[str, Any] | None:
        """Return the first matching row, or ``None``."""
        for row in self:
            return dict(row)
        return None

    def count(self) -> int:
        """Number of matching rows (ignores offset/limit windowing)."""
        return sum(1 for _ in self)

    def values(self, key: str) -> list[Any]:
        """Project a single column from all matching rows."""
        return [r[key] for r in self]


def match_rows(rows: Sequence[Row], **conditions: Any) -> list[dict[str, Any]]:
    """Convenience: ``Query(rows).where(**conditions).all()``."""
    return Query(rows).where(**conditions).all()
