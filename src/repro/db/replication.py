"""Primary -> replica log-shipping replication.

WebGPU 2.0 stores metrics and logging information in a *replicated*
database (paper Section VI-A, Figure 6 item 4). We model asynchronous
replication: the primary accumulates a write log; each replica applies
records up to ``primary.lsn - lag`` when :meth:`Replica.sync` (or
:meth:`ReplicatedDatabase.sync_all`) is called. Reads served by a
lagging replica are therefore stale but self-consistent (a prefix of
the primary's history).
"""

from __future__ import annotations

from typing import Any

from repro.db.engine import Database, LogRecord
from repro.db.schema import Schema


class Replica:
    """A read-only follower of a primary :class:`Database`."""

    def __init__(self, primary: Database, name: str, lag: int = 0):
        if lag < 0:
            raise ValueError("lag must be non-negative")
        self.name = name
        self.lag = lag
        self._primary = primary
        self._db = Database(name=f"{primary.name}:{name}")
        self.applied_lsn = 0

    @property
    def database(self) -> Database:
        """The replica's local database (reads only, by convention)."""
        return self._db

    def _ensure_tables(self) -> None:
        for table_name in self._primary.table_names:
            if not self._db.has_table(table_name):
                src = self._primary.table(table_name)
                self._db.create_table(table_name, src.schema)

    def sync(self) -> int:
        """Apply pending log records up to ``primary.lsn - lag``.

        Returns the number of records applied.
        """
        self._ensure_tables()
        target = max(self.applied_lsn, self._primary.lsn - self.lag)
        applied = 0
        for record in self._primary.log_since(self.applied_lsn):
            if record.lsn > target:
                break
            self._apply(record)
            self.applied_lsn = record.lsn
            applied += 1
        return applied

    def catch_up(self) -> int:
        """Apply *all* pending records regardless of configured lag."""
        self._ensure_tables()
        applied = 0
        for record in self._primary.log_since(self.applied_lsn):
            self._apply(record)
            self.applied_lsn = record.lsn
            applied += 1
        return applied

    def _apply(self, record: LogRecord) -> None:
        table = self._db.table(record.table)
        if record.op == "insert":
            # Reproduce the primary's row id exactly.
            stored = dict(record.values)
            table._rows[record.row_id] = stored
            table._next_id = max(table._next_id, record.row_id + 1)
            for idx in table._indexes:
                idx.add(record.row_id, stored)
        elif record.op == "update":
            table.update(record.row_id, **record.values)
        elif record.op == "delete":
            table.delete(record.row_id)
        else:  # pragma: no cover - log records are produced by Database only
            raise ValueError(f"unknown log op {record.op!r}")

    # read helpers mirroring Database
    def find(self, table: str, **conditions: Any) -> list[dict[str, Any]]:
        return self._db.find(table, **conditions)

    def get(self, table: str, row_id: int) -> dict[str, Any]:
        return self._db.get(table, row_id)

    def staleness(self) -> int:
        """Number of primary log records not yet applied here."""
        return self._primary.lsn - self.applied_lsn


class ReplicatedDatabase:
    """A primary database plus a set of replicas (one per zone).

    Mirrors the paper's "replicated across Amazon availability zones"
    deployment: writes go to the primary; reads may be served by the
    replica in the caller's zone.
    """

    def __init__(self, name: str = "webgpu"):
        self.primary = Database(name=name)
        self._replicas: dict[str, Replica] = {}

    def create_table(self, name: str, schema: Schema) -> None:
        self.primary.create_table(name, schema)

    def add_replica(self, zone: str, lag: int = 0) -> Replica:
        if zone in self._replicas:
            raise ValueError(f"replica for zone {zone!r} already exists")
        replica = Replica(self.primary, name=zone, lag=lag)
        self._replicas[zone] = replica
        replica.sync()
        return replica

    def replica(self, zone: str) -> Replica:
        return self._replicas[zone]

    @property
    def zones(self) -> tuple[str, ...]:
        return tuple(self._replicas)

    def sync_all(self) -> dict[str, int]:
        """Sync every replica; returns records applied per zone."""
        return {zone: r.sync() for zone, r in self._replicas.items()}

    def read(self, zone: str, table: str, **conditions: Any) -> list[dict[str, Any]]:
        """Zone-local read (may be stale up to the replica's lag)."""
        return self._replicas[zone].find(table, **conditions)

    def write(self, table: str, **values: Any) -> int:
        """All writes go to the primary."""
        return self.primary.insert(table, **values)
