"""Trace export: JSONL files and ASCII waterfalls.

The JSONL format is one span per line (sorted by start time, then by
creation order), so traces stream, diff cleanly, and load with any
JSON tooling. The waterfall renders one trace as an indented tree of
bars over simulated time — the per-attempt latency picture the
dashboard's aggregate percentiles cannot show.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Any, Iterable

from repro.telemetry.trace import Span, Tracer


def spans_to_dicts(spans: Iterable[Span]) -> list[dict[str, Any]]:
    """Stable export order: by start time, ties by span creation."""
    indexed = list(enumerate(spans))
    indexed.sort(key=lambda pair: (pair[1].start, pair[0]))
    return [span.to_dict() for _, span in indexed]


def dump_jsonl(spans: Iterable[Span]) -> str:
    return "".join(json.dumps(d, sort_keys=True) + "\n"
                   for d in spans_to_dicts(spans))


def write_jsonl(spans: Iterable[Span], path: str | Path | IO[str]) -> int:
    """Write spans to a ``.jsonl`` file; returns the span count."""
    text = dump_jsonl(spans)
    if hasattr(path, "write"):
        path.write(text)
    else:
        Path(path).write_text(text)
    return text.count("\n")


def read_jsonl(path: str | Path) -> list[dict[str, Any]]:
    out = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if line:
            out.append(json.loads(line))
    return out


def _span_sort_tree(records: list[dict[str, Any]]
                    ) -> list[tuple[int, dict[str, Any]]]:
    """Depth-first (depth, span) order for rendering."""
    children: dict[str | None, list[dict[str, Any]]] = {}
    by_id = {r["span_id"]: r for r in records}
    for record in records:
        parent = record.get("parent_id")
        if parent is not None and parent not in by_id:
            parent = None  # orphan (parent not exported): treat as root
        children.setdefault(parent, []).append(record)
    for bucket in children.values():
        bucket.sort(key=lambda r: (r["start"], r["span_id"]))

    out: list[tuple[int, dict[str, Any]]] = []

    def visit(span_id: str | None, depth: int) -> None:
        for record in children.get(span_id, []):
            out.append((depth, record))
            visit(record["span_id"], depth + 1)

    visit(None, 0)
    return out


def waterfall(spans: "Iterable[Span] | list[dict[str, Any]]",
              trace_id: str | None = None, width: int = 48) -> str:
    """ASCII waterfall of one trace.

    ``spans`` may be live :class:`Span` objects or dicts read back from
    a JSONL file. When ``trace_id`` is None the first trace present is
    rendered. Events show as ``*`` markers on the bar; warning-level
    events are listed under their span.
    """
    records: list[dict[str, Any]] = []
    for span in spans:
        record = span if isinstance(span, dict) else span.to_dict()
        if record:
            records.append(record)
    if not records:
        return "(no spans)"
    if trace_id is None:
        trace_id = records[0]["trace_id"]
    records = [r for r in records if r["trace_id"] == trace_id]
    if not records:
        return f"(no spans for trace {trace_id})"

    t0 = min(r["start"] for r in records)
    t1 = max(r["end"] for r in records)
    window = max(t1 - t0, 1e-12)
    scale = width / window

    def col(t: float) -> int:
        return min(width - 1, max(0, int((t - t0) * scale)))

    rows = _span_sort_tree(records)
    label_width = max(len("  " * d + r["name"]) for d, r in rows) + 2
    lines = [f"trace {trace_id}  ({len(records)} span(s), "
             f"{window:.3f}s, t0={t0:.3f}s)"]
    for depth, record in rows:
        start, end = record["start"], record["end"]
        lo, hi = col(start), col(end)
        bar = [" "] * width
        for i in range(lo, hi + 1):
            bar[i] = "="
        bar[lo] = "|"
        bar[hi] = "|"
        for event in record.get("events", ()):
            bar[col(event["time"])] = "*"
        label = ("  " * depth + record["name"]).ljust(label_width)
        lines.append(f"{label}{''.join(bar)} "
                     f"{start - t0:8.3f}s +{end - start:.3f}s")
        for event in record.get("events", ()):
            marker = "!" if event.get("level") == "warning" else "*"
            attrs = event.get("attrs") or {}
            detail = " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
            lines.append(f"{'  ' * depth}  {marker} {event['name']} "
                         f"@{event['time'] - t0:.3f}s"
                         + (f" ({detail})" if detail else ""))
    return "\n".join(lines)


def render_trace(tracer: Tracer, trace_id: str | None = None,
                 width: int = 48) -> str:
    """Waterfall straight from a live tracer."""
    return waterfall(tracer.spans, trace_id=trace_id, width=width)
