"""Metrics registry: counters, gauges, and streaming histograms.

The paper's workers "report metrics to a replicated database" and an
"information dashboard is available to the system administrators to
track the system status" (Section VI-A). This module is the in-process
half of that story: every pipeline component increments counters and
observes latencies here, and observers read either a Prometheus-style
text exposition (:meth:`MetricsRegistry.render_prometheus`) or a JSON
snapshot (:meth:`MetricsRegistry.snapshot`).

Histograms use a **fixed log-bucket layout** (``2 ** (1/8)`` growth, so
every bucket is ~9% wide): the layout is a property of the *class*, not
the instance, which makes histograms from different workers mergeable
by plain bucket-count addition (:meth:`Histogram.merge`) and keeps
quantile queries deterministic — the same observations always produce
the same p50/p95/p99 answers, independent of arrival order.
"""

from __future__ import annotations

import json
import math
from typing import Iterable

#: Histogram bucket layout: bucket i spans
#: [_BUCKET_MIN * GROWTH**i, _BUCKET_MIN * GROWTH**(i+1)).
_BUCKET_MIN = 1e-6
_GROWTH_LOG2 = 1.0 / 8.0          # factor 2**(1/8) ~ 9% resolution
_LOG2_MIN = math.log2(_BUCKET_MIN)
#: Values at or below zero land in the dedicated zero bucket.
_ZERO_BUCKET = -(10 ** 9)


def bucket_index(value: float) -> int:
    """The fixed bucket a value falls into (layout shared by all
    histograms, which is what makes them mergeable)."""
    if value <= 0.0:
        return _ZERO_BUCKET
    return int(math.floor((math.log2(value) - _LOG2_MIN) / _GROWTH_LOG2))

def bucket_upper(index: int) -> float:
    """Exclusive upper bound of a bucket."""
    if index == _ZERO_BUCKET:
        return 0.0
    return 2.0 ** (_LOG2_MIN + (index + 1) * _GROWTH_LOG2)


def _label_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _render_labels(key: tuple[tuple[str, str], ...],
                   extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = key + extra
    if not pairs:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in pairs)
    return "{" + body + "}"


class Counter:
    """A monotonically increasing counter, optionally labeled."""

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._series: dict[tuple[tuple[str, str], ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        """Value of one series (0.0 if never incremented)."""
        return self._series.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum across every labeled series."""
        return sum(self._series.values())

    def merge(self, other: "Counter") -> None:
        for key, val in other._series.items():
            self._series[key] = self._series.get(key, 0.0) + val

    def snapshot(self) -> dict:
        return {"type": self.kind, "help": self.help,
                "series": [{"labels": dict(k), "value": v}
                           for k, v in sorted(self._series.items())]}

    def render(self) -> list[str]:
        lines = [f"# HELP {self.name} {self.help}",
                 f"# TYPE {self.name} counter"]
        for key, val in sorted(self._series.items()):
            lines.append(f"{self.name}{_render_labels(key)} {_format(val)}")
        if not self._series:
            lines.append(f"{self.name} 0")
        return lines


class Gauge(Counter):
    """A value that can go up and down (queue depth, leases in flight)."""

    kind = "gauge"

    def set(self, value: float, **labels: str) -> None:
        self._series[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        self.inc(-amount, **labels)

    def merge(self, other: "Counter") -> None:
        # last-writer-wins makes no sense fleet-wide; gauges merge by sum
        # (depth across workers is additive for every gauge we export)
        super().merge(other)

    def render(self) -> list[str]:
        lines = [f"# HELP {self.name} {self.help}",
                 f"# TYPE {self.name} gauge"]
        for key, val in sorted(self._series.items()):
            lines.append(f"{self.name}{_render_labels(key)} {_format(val)}")
        if not self._series:
            lines.append(f"{self.name} 0")
        return lines


class _HistogramSeries:
    """Bucket counts for one label combination."""

    __slots__ = ("buckets", "count", "sum", "min", "max")

    def __init__(self):
        self.buckets: dict[int, int] = {}
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        idx = bucket_index(value)
        self.buckets[idx] = self.buckets.get(idx, 0) + 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def merge(self, other: "_HistogramSeries") -> None:
        for idx, n in other.buckets.items():
            self.buckets[idx] = self.buckets.get(idx, 0) + n
        self.count += other.count
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def quantile(self, q: float) -> float:
        """Deterministic quantile from the bucket counts.

        The answer is the upper bound of the bucket holding the q-th
        observation, clamped to the exact observed [min, max] — so the
        error is bounded by one bucket width (~9%) and independent of
        observation order.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(q * self.count))
        cumulative = 0
        for idx in sorted(self.buckets):
            cumulative += self.buckets[idx]
            if cumulative >= rank:
                return min(max(bucket_upper(idx), self.min), self.max)
        return self.max  # pragma: no cover - rank <= count always hits

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def summary(self) -> dict[str, float]:
        return {
            "count": self.count,
            "sum": round(self.sum, 9),
            "mean": round(self.mean, 9),
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "p50": round(self.quantile(0.50), 9),
            "p95": round(self.quantile(0.95), 9),
            "p99": round(self.quantile(0.99), 9),
        }


class Histogram:
    """A family of labeled log-bucket histogram series."""

    kind = "histogram"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._series: dict[tuple[tuple[str, str], ...], _HistogramSeries] = {}

    def observe(self, value: float, **labels: str) -> None:
        key = _label_key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _HistogramSeries()
        series.observe(float(value))

    def series(self, **labels: str) -> _HistogramSeries | None:
        return self._series.get(_label_key(labels))

    def label_values(self, label: str) -> list[str]:
        """Distinct values a label takes across the family's series."""
        seen = []
        for key in self._series:
            for k, v in key:
                if k == label and v not in seen:
                    seen.append(v)
        return sorted(seen)

    def merged(self, **labels: str) -> _HistogramSeries:
        """One series merging every series whose labels include the
        given (possibly partial) label set — e.g. all tags of a stage."""
        want = set(_label_key(labels))
        out = _HistogramSeries()
        for key, series in self._series.items():
            if want <= set(key):
                out.merge(series)
        return out

    def merge(self, other: "Histogram") -> None:
        for key, series in other._series.items():
            mine = self._series.get(key)
            if mine is None:
                mine = self._series[key] = _HistogramSeries()
            mine.merge(series)

    def snapshot(self) -> dict:
        return {"type": self.kind, "help": self.help,
                "series": [{"labels": dict(k), **s.summary()}
                           for k, s in sorted(self._series.items())]}

    def render(self) -> list[str]:
        lines = [f"# HELP {self.name} {self.help}",
                 f"# TYPE {self.name} histogram"]
        for key, series in sorted(self._series.items()):
            cumulative = 0
            for idx in sorted(series.buckets):
                cumulative += series.buckets[idx]
                le = ("0" if bucket_upper(idx) == 0.0
                      else _format(bucket_upper(idx)))
                lines.append(f"{self.name}_bucket"
                             f"{_render_labels(key, (('le', le),))} "
                             f"{cumulative}")
            lines.append(f"{self.name}_bucket"
                         f"{_render_labels(key, (('le', '+Inf'),))} "
                         f"{series.count}")
            lines.append(f"{self.name}_sum{_render_labels(key)} "
                         f"{_format(series.sum)}")
            lines.append(f"{self.name}_count{_render_labels(key)} "
                         f"{series.count}")
        return lines


def _format(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class MetricsRegistry:
    """Named metric families, created on first use.

    One registry per platform; workers in other processes (or other
    simulated fleets) keep their own and are folded in with
    :meth:`merge` — every metric type merges by addition, so the
    fleet-wide view is exact, not sampled.
    """

    def __init__(self):
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, cls, name: str, help: str):
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = cls(name, help)
        elif not isinstance(metric, cls):
            raise TypeError(f"metric {name!r} already registered as "
                            f"{metric.kind}")
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(Gauge, name, help)

    def histogram(self, name: str, help: str = "") -> Histogram:
        return self._get(Histogram, name, help)

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        return self._metrics.get(name)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another worker's registry into this one (additive)."""
        for name, metric in other._metrics.items():
            mine = self._get(type(metric), name, metric.help)
            mine.merge(metric)

    def snapshot(self) -> dict[str, dict]:
        """JSON-able point-in-time view of every family."""
        return {name: self._metrics[name].snapshot()
                for name in sorted(self._metrics)}

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (one scrape page)."""
        lines: list[str] = []
        for name in sorted(self._metrics):
            lines.extend(self._metrics[name].render())
        return "\n".join(lines) + "\n"


def merge_registries(registries: Iterable[MetricsRegistry]) -> MetricsRegistry:
    """Fleet-wide aggregate of several workers' registries."""
    out = MetricsRegistry()
    for registry in registries:
        out.merge(registry)
    return out
