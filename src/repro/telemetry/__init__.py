"""End-to-end telemetry: metrics registry + distributed tracing.

:class:`Telemetry` is the bundle every pipeline component receives —
a :class:`~repro.telemetry.metrics.MetricsRegistry` (always on; counter
bumps are nanoseconds against millisecond jobs) plus a tracer that
defaults to the zero-overhead :class:`~repro.telemetry.trace.NullTracer`
and becomes a real :class:`~repro.telemetry.trace.Tracer` when the
platform is built with ``Telemetry(clock, tracing=True)``.

Span taxonomy, metric names, and the exposition formats are documented
in DESIGN.md ("Observability").
"""

from __future__ import annotations

from typing import Any

from repro.telemetry.export import (
    dump_jsonl,
    read_jsonl,
    render_trace,
    waterfall,
    write_jsonl,
)
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    bucket_index,
    bucket_upper,
    merge_registries,
)
from repro.telemetry.trace import (
    INFO,
    NULL_SPAN,
    WARNING,
    NullSpan,
    NullTracer,
    Span,
    TraceContext,
    Tracer,
)

#: The per-stage latency breakdown every job passes through (the
#: dashboard reports p50/p95/p99 for each).
STAGES = ("queue_wait", "container_acquire", "compile", "exec",
          "grade", "report")

#: Histogram family name for the per-stage breakdown.
STAGE_SECONDS = "webgpu_stage_seconds"

#: Front-end parse latency, labeled by parser backend (``pegen`` is the
#: generated packrat parser, ``legacy`` the hand-written descent oracle).
PARSE_SECONDS = "webgpu_parse_seconds"

#: Packrat memo-table outcomes (``outcome=hit|miss``) per parse, so the
#: dashboard can watch the memoization rate of the generated parser.
PARSER_MEMO_TOTAL = "webgpu_parser_memo_total"

#: Queue-level wait histogram, labeled by admission class — observed by
#: the JobQueue itself at poll time so the SLO burn meter sees every
#: delivery (batched or not, fabric or single queue).
QUEUE_WAIT_SECONDS = "webgpu_queue_wait_seconds"

#: Gauge the SLO controller publishes: observed p95 queue wait divided
#: by the SLO target (1.0 = exactly on budget).
SLO_BURN = "webgpu_slo_burn"

#: Admission classes in shed order: ``preview`` goes first, ``run``
#: may be deferred, ``grade`` (submit-for-grading) is never shed.
ADMISSION_CLASSES = ("grade", "run", "preview")

_KIND_TO_CLASS = {"grade": "grade", "run": "run", "compile": "preview"}


def job_class(job: Any) -> str:
    """The admission/priority class of a job: ``grade`` for
    submit-for-grading, ``run`` for run-on-dataset, ``preview`` for
    compile-only checks (the deferral order the paper's deadline storm
    demands: never shed a grading submission)."""
    kind = getattr(getattr(job, "kind", None), "value", "")
    return _KIND_TO_CLASS.get(kind, "run")


def requirement_tag(job: Any) -> str:
    """The label the per-stage latency breakdown is sliced by: the
    job's requirement tags joined (e.g. ``mpi+multi-gpu``), or
    ``untagged`` for plain single-GPU jobs."""
    tags = sorted(job.requirements)
    return "+".join(tags) if tags else "untagged"



#: Histogram family names for per-kernel execution time.
KERNEL_WALL_SECONDS = "webgpu_kernel_wall_seconds"
KERNEL_SIM_SECONDS = "webgpu_kernel_sim_seconds"

#: Per-engine kernel compile/exec breakdown (labeled ``engine=`` and
#: ``kernel=``) — lets the dashboard compare the ast / closure /
#: codegen backends launch-for-launch.
KERNEL_COMPILE_SECONDS = "webgpu_kernel_engine_compile_seconds"
KERNEL_EXEC_SECONDS = "webgpu_kernel_engine_exec_seconds"

#: Histogram: fraction of warp lane slots active per simd-engine launch
#: (1.0 = divergence-free; lower means masked-off lanes rode along
#: while both branch arms executed). A histogram — not a gauge —
#: because the fleet view merges registries by addition: merged gauges
#: sum last-set ratios into nonsense, merged histograms add bucket
#: counts and keep the distribution exact.
WARP_ACTIVE_LANE_RATIO = "webgpu_warp_active_lane_ratio"


class ExemplarStore:
    """Sampled concrete traces behind the stage-latency histogram.

    Prometheus-style exemplars: each ``(stage, tag, bucket)`` slot of
    the fixed log-bucket layout holds at most one recent trace
    reference, so a dashboard bucket links to one real attempt to pull
    up ("p99 of exec is 4s — *here* is such an attempt"). Admission is
    **tail-sampled**: an observation is stored only when it lands at
    or above the store's latency percentile of what its (stage, tag)
    series has seen so far, so cheap common attempts never occupy the
    slots the interesting tail needs. The first observation of a
    series always seeds a slot.
    """

    __slots__ = ("percentile", "_slots")

    def __init__(self, percentile: float = 0.95):
        if not 0.0 <= percentile <= 1.0:
            raise ValueError(f"percentile must be in [0, 1], "
                             f"got {percentile}")
        self.percentile = percentile
        self._slots: dict[tuple[str, str, int], dict[str, Any]] = {}

    def __len__(self) -> int:
        return len(self._slots)

    def offer(self, stage: str, tag: str, seconds: float, trace: Any,
              series: Any = None) -> bool:
        """Tail-sampling admission; True when the exemplar was kept.

        ``series`` is the (stage, tag) histogram series *including*
        this observation — the percentile threshold is computed from
        it, so the knob is self-calibrating as traffic shifts.
        """
        if trace is None:
            return False
        if (series is not None and series.count > 1
                and seconds < series.quantile(self.percentile)):
            return False
        self._slots[(stage, tag, bucket_index(seconds))] = {
            "trace_id": getattr(trace, "trace_id", str(trace)),
            "span_id": getattr(trace, "span_id", ""),
            "seconds": seconds,
        }
        return True

    def exemplar(self, stage: str, tag: str = "untagged",
                 bucket: int | None = None) -> dict[str, Any] | None:
        """The exemplar in one bucket, or — with no bucket given —
        the slowest stored exemplar for the (stage, tag) pair."""
        if bucket is not None:
            return self._slots.get((stage, tag, bucket))
        best: dict[str, Any] | None = None
        for (st, tg, _), rec in self._slots.items():
            if st == stage and tg == tag and (
                    best is None or rec["seconds"] > best["seconds"]):
                best = rec
        return best

    def for_stage(self, stage: str,
                  tag: str | None = None) -> list[dict[str, Any]]:
        """Stored exemplars for a stage (optionally one tag), in
        bucket order, each with its bucket upper bound attached."""
        out = []
        for (st, tg, bucket), rec in sorted(self._slots.items()):
            if st != stage or (tag is not None and tg != tag):
                continue
            out.append({"stage": st, "tag": tg, "bucket": bucket,
                        "le": bucket_upper(bucket), **rec})
        return out

    def snapshot(self) -> list[dict[str, Any]]:
        """JSON-able listing of every stored exemplar."""
        return [{"stage": st, "tag": tg, "bucket": bucket,
                 "le": bucket_upper(bucket), **rec}
                for (st, tg, bucket), rec in sorted(self._slots.items())]

    def merge(self, other: "ExemplarStore") -> None:
        """Fold another store in (slower observation wins per slot)."""
        for key, rec in other._slots.items():
            mine = self._slots.get(key)
            if mine is None or rec["seconds"] > mine["seconds"]:
                self._slots[key] = rec


class Telemetry:
    """The metrics registry + tracer bundle one platform shares."""

    __slots__ = ("metrics", "tracer", "clock", "exemplars")

    def __init__(self, clock: Any = None, tracing: bool = False,
                 registry: MetricsRegistry | None = None,
                 tracer: "Tracer | NullTracer | None" = None,
                 exemplar_percentile: float = 0.95):
        self.clock = clock
        self.metrics = registry if registry is not None else MetricsRegistry()
        self.exemplars = ExemplarStore(exemplar_percentile)
        if tracer is not None:
            self.tracer = tracer
        else:
            self.tracer = Tracer(clock) if tracing else NullTracer()

    @property
    def enabled(self) -> bool:
        """True when real tracing is on (metrics are always on)."""
        return self.tracer.enabled

    # -- convenience recorders (the shared vocabulary) ---------------------

    def record_stage(self, stage: str, seconds: float,
                     tag: str = "untagged", trace: Any = None) -> None:
        """One observation in the per-stage latency breakdown.

        ``trace`` (a :class:`TraceContext`, or anything carrying a
        ``trace_id``) offers the observation to the exemplar store —
        tail-sampled, so only attempts at or above the store's latency
        percentile survive as the concrete trace behind a histogram
        bucket. None (the default) keeps the hot path exemplar-free.
        """
        value = max(0.0, seconds)
        family = self.metrics.histogram(
            STAGE_SECONDS, "simulated seconds per pipeline stage")
        family.observe(value, stage=stage, tag=tag)
        if trace is not None:
            self.exemplars.offer(stage, tag, value, trace,
                                 family.series(stage=stage, tag=tag))

    def record_kernel(self, name: str, wall_seconds: float,
                      stats: Any = None) -> None:
        """Per-kernel-launch wall time + the KernelStats counters."""
        self.metrics.histogram(
            KERNEL_WALL_SECONDS,
            "host wall seconds interpreting one kernel launch").observe(
                wall_seconds, kernel=name)
        if stats is None:
            return
        self.metrics.histogram(
            KERNEL_SIM_SECONDS,
            "simulated device seconds per kernel launch").observe(
                getattr(stats, "elapsed_seconds", 0.0), kernel=name)
        counters = self.metrics.counter(
            "webgpu_kernel_counters_total",
            "KernelStats counters summed over launches")
        for field in ("instructions", "global_load_transactions",
                      "global_store_transactions", "shared_accesses",
                      "bank_conflicts", "atomic_ops", "barriers"):
            value = getattr(stats, field, 0)
            if value:
                counters.inc(value, kernel=name, counter=field)
        self.metrics.counter(
            "webgpu_kernel_launches_total",
            "kernel launches").inc(kernel=name)

    def record_parse(self, backend: str, seconds: float,
                     memo_hits: int = 0, memo_misses: int = 0) -> None:
        """One front-end parse: wall time plus packrat memo outcomes."""
        self.metrics.histogram(
            PARSE_SECONDS,
            "host wall seconds parsing one translation unit").observe(
                max(0.0, seconds), backend=backend)
        if memo_hits or memo_misses:
            memo = self.metrics.counter(
                PARSER_MEMO_TOTAL, "packrat memo-table lookups")
            if memo_hits:
                memo.inc(memo_hits, backend=backend, outcome="hit")
            if memo_misses:
                memo.inc(memo_misses, backend=backend, outcome="miss")

    def stage_summary(self, by_tag: bool = False) -> dict[str, dict]:
        """p50/p95/p99 etc. per stage (optionally nested per tag).

        Every stage in :data:`STAGES` appears even when never
        observed — an explicit all-zero summary — and with ``by_tag``
        every known tag appears under every stage the same way, so
        consumers (dashboard, ``trace-attempt``) render a fixed-shape
        table instead of silently dropping rows a stage/tag slice
        never hit.
        """
        family = self.metrics.get(STAGE_SECONDS)
        if not isinstance(family, Histogram):
            family = Histogram(STAGE_SECONDS)
        stages = list(STAGES)
        for stage in family.label_values("stage"):
            if stage not in stages:
                stages.append(stage)
        tags = family.label_values("tag")
        out: dict[str, dict] = {}
        for stage in stages:
            out[stage] = family.merged(stage=stage).summary()
            if by_tag:
                out[stage]["tags"] = {
                    tag: family.merged(stage=stage, tag=tag).summary()
                    for tag in tags}
        return out


def disabled() -> Telemetry:
    """A fresh all-default bundle (metrics registry + NullTracer)."""
    return Telemetry()


__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "merge_registries",
    "Tracer", "NullTracer", "Span", "NullSpan", "TraceContext",
    "NULL_SPAN", "INFO", "WARNING",
    "Telemetry", "ExemplarStore", "disabled", "requirement_tag",
    "STAGES", "STAGE_SECONDS", "WARP_ACTIVE_LANE_RATIO",
    "QUEUE_WAIT_SECONDS", "SLO_BURN", "ADMISSION_CLASSES", "job_class",
    "KERNEL_WALL_SECONDS", "KERNEL_SIM_SECONDS",
    "KERNEL_COMPILE_SECONDS", "KERNEL_EXEC_SECONDS",
    "dump_jsonl", "write_jsonl", "read_jsonl", "waterfall", "render_trace",
]
