"""End-to-end telemetry: metrics registry + distributed tracing.

:class:`Telemetry` is the bundle every pipeline component receives —
a :class:`~repro.telemetry.metrics.MetricsRegistry` (always on; counter
bumps are nanoseconds against millisecond jobs) plus a tracer that
defaults to the zero-overhead :class:`~repro.telemetry.trace.NullTracer`
and becomes a real :class:`~repro.telemetry.trace.Tracer` when the
platform is built with ``Telemetry(clock, tracing=True)``.

Span taxonomy, metric names, and the exposition formats are documented
in DESIGN.md ("Observability").
"""

from __future__ import annotations

from typing import Any

from repro.telemetry.export import (
    dump_jsonl,
    read_jsonl,
    render_trace,
    waterfall,
    write_jsonl,
)
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_registries,
)
from repro.telemetry.trace import (
    INFO,
    NULL_SPAN,
    WARNING,
    NullSpan,
    NullTracer,
    Span,
    TraceContext,
    Tracer,
)

#: The per-stage latency breakdown every job passes through (the
#: dashboard reports p50/p95/p99 for each).
STAGES = ("queue_wait", "container_acquire", "compile", "exec",
          "grade", "report")

#: Histogram family name for the per-stage breakdown.
STAGE_SECONDS = "webgpu_stage_seconds"

#: Front-end parse latency, labeled by parser backend (``pegen`` is the
#: generated packrat parser, ``legacy`` the hand-written descent oracle).
PARSE_SECONDS = "webgpu_parse_seconds"

#: Packrat memo-table outcomes (``outcome=hit|miss``) per parse, so the
#: dashboard can watch the memoization rate of the generated parser.
PARSER_MEMO_TOTAL = "webgpu_parser_memo_total"

#: Queue-level wait histogram, labeled by admission class — observed by
#: the JobQueue itself at poll time so the SLO burn meter sees every
#: delivery (batched or not, fabric or single queue).
QUEUE_WAIT_SECONDS = "webgpu_queue_wait_seconds"

#: Gauge the SLO controller publishes: observed p95 queue wait divided
#: by the SLO target (1.0 = exactly on budget).
SLO_BURN = "webgpu_slo_burn"

#: Admission classes in shed order: ``preview`` goes first, ``run``
#: may be deferred, ``grade`` (submit-for-grading) is never shed.
ADMISSION_CLASSES = ("grade", "run", "preview")

_KIND_TO_CLASS = {"grade": "grade", "run": "run", "compile": "preview"}


def job_class(job: Any) -> str:
    """The admission/priority class of a job: ``grade`` for
    submit-for-grading, ``run`` for run-on-dataset, ``preview`` for
    compile-only checks (the deferral order the paper's deadline storm
    demands: never shed a grading submission)."""
    kind = getattr(getattr(job, "kind", None), "value", "")
    return _KIND_TO_CLASS.get(kind, "run")


def requirement_tag(job: Any) -> str:
    """The label the per-stage latency breakdown is sliced by: the
    job's requirement tags joined (e.g. ``mpi+multi-gpu``), or
    ``untagged`` for plain single-GPU jobs."""
    tags = sorted(job.requirements)
    return "+".join(tags) if tags else "untagged"



#: Histogram family names for per-kernel execution time.
KERNEL_WALL_SECONDS = "webgpu_kernel_wall_seconds"
KERNEL_SIM_SECONDS = "webgpu_kernel_sim_seconds"

#: Per-engine kernel compile/exec breakdown (labeled ``engine=`` and
#: ``kernel=``) — lets the dashboard compare the ast / closure /
#: codegen backends launch-for-launch.
KERNEL_COMPILE_SECONDS = "webgpu_kernel_engine_compile_seconds"
KERNEL_EXEC_SECONDS = "webgpu_kernel_engine_exec_seconds"

#: Gauge: fraction of warp lane slots that were active in the last
#: simd-engine launch (1.0 = divergence-free; lower means masked-off
#: lanes rode along while both branch arms executed).
WARP_ACTIVE_LANE_RATIO = "webgpu_warp_active_lane_ratio"


class Telemetry:
    """The metrics registry + tracer bundle one platform shares."""

    __slots__ = ("metrics", "tracer", "clock")

    def __init__(self, clock: Any = None, tracing: bool = False,
                 registry: MetricsRegistry | None = None,
                 tracer: "Tracer | NullTracer | None" = None):
        self.clock = clock
        self.metrics = registry if registry is not None else MetricsRegistry()
        if tracer is not None:
            self.tracer = tracer
        else:
            self.tracer = Tracer(clock) if tracing else NullTracer()

    @property
    def enabled(self) -> bool:
        """True when real tracing is on (metrics are always on)."""
        return self.tracer.enabled

    # -- convenience recorders (the shared vocabulary) ---------------------

    def record_stage(self, stage: str, seconds: float,
                     tag: str = "untagged") -> None:
        """One observation in the per-stage latency breakdown."""
        self.metrics.histogram(
            STAGE_SECONDS,
            "simulated seconds per pipeline stage").observe(
                max(0.0, seconds), stage=stage, tag=tag)

    def record_kernel(self, name: str, wall_seconds: float,
                      stats: Any = None) -> None:
        """Per-kernel-launch wall time + the KernelStats counters."""
        self.metrics.histogram(
            KERNEL_WALL_SECONDS,
            "host wall seconds interpreting one kernel launch").observe(
                wall_seconds, kernel=name)
        if stats is None:
            return
        self.metrics.histogram(
            KERNEL_SIM_SECONDS,
            "simulated device seconds per kernel launch").observe(
                getattr(stats, "elapsed_seconds", 0.0), kernel=name)
        counters = self.metrics.counter(
            "webgpu_kernel_counters_total",
            "KernelStats counters summed over launches")
        for field in ("instructions", "global_load_transactions",
                      "global_store_transactions", "shared_accesses",
                      "bank_conflicts", "atomic_ops", "barriers"):
            value = getattr(stats, field, 0)
            if value:
                counters.inc(value, kernel=name, counter=field)
        self.metrics.counter(
            "webgpu_kernel_launches_total",
            "kernel launches").inc(kernel=name)

    def record_parse(self, backend: str, seconds: float,
                     memo_hits: int = 0, memo_misses: int = 0) -> None:
        """One front-end parse: wall time plus packrat memo outcomes."""
        self.metrics.histogram(
            PARSE_SECONDS,
            "host wall seconds parsing one translation unit").observe(
                max(0.0, seconds), backend=backend)
        if memo_hits or memo_misses:
            memo = self.metrics.counter(
                PARSER_MEMO_TOTAL, "packrat memo-table lookups")
            if memo_hits:
                memo.inc(memo_hits, backend=backend, outcome="hit")
            if memo_misses:
                memo.inc(memo_misses, backend=backend, outcome="miss")

    def stage_summary(self, by_tag: bool = False) -> dict[str, dict]:
        """p50/p95/p99 etc. per stage (optionally nested per tag)."""
        family = self.metrics.get(STAGE_SECONDS)
        out: dict[str, dict] = {}
        if not isinstance(family, Histogram):
            return out
        for stage in family.label_values("stage"):
            out[stage] = family.merged(stage=stage).summary()
            if by_tag:
                out[stage]["tags"] = {
                    tag: series.summary()
                    for tag in family.label_values("tag")
                    if (series := family.series(stage=stage, tag=tag))
                    is not None}
        return out


def disabled() -> Telemetry:
    """A fresh all-default bundle (metrics registry + NullTracer)."""
    return Telemetry()


__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "merge_registries",
    "Tracer", "NullTracer", "Span", "NullSpan", "TraceContext",
    "NULL_SPAN", "INFO", "WARNING",
    "Telemetry", "disabled", "requirement_tag", "STAGES", "STAGE_SECONDS",
    "QUEUE_WAIT_SECONDS", "SLO_BURN", "ADMISSION_CLASSES", "job_class",
    "KERNEL_WALL_SECONDS", "KERNEL_SIM_SECONDS",
    "KERNEL_COMPILE_SECONDS", "KERNEL_EXEC_SECONDS",
    "dump_jsonl", "write_jsonl", "read_jsonl", "waterfall", "render_trace",
]
