"""Structured tracing over the simulated clock.

One student attempt is one **trace**; every pipeline stage it passes
through (submit, enqueue, queue wait, lease, container acquire,
compile, exec, grade, ack) is a **span** — an interval of simulated
time with attributes and point **events** (cache hit/miss, redelivery,
backoff, lease expiry, DLQ parking). The :class:`TraceContext` rides
on the :class:`~repro.cluster.job.Job` across the broker boundary, so
a job redelivered to a different worker keeps extending the same trace
— the answer to "where did attempt #4812 spend its 9 seconds?".

All ids and timestamps derive from the simulated clock plus a
monotonic counter, so the same simulation always produces the same
trace, byte for byte — traces are replayable in tests.

The default tracer on every platform is :class:`NullTracer`: every
call is a no-op returning a shared :class:`NullSpan`, so the traced
code path costs one attribute lookup and one call when tracing is off
(benchmarked in ``benchmarks/bench_telemetry_overhead.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator
from contextlib import contextmanager

#: Event severity levels (mirrors logging, but only the two we need).
INFO = "info"
WARNING = "warning"


@dataclass(frozen=True)
class TraceContext:
    """What crosses a process boundary: which trace, which parent span."""

    trace_id: str
    span_id: str


@dataclass
class SpanEvent:
    """A point annotation inside a span."""

    name: str
    time: float
    level: str = INFO
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"name": self.name, "time": self.time}
        if self.level != INFO:
            out["level"] = self.level
        if self.attrs:
            out["attrs"] = self.attrs
        return out


class Span:
    """An interval of simulated time inside one trace."""

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "start",
                 "end_time", "attrs", "events", "clock")

    def __init__(self, trace_id: str, span_id: str, parent_id: str | None,
                 name: str, start: float, attrs: dict[str, Any],
                 clock: Any = None):
        self.clock = clock
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.end_time: float | None = None
        self.attrs = attrs
        self.events: list[SpanEvent] = []

    @property
    def context(self) -> TraceContext:
        return TraceContext(self.trace_id, self.span_id)

    @property
    def duration(self) -> float:
        return (self.end_time - self.start
                if self.end_time is not None else 0.0)

    @property
    def finished(self) -> bool:
        return self.end_time is not None

    def set(self, **attrs: Any) -> "Span":
        self.attrs.update(attrs)
        return self

    def event(self, name: str, time: float | None = None,
              level: str = INFO, **attrs: Any) -> SpanEvent:
        event = SpanEvent(name=name,
                          time=self.start if time is None else time,
                          level=level, attrs=dict(attrs))
        self.events.append(event)
        return event

    def end(self, time: float | None = None, **attrs: Any) -> "Span":
        """Close the span. With no explicit time the tracer's clock is
        consulted (falling back to a zero-length span). A span never
        ends before it starts — a caller passing an earlier timestamp
        gets a zero-length span."""
        if attrs:
            self.attrs.update(attrs)
        if time is None:
            time = (float(self.clock.now()) if self.clock is not None
                    else self.start)
        self.end_time = max(self.start, time)
        return self

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end_time if self.end_time is not None else self.start,
        }
        if self.attrs:
            out["attrs"] = self.attrs
        if self.events:
            out["events"] = [e.to_dict() for e in self.events]
        return out

    def __repr__(self) -> str:
        return (f"<Span {self.name} {self.span_id} "
                f"[{self.start:.6f}, {self.end_time}]>")


class NullSpan:
    """The do-nothing span every :class:`NullTracer` call returns."""

    __slots__ = ()

    trace_id = ""
    span_id = ""
    parent_id = None
    name = ""
    start = 0.0
    end_time = 0.0
    duration = 0.0
    finished = True
    context = None
    attrs: dict[str, Any] = {}
    events: list[SpanEvent] = []

    def set(self, **attrs: Any) -> "NullSpan":
        return self

    def event(self, name: str, time: float | None = None,
              level: str = INFO, **attrs: Any) -> None:
        return None

    def end(self, time: float | None = None, **attrs: Any) -> "NullSpan":
        return self

    def to_dict(self) -> dict[str, Any]:
        return {}

    def __bool__(self) -> bool:
        return False


NULL_SPAN = NullSpan()


class Tracer:
    """Mints spans with deterministic ids from the simulated clock.

    ``clock`` is anything with ``now()`` (the platform's simulation
    clock); when omitted, explicit ``time=`` arguments are required to
    get meaningful timestamps (they default to 0.0).
    """

    enabled = True

    def __init__(self, clock: Any = None):
        self.clock = clock
        self.spans: list[Span] = []
        self._by_id: dict[str, Span] = {}
        self._seq = 0

    # -- id minting --------------------------------------------------------

    def _now(self, time: float | None) -> float:
        if time is not None:
            return time
        return float(self.clock.now()) if self.clock is not None else 0.0

    def _mint(self, now: float) -> str:
        """Deterministic id: microseconds of simulated time + sequence."""
        self._seq += 1
        return f"{int(now * 1e6):012x}-{self._seq:06x}"

    # -- span lifecycle ----------------------------------------------------

    def start_trace(self, name: str, time: float | None = None,
                    **attrs: Any) -> Span:
        """Open a root span (a new trace)."""
        now = self._now(time)
        span_id = self._mint(now)
        span = Span(trace_id=span_id, span_id=span_id, parent_id=None,
                    name=name, start=now, attrs=dict(attrs),
                    clock=self.clock)
        self.spans.append(span)
        self._by_id[span_id] = span
        return span

    def start_span(self, name: str,
                   parent: "Span | NullSpan | TraceContext | None" = None,
                   time: float | None = None, **attrs: Any) -> Span:
        """Open a child span under ``parent`` (a live Span or a
        TraceContext carried across a boundary); with no parent this
        starts a fresh trace."""
        if parent is None or isinstance(parent, NullSpan):
            return self.start_trace(name, time=time, **attrs)
        now = self._now(time)
        span = Span(trace_id=parent.trace_id, span_id=self._mint(now),
                    parent_id=parent.span_id, name=name, start=now,
                    attrs=dict(attrs), clock=self.clock)
        self.spans.append(span)
        self._by_id[span.span_id] = span
        return span

    @contextmanager
    def span(self, name: str,
             parent: "Span | TraceContext | None" = None,
             **attrs: Any) -> Iterator[Span]:
        """Context manager: opens at entry, ends at exit (clock times)."""
        opened = self.start_span(name, parent=parent, **attrs)
        try:
            yield opened
        finally:
            opened.end(time=self._now(None))

    def log_event(self, name: str, time: float | None = None,
                  level: str = INFO,
                  parent: "Span | TraceContext | None" = None,
                  **attrs: Any) -> Span:
        """A standalone point event (zero-length span) — for facts that
        belong to no attempt, like a health eviction."""
        now = self._now(time)
        span = self.start_span(name, parent=parent, time=now, **attrs)
        span.event(name, time=now, level=level, **attrs)
        return span.end(time=now)

    # -- queries -----------------------------------------------------------

    def find(self, span_id: str) -> Span | None:
        return self._by_id.get(span_id)

    def trace_ids(self) -> list[str]:
        seen: list[str] = []
        for span in self.spans:
            if span.trace_id not in seen:
                seen.append(span.trace_id)
        return seen

    def for_trace(self, trace_id: str) -> list[Span]:
        """All spans of one trace, ordered by (start, creation order)."""
        mine = [s for s in self.spans if s.trace_id == trace_id]
        return sorted(mine, key=lambda s: s.start)

    def finished_spans(self) -> list[Span]:
        return [s for s in self.spans if s.finished]

    def clear(self) -> None:
        self.spans.clear()
        self._by_id.clear()


class NullTracer:
    """The zero-overhead default: every call no-ops on a shared span."""

    enabled = False
    clock = None
    spans: list[Span] = []

    def start_trace(self, name: str, time: float | None = None,
                    **attrs: Any) -> NullSpan:
        return NULL_SPAN

    def start_span(self, name: str, parent: Any = None,
                   time: float | None = None, **attrs: Any) -> NullSpan:
        return NULL_SPAN

    @contextmanager
    def span(self, name: str, parent: Any = None,
             **attrs: Any) -> Iterator[NullSpan]:
        yield NULL_SPAN

    def log_event(self, name: str, time: float | None = None,
                  level: str = INFO, parent: Any = None,
                  **attrs: Any) -> NullSpan:
        return NULL_SPAN

    def find(self, span_id: str) -> None:
        return None

    def trace_ids(self) -> list[str]:
        return []

    def for_trace(self, trace_id: str) -> list[Span]:
        return []

    def finished_spans(self) -> list[Span]:
        return []

    def clear(self) -> None:
        return None
