"""setuid-style privilege model with per-compilation temp directories.

Paper Section III-D: "We use setuid to execute the user code as
unprivileged user who can only write to a unique temporary directory
created for each compilation."

:class:`FileSystemModel` is a tiny virtual filesystem tracking which
paths exist and who may write where; :class:`PrivilegeContext` is the
identity a sandboxed process runs under.
"""

from __future__ import annotations

import itertools
import posixpath
from dataclasses import dataclass, field


class PermissionDenied(Exception):
    """A write outside the process's writable subtree was attempted."""


@dataclass(frozen=True)
class PrivilegeContext:
    """The identity and confinement of one sandboxed execution."""

    uid: int
    username: str
    writable_root: str

    @property
    def is_privileged(self) -> bool:
        return self.uid == 0

    def may_write(self, path: str) -> bool:
        norm = posixpath.normpath(path)
        root = posixpath.normpath(self.writable_root)
        return norm == root or norm.startswith(root + "/")


@dataclass
class FileSystemModel:
    """Virtual filesystem: path -> bytes, plus write-permission checks.

    System paths (everything outside ``/tmp``) are writable only by
    root; sandboxed writes are checked against the writing context's
    ``writable_root``.
    """

    files: dict[str, bytes] = field(default_factory=dict)
    _tmp_counter: itertools.count = field(default_factory=itertools.count)

    def make_sandbox_dir(self) -> str:
        """Allocate a fresh unique temp directory for one compilation."""
        return f"/tmp/webgpu-{next(self._tmp_counter):06d}"

    def write(self, ctx: PrivilegeContext, path: str, data: bytes) -> None:
        norm = posixpath.normpath(path)
        if not ctx.is_privileged and not ctx.may_write(norm):
            raise PermissionDenied(
                f"uid {ctx.uid} ({ctx.username}) may not write {norm!r} "
                f"(confined to {ctx.writable_root!r})"
            )
        self.files[norm] = data

    def read(self, path: str) -> bytes:
        norm = posixpath.normpath(path)
        try:
            return self.files[norm]
        except KeyError:
            raise FileNotFoundError(norm) from None

    def exists(self, path: str) -> bool:
        return posixpath.normpath(path) in self.files

    def listdir(self, path: str) -> list[str]:
        prefix = posixpath.normpath(path) + "/"
        return sorted(
            p[len(prefix):].split("/", 1)[0]
            for p in self.files
            if p.startswith(prefix)
        )

    def remove_tree(self, path: str) -> int:
        """Delete a subtree (cleanup after a job); returns files removed."""
        prefix = posixpath.normpath(path)
        doomed = [p for p in self.files
                  if p == prefix or p.startswith(prefix + "/")]
        for p in doomed:
            del self.files[p]
        return len(doomed)


#: Counter for allocating distinct unprivileged uids.
_uid_counter = itertools.count(10_000)


def make_sandbox_context(fs: FileSystemModel) -> PrivilegeContext:
    """Fresh unprivileged identity confined to a new temp directory."""
    uid = next(_uid_counter)
    return PrivilegeContext(
        uid=uid,
        username=f"sandbox{uid}",
        writable_root=fs.make_sandbox_dir(),
    )
