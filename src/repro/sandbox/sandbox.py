"""The composed sandbox executor used by worker nodes.

Pipeline for one job (paper Sections III-C/III-D):

1. blacklist scan of the raw source;
2. compilation under a compile-time limit, writing artifacts only to a
   unique per-compilation temp directory as an unprivileged user;
3. execution under a seccomp-style syscall gate and a run-time limit;
4. cleanup of the temp directory.

The executor is agnostic to the language toolchain: callers supply
``compile_fn`` and ``run_fn``. The worker node wires these to the
minicuda compiler and gpusim device.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.sandbox.blacklist import BlacklistScanner, BlacklistViolation
from repro.sandbox.limits import TimeLimiter, TimeLimitExceeded
from repro.sandbox.privileges import (
    FileSystemModel,
    PermissionDenied,
    PrivilegeContext,
    make_sandbox_context,
)
from repro.sandbox.seccomp import SeccompPolicy, SyscallGate, SyscallViolation
from repro.telemetry import Telemetry


class SandboxViolation(Exception):
    """Umbrella error for any security mechanism firing."""


class ExecutionOutcome(enum.Enum):
    OK = "ok"
    BLACKLISTED = "blacklisted"
    COMPILE_ERROR = "compile_error"
    COMPILE_TIMEOUT = "compile_timeout"
    RUNTIME_ERROR = "runtime_error"
    RUN_TIMEOUT = "run_timeout"
    SYSCALL_KILLED = "syscall_killed"
    WRITE_DENIED = "write_denied"

    @property
    def is_security_kill(self) -> bool:
        return self in (
            ExecutionOutcome.BLACKLISTED,
            ExecutionOutcome.SYSCALL_KILLED,
            ExecutionOutcome.WRITE_DENIED,
        )


@dataclass(frozen=True)
class SandboxConfig:
    """Per-lab sandbox parameters (instructor-supplied)."""

    policy: SeccompPolicy
    compile_limit_s: float = 30.0
    run_limit_s: float = 60.0
    scanner: BlacklistScanner = field(default_factory=BlacklistScanner)


@dataclass
class SandboxEnv:
    """Everything a ``run_fn`` may touch while sandboxed."""

    gate: SyscallGate
    run_limiter: TimeLimiter
    privileges: PrivilegeContext
    fs: FileSystemModel

    def write_file(self, relative_path: str, data: bytes) -> None:
        """Write inside the sandbox temp dir (checked)."""
        path = f"{self.privileges.writable_root}/{relative_path}"
        self.fs.write(self.privileges, path, data)


@dataclass
class SandboxResult:
    """What the worker reports back to the web-server for one job."""

    outcome: ExecutionOutcome
    stdout: str = ""
    stderr: str = ""
    compile_seconds: float = 0.0
    run_seconds: float = 0.0
    syscall_counts: dict[str, int] = field(default_factory=dict)
    value: Any = None  # run_fn's return value on success

    @property
    def ok(self) -> bool:
        return self.outcome is ExecutionOutcome.OK


class CompileFailure(Exception):
    """Raised by ``compile_fn`` on a (user-caused) compile error."""

    def __init__(self, message: str, seconds: float = 0.0):
        self.seconds = seconds
        super().__init__(message)


class SandboxExecutor:
    """Runs one compile+execute job under the full security stack."""

    def __init__(self, config: SandboxConfig, fs: FileSystemModel | None = None,
                 telemetry: Telemetry | None = None):
        self.config = config
        self.fs = fs if fs is not None else FileSystemModel()
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.jobs_run = 0
        self.kills_by_outcome: dict[ExecutionOutcome, int] = {}

    def execute(
        self,
        source: str,
        compile_fn: Callable[[str, TimeLimiter], Any],
        run_fn: Callable[[Any, SandboxEnv], Any],
    ) -> SandboxResult:
        """Run the full pipeline for one submission.

        ``compile_fn(source, limiter)`` must charge compile time to the
        limiter and return an artifact, raising :class:`CompileFailure`
        on user errors. ``run_fn(artifact, env)`` must route syscalls
        through ``env.gate`` and charge run time to ``env.run_limiter``;
        its return value lands in ``SandboxResult.value``.
        """
        self.jobs_run += 1

        # 1. blacklist
        try:
            self.config.scanner.check(source)
        except BlacklistViolation as exc:
            return self._finish(SandboxResult(
                outcome=ExecutionOutcome.BLACKLISTED, stderr=str(exc)))

        # 2. compile (unprivileged, confined, time-limited)
        ctx = make_sandbox_context(self.fs)
        compile_limiter = TimeLimiter("compile", self.config.compile_limit_s)
        try:
            artifact = compile_fn(source, compile_limiter)
        except CompileFailure as exc:
            return self._finish(SandboxResult(
                outcome=ExecutionOutcome.COMPILE_ERROR, stderr=str(exc),
                compile_seconds=compile_limiter.spent))
        except TimeLimitExceeded as exc:
            return self._finish(SandboxResult(
                outcome=ExecutionOutcome.COMPILE_TIMEOUT, stderr=str(exc),
                compile_seconds=compile_limiter.spent))

        # 3. run (seccomp gate + run limit + write confinement)
        gate = SyscallGate(self.config.policy)
        run_limiter = TimeLimiter("run", self.config.run_limit_s)
        env = SandboxEnv(gate=gate, run_limiter=run_limiter,
                         privileges=ctx, fs=self.fs)
        try:
            value = run_fn(artifact, env)
            result = SandboxResult(
                outcome=ExecutionOutcome.OK,
                compile_seconds=compile_limiter.spent,
                run_seconds=run_limiter.spent,
                syscall_counts=gate.counts(),
                value=value,
            )
        except SyscallViolation as exc:
            result = SandboxResult(
                outcome=ExecutionOutcome.SYSCALL_KILLED, stderr=str(exc),
                compile_seconds=compile_limiter.spent,
                run_seconds=run_limiter.spent, syscall_counts=gate.counts())
        except TimeLimitExceeded as exc:
            result = SandboxResult(
                outcome=ExecutionOutcome.RUN_TIMEOUT, stderr=str(exc),
                compile_seconds=compile_limiter.spent,
                run_seconds=run_limiter.spent, syscall_counts=gate.counts())
        except PermissionDenied as exc:
            result = SandboxResult(
                outcome=ExecutionOutcome.WRITE_DENIED, stderr=str(exc),
                compile_seconds=compile_limiter.spent,
                run_seconds=run_limiter.spent, syscall_counts=gate.counts())
        except Exception as exc:  # user program crashed
            result = SandboxResult(
                outcome=ExecutionOutcome.RUNTIME_ERROR, stderr=str(exc),
                compile_seconds=compile_limiter.spent,
                run_seconds=run_limiter.spent, syscall_counts=gate.counts())
        finally:
            # 4. cleanup the per-compilation temp dir
            self.fs.remove_tree(ctx.writable_root)
        return self._finish(result)

    def _finish(self, result: SandboxResult) -> SandboxResult:
        if not result.ok:
            self.kills_by_outcome[result.outcome] = (
                self.kills_by_outcome.get(result.outcome, 0) + 1
            )
        self.telemetry.metrics.counter(
            "webgpu_sandbox_executions_total",
            "sandbox pipeline runs by outcome").inc(
                outcome=result.outcome.value)
        return result
