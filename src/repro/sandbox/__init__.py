"""Sandboxing and security substrate (paper Section III-D).

WebGPU defends worker nodes with four mechanisms, all modelled here:

1. **Compile-time blacklist** — a textual scan of the *unparsed* student
   code rejecting dangerous strings (e.g. ``asm(`` which could introduce
   inline assembly escaping the sandbox). The raw scan flags blacklisted
   strings even inside comments; an alternative mode scans the
   *post-preprocessor* text instead (:mod:`repro.sandbox.blacklist`).
2. **Runtime syscall whitelist** — a seccomp-bpf-style policy allowing
   only an instructor-provided whitelist of POSIX calls, configurable
   per lab (:mod:`repro.sandbox.seccomp`, :mod:`repro.sandbox.syscalls`).
3. **Unprivileged execution** — ``setuid`` to a throwaway user that can
   write only to a unique per-compilation temporary directory
   (:mod:`repro.sandbox.privileges`).
4. **Resource limits** — wall-clock limits on compilation and execution
   plus a per-user submission rate limit, adjustable per lab
   (:mod:`repro.sandbox.limits`).

:class:`repro.sandbox.sandbox.SandboxExecutor` composes all four around
a compile/run callback pair.
"""

from repro.sandbox.blacklist import (
    BlacklistScanner,
    BlacklistViolation,
    ScanMode,
    DEFAULT_BLACKLIST,
)
from repro.sandbox.syscalls import Syscall, SyscallCategory, SYSCALL_CATALOG
from repro.sandbox.seccomp import SeccompPolicy, SyscallGate, SyscallViolation
from repro.sandbox.privileges import (
    FileSystemModel,
    PermissionDenied,
    PrivilegeContext,
)
from repro.sandbox.limits import (
    RateLimitExceeded,
    SubmissionRateLimiter,
    TimeLimitExceeded,
    TimeLimiter,
)
from repro.sandbox.sandbox import (
    ExecutionOutcome,
    SandboxConfig,
    SandboxExecutor,
    SandboxResult,
    SandboxViolation,
)

__all__ = [
    "BlacklistScanner",
    "BlacklistViolation",
    "DEFAULT_BLACKLIST",
    "ExecutionOutcome",
    "FileSystemModel",
    "PermissionDenied",
    "PrivilegeContext",
    "RateLimitExceeded",
    "SandboxConfig",
    "SandboxExecutor",
    "SandboxResult",
    "SandboxViolation",
    "ScanMode",
    "SeccompPolicy",
    "SubmissionRateLimiter",
    "Syscall",
    "SyscallCategory",
    "SyscallGate",
    "SyscallViolation",
    "SYSCALL_CATALOG",
    "TimeLimitExceeded",
    "TimeLimiter",
]
