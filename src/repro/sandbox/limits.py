"""Execution time limits and submission rate limits.

Paper Section III-C: "To maintain fairness, time limits are placed on
the submission rate and on the duration of the compilation and
execution of user code. The time limits can be adjusted on a per lab
basis."

Both limiters are driven by *supplied* timestamps/durations rather than
the wall clock, so they compose with the discrete-event simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class TimeLimitExceeded(Exception):
    """Compilation or execution exceeded its time budget."""

    def __init__(self, phase: str, spent: float, limit: float):
        self.phase = phase
        self.spent = spent
        self.limit = limit
        super().__init__(
            f"{phase} time limit exceeded: {spent:.3f}s > {limit:.3f}s"
        )


class RateLimitExceeded(Exception):
    """A user submitted faster than the lab's rate limit allows."""

    def __init__(self, user: str, retry_after: float):
        self.user = user
        self.retry_after = retry_after
        super().__init__(
            f"rate limit exceeded for {user!r}; retry after "
            f"{retry_after:.1f}s"
        )


@dataclass
class TimeLimiter:
    """Accumulates charged execution time against a budget.

    The worker charges simulated seconds as the job progresses
    (``charge``); exceeding the budget raises
    :class:`TimeLimitExceeded`, modelling the watchdog killing the
    process.
    """

    phase: str
    limit_seconds: float
    spent: float = 0.0

    def __post_init__(self) -> None:
        if self.limit_seconds <= 0:
            raise ValueError("time limit must be positive")

    def charge(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot charge negative time")
        self.spent += seconds
        if self.spent > self.limit_seconds:
            raise TimeLimitExceeded(self.phase, self.spent, self.limit_seconds)

    @property
    def remaining(self) -> float:
        return max(0.0, self.limit_seconds - self.spent)


@dataclass
class SubmissionRateLimiter:
    """Token-bucket rate limiter keyed by user.

    Each user gets ``burst`` tokens refilled at ``rate_per_minute / 60``
    tokens per second. A submission consumes one token; an empty bucket
    rejects with the time until the next token.
    """

    rate_per_minute: float = 6.0
    burst: int = 3
    _buckets: dict[str, tuple[float, float]] = field(default_factory=dict)
    # user -> (tokens, last_refill_time)

    def __post_init__(self) -> None:
        if self.rate_per_minute <= 0 or self.burst < 1:
            raise ValueError("rate_per_minute must be > 0 and burst >= 1")

    def _refill(self, user: str, now: float) -> float:
        tokens, last = self._buckets.get(user, (float(self.burst), now))
        if now < last:
            raise ValueError("time went backwards")
        tokens = min(self.burst, tokens + (now - last) * self.rate_per_minute / 60.0)
        return tokens

    def try_submit(self, user: str, now: float) -> bool:
        """Consume a token if available; returns whether allowed."""
        tokens = self._refill(user, now)
        if tokens >= 1.0:
            self._buckets[user] = (tokens - 1.0, now)
            return True
        self._buckets[user] = (tokens, now)
        return False

    def submit(self, user: str, now: float) -> None:
        """Like :meth:`try_submit` but raises on rejection."""
        if not self.try_submit(user, now):
            tokens, _ = self._buckets[user]
            deficit = 1.0 - tokens
            retry_after = deficit * 60.0 / self.rate_per_minute
            raise RateLimitExceeded(user, retry_after)

    def tokens(self, user: str, now: float) -> float:
        """Current token count for introspection/tests."""
        return self._refill(user, now)
