"""Catalog of POSIX system calls used by the seccomp-style whitelist.

The paper's workers whitelist POSIX calls with seccomp-bpf; the
whitelist is supplied by the instructor per lab. This module provides
the call catalog the policies draw from, grouped into categories so a
lab config can whitelist e.g. "memory + basic-io" without enumerating
every call.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class SyscallCategory(enum.Enum):
    PROCESS = "process"          # lifecycle of the calling process
    PROCESS_SPAWN = "spawn"      # creating new processes (never whitelisted)
    MEMORY = "memory"
    FILE_IO = "file_io"
    NETWORK = "network"
    SIGNALS = "signals"
    TIME = "time"
    INFO = "info"
    PRIVILEGE = "privilege"      # credential manipulation (never whitelisted)


@dataclass(frozen=True)
class Syscall:
    name: str
    category: SyscallCategory
    description: str = ""


def _mk(names: str, cat: SyscallCategory) -> list[Syscall]:
    return [Syscall(n, cat) for n in names.split()]


SYSCALL_CATALOG: dict[str, Syscall] = {
    s.name: s
    for s in (
        _mk("exit exit_group", SyscallCategory.PROCESS)
        + _mk("fork vfork clone execve ptrace", SyscallCategory.PROCESS_SPAWN)
        + _mk("brk mmap munmap mremap mprotect madvise", SyscallCategory.MEMORY)
        + _mk("open openat close read write lseek stat fstat unlink "
              "mkdir rmdir readlink dup dup2 pipe fcntl ioctl",
              SyscallCategory.FILE_IO)
        + _mk("socket connect bind listen accept sendto recvfrom "
              "sendmsg recvmsg", SyscallCategory.NETWORK)
        + _mk("kill sigaction sigprocmask sigreturn rt_sigaction "
              "rt_sigprocmask rt_sigreturn", SyscallCategory.SIGNALS)
        + _mk("nanosleep clock_gettime gettimeofday time", SyscallCategory.TIME)
        + _mk("getpid getppid getuid geteuid getgid uname arch_prctl "
              "set_tid_address futex", SyscallCategory.INFO)
        + _mk("setuid setgid setreuid setregid capset", SyscallCategory.PRIVILEGE)
    )
}

#: Categories that must never appear in an instructor whitelist; the
#: policy constructor rejects them outright.
FORBIDDEN_CATEGORIES = frozenset(
    {SyscallCategory.PROCESS_SPAWN, SyscallCategory.PRIVILEGE}
)

#: The minimal set a CUDA lab binary needs to run: process exit, memory
#: management, stdio, and the runtime's timing/introspection calls.
BASELINE_WHITELIST: frozenset[str] = frozenset(
    {
        "exit", "exit_group",
        "brk", "mmap", "munmap", "mremap", "madvise",
        "read", "write", "close", "fstat", "lseek",
        "clock_gettime", "gettimeofday", "nanosleep",
        "getpid", "getuid", "geteuid", "uname", "arch_prctl",
        "set_tid_address", "futex",
    }
)


def calls_in_category(category: SyscallCategory) -> frozenset[str]:
    """All catalog call names in ``category``."""
    return frozenset(
        name for name, sc in SYSCALL_CATALOG.items() if sc.category is category
    )
