"""seccomp-bpf-style syscall whitelist enforcement.

A :class:`SeccompPolicy` holds the set of allowed calls (built from the
instructor's per-lab whitelist); a :class:`SyscallGate` is the runtime
object the simulated process consults on every call. A disallowed call
raises :class:`SyscallViolation`, which the worker treats as the kernel
killing the process (as seccomp's ``SECCOMP_RET_KILL`` would).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from repro.sandbox.syscalls import (
    BASELINE_WHITELIST,
    FORBIDDEN_CATEGORIES,
    SYSCALL_CATALOG,
    SyscallCategory,
    calls_in_category,
)


class SyscallViolation(Exception):
    """A sandboxed process invoked a syscall outside its whitelist."""

    def __init__(self, name: str, policy_name: str):
        self.syscall = name
        self.policy_name = policy_name
        super().__init__(
            f"syscall {name!r} blocked by seccomp policy {policy_name!r}"
        )


@dataclass(frozen=True)
class SeccompPolicy:
    """An immutable whitelist of allowed syscall names.

    Instructors build policies per lab; unknown syscall names and calls
    in forbidden categories (process spawning, privilege manipulation)
    are rejected at construction time, so a misconfigured lab fails
    closed at deploy time rather than open at run time.
    """

    name: str
    allowed: frozenset[str] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        for call in self.allowed:
            entry = SYSCALL_CATALOG.get(call)
            if entry is None:
                raise ValueError(f"unknown syscall {call!r} in policy {self.name!r}")
            if entry.category in FORBIDDEN_CATEGORIES:
                raise ValueError(
                    f"syscall {call!r} ({entry.category.value}) may never be "
                    f"whitelisted (policy {self.name!r})"
                )

    @classmethod
    def baseline(cls, name: str = "baseline") -> "SeccompPolicy":
        """The minimal policy every lab starts from."""
        return cls(name=name, allowed=BASELINE_WHITELIST)

    def allowing(self, *calls: str) -> "SeccompPolicy":
        """A new policy with extra calls added."""
        return SeccompPolicy(name=self.name, allowed=self.allowed | set(calls))

    def allowing_category(self, category: SyscallCategory) -> "SeccompPolicy":
        """A new policy with every call of ``category`` added."""
        if category in FORBIDDEN_CATEGORIES:
            raise ValueError(f"category {category.value} may never be whitelisted")
        return SeccompPolicy(
            name=self.name, allowed=self.allowed | calls_in_category(category)
        )

    def permits(self, call: str) -> bool:
        return call in self.allowed


class SyscallGate:
    """Per-process enforcement point with an audit trail."""

    def __init__(self, policy: SeccompPolicy):
        self.policy = policy
        self.trace: list[str] = []
        self.violation: str | None = None

    def invoke(self, call: str) -> None:
        """Record a syscall; raise :class:`SyscallViolation` if blocked."""
        self.trace.append(call)
        if not self.policy.permits(call):
            self.violation = call
            raise SyscallViolation(call, self.policy.name)

    def counts(self) -> dict[str, int]:
        """Syscall name -> number of invocations."""
        out: dict[str, int] = {}
        for call in self.trace:
            out[call] = out.get(call, 0) + 1
        return out
