"""Compile-time blacklist scanning of student source code.

Paper Section III-D: "A textual scan on the unparsed code disallows
certain strings such as ``asm();`` ... This method rejects code which
contains the black listed functions even within comments."

Two scan modes are provided:

* :attr:`ScanMode.RAW` — scan the unparsed text. Matches inside comments
  and string literals count (false positives on innocent comments), but
  nothing can hide from the scan.
* :attr:`ScanMode.PREPROCESSED` — strip comments and string literals
  (and optionally run a caller-supplied preprocessor) before scanning.
  Comments no longer trigger rejections, at the cost of trusting the
  stripping step.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

#: Strings WebGPU refuses at compile time. Each is matched as an
#: identifier-ish token followed by optional whitespace and ``(`` where
#: that makes sense, or as a plain substring for include-style entries.
DEFAULT_BLACKLIST: tuple[str, ...] = (
    "asm",
    "__asm__",
    "system",
    "exec",
    "execve",
    "execvp",
    "fork",
    "vfork",
    "clone",
    "popen",
    "ptrace",
    "syscall",
    "dlopen",
    "mprotect",
    "setuid",
    "setgid",
)


class ScanMode(enum.Enum):
    RAW = "raw"
    PREPROCESSED = "preprocessed"


@dataclass(frozen=True)
class BlacklistMatch:
    """One blacklist hit."""

    entry: str
    line: int
    column: int
    context: str


class BlacklistViolation(Exception):
    """Raised when student code contains blacklisted constructs."""

    def __init__(self, matches: Sequence[BlacklistMatch]):
        self.matches = list(matches)
        first = self.matches[0]
        super().__init__(
            f"blacklisted construct {first.entry!r} at line {first.line} "
            f"({len(self.matches)} match(es) total)"
        )


_COMMENT_BLOCK = re.compile(r"/\*.*?\*/", re.DOTALL)
_COMMENT_LINE = re.compile(r"//[^\n]*")
_STRING = re.compile(r'"(?:\\.|[^"\\])*"')
_CHAR = re.compile(r"'(?:\\.|[^'\\])*'")


def strip_comments_and_strings(source: str) -> str:
    """Replace comments and string/char literals with spaces.

    Newlines are preserved so that line numbers in subsequent scans stay
    accurate.
    """

    def blank(match: re.Match[str]) -> str:
        return "".join("\n" if ch == "\n" else " " for ch in match.group(0))

    out = _STRING.sub(blank, source)
    out = _CHAR.sub(blank, out)
    out = _COMMENT_BLOCK.sub(blank, out)
    out = _COMMENT_LINE.sub(blank, out)
    return out


class BlacklistScanner:
    """Scans source text for blacklisted identifiers.

    Parameters
    ----------
    entries:
        Blacklisted names; defaults to :data:`DEFAULT_BLACKLIST`.
    mode:
        :attr:`ScanMode.RAW` (paper default) or
        :attr:`ScanMode.PREPROCESSED`.
    preprocessor:
        Optional callable applied to the source before scanning in
        PREPROCESSED mode (e.g. the minicuda preprocessor, so macro
        expansion cannot smuggle a name past the scan).
    """

    def __init__(
        self,
        entries: Iterable[str] = DEFAULT_BLACKLIST,
        mode: ScanMode = ScanMode.RAW,
        preprocessor: Callable[[str], str] | None = None,
    ):
        self.entries = tuple(entries)
        self.mode = mode
        self.preprocessor = preprocessor
        escaped = "|".join(re.escape(e) for e in
                           sorted(self.entries, key=len, reverse=True))
        # match as a standalone identifier token
        self._pattern = re.compile(rf"(?<![A-Za-z0-9_])({escaped})(?![A-Za-z0-9_])")

    def scan(self, source: str) -> list[BlacklistMatch]:
        """Return all matches (empty list means the code is clean)."""
        text = source
        if self.mode is ScanMode.PREPROCESSED:
            if self.preprocessor is not None:
                text = self.preprocessor(text)
            text = strip_comments_and_strings(text)
        matches: list[BlacklistMatch] = []
        for m in self._pattern.finditer(text):
            upto = text[: m.start()]
            line = upto.count("\n") + 1
            column = m.start() - (upto.rfind("\n") + 1) + 1
            line_text = text.splitlines()[line - 1] if text else ""
            matches.append(
                BlacklistMatch(entry=m.group(1), line=line, column=column,
                               context=line_text.strip()[:80])
            )
        return matches

    def check(self, source: str) -> None:
        """Raise :class:`BlacklistViolation` if the code is not clean."""
        matches = self.scan(source)
        if matches:
            raise BlacklistViolation(matches)
