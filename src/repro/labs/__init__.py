"""The Table-II lab catalog.

Fifteen labs, each with a markdown description, a solution skeleton
shown to students, a reference solution in the CUDA-C subset, seeded
dataset generators, a grading rubric, and the course matrix from the
paper's Table II (HPP = Heterogeneous Parallel Programming on Coursera,
408 = ECE 408, 598 = ECE 598HK, PUMPS = the UPC Barcelona summer
school).
"""

from repro.labs.base import (
    EvaluationMode,
    LabDefinition,
    LabExecution,
    Rubric,
    execute_lab_source,
)
from repro.labs.catalog import (
    ALL_LABS,
    COURSES,
    EXTRA_LABS,
    course_matrix,
    get_lab,
    labs_for_course,
)

__all__ = [
    "ALL_LABS",
    "COURSES",
    "EXTRA_LABS",
    "EvaluationMode",
    "LabDefinition",
    "LabExecution",
    "Rubric",
    "course_matrix",
    "execute_lab_source",
    "get_lab",
    "labs_for_course",
]
