"""Advanced labs: OpenCL VecAdd, Scatter-to-Gather, Stencil, SGEMM."""

from repro.labs.base import EvaluationMode, LabDefinition

# --------------------------------------------------------- OpenCL Vector Addition

_OPENCL_SKELETON = r'''
// OpenCL Vector Addition.
// Write ONLY the kernel; the harness compiles it with the OpenCL
// toolchain, creates the buffers, and enqueues the NDRange.

__kernel void vecAdd(__global float *a, __global float *b,
                     __global float *c, int n) {
  //@@ Compute the global work-item id and add the vectors.
}
'''

_OPENCL_SOLUTION = r'''
__kernel void vecAdd(__global float *a, __global float *b,
                     __global float *c, int n) {
  int i = get_global_id(0);
  if (i < n) {
    c[i] = a[i] + b[i];
  }
}
'''

OPENCL_VECADD = LabDefinition(
    slug="opencl-vecadd",
    title="OpenCL Vector Addition",
    description="""# OpenCL Vector Addition

Re-express the vector-addition kernel in OpenCL C.

## Objectives

* OpenCL's work-item indexing: `get_global_id(0)` replaces the
  `blockIdx.x * blockDim.x + threadIdx.x` computation.
* `__kernel` / `__global` qualifiers.

The host side (context, command queue, buffers, `clEnqueueNDRangeKernel`)
is provided by the harness so you can focus on the kernel language
differences.
""",
    skeleton=_OPENCL_SKELETON,
    solution=_OPENCL_SOLUTION,
    generator="vector_add",
    dataset_sizes=(64, 300, 1024),
    language="opencl",
    mode=EvaluationMode.KERNEL_ONLY,
    kernel_name="vecAdd",
    requirements=frozenset({"opencl"}),
    courses=frozenset({"HPP"}),
    questions=("Which CUDA builtin corresponds to get_local_id(0)?",),
)

# ------------------------------------------------------------ Scatter to Gather

_SG_HOST = r'''
int main(int argc, char **argv) {
  wbArg_t args;
  int len;
  float *hostInput, *hostOutput;
  float *deviceInput, *deviceOutput;

  args = wbArg_read(argc, argv);
  hostInput = (float *)wbImport(wbArg_getInputFile(args, 0), &len);
  hostOutput = (float *)malloc(len * sizeof(float));

  cudaMalloc((void **)&deviceInput, len * sizeof(float));
  cudaMalloc((void **)&deviceOutput, len * sizeof(float));
  cudaMemcpy(deviceInput, hostInput, len * sizeof(float),
             cudaMemcpyHostToDevice);

  int numBlocks = (len + 127) / 128;
  gatherKernel<<<numBlocks, 128>>>(deviceInput, deviceOutput, len);
  cudaDeviceSynchronize();

  cudaMemcpy(hostOutput, deviceOutput, len * sizeof(float),
             cudaMemcpyDeviceToHost);
  wbSolution(args, hostOutput, len);

  cudaFree(deviceInput);
  cudaFree(deviceOutput);
  free(hostOutput);
  return 0;
}
'''

_SG_SKELETON = r'''
#include <wb.h>

// The scatter formulation (each input element ADDS itself into three
// output cells) requires atomics:
//
//   atomicAdd(&out[i-1], in[i]); atomicAdd(&out[i], in[i]); ...
//
// Rewrite it as a GATHER: each thread OWNS one output element and reads
// the inputs that contribute to it. No atomics needed.

__global__ void gatherKernel(float *in, float *out, int len) {
  //@@ out[i] = in[i-1] + in[i] + in[i+1], with neighbours outside the
  //@@ array treated as absent.
}
''' + _SG_HOST

_SG_SOLUTION = r'''
#include <wb.h>

__global__ void gatherKernel(float *in, float *out, int len) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < len) {
    float sum = in[i];
    if (i > 0)
      sum += in[i - 1];
    if (i < len - 1)
      sum += in[i + 1];
    out[i] = sum;
  }
}
''' + _SG_HOST

SCATTER_GATHER = LabDefinition(
    slug="scatter-gather",
    title="Scatter to Gather",
    description="""# Scatter to Gather Transformation

A neighbourhood sum can be written as a *scatter* (each input element
pushes its value into the three outputs it affects, which races and
needs atomics) or as a *gather* (each output element pulls the inputs
that affect it — no races at all).

## Objectives

* Recognise scatter patterns and their synchronisation cost.
* Transform the ownership structure: one thread per *output*.
* Boundary handling when the gather window runs off the array.
""",
    skeleton=_SG_SKELETON,
    solution=_SG_SOLUTION,
    generator="scatter_gather",
    dataset_sizes=(32, 500, 1000),
    courses=frozenset({"598", "PUMPS"}),
    questions=("Why does the gather formulation need no atomic "
               "operations while the scatter one does?",),
)

# ---------------------------------------------------------------------- Stencil

_STENCIL_HOST = r'''
int main(int argc, char **argv) {
  wbArg_t args;
  int height, width;
  float *hostInput, *hostOutput;
  float *deviceInput, *deviceOutput;

  args = wbArg_read(argc, argv);
  hostInput = (float *)wbImport(wbArg_getInputFile(args, 0), &height,
                                &width);
  hostOutput = (float *)malloc(height * width * sizeof(float));

  cudaMalloc((void **)&deviceInput, height * width * sizeof(float));
  cudaMalloc((void **)&deviceOutput, height * width * sizeof(float));
  cudaMemcpy(deviceInput, hostInput, height * width * sizeof(float),
             cudaMemcpyHostToDevice);

  dim3 dimBlock(8, 4);
  dim3 dimGrid((width + 7) / 8,
               (height + 4 * COARSEN - 1) / (4 * COARSEN));
  stencilKernel<<<dimGrid, dimBlock>>>(deviceInput, deviceOutput, height,
                                       width);
  cudaDeviceSynchronize();

  cudaMemcpy(hostOutput, deviceOutput, height * width * sizeof(float),
             cudaMemcpyDeviceToHost);
  wbSolution(args, hostOutput, height, width);

  cudaFree(deviceInput);
  cudaFree(deviceOutput);
  free(hostOutput);
  return 0;
}
'''

_STENCIL_SKELETON = r'''
#include <wb.h>

#define COARSEN 2

// Five-point stencil with thread coarsening: each thread produces
// COARSEN consecutive output ROWS, keeping reused values in registers.

__global__ void stencilKernel(float *in, float *out, int height,
                              int width) {
  //@@ For each of the COARSEN rows this thread owns:
  //@@   interior cells:  out = 0.2 * (C + N + S + W + E)
  //@@   boundary cells:  out = in (copied through)
}
''' + _STENCIL_HOST

_STENCIL_SOLUTION = r'''
#include <wb.h>

#define COARSEN 2

__global__ void stencilKernel(float *in, float *out, int height,
                              int width) {
  int col = blockIdx.x * blockDim.x + threadIdx.x;
  int rowBase = (blockIdx.y * blockDim.y + threadIdx.y) * COARSEN;
  for (int k = 0; k < COARSEN; k++) {
    int row = rowBase + k;
    if (row < height && col < width) {
      if (row > 0 && row < height - 1 && col > 0 && col < width - 1) {
        out[row * width + col] =
            0.2f * (in[row * width + col] + in[(row - 1) * width + col] +
                    in[(row + 1) * width + col] + in[row * width + col - 1] +
                    in[row * width + col + 1]);
      } else {
        out[row * width + col] = in[row * width + col];
      }
    }
  }
}
''' + _STENCIL_HOST

STENCIL = LabDefinition(
    slug="stencil",
    title="Stencil",
    description="""# Stencil with Thread Coarsening

Apply a five-point averaging stencil to a 2-D grid. Each thread
computes COARSEN consecutive output rows instead of one ("thread
coarsening"), amortising index arithmetic and improving register reuse.

## Objectives

* Register tiling / thread coarsening as an optimisation lever, and its
  interaction with occupancy (fewer, fatter threads).
* Boundary cells are copied through unchanged — a common convention for
  iterative PDE solvers.
""",
    skeleton=_STENCIL_SKELETON,
    solution=_STENCIL_SOLUTION,
    generator="stencil2d",
    dataset_sizes=(8, 17, 24),
    courses=frozenset({"598"}),
    questions=("What limits how far you can usefully raise COARSEN?",),
)

# ------------------------------------------------------------------------ SGEMM

_SGEMM_HOST = r'''
int main(int argc, char **argv) {
  wbArg_t args;
  int n, nB, nB2;
  float *hostA, *hostB, *hostC;
  float *deviceA, *deviceB, *deviceC;

  args = wbArg_read(argc, argv);
  hostA = (float *)wbImport(wbArg_getInputFile(args, 0), &n, &nB);
  hostB = (float *)wbImport(wbArg_getInputFile(args, 1), &nB, &nB2);
  hostC = (float *)malloc(n * n * sizeof(float));

  cudaMalloc((void **)&deviceA, n * n * sizeof(float));
  cudaMalloc((void **)&deviceB, n * n * sizeof(float));
  cudaMalloc((void **)&deviceC, n * n * sizeof(float));
  cudaMemcpy(deviceA, hostA, n * n * sizeof(float), cudaMemcpyHostToDevice);
  cudaMemcpy(deviceB, hostB, n * n * sizeof(float), cudaMemcpyHostToDevice);

  dim3 dimBlock(TILE, TILE);
  dim3 dimGrid((n + TILE * COARSEN - 1) / (TILE * COARSEN),
               (n + TILE - 1) / TILE);
  sgemm<<<dimGrid, dimBlock>>>(deviceA, deviceB, deviceC, n);
  cudaDeviceSynchronize();

  cudaMemcpy(hostC, deviceC, n * n * sizeof(float), cudaMemcpyDeviceToHost);
  wbSolution(args, hostC, n, n);

  cudaFree(deviceA);
  cudaFree(deviceB);
  cudaFree(deviceC);
  free(hostC);
  return 0;
}
'''

_SGEMM_SKELETON = r'''
#include <wb.h>

#define TILE 8
#define COARSEN 2

// Register-tiled SGEMM (square matrices): each thread computes COARSEN
// output elements, TILE columns apart, from one shared A tile and a
// COARSEN-wide shared B tile.

__global__ void sgemm(float *A, float *B, float *C, int n) {
  __shared__ float sA[TILE][TILE];
  __shared__ float sB[TILE][TILE * COARSEN];
  //@@ Load tiles, synchronize, accumulate COARSEN results in
  //@@ registers, synchronize, repeat; then write the results.
}
''' + _SGEMM_HOST

_SGEMM_SOLUTION = r'''
#include <wb.h>

#define TILE 8
#define COARSEN 2

__global__ void sgemm(float *A, float *B, float *C, int n) {
  __shared__ float sA[TILE][TILE];
  __shared__ float sB[TILE][TILE * COARSEN];
  int tx = threadIdx.x;
  int ty = threadIdx.y;
  int row = blockIdx.y * TILE + ty;
  int colBase = blockIdx.x * TILE * COARSEN + tx;
  float acc0 = 0.0f;
  float acc1 = 0.0f;
  int numTiles = (n + TILE - 1) / TILE;
  for (int m = 0; m < numTiles; m++) {
    if (row < n && m * TILE + tx < n)
      sA[ty][tx] = A[row * n + m * TILE + tx];
    else
      sA[ty][tx] = 0.0f;
    for (int c = 0; c < COARSEN; c++) {
      int col = colBase + c * TILE;
      if (m * TILE + ty < n && col < n)
        sB[ty][tx + c * TILE] = B[(m * TILE + ty) * n + col];
      else
        sB[ty][tx + c * TILE] = 0.0f;
    }
    __syncthreads();
    for (int k = 0; k < TILE; k++) {
      acc0 += sA[ty][k] * sB[k][tx];
      acc1 += sA[ty][k] * sB[k][tx + TILE];
    }
    __syncthreads();
  }
  if (row < n && colBase < n)
    C[row * n + colBase] = acc0;
  if (row < n && colBase + TILE < n)
    C[row * n + colBase + TILE] = acc1;
}
''' + _SGEMM_HOST

SGEMM = LabDefinition(
    slug="sgemm",
    title="SGEMM",
    description="""# SGEMM with Register Tiling and Thread Coarsening

Single-precision matrix multiply on square matrices, pushing past the
plain tiled version: each thread accumulates COARSEN output elements in
registers, reusing every loaded A value COARSEN times.

## Objectives

* Register tiling: accumulators live in registers across all tile
  phases.
* Thread coarsening along the output row: wider shared B tile, fewer
  blocks, more work per thread.
* Reason about the arithmetic-intensity improvement over the basic
  tiled kernel (check the transaction counts in the attempt profile).
""",
    skeleton=_SGEMM_SKELETON,
    solution=_SGEMM_SOLUTION,
    generator="sgemm",
    dataset_sizes=(8, 16, 20),
    courses=frozenset({"598"}),
    questions=("How does thread coarsening change the number of global "
               "loads of B per output element?",),
)
