"""Extension lab: OpenACC Vector Addition.

Not a Table II row, but the paper states WebGPU "has been used as the
CUDA, OpenACC, and OpenCL programming environment" — this lab exercises
the OpenACC toolchain path (``#pragma acc parallel loop`` offload with
implicit data movement, served by workers carrying the PGI image).
"""

from repro.labs.base import LabDefinition

_ACC_HOST = r'''
int main(int argc, char **argv) {
  wbArg_t args;
  int len;
  float *hostInput1, *hostInput2, *hostOutput;

  args = wbArg_read(argc, argv);
  hostInput1 = (float *)wbImport(wbArg_getInputFile(args, 0), &len);
  hostInput2 = (float *)wbImport(wbArg_getInputFile(args, 1), &len);
  hostOutput = (float *)malloc(len * sizeof(float));

  addVectors(hostInput1, hostInput2, hostOutput, len);

  wbSolution(args, hostOutput, len);
  free(hostOutput);
  return 0;
}
'''

_ACC_SKELETON = r'''
#include <wb.h>

void addVectors(float *in1, float *in2, float *out, int len) {
  //@@ Annotate the loop below with an OpenACC directive so it runs on
  //@@ the GPU. No CUDA indexing, no cudaMalloc/cudaMemcpy: the
  //@@ compiler manages the data movement.
  for (int i = 0; i < len; i++) {
    out[i] = in1[i] + in2[i];
  }
}
''' + _ACC_HOST

_ACC_SOLUTION = r'''
#include <wb.h>

void addVectors(float *in1, float *in2, float *out, int len) {
  #pragma acc parallel loop
  for (int i = 0; i < len; i++) {
    out[i] = in1[i] + in2[i];
  }
}
''' + _ACC_HOST

OPENACC_VECADD = LabDefinition(
    slug="openacc-vecadd",
    title="OpenACC Vector Addition",
    description="""# OpenACC Vector Addition

Add two vectors using OpenACC directives instead of CUDA.

## Objectives

* Directive-based offload: `#pragma acc parallel loop` turns a
  canonical sequential loop into a GPU kernel.
* Implicit data movement: no explicit `cudaMalloc`/`cudaMemcpy` — the
  compiler copies the arrays the loop body touches.
* Compare the directive model's brevity with the CUDA version of this
  same lab, and inspect the attempt profile: the generated kernel has
  the same coalesced access pattern.
""",
    skeleton=_ACC_SKELETON,
    solution=_ACC_SOLUTION,
    generator="vector_add",
    dataset_sizes=(64, 300, 1024),
    language="openacc",
    requirements=frozenset({"openacc"}),
    courses=frozenset(),   # extension: offered outside the Table II set
    questions=("What data clauses would you add if only part of the "
               "output array were written?",),
)
